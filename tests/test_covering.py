"""Unit tests for the covering algorithms (paper §4.2)."""

import pytest

from repro.covering import abs_sim_cov, covers, des_cov, rel_sim_cov, matches_path
from repro.xpath import parse_xpath


def x(text):
    return parse_xpath(text)


class TestAbsSimCov:
    def test_prefix_covers(self):
        assert abs_sim_cov(x("/a"), x("/a/b"))
        assert abs_sim_cov(x("/a/b"), x("/a/b"))

    def test_longer_cannot_cover(self):
        assert not abs_sim_cov(x("/a/b"), x("/a"))

    def test_wildcard_covers_element(self):
        assert abs_sim_cov(x("/a/*"), x("/a/b"))
        assert abs_sim_cov(x("/*/*"), x("/a/b"))

    def test_element_does_not_cover_wildcard(self):
        assert not abs_sim_cov(x("/a/b"), x("/a/*"))

    def test_mismatch(self):
        assert not abs_sim_cov(x("/a/c"), x("/a/b"))


class TestRelSimCov:
    def test_infix_covering(self):
        assert rel_sim_cov(x("b/c"), x("/a/b/c"))
        assert rel_sim_cov(x("b/c"), x("a/b/c/d"))

    def test_wildcards_in_cover(self):
        assert rel_sim_cov(x("*/c"), x("/a/b/c"))

    def test_covered_wildcard_needs_wildcard(self):
        # s2 = /a/*/c: the middle position is unconstrained, b/c in s1
        # would miss publications /a/d/c.
        assert not rel_sim_cov(x("b/c"), x("/a/*/c"))
        assert rel_sim_cov(x("*/c"), x("/a/*/c"))

    def test_not_infix(self):
        assert not rel_sim_cov(x("c/b"), x("/a/b/c"))

    def test_too_long(self):
        assert not rel_sim_cov(x("a/b/c"), x("/a/b"))

    def test_relative_covers_relative(self):
        assert rel_sim_cov(x("b"), x("a/b/c"))


class TestCoversDispatch:
    def test_equal_exprs_cover(self):
        assert covers(x("/a//b"), x("/a//b"))

    def test_absolute_never_covers_relative(self):
        assert not covers(x("/a"), x("a"))
        assert not covers(x("/a/b"), x("a/b"))

    def test_relative_covers_absolute(self):
        assert covers(x("a"), x("/a"))
        assert covers(x("b/c"), x("/a/b/c"))

    def test_paper_tree_examples(self):
        """Relations visible in the paper's Figure 4 subscription tree."""
        assert covers(x("/a"), x("/a/b"))
        assert covers(x("/a/b"), x("/a/b/a"))
        assert covers(x("/*/b"), x("/*/b//c"))
        assert covers(x("/a/*/d"), x("/a/b/d"))
        assert covers(x("/*/b"), x("/a/b"))


class TestDesCov:
    def test_paper_positive_example(self):
        """§4.2: s1=/*/a//*/c covers s2=/a/a/*//c/e/c/d."""
        assert des_cov(x("/*/a//*/c"), x("/a/a/*//c/e/c/d"))

    def test_paper_negative_example(self):
        """§4.2: s1=/*/a//*/c does not cover s2=/a/a/*//c/b/d."""
        assert not des_cov(x("/*/a//*/c"), x("/a/a/*//c/b/d"))

    def test_paper_wildcard_crossing_example(self):
        """§4.2 special case: s1=/a/*//*/d covers s2=/a//b/c/d."""
        assert des_cov(x("/a/*//*/d"), x("/a//b/c/d"))

    def test_segment_cannot_cross_descendant_with_literal(self):
        # */c cannot cover *//c — the gap may hold anything.
        assert not des_cov(x("a/*/c"), x("/x/a//c"))

    def test_descendant_covers_child(self):
        assert des_cov(x("/a//b"), x("/a/b"))
        assert des_cov(x("/a//b"), x("/a/x/b"))
        assert des_cov(x("/a//b"), x("/a//x/b"))

    def test_child_does_not_cover_descendant(self):
        assert not des_cov(x("/a/b"), x("/a//b"))

    def test_descendant_covers_deeper_descendant(self):
        assert des_cov(x("/a//c"), x("/a//b//c"))
        assert des_cov(x("//c"), x("/a//c"))

    def test_ordering_required(self):
        assert not des_cov(x("/a//c//b"), x("/a//b//c"))

    def test_length_precheck(self):
        assert not des_cov(x("/a/b//c"), x("/a//c"))

    def test_trailing_wildcards_cannot_extend_past_end(self):
        # Publications may end exactly where s2 ends.
        assert not des_cov(x("a/*"), x("/x/a"))
        assert not des_cov(x("/a//b/*"), x("/a//b"))

    def test_mixed_simple_and_descendant(self):
        assert covers(x("/a"), x("/a//b"))
        assert covers(x("b"), x("/a//b"))
        assert covers(x("//b"), x("/a//b"))


class TestCoveringImpliesMatchContainment:
    """Spot-check the semantic definition: s1 covers s2 means every path
    matching s2 also matches s1."""

    CASES = [
        ("/a", "/a/b", [("a", "b"), ("a", "b", "c")]),
        ("/a//d", "/a/b/c/d", [("a", "b", "c", "d"), ("a", "b", "c", "d", "e")]),
        ("b/c", "/a/b/c", [("a", "b", "c"), ("a", "b", "c", "x")]),
        ("/a/*//*/d", "/a//b/c/d", [("a", "q", "b", "c", "d"), ("a", "b", "c", "d")]),
    ]

    @pytest.mark.parametrize("s1,s2,paths", CASES)
    def test_containment(self, s1, s2, paths):
        assert covers(x(s1), x(s2))
        for path in paths:
            assert matches_path(x(s2), path), "test data must match s2"
            assert matches_path(x(s1), path)


class TestMatchesPath:
    def test_absolute_prefix(self):
        assert matches_path(x("/a/b"), ("a", "b", "c"))
        assert not matches_path(x("/b"), ("a", "b"))

    def test_relative_infix(self):
        assert matches_path(x("b/c"), ("a", "b", "c", "d"))
        assert not matches_path(x("c/b"), ("a", "b", "c"))

    def test_wildcards(self):
        assert matches_path(x("/*/b"), ("a", "b"))
        assert matches_path(x("*"), ("a",))

    def test_descendants(self):
        assert matches_path(x("/a//d"), ("a", "b", "c", "d"))
        assert not matches_path(x("/a//d"), ("a", "b", "c"))
        assert matches_path(x("//b/c"), ("a", "b", "c"))

    def test_segments_in_order_disjoint(self):
        assert matches_path(x("a//a"), ("a", "a"))
        assert not matches_path(x("a//a"), ("x", "a"))

    def test_too_long(self):
        assert not matches_path(x("/a/b/c"), ("a", "b"))
