"""Stateful fuzzing of the runtime-agnostic BrokerCore.

Hypothesis drives an arbitrary message sequence (advertise, subscribe,
unsubscribe, publish, merge sweeps, duplicates included) into one
:class:`~repro.broker.core.BrokerCore` and checks the state-machine
contract every backend relies on after every step:

* effects are *deterministic and replayable*: a twin core restored from
  the pre-step snapshot produces byte-identical canonical effects for
  the same input, and lands on the same routing fingerprint;
* effects are *well-classified*: Send targets are neighbours, Deliver
  targets are attached clients, nothing else comes out;
* the snapshot/restore round trip preserves the fingerprint.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.adverts.model import Advertisement
from repro.broker.core import (
    MERGE_SWEEP_TIMER,
    BrokerCore,
    Deliver,
    Send,
    canonical_effects,
)
from repro.broker.messages import (
    AdvertiseMsg,
    PublishMsg,
    SubscribeMsg,
    UnsubscribeMsg,
)
from repro.broker.strategies import RoutingConfig
from repro.xmldoc import Publication
from repro.xpath.ast import Axis, Step, XPathExpr

NEIGHBORS = ["n1", "n2", "n3"]
CLIENTS = ["c1", "c2"]
HOPS = NEIGHBORS + CLIENTS
NAMES = ["a", "b", "c", "*"]


@st.composite
def exprs(draw):
    n = draw(st.integers(1, 4))
    rooted = draw(st.booleans())
    steps = []
    for i in range(n):
        axis = (
            Axis.CHILD
            if (i == 0 and rooted)
            else draw(st.sampled_from([Axis.CHILD, Axis.DESCENDANT]))
        )
        steps.append(Step(axis, draw(st.sampled_from(NAMES))))
    return XPathExpr(steps=tuple(steps), rooted=rooted)


@st.composite
def adverts(draw):
    tests = draw(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=4)
    )
    return Advertisement.from_tests(tests)


def _fresh_core() -> BrokerCore:
    core = BrokerCore(
        "bX", config=RoutingConfig.with_adv_with_cov_ipm(merge_interval=5)
    )
    for neighbor in NEIGHBORS:
        core.connect(neighbor)
    for client in CLIENTS:
        core.attach_client(client)
    return core


class BrokerCoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.core = _fresh_core()
        self.adv_serial = 0

    def _step(self, message, from_hop):
        """Apply one message to the live core AND to a twin restored
        from the pre-step snapshot; their effects and resulting
        fingerprints must agree exactly."""
        before = self.core.snapshot()
        effects = self.core.on_message(message, from_hop)

        twin = BrokerCore.restore(before)
        twin_effects = twin.on_message(message, from_hop)
        assert canonical_effects(twin_effects) == canonical_effects(effects)
        assert twin.fingerprint() == self.core.fingerprint()

        for effect in effects:
            if isinstance(effect, Send):
                assert effect.destination in NEIGHBORS, effect
            elif isinstance(effect, Deliver):
                assert effect.client_id in CLIENTS, effect
        return effects

    @rule(advert=adverts(), from_hop=st.sampled_from(HOPS))
    def advertise(self, advert, from_hop):
        self.adv_serial += 1
        self._step(
            AdvertiseMsg(
                adv_id="adv%d" % self.adv_serial,
                advert=advert,
                publisher_id="p",
            ),
            from_hop,
        )

    @rule(expr=exprs(), from_hop=st.sampled_from(HOPS))
    def subscribe(self, expr, from_hop):
        self._step(SubscribeMsg(expr=expr, subscriber_id="s"), from_hop)

    @rule(expr=exprs(), from_hop=st.sampled_from(HOPS))
    def unsubscribe(self, expr, from_hop):
        self._step(UnsubscribeMsg(expr=expr), from_hop)

    @rule(
        path=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=4),
        from_hop=st.sampled_from(HOPS),
    )
    def publish(self, path, from_hop):
        self._step(
            PublishMsg(
                publication=Publication(
                    doc_id="d", path_id=0, path=tuple(path)
                ),
                publisher_id="p",
            ),
            from_hop,
        )

    @rule()
    def merge_sweep(self):
        before = self.core.snapshot()
        effects = self.core.on_timer(MERGE_SWEEP_TIMER)
        twin = BrokerCore.restore(before)
        assert canonical_effects(twin.on_timer(MERGE_SWEEP_TIMER)) \
            == canonical_effects(effects)
        assert twin.fingerprint() == self.core.fingerprint()

    @invariant()
    def snapshot_round_trip_preserves_fingerprint(self):
        assert BrokerCore.restore(self.core.snapshot()).fingerprint() \
            == self.core.fingerprint()


TestBrokerCoreMachine = BrokerCoreMachine.TestCase
TestBrokerCoreMachine.settings = settings(
    max_examples=40, stateful_step_count=25, deadline=None
)


def test_effects_are_pure_data():
    """Two fresh cores fed the same stream emit identical canonical
    effects at every step — the determinism contract backends build on."""
    stream = [
        (
            AdvertiseMsg(
                adv_id="a1",
                advert=Advertisement.from_tests(("a", "b")),
                publisher_id="p",
            ),
            "n1",
        ),
        (
            SubscribeMsg(
                expr=XPathExpr(
                    steps=(Step(Axis.CHILD, "a"),), rooted=True
                ),
                subscriber_id="s",
            ),
            "n2",
        ),
        (
            PublishMsg(
                publication=Publication(doc_id="d", path_id=0, path=("a",)),
                publisher_id="p",
            ),
            "n1",
        ),
    ]
    one, two = _fresh_core(), _fresh_core()
    for message, from_hop in stream:
        assert canonical_effects(one.on_message(message, from_hop)) \
            == canonical_effects(two.on_message(message, from_hop))
    assert one.fingerprint() == two.fingerprint()
