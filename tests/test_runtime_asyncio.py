"""The asyncio backend's concurrency contract: backpressure and
deadlock-freedom.

Queueing discipline under test (see docs/runtime.md): actor inboxes are
unbounded (senders never block on them — the deadlock-freedom
invariant), while per-link send queues and per-client delivery queues
are bounded.  A slow consumer therefore exerts real backpressure on its
producer — the queue depth stays within its capacity, the stall is
surfaced on ``runtime.backpressure.*`` — and nothing is ever dropped
unless the fault injector says so.
"""

import pytest

from repro.broker.messages import PublishMsg, SubscribeMsg
from repro.broker.strategies import RoutingConfig
from repro.obs.registry import MetricsRegistry
from repro.runtime.asyncio_backend import AsyncioRuntime
from repro.xmldoc import Publication
from repro.xpath import parse_xpath

LINK_CAPACITY = 4
DOCUMENTS = 40


def _publication(i: int) -> PublishMsg:
    return PublishMsg(
        publication=Publication(
            doc_id="doc-%d" % i, path_id=0, path=("claims", "claim", "amount")
        ),
        publisher_id="pub",
    )


@pytest.fixture
def runtime():
    registry = MetricsRegistry(enabled=True)
    rt = AsyncioRuntime(
        config=RoutingConfig.no_adv_no_cov(),
        link_capacity=LINK_CAPACITY,
        client_capacity=LINK_CAPACITY,
        metrics=registry,
    )
    rt.add_broker("b1")
    rt.add_broker("b2")
    rt.connect("b1", "b2")
    rt.start()
    rt.attach_publisher("pub", "b1")
    rt.attach_subscriber("sub", "b2")
    rt.submit("sub", SubscribeMsg(expr=parse_xpath("/claims//amount"),
                                  subscriber_id="sub"))
    rt.drain()
    yield rt
    rt.close(drain=False)


def test_slow_link_bounds_queue_and_surfaces_backpressure(runtime):
    """A slow b1→b2 link makes the publisher-side actor outrun the link
    sender.  The bounded send queue must cap the depth, count the waits,
    finish the drain (no deadlock) and deliver everything (no drops)."""
    runtime.link_delay[("b1", "b2")] = 0.002
    for i in range(DOCUMENTS):
        runtime.submit("pub", _publication(i))
    runtime.drain(timeout=30)

    depth = runtime.max_queue_depth.get(("b1", "b2"), 0)
    assert 0 < depth <= LINK_CAPACITY
    waits = runtime.metrics.counter("runtime.backpressure.waits").value
    assert waits > 0, "slow link never exerted observable backpressure"
    received = {m.publication.doc_id for m in runtime.subscribers["sub"].received}
    assert received == {"doc-%d" % i for i in range(DOCUMENTS)}


def test_slow_client_bounds_delivery_queue(runtime):
    """Same discipline on the broker→client edge."""
    runtime.client_delay["sub"] = 0.002
    for i in range(DOCUMENTS):
        runtime.submit("pub", _publication(i))
    runtime.drain(timeout=30)

    depth = runtime.max_queue_depth.get("sub", 0)
    assert 0 < depth <= LINK_CAPACITY
    received = {m.publication.doc_id for m in runtime.subscribers["sub"].received}
    assert received == {"doc-%d" % i for i in range(DOCUMENTS)}


def test_nothing_dropped_without_fault_injector(runtime):
    for i in range(DOCUMENTS):
        runtime.submit("pub", _publication(i))
    runtime.drain(timeout=30)
    assert runtime.metrics.counter("runtime.faults.dropped").value == 0
    assert len(runtime.subscribers["sub"].received) == DOCUMENTS


def test_drop_filter_drops_are_counted_and_do_not_wedge(runtime):
    dropped = []

    def drop_every_fourth(src, dst, message):
        if isinstance(message, PublishMsg) and len(dropped) % 4 == 0:
            dropped.append(message.publication.doc_id)
            return True
        return False

    runtime.drop_filter = drop_every_fourth
    runtime.submit("pub", _publication(0))
    runtime.drain(timeout=30)
    assert runtime.metrics.counter("runtime.faults.dropped").value == 1
    assert dropped == ["doc-0"]
    # The drained runtime is still live: clear the fault and publish.
    runtime.drop_filter = None
    runtime.submit("pub", _publication(1))
    runtime.drain(timeout=30)
    received = {m.publication.doc_id for m in runtime.subscribers["sub"].received}
    assert "doc-1" in received and "doc-0" not in received
