"""Observability layer: histogram math, registry behaviour, the
disabled no-op path, broker/overlay integration and the exporters."""

import json

import pytest

from repro import obs
from repro.broker.broker import Broker
from repro.broker.messages import SubscribeMsg
from repro.errors import ProtocolError, RoutingError
from repro.obs import MetricsRegistry
from repro.obs.registry import (
    GROWTH,
    MAX_BUCKETS,
    MIN_VALUE,
    Histogram,
    bucket_index,
)


@pytest.fixture(autouse=True)
def _clean_global_registry():
    """Each test starts from (and leaves behind) the library default:
    a disabled, empty global registry."""
    obs.get_registry().reset().disable()
    yield
    obs.get_registry().reset().disable()


# -- histogram quantile math ------------------------------------------------


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.quantile(0.5) is None
        assert h.mean is None

    def test_single_value_quantiles_exact(self):
        h = Histogram()
        h.record(0.25)
        for q in (0.01, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == 0.25
        assert h.mean == 0.25
        assert h.min == h.max == 0.25

    def test_known_inputs_exact_at_extremes(self):
        # Three fast observations and one slow one: the median must be
        # the fast value exactly (clamped to min), p99 the slow one
        # (clamped to max).
        h = Histogram()
        for value in (1.0, 1.0, 1.0, 100.0):
            h.record(value)
        assert h.quantile(0.50) == 1.0
        assert h.quantile(0.75) == 1.0
        assert h.quantile(0.99) == 100.0
        assert h.count == 4
        assert h.total == pytest.approx(103.0)

    def test_quantile_error_bound(self):
        h = Histogram()
        for i in range(1, 1001):
            h.record(float(i))
        # Log-bucketed bins guarantee ~GROWTH/2 relative error.
        assert h.quantile(0.5) == pytest.approx(500.0, rel=GROWTH - 1)
        assert h.quantile(0.95) == pytest.approx(950.0, rel=GROWTH - 1)
        assert h.quantile(1.0) == 1000.0

    def test_quantile_fraction_validation(self):
        h = Histogram()
        h.record(1.0)
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_sub_minimum_values_collapse_to_first_bucket(self):
        h = Histogram()
        h.record(0.0)
        h.record(-3.0)
        h.record(MIN_VALUE / 10)
        assert h.count == 3
        assert h.min == -3.0
        # Quantiles stay within the observed range.
        assert -3.0 <= h.quantile(0.5) <= h.max

    def test_overflow_bucket(self):
        h = Histogram()
        huge = MIN_VALUE * GROWTH ** (MAX_BUCKETS + 5)
        h.record(1.0)
        h.record(huge)
        assert h.overflow_count == 1
        assert bucket_index(huge) == MAX_BUCKETS
        # A quantile landing in the overflow bucket reports the max.
        assert h.quantile(1.0) == huge
        assert h.quantile(0.5) == 1.0

    def test_merge(self):
        h1, h2 = Histogram(), Histogram()
        for value in (0.001, 0.002, 0.003):
            h1.record(value)
        for value in (0.1, 0.2):
            h2.record(value)
        h2.record(MIN_VALUE * GROWTH ** (MAX_BUCKETS + 1))  # overflow
        merged = h1.merge(h2)
        assert merged is h1
        assert h1.count == 6
        assert h1.min == 0.001
        assert h1.max == MIN_VALUE * GROWTH ** (MAX_BUCKETS + 1)
        assert h1.total == pytest.approx(
            0.006 + 0.3 + MIN_VALUE * GROWTH ** (MAX_BUCKETS + 1)
        )
        assert h1.overflow_count == 1

    def test_merge_equals_direct_construction(self):
        values_a = [0.01 * i for i in range(1, 40)]
        values_b = [0.5 * i for i in range(1, 25)]
        h1, h2, direct = Histogram(), Histogram(), Histogram()
        for v in values_a:
            h1.record(v)
            direct.record(v)
        for v in values_b:
            h2.record(v)
            direct.record(v)
        h1.merge(h2)
        for q in (0.25, 0.5, 0.9, 0.95, 0.99):
            assert h1.quantile(q) == direct.quantile(q)
        assert h1.snapshot() == direct.snapshot()


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.inc("c")
        registry.set_gauge("g", 7.5)
        registry.observe("h", 0.5)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 7.5
        assert snap["histograms"]["h"]["count"] == 1

    def test_timer_records(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            pass
        stats = registry.histogram("t")
        assert stats.count == 1
        assert stats.min >= 0.0

    def test_reset(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.reset()
        assert registry.metric_names() == []

    def test_disabled_shortcuts_do_not_record(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("c")
        registry.observe("h", 1.0)
        registry.set_gauge("g", 1.0)
        assert registry.metric_names() == []

    def test_to_json_round_trips(self):
        registry = MetricsRegistry()
        registry.inc("a.b", 4)
        assert json.loads(registry.to_json())["counters"]["a.b"] == 4


# -- the disabled no-op path -------------------------------------------------


class TestDisabledNoop:
    def test_disabled_timer_is_shared_singleton(self):
        # No allocation per call: every disabled timer() is one object.
        assert obs.timer("x") is obs.timer("y")
        assert obs.timer("x") is obs.NOOP_TIMER

    def test_disabled_path_never_reads_the_clock(self, monkeypatch):
        import repro.obs.registry as registry_module

        calls = {"n": 0}
        real = registry_module.perf_counter

        def spy():
            calls["n"] += 1
            return real()

        monkeypatch.setattr(registry_module, "perf_counter", spy)
        monkeypatch.setattr(obs, "perf_counter", spy)

        @obs.timed("noop.fn")
        def fn(x):
            return x + 1

        for i in range(100):
            fn(i)
            with obs.timer("noop.block"):
                pass
        assert calls["n"] == 0
        assert obs.get_registry().metric_names() == []

        obs.enable_metrics()
        fn(1)
        assert calls["n"] == 2  # one start, one stop
        assert obs.get_registry().histogram("noop.fn").count == 1

    def test_timed_preserves_function_identity(self):
        @obs.timed("meta.fn")
        def documented(x):
            """Docs survive."""
            return x

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "Docs survive."
        assert documented.__wrapped__(3) == 3


# -- broker integration ------------------------------------------------------


class _BogusMsg:
    kind = "bogus"


class TestBrokerUnknownKind:
    def test_unknown_kind_raises_protocol_error(self):
        broker = Broker("b1")
        with pytest.raises(ProtocolError):
            broker.handle(_BogusMsg(), from_hop=None)
        # ProtocolError is a RoutingError: existing callers keep working.
        with pytest.raises(RoutingError):
            broker.handle(_BogusMsg(), from_hop=None)
        assert broker.stats["unknown"] == 2

    def test_unknown_kind_is_counted_when_enabled(self):
        obs.enable_metrics(reset=True)
        broker = Broker("b1")
        with pytest.raises(ProtocolError):
            broker.handle(_BogusMsg(), from_hop=None)
        snap = obs.get_registry().snapshot()
        assert snap["counters"]["broker.unknown_kind"] == 1

    def test_known_kinds_timed_per_kind(self):
        obs.enable_metrics(reset=True)
        broker = Broker("b1")
        broker.attach_client("alice")
        from repro.xpath.parser import parse_xpath

        broker.handle(SubscribeMsg(expr=parse_xpath("/a/b")), "alice")
        snap = obs.get_registry().snapshot()
        assert snap["histograms"]["broker.handle.subscribe"]["count"] == 1


# -- overlay integration -----------------------------------------------------


class TestOverlaySnapshot:
    def _run_small_overlay(self):
        from repro.network.overlay import Overlay

        overlay = Overlay.binary_tree(2)
        subscriber = overlay.attach_subscriber("alice", "b2")
        publisher = overlay.attach_publisher("pub", "b3")
        from repro.dtd.samples import psd_dtd

        publisher.advertise_dtd(psd_dtd())
        overlay.run()
        subscriber.subscribe("/ProteinDatabase/ProteinEntry/header/uid")
        overlay.run()
        from repro.workloads.document_generator import generate_documents

        for doc in generate_documents(psd_dtd(), 2, seed=1, target_bytes=512):
            publisher.publish_document(doc)
        overlay.run()
        return overlay

    def test_unified_snapshot(self):
        obs.enable_metrics(reset=True)
        overlay = self._run_small_overlay()
        assert overlay.metrics is obs.get_registry()
        snap = overlay.metrics_snapshot()
        # Traffic, delay and timing in one document.
        assert snap["counters"]["network.messages"] > 0
        assert snap["histograms"]["network.dispatch"]["count"] > 0
        assert snap["histograms"]["broker.handle.advertise"]["count"] > 0
        assert snap["network"]["network_traffic"] == (
            overlay.stats.network_traffic
        )
        if overlay.stats.deliveries:
            delay = snap["histograms"]["network.delivery_delay"]
            assert delay["count"] == len(overlay.stats.deliveries)
            assert delay["p50"] is not None

    def test_disabled_overlay_still_counts_stats(self):
        overlay = self._run_small_overlay()
        assert overlay.stats.network_traffic > 0
        snap = overlay.metrics_snapshot()
        assert snap["network"]["network_traffic"] > 0
        assert snap["histograms"] == {}
        assert "network.messages" not in snap["counters"]

    def test_tracer_feeds_registry(self):
        from repro.network.trace import Tracer

        obs.enable_metrics(reset=True)
        overlay = None
        from repro.network.overlay import Overlay

        overlay = Overlay.binary_tree(2)
        tracer = overlay.attach_tracer(Tracer(limit=1))
        assert tracer.registry is overlay.metrics
        publisher = overlay.attach_publisher("pub", "b2")
        from repro.dtd.samples import psd_dtd

        publisher.advertise_dtd(psd_dtd())
        overlay.run()
        snap = obs.get_registry().snapshot()
        assert snap["counters"]["network.trace.records"] == 1
        assert snap["counters"]["network.trace.dropped"] > 0


# -- exporters ---------------------------------------------------------------


class TestExport:
    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("x", 5)
        registry.observe("y", 0.25)
        path = tmp_path / "metrics.json"
        obs.write_json(registry, str(path), meta={"run": "test"})
        payload = json.loads(path.read_text())
        assert payload["meta"]["run"] == "test"
        assert payload["counters"]["x"] == 5
        assert payload["histograms"]["y"]["count"] == 1

    def test_line_protocol(self):
        registry = MetricsRegistry()
        registry.inc("msgs", 3)
        registry.set_gauge("depth", 2.5)
        registry.observe("lat", 0.5)
        lines = obs.to_line_protocol(registry).splitlines()
        assert "msgs,type=counter value=3i" in lines
        assert "depth,type=gauge value=2.5" in lines
        lat = [line for line in lines if line.startswith("lat,")]
        assert len(lat) == 1
        assert "count=1i" in lat[0]
        assert "p50=" in lat[0]

    def test_empty_histogram_line(self):
        registry = MetricsRegistry()
        registry.histogram("empty")
        lines = obs.to_line_protocol(registry)
        assert "empty,type=histogram count=0" in lines
