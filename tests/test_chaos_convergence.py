"""Chaos battery: the 7-broker overlay converges under injected faults.

Each scenario runs the Tables-2-style workload (advertise, subscribe,
publish) on the paper's 7-broker binary tree with one class of fault
injected — drop-only, duplicate-only, reorder-only, a timed partition
and a mid-run broker crash/restart — and must reach exactly the
fault-free ground truth: the same per-subscriber delivered publication
sets and the same routing table sizes.  Reliable links plus idempotent
handlers mask the faults; only the transport-level counters betray
that anything went wrong.
"""

import pytest

from repro.broker.strategies import RoutingConfig
from repro.dtd.samples import psd_dtd
from repro.merging.engine import PathUniverse
from repro.network import ConstantLatency, Overlay
from repro.network.faults import CrashEvent, FaultPlan, LinkFaults, Partition
from repro.obs import MetricsRegistry
from repro.workloads.datasets import psd_queries
from repro.workloads.document_generator import generate_documents

XPES_PER_LEAF = 12
DOCUMENTS = 5


def run_workload(plan=None, metrics=None, attach=None):
    """Advertise, subscribe and publish on a 7-broker tree; return the
    finished overlay.  ``attach`` is called with the overlay before any
    traffic is submitted (e.g. to register an audit oracle)."""
    dtd = psd_dtd()
    overlay = Overlay.binary_tree(
        3,
        config=RoutingConfig.by_name("with-Adv-with-Cov"),
        latency_model=ConstantLatency(0.001),
        universe=PathUniverse.from_dtd(dtd, max_depth=10),
        processing_scale=0.0,
        metrics=metrics,
        faults=plan,
    )
    if attach is not None:
        attach(overlay)
    publisher = overlay.attach_publisher("pub", "b1")
    publisher.advertise_dtd(dtd)
    overlay.run()
    for index, leaf in enumerate(overlay.leaf_brokers()):
        subscriber = overlay.attach_subscriber("sub%d" % index, leaf)
        for expr in psd_queries(XPES_PER_LEAF, seed=100 + index).exprs:
            subscriber.subscribe(expr)
    overlay.run()
    for document in generate_documents(dtd, DOCUMENTS, seed=3, target_bytes=800):
        publisher.publish_document(document)
    overlay.run()
    return overlay


def delivered_publications(overlay):
    """Per-subscriber set of delivered (doc_id, path_id) pairs."""
    return {
        sub_id: {
            (msg.publication.doc_id, msg.publication.path_id)
            for msg in subscriber.received
        }
        for sub_id, subscriber in overlay.subscribers.items()
    }


@pytest.fixture(scope="module")
def ground_truth():
    overlay = run_workload()
    return delivered_publications(overlay), overlay.routing_table_sizes()


SCENARIOS = {
    "drop-only": FaultPlan(
        seed=11, default=LinkFaults(drop=0.2), rto=0.01
    ),
    "duplicate-only": FaultPlan(
        seed=12, default=LinkFaults(duplicate=0.2), rto=0.01
    ),
    "reorder-only": FaultPlan(
        seed=13,
        default=LinkFaults(reorder=0.3, reorder_window=0.01),
        rto=0.05,
    ),
    "partition-heals": FaultPlan(
        seed=14, partitions=(Partition("b1", "b3", 0.0, 0.5),), rto=0.01
    ),
    "crash-restart": FaultPlan(
        seed=15,
        default=LinkFaults(drop=0.1),
        crashes=(CrashEvent("b2", at=0.002, restart_at=0.2),),
        rto=0.01,
    ),
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_converges_to_fault_free_ground_truth(name, ground_truth):
    plan = SCENARIOS[name]
    overlay = run_workload(plan)
    baseline_delivered, baseline_tables = ground_truth
    assert delivered_publications(overlay) == baseline_delivered
    assert overlay.routing_table_sizes() == baseline_tables
    assert overlay.transport.in_flight() == 0
    stats = overlay.transport.stats
    if plan.default.drop or plan.partitions:
        assert stats["dropped"] > 0 or stats["partitioned"] > 0
        assert stats["retransmits"] > 0
    if plan.default.duplicate:
        assert stats["duplicated"] > 0 and stats["dup_suppressed"] > 0
    if plan.default.reorder:
        assert stats["reordered"] > 0
    if plan.crashes:
        assert stats["crashes"] == 1 and stats["recoveries"] == 1


@pytest.mark.parametrize("name", ["fault-free"] + sorted(SCENARIOS))
def test_audit_oracle_reports_clean(name, audit_oracle):
    """The ground-truth audit passes every invariant over the chaos
    matrix (see repro.audit): zero soundness violations, zero
    unexplained false positives."""
    oracles = []
    plan = SCENARIOS.get(name)
    run_workload(plan, attach=lambda o: oracles.append(audit_oracle(o)))
    report = oracles[0].check()
    assert report.ok, report.summary()


def test_audit_counters_surface_in_the_metrics_registry(audit_oracle):
    registry = MetricsRegistry(enabled=True)
    oracles = []
    run_workload(
        SCENARIOS["drop-only"],
        metrics=registry,
        attach=lambda o: oracles.append(audit_oracle(o)),
    )
    report = oracles[0].check()
    assert report.ok, report.summary()
    assert registry.counter("audit.checks").value == 1
    assert registry.counter("audit.violations.soundness").value == 0
    assert registry.counter("audit.violations.unexplained_fp").value == 0


def test_fault_events_surface_in_the_metrics_registry():
    """ISSUE acceptance: a chaos run reports nonzero
    ``network.faults.dropped`` and ``broker.retransmits``."""
    registry = MetricsRegistry(enabled=True)
    overlay = run_workload(SCENARIOS["drop-only"], metrics=registry)
    assert registry.counter("network.faults.dropped").value > 0
    assert registry.counter("broker.retransmits").value > 0
    snapshot = overlay.metrics_snapshot()
    assert snapshot["transport"]["dropped"] > 0
    assert snapshot["faults"]["seed"] == 11


def test_crash_without_state_diverges_only_in_tables(ground_truth):
    """A stateless restart (persistence disabled) is the degraded
    behaviour the recovery path exists to avoid: the restarted broker
    forgets routing state it had not re-learnt, so convergence to the
    ground-truth tables is no longer guaranteed — but the run still
    terminates with nothing in flight."""
    plan = FaultPlan(
        seed=16,
        crashes=(CrashEvent("b2", at=0.002, restart_at=0.2, with_state=False),),
        rto=0.01,
    )
    overlay = run_workload(plan)
    assert overlay.transport.stats["crashes"] == 1
    assert overlay.transport.stats["recoveries"] == 1
    assert overlay.transport.in_flight() == 0


def test_same_seed_reproduces_the_chaos_run_exactly():
    plan = SCENARIOS["drop-only"]
    first = run_workload(plan)
    second = run_workload(plan)
    assert delivered_publications(first) == delivered_publications(second)
    assert dict(first.transport.stats) == dict(second.transport.stats)
