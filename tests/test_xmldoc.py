"""Unit tests for the XML document model and path decomposition."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmldoc import Publication, XMLDocument

SAMPLE = """
<root>
  <a><b>text</b><c/></a>
  <a><b>more</b></a>
  <d/>
</root>
"""


class TestParsing:
    def test_parse_and_paths(self):
        doc = XMLDocument.parse(SAMPLE, doc_id="d1")
        assert doc.paths() == [
            ("root", "a", "b"),
            ("root", "a", "c"),
            ("root", "a", "b"),
            ("root", "d"),
        ]

    def test_invalid_xml_rejected(self):
        with pytest.raises(XMLSyntaxError):
            XMLDocument.parse("<root><a></root>", doc_id="bad")

    def test_depth(self):
        doc = XMLDocument.parse(SAMPLE, doc_id="d1")
        assert doc.depth() == 3

    def test_size_bytes_counts_source(self):
        doc = XMLDocument.parse(SAMPLE, doc_id="d1")
        assert doc.size_bytes() == len(SAMPLE.encode("utf-8"))


class TestPublications:
    def test_publication_annotation(self):
        doc = XMLDocument.parse(SAMPLE, doc_id="d1")
        pubs = doc.publications()
        assert all(isinstance(p, Publication) for p in pubs)
        assert [p.path_id for p in pubs] == [0, 1, 2, 3]
        assert all(p.doc_id == "d1" for p in pubs)

    def test_publication_str(self):
        pub = Publication(doc_id="d", path_id=2, path=("a", "b"))
        assert str(pub) == "d#2:/a/b"


class TestFromPaths:
    def test_round_trip(self):
        paths = [("r", "a", "x"), ("r", "a", "y"), ("r", "b")]
        doc = XMLDocument.from_paths(paths, doc_id="d2")
        assert doc.paths() == paths

    def test_shares_prefixes(self):
        doc = XMLDocument.from_paths(
            [("r", "a", "x"), ("r", "a", "y")], doc_id="d3"
        )
        # One <a> element shared by both leaves.
        assert len(doc.root) == 1

    def test_repeated_siblings_stay_distinct(self):
        doc = XMLDocument.from_paths(
            [("r", "a", "x"), ("r", "b"), ("r", "a", "y")], doc_id="d4"
        )
        assert ("r", "a", "x") in doc.paths()
        assert ("r", "a", "y") in doc.paths()

    def test_text_filler_controls_size(self):
        small = XMLDocument.from_paths([("r", "a")], doc_id="s")
        big = XMLDocument.from_paths(
            [("r", "a")], doc_id="b", text_filler="x" * 500
        )
        assert big.size_bytes() > small.size_bytes() + 400

    def test_requires_shared_root(self):
        with pytest.raises(ValueError):
            XMLDocument.from_paths([("r", "a"), ("q", "b")], doc_id="bad")

    def test_requires_paths(self):
        with pytest.raises(ValueError):
            XMLDocument.from_paths([], doc_id="bad")

    def test_serialize_parses_back(self):
        paths = [("r", "a", "x"), ("r", "b")]
        doc = XMLDocument.from_paths(paths, doc_id="d5", text_filler="t")
        again = XMLDocument.parse(doc.serialize(), doc_id="d5b")
        assert again.paths() == paths
