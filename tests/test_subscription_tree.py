"""Unit tests for the subscription tree (paper §4.1)."""


from repro.covering.subscription_tree import SubscriptionTree
from repro.xpath import parse_xpath


def x(text):
    return parse_xpath(text)


def build(*texts):
    tree = SubscriptionTree()
    outcomes = [tree.insert(x(t), t) for t in texts]
    return tree, outcomes


class TestInsertCases:
    def test_first_insert_is_top_level(self):
        tree, outcomes = build("/a/b")
        assert outcomes[0].is_new
        assert not outcomes[0].covered
        assert tree.top_level_size() == 1

    def test_case1_new_sibling(self):
        tree, outcomes = build("/a/b", "/c/d")
        assert not outcomes[1].covered
        assert tree.top_level_size() == 2

    def test_case3_descends_into_covering_node(self):
        tree, outcomes = build("/a", "/a/b")
        assert outcomes[1].covered
        assert tree.top_level_size() == 1
        node = tree.node_of(x("/a/b"))
        assert node.parent.expr == x("/a")

    def test_case2_captures_covered_siblings(self):
        tree, outcomes = build("/a/b", "/a/c", "/a")
        last = outcomes[2]
        assert not last.covered
        assert set(last.displaced) == {x("/a/b"), x("/a/c")}
        assert tree.top_level_size() == 1
        assert len(tree) == 3

    def test_deep_chain(self):
        tree, _ = build("/a", "/a/b", "/a/b/c", "/a/b/c/d")
        assert tree.top_level_size() == 1
        node = tree.node_of(x("/a/b/c/d"))
        assert node.depth() == 4

    def test_duplicate_insert_merges_keys(self):
        tree = SubscriptionTree()
        tree.insert(x("/a"), "k1")
        outcome = tree.insert(x("/a"), "k2")
        assert not outcome.is_new
        assert outcome.covered
        assert tree.node_of(x("/a")).keys == {"k1", "k2"}
        assert len(tree) == 1

    def test_paper_figure4_shape(self):
        """The tree of Figure 4 (subset): /a over /a/b, /a/c; /*/b over
        /*/b//c; relative d/a top-level."""
        tree, _ = build(
            "/a", "/a/b", "/a/b/a", "/a/c", "/*/b", "/*/b//c", "d/a", "/a/*/d"
        )
        tree.validate()
        assert x("/a") in tree
        a_node = tree.node_of(x("/a"))
        child_exprs = {child.expr for child in a_node.children}
        assert x("/a/b") in child_exprs
        # Relative expressions never sit under absolute ones.
        assert tree.node_of(x("d/a")).depth() == 1

    def test_covering_invariant_random_order(self):
        texts = ["/a/b/c", "/a", "/a/*", "/a/b", "/x//y", "/x/q/y", "b/c"]
        import itertools

        for perm in itertools.permutations(texts, 4):
            tree = SubscriptionTree()
            for t in perm:
                tree.insert(x(t), t)
            tree.validate()


class TestRemoval:
    def test_remove_leaf(self):
        tree, _ = build("/a", "/a/b")
        outcome = tree.remove(x("/a/b"), "/a/b")
        assert outcome.removed
        assert not outcome.was_top_level
        assert len(tree) == 1

    def test_remove_top_level_promotes_children(self):
        tree, _ = build("/a", "/a/b", "/a/c")
        outcome = tree.remove(x("/a"), "/a")
        assert outcome.removed
        assert outcome.was_top_level
        assert set(outcome.promoted) == {x("/a/b"), x("/a/c")}
        assert tree.top_level_size() == 2

    def test_remove_with_remaining_keys_keeps_node(self):
        tree = SubscriptionTree()
        tree.insert(x("/a"), "k1")
        tree.insert(x("/a"), "k2")
        outcome = tree.remove(x("/a"), "k1")
        assert not outcome.removed
        assert x("/a") in tree

    def test_remove_absent_is_noop(self):
        tree, _ = build("/a")
        outcome = tree.remove(x("/zzz"), "any")
        assert not outcome.removed


class TestMatching:
    def test_match_collects_all_matching_nodes(self):
        tree, _ = build("/a", "/a/b", "/a/c")
        matched = {node.expr for node in tree.match(("a", "b"))}
        assert matched == {x("/a"), x("/a/b")}

    def test_match_keys_unions(self):
        tree = SubscriptionTree()
        tree.insert(x("/a"), "k1")
        tree.insert(x("/a/b"), "k2")
        assert tree.match_keys(("a", "b")) == {"k1", "k2"}
        assert tree.match_keys(("a", "z")) == {"k1"}

    def test_pruning_never_loses_matches(self):
        """Tree matching equals flat matching on random-ish data."""
        texts = [
            "/a", "/a/b", "/a/b/c", "/a/*", "/a/*/c", "b/c", "//c",
            "/x/y", "/x//z", "*",
        ]
        tree = SubscriptionTree()
        for t in texts:
            tree.insert(x(t), t)
        from repro.covering.pathmatch import matches_path

        paths = [
            ("a",), ("a", "b"), ("a", "b", "c"), ("a", "q", "c"),
            ("x", "y"), ("x", "q", "z"), ("q", "b", "c"), ("z",),
        ]
        for path in paths:
            expected = {t for t in texts if matches_path(x(t), path)}
            actual = {str(node.expr) for node in tree.match(path)}
            assert actual == {str(x(t)) for t in expected}, path

    def test_matches_any(self):
        tree, _ = build("/a/b")
        assert tree.matches_any(("a", "b", "c"))
        assert not tree.matches_any(("b",))


class TestSuperPointers:
    def test_eager_super_pointers_record_cross_branch_covering(self):
        tree = SubscriptionTree(eager_super_pointers=True)
        tree.insert(x("/a"), 1)
        tree.insert(x("/a/b"), 2)  # child of /a
        tree.insert(x("/*/b"), 3)  # sibling of /a, covers /a/b
        node = tree.node_of(x("/*/b"))
        covered = tree.node_of(x("/a/b"))
        assert id(covered) in node.super_pointers

    def test_super_pointer_cleanup_on_removal(self):
        tree = SubscriptionTree(eager_super_pointers=True)
        tree.insert(x("/a"), 1)
        tree.insert(x("/a/b"), 2)
        tree.insert(x("/*/b"), 3)
        covered = tree.node_of(x("/a/b"))
        tree.remove(x("/a/b"), 2)
        node = tree.node_of(x("/*/b"))
        assert id(covered) not in node.super_pointers


class TestDotExport:
    def test_dot_contains_nodes_and_edges(self):
        tree, _ = build("/a", "/a/b", "/c")
        dot = tree.to_dot()
        assert dot.startswith("digraph")
        assert '"ROOT"' in dot
        assert "/a/b" in dot
        assert "->" in dot
        assert dot.rstrip().endswith("}")

    def test_dot_truncates_long_labels(self):
        expr = "/" + "/".join(["verylongname%d" % i for i in range(6)])
        tree, _ = build(expr)
        dot = tree.to_dot(max_label=20)
        assert "..." in dot

    def test_dot_renders_super_pointers(self):
        tree = SubscriptionTree(eager_super_pointers=True)
        tree.insert(x("/a"), 1)
        tree.insert(x("/a/b"), 2)
        tree.insert(x("/*/b"), 3)
        assert "style=dashed" in tree.to_dot()
