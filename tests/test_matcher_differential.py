"""Differential test: every matching engine agrees on every workload.

The repo carries four matching engines with one contract —
``add(expr, key)`` / ``remove(expr, key)`` / ``match(path, attributes)
-> set of keys`` — implemented four very different ways (linear scan,
covering-tree pruning, counting predicate index, YFilter-style NFA).
Hypothesis drives DTD-derived XPE workloads with interleaved add and
remove operations through all four side by side; any disagreement on
any publication path is a bug in at least one engine.
"""

from hypothesis import given, settings, strategies as st

from repro.dtd.paths import enumerate_paths
from repro.dtd.samples import nitf_dtd, psd_dtd
from repro.matching import (
    LinearMatcher,
    PredicateIndexMatcher,
    TreeMatcher,
    YFilterMatcher,
)
from repro.workloads.xpath_generator import XPathWorkloadParams, generate_queries
from repro.xpath import parse_xpath

ENGINES = (LinearMatcher, TreeMatcher, PredicateIndexMatcher, YFilterMatcher)

DTD = psd_dtd()
PATHS = enumerate_paths(DTD, max_depth=10)
QUERY_POOL = generate_queries(
    DTD,
    80,
    params=XPathWorkloadParams(
        wildcard_prob=0.3,
        descendant_prob=0.3,
        relative_prob=0.3,
        wildcard_min_position=0,
    ),
    seed=1234,
)


def run_differential(ops, paths, pool, attributes=None):
    """Apply one interleaved add/remove schedule to every engine and
    assert identical match sets on every probe path."""
    engines = [cls() for cls in ENGINES]
    active = set()
    for add, index in ops:
        expr, key = pool[index]
        if add and index not in active:
            active.add(index)
            for engine in engines:
                engine.add(expr, key)
        elif not add and index in active:
            active.discard(index)
            for engine in engines:
                engine.remove(expr, key)
    reference = engines[0]
    for path in paths:
        expected = reference.match(path, attributes)
        for engine in engines[1:]:
            got = engine.match(path, attributes)
            assert got == expected, (
                "%s disagrees with %s on %r: %r != %r (active: %s)"
                % (
                    type(engine).__name__,
                    type(reference).__name__,
                    path,
                    sorted(map(str, got)),
                    sorted(map(str, expected)),
                    sorted(str(pool[i][0]) for i in active),
                )
            )


STRUCTURAL_POOL = [
    (expr, "q%d" % i) for i, expr in enumerate(QUERY_POOL)
]


@settings(max_examples=200)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, len(STRUCTURAL_POOL) - 1)),
        min_size=1,
        max_size=40,
    ),
    path_indices=st.lists(
        st.integers(0, len(PATHS) - 1), min_size=1, max_size=8
    ),
)
def test_engines_agree_on_dtd_workloads(ops, path_indices):
    run_differential(
        ops, [PATHS[i] for i in path_indices], STRUCTURAL_POOL
    )


# -- predicate workloads ---------------------------------------------------

PREDICATE_POOL = [
    (parse_xpath(text), text)
    for text in (
        "/claims/claim[@urgent]",
        "/claims/claim[@lang='de']",
        "/claims/claim[@lang!='de']",
        "//claim[@urgent]/amount",
        "//amount",
        "/claims//amount[@currency='EUR']",
        "claim/amount",
        "/claims/*[@lang='en']",
        "//claim[@lang='de'][@urgent]",
        "/claims/claim/amount",
    )
]

PREDICATE_PATHS = (
    ("claims", "claim", "amount"),
    ("claims", "claim"),
    ("claims", "claim", "policy"),
    ("archive", "claims", "claim", "amount"),
)


@settings(max_examples=200)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, len(PREDICATE_POOL) - 1)),
        min_size=1,
        max_size=20,
    ),
    path_index=st.integers(0, len(PREDICATE_PATHS) - 1),
    langs=st.lists(
        st.sampled_from(["de", "en", None]), min_size=4, max_size=4
    ),
    urgent=st.booleans(),
    currency=st.sampled_from(["EUR", "USD", None]),
)
def test_engines_agree_on_attribute_predicates(
    ops, path_index, langs, urgent, currency
):
    path = PREDICATE_PATHS[path_index]
    attributes = []
    for element, lang in zip(path, langs):
        attrs = {}
        if lang is not None:
            attrs["lang"] = lang
        if element == "claim" and urgent:
            attrs["urgent"] = "1"
        if element == "amount" and currency is not None:
            attrs["currency"] = currency
        attributes.append(attrs)
    run_differential(ops, [path], PREDICATE_POOL, attributes=attributes)


def test_second_dtd_smoke():
    """The differential harness holds on a second, recursive DTD."""
    dtd = nitf_dtd()
    paths = enumerate_paths(dtd, max_depth=8)[:40]
    pool = [
        (expr, "n%d" % i)
        for i, expr in enumerate(
            generate_queries(
                dtd,
                40,
                params=XPathWorkloadParams(
                    wildcard_prob=0.25, descendant_prob=0.35
                ),
                seed=77,
            )
        )
    ]
    ops = [(True, i) for i in range(len(pool))] + [
        (False, i) for i in range(0, len(pool), 3)
    ]
    run_differential(ops, paths, pool)
