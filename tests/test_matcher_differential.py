"""Differential test: every matching engine agrees on every workload.

The repo carries five matching engines with one contract —
``add(expr, key)`` / ``remove(expr, key)`` / ``match(path, attributes)
-> set of keys`` — implemented five very different ways (linear scan,
covering-tree pruning, counting predicate index, YFilter-style NFA,
lazy-DFA shared automaton).  Hypothesis drives DTD-derived XPE
workloads with interleaved add and remove operations through all five
side by side; any disagreement on any publication path is a bug in at
least one engine.
"""

from hypothesis import given, settings, strategies as st

from repro.covering.pathmatch import (
    matches_path,
    matches_path_reference,
    path_matcher,
)
from repro.dtd.paths import enumerate_paths
from repro.dtd.samples import nitf_dtd, psd_dtd
from repro.matching import (
    LinearMatcher,
    PredicateIndexMatcher,
    SharedAutomatonMatcher,
    TreeMatcher,
    YFilterMatcher,
)
from repro.workloads.xpath_generator import XPathWorkloadParams, generate_queries
from repro.xpath import parse_xpath
from repro.xpath.compiled import compile_xpe, set_compiled_enabled

ENGINES = (
    LinearMatcher,
    TreeMatcher,
    PredicateIndexMatcher,
    YFilterMatcher,
    SharedAutomatonMatcher,
)

DTD = psd_dtd()
PATHS = enumerate_paths(DTD, max_depth=10)
QUERY_POOL = generate_queries(
    DTD,
    80,
    params=XPathWorkloadParams(
        wildcard_prob=0.3,
        descendant_prob=0.3,
        relative_prob=0.3,
        wildcard_min_position=0,
    ),
    seed=1234,
)


def run_differential(ops, paths, pool, attributes=None):
    """Apply one interleaved add/remove schedule to every engine and
    assert identical match sets on every probe path."""
    engines = [cls() for cls in ENGINES]
    active = set()
    for add, index in ops:
        expr, key = pool[index]
        if add and index not in active:
            active.add(index)
            for engine in engines:
                engine.add(expr, key)
        elif not add and index in active:
            active.discard(index)
            for engine in engines:
                engine.remove(expr, key)
    reference = engines[0]
    for path in paths:
        expected = reference.match(path, attributes)
        for engine in engines[1:]:
            got = engine.match(path, attributes)
            assert got == expected, (
                "%s disagrees with %s on %r: %r != %r (active: %s)"
                % (
                    type(engine).__name__,
                    type(reference).__name__,
                    path,
                    sorted(map(str, got)),
                    sorted(map(str, expected)),
                    sorted(str(pool[i][0]) for i in active),
                )
            )


STRUCTURAL_POOL = [
    (expr, "q%d" % i) for i, expr in enumerate(QUERY_POOL)
]


@settings(max_examples=200)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, len(STRUCTURAL_POOL) - 1)),
        min_size=1,
        max_size=40,
    ),
    path_indices=st.lists(
        st.integers(0, len(PATHS) - 1), min_size=1, max_size=8
    ),
)
def test_engines_agree_on_dtd_workloads(ops, path_indices):
    run_differential(
        ops, [PATHS[i] for i in path_indices], STRUCTURAL_POOL
    )


# -- predicate workloads ---------------------------------------------------

PREDICATE_POOL = [
    (parse_xpath(text), text)
    for text in (
        "/claims/claim[@urgent]",
        "/claims/claim[@lang='de']",
        "/claims/claim[@lang!='de']",
        "//claim[@urgent]/amount",
        "//amount",
        "/claims//amount[@currency='EUR']",
        "claim/amount",
        "/claims/*[@lang='en']",
        "//claim[@lang='de'][@urgent]",
        "/claims/claim/amount",
    )
]

PREDICATE_PATHS = (
    ("claims", "claim", "amount"),
    ("claims", "claim"),
    ("claims", "claim", "policy"),
    ("archive", "claims", "claim", "amount"),
)


@settings(max_examples=200)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, len(PREDICATE_POOL) - 1)),
        min_size=1,
        max_size=20,
    ),
    path_index=st.integers(0, len(PREDICATE_PATHS) - 1),
    langs=st.lists(
        st.sampled_from(["de", "en", None]), min_size=4, max_size=4
    ),
    urgent=st.booleans(),
    currency=st.sampled_from(["EUR", "USD", None]),
)
def test_engines_agree_on_attribute_predicates(
    ops, path_index, langs, urgent, currency
):
    path = PREDICATE_PATHS[path_index]
    attributes = []
    for element, lang in zip(path, langs):
        attrs = {}
        if lang is not None:
            attrs["lang"] = lang
        if element == "claim" and urgent:
            attrs["urgent"] = "1"
        if element == "amount" and currency is not None:
            attrs["currency"] = currency
        attributes.append(attrs)
    run_differential(ops, [path], PREDICATE_POOL, attributes=attributes)


def test_second_dtd_smoke():
    """The differential harness holds on a second, recursive DTD."""
    dtd = nitf_dtd()
    paths = enumerate_paths(dtd, max_depth=8)[:40]
    pool = [
        (expr, "n%d" % i)
        for i, expr in enumerate(
            generate_queries(
                dtd,
                40,
                params=XPathWorkloadParams(
                    wildcard_prob=0.25, descendant_prob=0.35
                ),
                seed=77,
            )
        )
    ]
    ops = [(True, i) for i in range(len(pool))] + [
        (False, i) for i in range(0, len(pool), 3)
    ]
    run_differential(ops, paths, pool)


def test_engines_agree_under_reference_interpreter():
    """The four-engine differential holds with the compiled fast path
    disabled (``REPRO_COMPILED=0`` mode) — every engine falls back to
    the reference interpreter and still agrees."""
    set_compiled_enabled(False)
    try:
        test_second_dtd_smoke()
    finally:
        set_compiled_enabled(True)


# -- compiled XPE vs. reference interpreter --------------------------------

_ELEMENT_NAMES = ("a", "b", "c", "d")
_ATTR_CHOICES = (
    None,
    {},
    {"k": "1"},
    {"k": "2"},
    {"j": "2"},
    {"k": "1", "j": "2"},
)

_step = st.tuples(
    st.sampled_from(("/", "//", "")),  # "" = relative start (first step only)
    st.sampled_from(_ELEMENT_NAMES + ("*",)),
    st.sampled_from(("", "[@k]", "[@k='1']", "[@k!='1']", "[@j='2']")),
)


@st.composite
def xpe_texts(draw):
    steps = draw(st.lists(_step, min_size=1, max_size=5))
    parts = []
    for index, (sep, test, predicate) in enumerate(steps):
        if index == 0:
            sep = sep or ""  # "a/..." is a relative expression
        else:
            sep = sep or "/"
        parts.append(sep + test + predicate)
    return "".join(parts)


@st.composite
def publication_paths(draw):
    # Path elements include a literal "*" — a legal (if perverse)
    # element name that only a wildcard test may match.
    elements = draw(
        st.lists(
            st.sampled_from(_ELEMENT_NAMES + ("*", "e")),
            min_size=0,
            max_size=7,
        )
    )
    attributes = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.sampled_from(_ATTR_CHOICES[1:]),
                min_size=len(elements),
                max_size=len(elements),
            ).map(tuple),
        )
    )
    return tuple(elements), attributes


@settings(max_examples=400)
@given(text=xpe_texts(), probe=publication_paths())
def test_compiled_matches_equals_reference(text, probe):
    """`CompiledXPE.matches` ≡ the reference interpreter for random
    XPEs and paths, attribute predicates included."""
    path, attributes = probe
    expr = parse_xpath(text)
    expected = matches_path_reference(expr, path, attributes)
    assert compile_xpe(expr).matches(path, attributes) == expected
    # The bulk-matcher variant (precomputed path string) agrees too.
    assert path_matcher(path, attributes)(expr) == expected
    # And the public dispatch agrees in both flag modes.
    assert matches_path(expr, path, attributes) == expected
    set_compiled_enabled(False)
    try:
        assert matches_path(expr, path, attributes) == expected
    finally:
        set_compiled_enabled(True)


#: Deterministic `//`/`*` edge cases: wildcard-only segments, a
#: relative infix that must land at the very end of the path, gaps of
#: length zero, anchored-vs-relative boundary alignment, and paths
#: shorter than the expression.
_EDGE_EXPRS = (
    "/a",
    "a",
    "*",
    "*/*",
    "//*",
    "/*/*",
    "//*/*",
    "/a//*",
    "a//*",
    "//a//b",
    "/a//a//a",
    "b/c",
    "//b/c",
    "a/*/c",
    "//c",
    "/a/b/c",
    "*//c",
    "//*//c",
)

_EDGE_PATHS = (
    (),
    ("a",),
    ("b",),
    ("*",),
    ("a", "b"),
    ("a", "b", "c"),
    ("a", "a", "a"),
    ("a", "x", "b", "c"),
    ("b", "c"),
    ("c", "b"),
    ("a", "b", "c", "d"),
    ("x", "a", "b", "c"),
    ("a", "a"),
)


def test_compiled_edge_cases_match_reference():
    for text in _EDGE_EXPRS:
        expr = parse_xpath(text)
        compiled = compile_xpe(expr)
        for path in _EDGE_PATHS:
            expected = matches_path_reference(expr, path)
            assert compiled.matches(path) == expected, (
                "%r vs %r: compiled %r, reference %r"
                % (text, path, compiled.matches(path), expected)
            )
