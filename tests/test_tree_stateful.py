"""Stateful property testing of the subscription tree.

Hypothesis drives random insert/remove sequences against a
:class:`SubscriptionTree` while a trivial model (a dict of expr -> key
sets) tracks ground truth.  After every step the tree must:

* contain exactly the model's expressions,
* satisfy the covering invariant (each node covers its subtree),
* match every probe path exactly like a linear scan of the model,
* report top-level expressions that are mutually incomparable and
  collectively cover the whole table.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.covering.algorithms import covers
from repro.covering.pathmatch import matches_path
from repro.covering.subscription_tree import SubscriptionTree
from repro.xpath.ast import Axis, Step, XPathExpr

NAMES = ["a", "b", "c", "*"]
PATH_NAMES = ["a", "b", "c", "d"]


@st.composite
def exprs(draw):
    n = draw(st.integers(1, 4))
    rooted = draw(st.booleans())
    steps = []
    for i in range(n):
        axis = (
            Axis.CHILD
            if (i == 0 and rooted)
            else draw(st.sampled_from([Axis.CHILD, Axis.DESCENDANT]))
        )
        steps.append(Step(axis, draw(st.sampled_from(NAMES))))
    return XPathExpr(steps=tuple(steps), rooted=rooted)


PROBE_PATHS = [
    ("a",),
    ("a", "b"),
    ("a", "b", "c"),
    ("b", "c", "d"),
    ("c", "a", "c", "a"),
    ("d", "d"),
]


class SubscriptionTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = SubscriptionTree()
        self.model = {}

    @rule(expr=exprs(), key=st.integers(0, 3))
    def insert(self, expr, key):
        outcome = self.tree.insert(expr, key)
        was_present = expr in self.model
        self.model.setdefault(expr, set()).add(key)
        assert outcome.is_new != was_present

    @rule(expr=exprs(), key=st.integers(0, 3))
    def remove(self, expr, key):
        outcome = self.tree.remove(expr, key)
        keys = self.model.get(expr)
        if keys is None:
            assert not outcome.removed
            return
        keys.discard(key)
        if not keys:
            del self.model[expr]
            # removal only reports True when the last key vanished
            assert outcome.removed == (expr not in self.model)

    @invariant()
    def same_expressions(self):
        assert set(self.tree.exprs()) == set(self.model)

    @invariant()
    def covering_invariant(self):
        self.tree.validate()

    @invariant()
    def matches_like_linear_scan(self):
        for path in PROBE_PATHS:
            expected = set()
            for expr, keys in self.model.items():
                if matches_path(expr, path):
                    expected |= keys
            assert self.tree.match_keys(path) == expected, path

    @invariant()
    def top_level_is_maximal_antichain(self):
        top = self.tree.top_level_exprs()
        for i, first in enumerate(top):
            for second in top[i + 1:]:
                assert not covers(first, second)
                assert not covers(second, first)
        # Every stored expression is covered by some top-level one.
        for expr in self.model:
            assert any(covers(t, expr) for t in top)


TestSubscriptionTreeStateful = SubscriptionTreeMachine.TestCase
TestSubscriptionTreeStateful.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
