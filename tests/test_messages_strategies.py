"""Unit tests for messages, strategies and the error hierarchy."""

import pytest

from repro.adverts import Advertisement
from repro.broker.messages import (
    AdvertiseMsg,
    PublishMsg,
    SubscribeMsg,
    UnadvertiseMsg,
)
from repro.broker.strategies import MergingMode, RoutingConfig
from repro.errors import (
    DTDSyntaxError,
    ReproError,
    RoutingError,
    TopologyError,
    WorkloadError,
    XMLSyntaxError,
    XPathSyntaxError,
)
from repro.xmldoc import Publication
from repro.xpath import parse_xpath


class TestMessages:
    def test_unique_monotone_ids(self):
        a = UnadvertiseMsg(adv_id="x")
        b = UnadvertiseMsg(adv_id="x")
        assert a.msg_id != b.msg_id
        assert b.msg_id > a.msg_id

    def test_kind_names(self):
        assert UnadvertiseMsg(adv_id="x").kind == "UnadvertiseMsg"
        assert (
            SubscribeMsg(expr=parse_xpath("/a")).kind == "SubscribeMsg"
        )

    def test_messages_are_immutable(self):
        msg = SubscribeMsg(expr=parse_xpath("/a"))
        with pytest.raises(Exception):
            msg.expr = parse_xpath("/b")

    def test_publish_defaults(self):
        msg = PublishMsg(
            publication=Publication(doc_id="d", path_id=0, path=("a",))
        )
        assert msg.doc_size_bytes == 0
        assert msg.issued_at == 0.0

    def test_advertise_carries_advert(self):
        advert = Advertisement.from_tests(("a", "b"))
        msg = AdvertiseMsg(adv_id="a1", advert=advert, publisher_id="p")
        assert msg.advert is advert


class TestRoutingConfig:
    def test_all_names_resolve(self):
        for name in RoutingConfig.ALL_NAMES:
            config = RoutingConfig.by_name(name)
            assert config.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            RoutingConfig.by_name("with-Magic")

    def test_merging_without_covering_is_allowed(self):
        # Non-covering brokers sweep their flat table as one sibling
        # group (MergingEngine.merge_flat); the combination is legal.
        config = RoutingConfig(covering=False, merging=MergingMode.PERFECT)
        assert config.name == "with-Adv-no-CovPM"
        config = RoutingConfig(covering=False, merging=MergingMode.IMPERFECT)
        assert config.name == "with-Adv-no-CovIPM"

    def test_merge_interval_validation(self):
        with pytest.raises(ValueError):
            RoutingConfig(merge_interval=0)

    def test_full_is_imperfect_merging(self):
        config = RoutingConfig.full()
        assert config.merging is MergingMode.IMPERFECT
        assert config.advertisements and config.covering

    def test_frozen(self):
        config = RoutingConfig.full()
        with pytest.raises(Exception):
            config.covering = False

    def test_name_round_trip_with_merging(self):
        assert (
            RoutingConfig.with_adv_with_cov_pm().name
            == "with-Adv-with-CovPM"
        )
        assert (
            RoutingConfig.no_adv_with_cov().name == "no-Adv-with-Cov"
        )


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            XPathSyntaxError("src", 0, "reason"),
            DTDSyntaxError("reason"),
            XMLSyntaxError("reason"),
            RoutingError("reason"),
            TopologyError("reason"),
            WorkloadError("reason"),
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_xpath_error_carries_position(self):
        error = XPathSyntaxError("/a/&", 3, "bad char")
        assert error.position == 3
        assert "/a/&" in str(error)

    def test_dtd_error_line_formatting(self):
        assert "(line 4)" in str(DTDSyntaxError("bad", line=4))
        assert "line" not in str(DTDSyntaxError("bad"))
