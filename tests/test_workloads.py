"""Unit tests for the workload generators."""

import random

import pytest

from repro.covering.pathmatch import matches_path
from repro.covering.algorithms import covers
from repro.dtd import nitf_dtd, psd_dtd, parse_dtd
from repro.errors import WorkloadError
from repro.workloads import (
    XPathWorkloadParams,
    covering_rate,
    covering_workload,
    generate_documents,
    generate_queries,
    pump_path,
    sample_dtd_path,
    set_a,
    set_b,
)
from repro.workloads.datasets import psd_queries


class TestSampleDtdPath:
    def test_paths_are_legal(self):
        dtd = psd_dtd()
        graph = dtd.child_map()
        rng = random.Random(1)
        for _ in range(50):
            path = sample_dtd_path(dtd, rng)
            assert path[0] == dtd.root
            for parent, child in zip(path, path[1:]):
                assert child in graph[parent]

    def test_respects_depth_bound(self):
        rng = random.Random(2)
        for _ in range(50):
            assert len(sample_dtd_path(nitf_dtd(), rng, max_depth=6)) <= 6

    def test_occurrence_discipline(self):
        rng = random.Random(3)
        for _ in range(50):
            path = sample_dtd_path(nitf_dtd(), rng)
            for name in set(path):
                assert path.count(name) <= 2

    def test_ends_at_leaf_capable_element(self):
        dtd = psd_dtd()
        rng = random.Random(4)
        for _ in range(50):
            path = sample_dtd_path(dtd, rng)
            assert dtd.declaration(path[-1]).can_be_leaf() or not dtd.child_map()[path[-1]]


class TestPumpPath:
    def test_pump_inserts_cycle_unit(self):
        rng = random.Random(5)
        path = ("r", "x", "y", "x", "z")
        pumped = {pump_path(path, rng, max_depth=9, pump_prob=1.0) for _ in range(50)}
        assert path in pumped  # zero extra repetitions possible
        assert any(len(p) > len(path) for p in pumped)
        for p in pumped:
            assert len(p) <= 9

    def test_non_recursive_path_unchanged(self):
        rng = random.Random(6)
        path = ("r", "a", "b")
        assert pump_path(path, rng, pump_prob=1.0) == path

    def test_pump_prob_zero_is_identity(self):
        rng = random.Random(7)
        path = ("r", "x", "x")
        assert pump_path(path, rng, pump_prob=0.0) == path


class TestQueryGenerator:
    def test_distinct_by_default(self):
        queries = generate_queries(psd_dtd(), 100, seed=1)
        assert len(set(queries)) == 100

    def test_deterministic_for_seed(self):
        a = generate_queries(psd_dtd(), 50, seed=9)
        b = generate_queries(psd_dtd(), 50, seed=9)
        assert a == b

    def test_respects_max_length(self):
        params = XPathWorkloadParams(max_length=4)
        for query in generate_queries(psd_dtd(), 50, params=params, seed=2):
            assert len(query) <= 4

    def test_queries_match_some_dtd_path(self):
        """By construction each query should match at least one legal
        (possibly pumped) path of the DTD."""
        dtd = psd_dtd()
        from repro.dtd.paths import enumerate_paths

        universe = enumerate_paths(dtd, max_depth=12)
        queries = generate_queries(dtd, 60, seed=3)
        for query in queries:
            assert any(matches_path(query, path) for path in universe), query

    def test_bad_params_rejected(self):
        with pytest.raises(WorkloadError):
            XPathWorkloadParams(wildcard_prob=1.5)
        with pytest.raises(WorkloadError):
            XPathWorkloadParams(min_length=5, max_length=3)

    def test_impossible_distinct_count_raises(self):
        tiny = parse_dtd("<!ELEMENT r (a)><!ELEMENT a EMPTY>")
        params = XPathWorkloadParams(
            wildcard_prob=0.0, descendant_prob=0.0, relative_prob=0.0
        )
        with pytest.raises(WorkloadError):
            generate_queries(tiny, 50, params=params, seed=1)


class TestDocumentGenerator:
    def test_size_targeting(self):
        docs = generate_documents(psd_dtd(), 5, seed=1, target_bytes=4096)
        for doc in docs:
            assert 2048 <= doc.size_bytes() <= 8192

    def test_depth_bound(self):
        docs = generate_documents(nitf_dtd(), 5, seed=2, max_depth=10)
        for doc in docs:
            assert doc.depth() <= 10

    def test_paths_conform_to_dtd(self):
        dtd = psd_dtd()
        graph = dtd.child_map()
        for doc in generate_documents(dtd, 3, seed=3):
            for path in doc.paths():
                assert path[0] == dtd.root
                for parent, child in zip(path, path[1:]):
                    assert child in graph[parent]

    def test_publications_covered_by_advertisements(self):
        """System invariant: every generated publication intersects the
        publisher's advertisement set (otherwise routing breaks)."""
        from repro.adverts import generate_advertisements
        from repro.adverts.nfa import expr_and_advert_nfa
        from repro.xpath import XPathExpr

        dtd = nitf_dtd()
        adverts = generate_advertisements(dtd)
        for doc in generate_documents(dtd, 3, seed=4):
            for path in doc.paths():
                expr = XPathExpr.from_tests(path)
                assert any(
                    expr_and_advert_nfa(advert, expr) for advert in adverts
                ), path

    def test_distinct_doc_ids(self):
        docs = generate_documents(psd_dtd(), 4, seed=5, doc_prefix="t")
        assert len({d.doc_id for d in docs}) == 4


class TestDatasets:
    def test_set_a_covering_rate(self):
        dataset = set_a(400)
        rate = covering_rate(list(dataset.exprs))
        assert 0.85 <= rate <= 0.95

    def test_set_b_covering_rate(self):
        dataset = set_b(400)
        rate = covering_rate(list(dataset.exprs))
        assert 0.45 <= rate <= 0.60

    def test_sets_are_distinct_queries(self):
        dataset = set_a(300)
        assert len(set(dataset.exprs)) == 300

    def test_companions_covered_by_construction(self):
        """Every non-base query must be covered by some query in the
        set (the construction guarantees its base covers it)."""
        dataset = set_b(200)
        exprs = list(dataset.exprs)
        from repro.covering.subscription_tree import SubscriptionTree

        tree = SubscriptionTree()
        for i, expr in enumerate(exprs):
            tree.insert(expr, i)
        # Measured covered fraction equals the target by construction.
        assert tree.top_level_size() == round(len(exprs) * 0.5)

    def test_psd_queries_all_absolute_or_relative_parse(self):
        dataset = psd_queries(100, seed=6)
        assert len(dataset.exprs) == 100

    def test_bad_target_rate(self):
        with pytest.raises(WorkloadError):
            covering_workload(psd_dtd(), 10, target_rate=1.0)
