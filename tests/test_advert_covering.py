"""Tests for advertisement covering (paper §2.2)."""


from repro.adverts import Advertisement, simple_recursive
from repro.adverts.covering import AdvertCoverSet, advert_covers
from repro.adverts.model import Lit, Rep
from repro.broker import AdvertiseMsg, Broker, RoutingConfig, UnadvertiseMsg


def adv(*tests):
    return Advertisement.from_tests(tests)


class TestAdvertCovers:
    def test_reflexive(self):
        assert advert_covers(adv("a", "b"), adv("a", "b"))

    def test_wildcard_covers_concrete(self):
        assert advert_covers(adv("a", "*"), adv("a", "b"))
        assert not advert_covers(adv("a", "b"), adv("a", "*"))

    def test_equal_length_required(self):
        # Unlike subscriptions, a shorter advert covers nothing longer:
        # P(a) holds exact-length paths.
        assert not advert_covers(adv("a"), adv("a", "b"))
        assert not advert_covers(adv("a", "b"), adv("a"))

    def test_distinct_names_do_not_cover(self):
        assert not advert_covers(adv("a", "b"), adv("a", "c"))

    def test_recursive_covers_its_expansions(self):
        rec = simple_recursive(("a",), ("b",), ("c",))
        assert advert_covers(rec, adv("a", "b", "c"))
        assert advert_covers(rec, adv("a", "b", "b", "b", "c"))
        assert not advert_covers(rec, adv("a", "c"))

    def test_expansion_does_not_cover_recursive(self):
        rec = simple_recursive(("a",), ("b",), ("c",))
        assert not advert_covers(adv("a", "b", "c"), rec)

    def test_recursive_self_containment(self):
        rec = simple_recursive(("a",), ("b",), ("c",))
        assert advert_covers(rec, rec)

    def test_wider_recursive_covers_narrower(self):
        wide = simple_recursive(("a",), ("*",), ("c",))
        narrow = simple_recursive(("a",), ("b",), ("c",))
        assert advert_covers(wide, narrow)
        assert not advert_covers(narrow, wide)

    def test_embedded_recursive_contains_inner_unrollings(self):
        outer = Advertisement(
            (Lit(("r",)), Rep((Lit(("a",)), Rep((Lit(("b",)),)))), Lit(("z",)))
        )
        assert advert_covers(outer, adv("r", "a", "b", "z"))
        assert advert_covers(outer, adv("r", "a", "b", "b", "a", "b", "z"))
        assert not advert_covers(outer, adv("r", "a", "z"))


class TestAdvertCoverSet:
    def test_same_direction_suppression(self):
        cover_set = AdvertCoverSet()
        assert cover_set.add("a1", adv("x", "*"), "n1")
        assert not cover_set.add("a2", adv("x", "y"), "n1")
        assert cover_set.is_covered("a2")
        assert cover_set.maximal_count() == 1

    def test_cross_direction_never_suppresses(self):
        cover_set = AdvertCoverSet()
        assert cover_set.add("a1", adv("x", "*"), "n1")
        assert cover_set.add("a2", adv("x", "y"), "n2")
        assert cover_set.maximal_count() == 2

    def test_removal_promotes_covered(self):
        cover_set = AdvertCoverSet()
        cover_set.add("a1", adv("x", "*"), "n1")
        cover_set.add("a2", adv("x", "y"), "n1")
        promoted = cover_set.remove("a1")
        assert promoted == ["a2"]
        assert not cover_set.is_covered("a2")

    def test_removal_keeps_transitively_covered(self):
        cover_set = AdvertCoverSet()
        cover_set.add("a1", adv("*", "*"), "n1")
        cover_set.add("a2", adv("x", "*"), "n1")  # covered by a1
        cover_set.add("a3", adv("x", "y"), "n1")  # covered by a1
        promoted = cover_set.remove("a1")
        # a2 becomes maximal and now covers a3.
        assert "a2" in promoted
        assert "a3" not in promoted or not cover_set.is_covered("a3")

    def test_remove_absent(self):
        assert AdvertCoverSet().remove("ghost") == []


class TestBrokerIntegration:
    def make_broker(self):
        broker = Broker(
            "b1",
            config=RoutingConfig(
                advertisements=True, covering=True, advert_covering=True
            ),
        )
        broker.connect("n1")
        broker.connect("n2")
        return broker

    def test_covered_advert_not_flooded(self):
        broker = self.make_broker()
        out1 = broker.handle(
            AdvertiseMsg(adv_id="a1", advert=adv("x", "*")), "n1"
        )
        assert {d for d, _ in out1} == {"n2"}
        out2 = broker.handle(
            AdvertiseMsg(adv_id="a2", advert=adv("x", "y")), "n1"
        )
        assert not any(isinstance(m, AdvertiseMsg) for _, m in out2)

    def test_different_direction_still_flooded(self):
        broker = self.make_broker()
        broker.handle(AdvertiseMsg(adv_id="a1", advert=adv("x", "*")), "n1")
        out = broker.handle(
            AdvertiseMsg(adv_id="a2", advert=adv("x", "y")), "n2"
        )
        assert ("n1", out[0][1])[0] == "n1"

    def test_unadvertise_refloods_promoted(self):
        broker = self.make_broker()
        broker.handle(AdvertiseMsg(adv_id="a1", advert=adv("x", "*")), "n1")
        broker.handle(AdvertiseMsg(adv_id="a2", advert=adv("x", "y")), "n1")
        out = broker.handle(UnadvertiseMsg(adv_id="a1"), "n1")
        advertises = [
            (d, m) for d, m in out if isinstance(m, AdvertiseMsg)
        ]
        assert advertises, "covered advert must be re-flooded on promotion"
        assert all(m.adv_id == "a2" for _, m in advertises)
        assert {d for d, _ in advertises} == {"n2"}

    def test_subscriptions_still_routed_to_covered_origin(self):
        """Routing correctness: the covered advertisement's SRT entry
        still attracts subscriptions."""
        from repro.broker import SubscribeMsg
        from repro.xpath import parse_xpath

        broker = self.make_broker()
        broker.attach_client("c1")
        broker.handle(AdvertiseMsg(adv_id="a1", advert=adv("x", "*")), "n1")
        broker.handle(AdvertiseMsg(adv_id="a2", advert=adv("x", "y")), "n1")
        out = broker.handle(
            SubscribeMsg(expr=parse_xpath("/x/y"), subscriber_id="c1"), "c1"
        )
        assert [(d, m.expr) for d, m in out] == [("n1", parse_xpath("/x/y"))]
