"""Backend-equivalence battery: one workload, three execution models.

The same seeded workload (PSD advertisements, per-leaf Set A query
subsets, generated documents) runs on the paper's 7-broker tree through

* the discrete-event simulator,
* the asyncio concurrent runtime, and
* the one-OS-process-per-broker socket deployment,

and every observation that should not depend on the execution model is
compared: the delivered ``(client, doc_id, path)`` sets, the per-broker
routing-table fingerprints at quiescence, the audit oracle verdict and
causal trace completeness.  See docs/runtime.md for why the reference
run pins FIFO links (constant latency, no processing charge) and why
the subscription phase is serialized.
"""

import pytest

from repro.audit.oracle import AuditOracle
from repro.runtime.base import binary_tree_topology, tree_leaves
from repro.runtime.workload import (
    ADAPTERS,
    AsyncioAdapter,
    MultiprocessAdapter,
    SimulatorAdapter,
    WorkloadSpec,
    build_plan,
    run_workload,
)

SPEC = WorkloadSpec(levels=3, queries_per_leaf=4, documents=4, seed=7)


@pytest.fixture(scope="module")
def plan():
    return build_plan(SPEC)


@pytest.fixture(scope="module")
def results(plan):
    adapters = {
        "simulator": SimulatorAdapter(tracing=True),
        "asyncio": AsyncioAdapter(tracing=True),
        "multiprocess": MultiprocessAdapter(),
    }
    return {
        name: run_workload(adapter, SPEC, plan, auditor=AuditOracle())
        for name, adapter in adapters.items()
    }


def test_all_backends_present(results):
    assert set(results) == set(ADAPTERS)


def test_deliveries_are_nonempty_and_identical(results):
    reference = results["simulator"].delivered
    assert reference, "workload delivered nothing — not a useful comparison"
    for name, result in results.items():
        assert result.delivered == reference, name


def test_routing_fingerprints_identical_at_quiescence(results):
    reference = results["simulator"].fingerprints
    assert len(reference) == 7
    for name, result in results.items():
        diverged = [
            broker_id
            for broker_id in reference
            if result.fingerprints.get(broker_id) != reference[broker_id]
        ]
        assert diverged == [], (name, diverged)


def test_audit_oracle_clean_on_every_backend(results):
    for name, result in results.items():
        assert result.audit_problems == [], name


def test_traces_causally_complete(results):
    # The simulator and asyncio runtime verify full TraceRecorder trees;
    # the multiprocess deployment verifies per-process hop logs against
    # the overlay tree paths (a parent cannot read a child's recorder).
    for name, result in results.items():
        assert result.trace_problems == [], name


def test_sharded_engine_equivalent_on_every_backend():
    """The acceptance battery for ``matching_engine="sharded"``: the
    same workload matched through the root-sharded engine delivers the
    identical set on all three backends (with the asyncio backend's
    probe pool and the per-process multiprocess pools engaged), keeps
    all seven routing fingerprints identical to the plain-engine
    simulator reference, and stays audit-clean."""
    spec = WorkloadSpec(
        levels=3,
        queries_per_leaf=4,
        documents=4,
        seed=7,
        matching_engine="sharded",
        shard_count=4,
    )
    sharded_plan = build_plan(spec)
    reference = run_workload(SimulatorAdapter(), SPEC, build_plan(SPEC))
    results = {
        name: run_workload(
            adapter_cls(), spec, sharded_plan, auditor=AuditOracle()
        )
        for name, adapter_cls in (
            ("simulator", SimulatorAdapter),
            ("asyncio", AsyncioAdapter),
            ("multiprocess", MultiprocessAdapter),
        )
    }
    assert reference.delivered
    # Fingerprints digest the config (engine name included), so the
    # cross-backend comparison is among the sharded runs; the delivered
    # sets additionally match the plain-engine reference.
    sharded_reference = results["simulator"]
    for name, result in results.items():
        assert result.delivered == reference.delivered, name
        assert result.audit_problems == [], name
        diverged = [
            broker_id
            for broker_id in sharded_reference.fingerprints
            if result.fingerprints.get(broker_id)
            != sharded_reference.fingerprints[broker_id]
        ]
        assert diverged == [], (name, diverged)


def test_views_equivalent_on_every_backend():
    """Edge materialized views (docs/views.md) on all three backends:
    view-served deliveries are byte-identical to the core route, so the
    delivered sets match the views-off simulator reference exactly, the
    audit oracle (which classifies view_served/replayed deliveries)
    stays clean, and causal traces stay complete."""
    spec = WorkloadSpec(
        levels=3,
        queries_per_leaf=4,
        documents=4,
        seed=7,
        views=True,
        view_hot_threshold=1,
    )
    views_plan = build_plan(spec)
    reference = run_workload(SimulatorAdapter(), SPEC, build_plan(SPEC))
    results = {
        name: run_workload(adapter, spec, views_plan, auditor=AuditOracle())
        for name, adapter in (
            ("simulator", SimulatorAdapter(tracing=True)),
            ("asyncio", AsyncioAdapter(tracing=True)),
            ("multiprocess", MultiprocessAdapter()),
        )
    }
    assert reference.delivered
    for name, result in results.items():
        assert result.delivered == reference.delivered, name
        assert result.audit_problems == [], name
        assert result.trace_problems == [], name


def test_unserialized_subscriptions_still_deliver_identically(plan):
    """Covering tables are arrival-order-dependent (racing subscriptions
    from different leaves at a shared ancestor resolve differently), but
    the *delivered* sets never are.  Without the serialized subscription
    phase, fingerprints are out of contract — deliveries are not."""
    spec = WorkloadSpec(
        levels=3,
        queries_per_leaf=4,
        documents=4,
        seed=7,
        serialize_subscriptions=False,
    )
    reference = run_workload(SimulatorAdapter(), spec)
    concurrent = run_workload(AsyncioAdapter(), spec)
    assert concurrent.delivered == reference.delivered


def test_binary_tree_topology_matches_overlay_naming():
    broker_ids, links = binary_tree_topology(3)
    assert broker_ids == ["b%d" % i for i in range(1, 8)]
    assert ("b1", "b2") in links and ("b3", "b7") in links
    assert len(links) == 6
    assert tree_leaves(3) == ["b4", "b5", "b6", "b7"]


def test_workload_plan_is_deterministic():
    a, b = build_plan(SPEC), build_plan(SPEC)
    assert [str(e) for leaf in a.subscriptions for e in a.subscriptions[leaf]] \
        == [str(e) for leaf in b.subscriptions for e in b.subscriptions[leaf]]
    assert [d.doc_id for d in a.documents] == [d.doc_id for d in b.documents]
    assert a.broker_ids == b.broker_ids and a.links == b.links
