"""Additional property-based tests across subsystems.

* merging rules always produce coverers of their inputs,
* advertisement covering is sound against sampled words,
* document round-trips (paths -> XML -> paths),
* parser round-trips on randomly assembled expressions,
* NFA matcher agrees with direct matching on sampled advert words.
"""

from hypothesis import given, settings, strategies as st

from repro.adverts.covering import advert_covers
from repro.adverts.model import Advertisement, Lit, Rep
from repro.adverts.nfa import expr_and_advert_nfa
from repro.covering.algorithms import covers
from repro.covering.pathmatch import matches_path
from repro.merging.rules import merge_pair
from repro.xmldoc import XMLDocument
from repro.xpath import parse_xpath
from repro.xpath.ast import Axis, Step, XPathExpr

NAMES = st.sampled_from(["a", "b", "c", "*"])
CONCRETE = st.sampled_from(["a", "b", "c"])


@st.composite
def exprs(draw, max_steps=5):
    n = draw(st.integers(1, max_steps))
    rooted = draw(st.booleans())
    steps = []
    for i in range(n):
        axis = (
            Axis.CHILD
            if (i == 0 and rooted)
            else draw(st.sampled_from([Axis.CHILD, Axis.DESCENDANT]))
        )
        steps.append(Step(axis, draw(NAMES)))
    return XPathExpr(steps=tuple(steps), rooted=rooted)


@st.composite
def adverts(draw, depth=0):
    nodes = []
    for _ in range(draw(st.integers(1, 2))):
        if depth < 2 and draw(st.booleans()):
            nodes.append(Rep(tuple(draw(adverts(depth=depth + 1)).nodes)))
        else:
            nodes.append(
                Lit(tuple(draw(st.lists(CONCRETE, min_size=1, max_size=2))))
            )
    return Advertisement(tuple(nodes))


class TestMergingProperties:
    @settings(max_examples=400, deadline=None)
    @given(s1=exprs(), s2=exprs())
    def test_merger_covers_both_inputs(self, s1, s2):
        merger = merge_pair(s1, s2)
        if merger is None:
            return
        assert covers(merger, s1), (merger, s1)
        assert covers(merger, s2), (merger, s2)

    @settings(max_examples=200, deadline=None)
    @given(s1=exprs(), s2=exprs())
    def test_merge_is_symmetric_under_rule_one(self, s1, s2):
        from repro.merging.rules import merge_one_difference

        first = merge_one_difference([s1, s2])
        second = merge_one_difference([s2, s1])
        assert first == second


class TestAdvertCoveringSoundness:
    @settings(max_examples=200, deadline=None)
    @given(a1=adverts(), a2=adverts())
    def test_covering_claim_holds_on_sampled_words(self, a1, a2):
        if not advert_covers(a1, a2):
            return
        # Every word of a2 (up to a modest bound) must be a word of a1 —
        # checked via the exact NFA on an equivalent absolute XPE of the
        # word's exact length... a word w is in P(a1) iff the absolute
        # expression /w1/../wn of the same length intersects a1 AND a1
        # admits a word of that length; matching the expression ensures
        # a1 has an overlapping word of length >= n, and concreteness
        # pins it exactly when lengths agree.
        for word in a2.words_up_to(8):
            expr = XPathExpr.from_tests(word)
            assert expr_and_advert_nfa(a1, expr), (a1, a2, word)

    @settings(max_examples=200, deadline=None)
    @given(advert=adverts())
    def test_advert_covering_reflexive(self, advert):
        assert advert_covers(advert, advert)


class TestDocumentRoundTrips:
    @settings(max_examples=150, deadline=None)
    @given(
        suffixes=st.lists(
            st.lists(CONCRETE, min_size=1, max_size=4),
            min_size=1,
            max_size=6,
            unique_by=tuple,
        )
    )
    def test_paths_survive_document_construction(self, suffixes):
        paths = sorted({("root",) + tuple(s) for s in suffixes})
        # Drop paths that are prefixes of other paths — they cannot be
        # leaves of the same document tree.
        paths = [
            p
            for p in paths
            if not any(
                q != p and q[: len(p)] == p for q in paths
            )
        ]
        doc = XMLDocument.from_paths(paths, doc_id="d")
        assert sorted(doc.paths()) == sorted(paths)
        reparsed = XMLDocument.parse(doc.serialize(), doc_id="d2")
        assert sorted(reparsed.paths()) == sorted(paths)


class TestParserRoundTrips:
    @settings(max_examples=300, deadline=None)
    @given(expr=exprs())
    def test_str_parse_identity(self, expr):
        assert parse_xpath(str(expr)) == expr


class TestNfaAgainstDirectMatching:
    @settings(max_examples=200, deadline=None)
    @given(advert=adverts(), expr=exprs(max_steps=4))
    def test_nfa_positive_implies_witness_or_prefix(self, advert, expr):
        """When the NFA claims intersection, some word (bounded) must
        match — or, for absolute expressions, have the expression as a
        matching prefix of a longer word (witnessed by prefixes())."""
        if not expr_and_advert_nfa(advert, expr):
            return
        words = advert.words_up_to(16)
        if any(matches_path(expr, word) for word in words):
            return
        assert expr.is_absolute
        prefixes = advert.prefixes(len(expr))
        assert any(
            matches_path(expr.with_rooted(True), prefix)
            for prefix in prefixes
        ), (advert, expr)
