"""Stateful fuzzing of a single broker.

Hypothesis drives an arbitrary message sequence (advertise, subscribe,
unsubscribe, publish, unadvertise, duplicates included) into one broker
and checks structural invariants after every step:

* the broker never raises and never emits to an unknown destination,
* a message is never echoed back to its sender,
* forwarded records only ever reference neighbours,
* with covering, the subscription tree invariant holds throughout.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.adverts.model import Advertisement
from repro.broker.broker import Broker
from repro.broker.messages import (
    AdvertiseMsg,
    PublishMsg,
    SubscribeMsg,
    UnadvertiseMsg,
    UnsubscribeMsg,
)
from repro.broker.strategies import RoutingConfig
from repro.xmldoc import Publication
from repro.xpath.ast import Axis, Step, XPathExpr

NEIGHBORS = ["n1", "n2", "n3"]
CLIENTS = ["c1", "c2"]
HOPS = NEIGHBORS + CLIENTS
NAMES = ["a", "b", "c", "*"]


@st.composite
def exprs(draw):
    n = draw(st.integers(1, 4))
    rooted = draw(st.booleans())
    steps = []
    for i in range(n):
        axis = (
            Axis.CHILD
            if (i == 0 and rooted)
            else draw(st.sampled_from([Axis.CHILD, Axis.DESCENDANT]))
        )
        steps.append(Step(axis, draw(st.sampled_from(NAMES))))
    return XPathExpr(steps=tuple(steps), rooted=rooted)


@st.composite
def adverts(draw):
    tests = draw(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=4)
    )
    return Advertisement.from_tests(tests)


class BrokerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.broker = Broker(
            "bX", config=RoutingConfig.with_adv_with_cov_ipm()
        )
        for neighbor in NEIGHBORS:
            self.broker.connect(neighbor)
        for client in CLIENTS:
            self.broker.attach_client(client)
        self.adv_ids = []

    def _dispatch(self, message, from_hop):
        out = self.broker.handle(message, from_hop)
        known = set(NEIGHBORS) | set(CLIENTS)
        for destination, out_msg in out:
            assert destination in known, destination
            # A message must never bounce straight back to its sender.
            # Different-kind responses toward the sender are legitimate
            # (e.g. subscriptions replayed toward a new advertisement).
            if type(out_msg) is type(message):
                assert destination != from_hop, (
                    "echoed %s back to its sender" % out_msg.kind
                )
        return out

    @rule(advert=adverts(), hop=st.sampled_from(HOPS), data=st.data())
    def advertise(self, advert, hop, data):
        adv_id = "adv%d" % data.draw(st.integers(0, 5))
        self.adv_ids.append(adv_id)
        self._dispatch(
            AdvertiseMsg(adv_id=adv_id, advert=advert, publisher_id="p"),
            hop,
        )

    @rule(data=st.data(), hop=st.sampled_from(HOPS))
    def unadvertise(self, data, hop):
        if not self.adv_ids:
            return
        adv_id = data.draw(st.sampled_from(self.adv_ids))
        self._dispatch(UnadvertiseMsg(adv_id=adv_id), hop)

    @rule(expr=exprs(), hop=st.sampled_from(HOPS))
    def subscribe(self, expr, hop):
        self._dispatch(SubscribeMsg(expr=expr, subscriber_id=str(hop)), hop)

    @rule(expr=exprs(), hop=st.sampled_from(HOPS))
    def unsubscribe(self, expr, hop):
        self._dispatch(
            UnsubscribeMsg(expr=expr, subscriber_id=str(hop)), hop
        )

    @rule(
        path=st.lists(
            st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=5
        ),
        hop=st.sampled_from(HOPS),
    )
    def publish(self, path, hop):
        self._dispatch(
            PublishMsg(
                publication=Publication(
                    doc_id="d", path_id=0, path=tuple(path)
                ),
                publisher_id="p",
            ),
            hop,
        )

    @invariant()
    def tree_invariant(self):
        self.broker.tree.validate()

    @invariant()
    def forwarded_only_to_neighbors(self):
        for expr in self.broker.forwarded.exprs():
            assert self.broker.forwarded.neighbors_for(expr) <= set(
                NEIGHBORS
            )


TestBrokerStateful = BrokerMachine.TestCase
TestBrokerStateful.settings = settings(
    max_examples=50, stateful_step_count=25, deadline=None
)
