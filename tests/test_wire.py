"""Unit + property tests for the wire format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adverts.model import Advertisement, Lit, Rep, simple_recursive
from repro.broker.messages import (
    AdvertiseMsg,
    PublishMsg,
    SubscribeMsg,
    UnadvertiseMsg,
    UnsubscribeMsg,
)
from repro.network.trace import describe_message
from repro.network.wire import (
    WireError,
    advert_from_obj,
    decode,
    decode_frame,
    encode,
    encode_ack_frame,
    encode_data_frame,
)
from repro.xmldoc import Publication
from repro.xpath import parse_xpath


class TestRoundTrips:
    def test_subscribe(self):
        msg = SubscribeMsg(expr=parse_xpath("/a/*//b"), subscriber_id="s1")
        decoded = decode(encode(msg))
        assert decoded.expr == msg.expr
        assert decoded.subscriber_id == "s1"

    def test_unsubscribe(self):
        msg = UnsubscribeMsg(expr=parse_xpath("d/a"), subscriber_id="s2")
        decoded = decode(encode(msg))
        assert decoded.expr == msg.expr

    def test_advertise_non_recursive(self):
        msg = AdvertiseMsg(
            adv_id="a1",
            advert=Advertisement.from_tests(("x", "y")),
            publisher_id="p",
        )
        decoded = decode(encode(msg))
        assert decoded.adv_id == "a1"
        assert decoded.advert == msg.advert

    def test_advertise_recursive(self):
        advert = simple_recursive(("a",), ("b", "c"), ("d",))
        decoded = decode(encode(AdvertiseMsg(adv_id="a2", advert=advert)))
        assert decoded.advert == advert
        assert str(decoded.advert) == "/a(/b/c)+/d"

    def test_advertise_embedded_recursive(self):
        advert = Advertisement(
            (Lit(("r",)), Rep((Lit(("a",)), Rep((Lit(("b",)),)))), Lit(("z",)))
        )
        decoded = decode(encode(AdvertiseMsg(adv_id="a3", advert=advert)))
        assert decoded.advert == advert

    def test_unadvertise(self):
        decoded = decode(encode(UnadvertiseMsg(adv_id="gone")))
        assert decoded.adv_id == "gone"

    def test_publish(self):
        msg = PublishMsg(
            publication=Publication(doc_id="d9", path_id=3, path=("a", "b")),
            publisher_id="p",
            doc_size_bytes=2048,
            issued_at=1.25,
        )
        decoded = decode(encode(msg))
        assert decoded.publication == msg.publication
        assert decoded.doc_size_bytes == 2048
        assert decoded.issued_at == 1.25

    def test_encoding_is_newline_framed(self):
        data = encode(UnadvertiseMsg(adv_id="x"))
        assert data.endswith(b"\n")
        assert b"\n" not in data[:-1]


class TestErrors:
    def test_bad_json(self):
        with pytest.raises(WireError):
            decode(b"{nope")

    def test_non_object(self):
        with pytest.raises(WireError):
            decode(b"[1,2,3]")

    def test_unknown_kind(self):
        with pytest.raises(WireError):
            decode(b'{"kind":"teleport"}')

    def test_missing_field(self):
        with pytest.raises(WireError):
            decode(b'{"kind":"publish","doc_id":"d"}')

    def test_malformed_advert_node(self):
        with pytest.raises(WireError):
            advert_from_obj([{"zzz": []}])
        with pytest.raises(WireError):
            advert_from_obj([])
        with pytest.raises(WireError):
            advert_from_obj([{"lit": [1, 2]}])


def _sample_messages():
    return [
        SubscribeMsg(expr=parse_xpath("/a/*//b"), subscriber_id="s1"),
        UnsubscribeMsg(expr=parse_xpath("d/a"), subscriber_id="s2"),
        AdvertiseMsg(
            adv_id="a1",
            advert=Advertisement.from_tests(("x", "y")),
            publisher_id="p",
        ),
        UnadvertiseMsg(adv_id="gone"),
        PublishMsg(
            publication=Publication(doc_id="d9", path_id=3, path=("a", "b")),
            publisher_id="p",
        ),
    ]


class TestTraceContext:
    def test_stamped_message_round_trips_its_context(self):
        from repro.obs.tracing import TraceContext, stamp, trace_of

        for msg in _sample_messages():
            stamp(msg, TraceContext("t42", "s7"))
            decoded = decode(encode(msg))
            assert trace_of(decoded) == TraceContext("t42", "s7")

    def test_unstamped_message_stays_unstamped(self):
        from repro.obs.tracing import trace_of

        decoded = decode(encode(UnadvertiseMsg(adv_id="x")))
        assert trace_of(decoded) is None
        assert b"trace" not in encode(UnadvertiseMsg(adv_id="y"))

    def test_data_frame_carries_the_message_trace(self):
        from repro.obs.tracing import TraceContext, stamp, trace_of

        msg = stamp(
            SubscribeMsg(expr=parse_xpath("/a"), subscriber_id="s"),
            TraceContext("t9", "s4"),
        )
        frame = decode_frame(encode_data_frame(5, msg))
        assert frame.kind == "data" and frame.seq == 5
        assert frame.trace_id == "t9"
        assert trace_of(frame.message) == TraceContext("t9", "s4")

    def test_ack_frame_echoes_the_trace_id(self):
        frame = decode_frame(encode_ack_frame(3, trace_id="t9"))
        assert frame.kind == "ack" and frame.seq == 3
        assert frame.trace_id == "t9"
        bare = decode_frame(encode_ack_frame(4))
        assert bare.trace_id is None

    @pytest.mark.parametrize(
        "line",
        [
            b'{"kind":"unadvertise","adv_id":"x","trace":{"id":1,"span":"s"}}',
            b'{"kind":"unadvertise","adv_id":"x","trace":{"id":"t"}}',
            b'{"kind":"unadvertise","adv_id":"x","trace":"t1"}',
        ],
    )
    def test_malformed_trace_context_raises(self, line):
        with pytest.raises(WireError):
            decode(line)

    def test_malformed_ack_trace_raises(self):
        with pytest.raises(WireError):
            decode_frame(b'{"kind":"ack","seq":1,"trace":5}')


class TestDescriptions:
    """Every wire-level object has a stable, non-empty description that
    survives an encode/decode round trip (the hop-log contract of
    repro.network.trace)."""

    def test_every_message_kind_round_trips_its_description(self):
        for msg in _sample_messages():
            description = describe_message(msg)
            assert description
            assert describe_message(decode(encode(msg))) == description

    def test_message_descriptions_name_the_operation(self):
        described = [describe_message(m) for m in _sample_messages()]
        assert [d.split()[0] for d in described] == [
            "SUB", "UNSUB", "ADV", "UNADV", "PUB",
        ]

    def test_data_frame_description_includes_the_payload(self):
        msg = SubscribeMsg(expr=parse_xpath("/a/b"), subscriber_id="s")
        frame = decode_frame(encode_data_frame(7, msg))
        assert describe_message(frame) == "DATA seq=7 SUB /a/b"

    def test_ack_frame_description_is_non_empty(self):
        assert describe_message(
            decode_frame(encode_ack_frame(3))
        ) == "ACK seq=3"
        assert describe_message(
            decode_frame(encode_ack_frame(3, trace_id="t2"))
        ) == "ACK seq=3 trace=t2"

    def test_raw_frame_description_wraps_the_message(self):
        raw = decode_frame(encode(UnadvertiseMsg(adv_id="g")))
        assert describe_message(raw) == "RAW UNADV g"


NAMES = st.sampled_from(["a", "b", "c", "meta", "*"])


@st.composite
def adverts(draw, depth=0):
    nodes = []
    for _ in range(draw(st.integers(1, 3))):
        if depth < 2 and draw(st.booleans()):
            nodes.append(Rep(tuple(draw(adverts(depth=depth + 1)).nodes)))
        else:
            tests = draw(st.lists(NAMES, min_size=1, max_size=3))
            nodes.append(Lit(tuple(tests)))
    return Advertisement(tuple(nodes))


class TestPropertyRoundTrips:
    @settings(max_examples=150, deadline=None)
    @given(advert=adverts())
    def test_advert_round_trip(self, advert):
        msg = AdvertiseMsg(adv_id="x", advert=advert)
        assert decode(encode(msg)).advert == advert

    @settings(max_examples=150, deadline=None)
    @given(
        names=st.lists(
            st.sampled_from(["a", "bb", "c-d", "*"]), min_size=1, max_size=6
        ),
        rooted=st.booleans(),
    )
    def test_subscribe_round_trip(self, names, rooted):
        text = ("/" if rooted else "") + "/".join(names)
        expr = parse_xpath(text)
        assert decode(encode(SubscribeMsg(expr=expr))).expr == expr
