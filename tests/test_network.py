"""Unit tests for the simulator, latency models, stats and overlay."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.network import (
    ClusterLatency,
    ConstantLatency,
    Overlay,
    PlanetLabLatency,
    Simulator,
)
from repro.network.stats import DeliveryRecord, NetworkStats


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_fifo_for_equal_times(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.5]
        assert sim.now == 0.5

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_until_bound(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(3.0, lambda: seen.append(3))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.pending() == 1

    def test_max_events_bound(self):
        sim = Simulator()
        def reschedule():
            sim.schedule(1.0, reschedule)
        sim.schedule(1.0, reschedule)
        processed = sim.run(max_events=10)
        assert processed == 10


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(0.25)
        assert model.latency("a", "b", 10_000) == 0.25

    def test_cluster_scales_with_size(self):
        model = ClusterLatency(jitter_fraction=0.0)
        small = model.latency("a", "b", 64)
        large = model.latency("a", "b", 10_000_000)
        assert large > small

    def test_planetlab_link_base_is_stable(self):
        model = PlanetLabLatency(seed=1, jitter_fraction=0.0)
        assert model.link_base("x", "y") == model.link_base("x", "y")

    def test_planetlab_symmetric_links(self):
        model = PlanetLabLatency(seed=2)
        assert model.link_base("x", "y") == model.link_base("y", "x")

    def test_planetlab_wan_slower_than_cluster(self):
        wan = PlanetLabLatency(seed=3, jitter_fraction=0.0)
        lan = ClusterLatency(jitter_fraction=0.0)
        assert wan.latency("a", "b", 2048) > lan.latency("a", "b", 2048)

    def test_planetlab_bad_range_rejected(self):
        with pytest.raises(ValueError):
            PlanetLabLatency(min_base_seconds=0.2, max_base_seconds=0.1)


class TestNetworkStats:
    def test_traffic_accounting(self):
        stats = NetworkStats()
        stats.record_broker_message("b1", "PublishMsg")
        stats.record_broker_message("b2", "SubscribeMsg")
        assert stats.network_traffic == 2
        assert stats.traffic_of_kind("PublishMsg") == 1

    def test_first_delivery_wins(self):
        stats = NetworkStats()
        late = DeliveryRecord("s", "d", 1, issued_at=0.0, delivered_at=2.0, hops=3)
        early = DeliveryRecord("s", "d", 0, issued_at=0.0, delivered_at=1.0, hops=3)
        stats.record_delivery(late)
        stats.record_delivery(early)
        firsts = stats.delivered_documents()
        assert firsts[("s", "d")].delivered_at == 1.0
        assert stats.mean_notification_delay() == 1.0

    def test_delays_by_hops(self):
        stats = NetworkStats()
        stats.record_delivery(
            DeliveryRecord("s", "d1", 0, issued_at=0.0, delivered_at=1.0, hops=2)
        )
        stats.record_delivery(
            DeliveryRecord("s", "d2", 0, issued_at=0.0, delivered_at=3.0, hops=4)
        )
        grouped = stats.delays_by_hops()
        assert grouped == {2: [1.0], 4: [3.0]}

    def test_empty_stats(self):
        stats = NetworkStats()
        assert stats.mean_notification_delay() is None
        assert stats.summary()["network_traffic"] == 0


class TestOverlayTopology:
    def test_binary_tree_shape(self):
        overlay = Overlay.binary_tree(3)
        assert len(overlay.brokers) == 7
        assert len(overlay.links) == 6
        assert overlay.leaf_brokers() == ["b4", "b5", "b6", "b7"]

    def test_duplicate_broker_rejected(self):
        overlay = Overlay()
        overlay.add_broker("b1")
        with pytest.raises(TopologyError):
            overlay.add_broker("b1")

    def test_duplicate_link_rejected(self):
        overlay = Overlay()
        overlay.add_broker("a")
        overlay.add_broker("b")
        overlay.connect("a", "b")
        with pytest.raises(TopologyError):
            overlay.connect("b", "a")

    def test_unknown_broker_link_rejected(self):
        overlay = Overlay()
        overlay.add_broker("a")
        with pytest.raises(TopologyError):
            overlay.connect("a", "zzz")

    def test_duplicate_client_rejected(self):
        overlay = Overlay.binary_tree(2)
        overlay.attach_subscriber("c", "b1")
        with pytest.raises(TopologyError):
            overlay.attach_publisher("c", "b2")

    def test_unknown_client_submission(self):
        overlay = Overlay.binary_tree(2)
        from repro.broker.messages import SubscribeMsg
        from repro.xpath import parse_xpath

        with pytest.raises(RoutingError):
            overlay.submit("ghost", SubscribeMsg(expr=parse_xpath("/a")))

    def test_tree_needs_a_level(self):
        with pytest.raises(TopologyError):
            Overlay.binary_tree(0)


class TestAcyclicity:
    def test_cycle_creating_link_rejected(self):
        overlay = Overlay()
        for name in ("a", "b", "c"):
            overlay.add_broker(name)
        overlay.connect("a", "b")
        overlay.connect("b", "c")
        with pytest.raises(TopologyError):
            overlay.connect("c", "a")

    def test_disconnected_components_may_join(self):
        overlay = Overlay()
        for name in ("a", "b", "c", "d"):
            overlay.add_broker(name)
        overlay.connect("a", "b")
        overlay.connect("c", "d")
        overlay.connect("b", "c")  # joins the components: fine
        assert len(overlay.links) == 3
