"""Broker restart in a running overlay (persistence in situ)."""

from repro.broker.strategies import RoutingConfig
from repro.dtd.samples import psd_dtd
from repro.network import ConstantLatency, Overlay
from repro.workloads.document_generator import generate_documents

import pytest

from repro.errors import TopologyError


def overlay_with_traffic():
    overlay = Overlay.binary_tree(
        2,
        config=RoutingConfig.with_adv_with_cov(),
        latency_model=ConstantLatency(0.001),
    )
    publisher = overlay.attach_publisher("pub", "b2")
    subscriber = overlay.attach_subscriber("sub", "b3")
    publisher.advertise_dtd(psd_dtd())
    overlay.run()
    subscriber.subscribe("/ProteinDatabase")
    overlay.run()
    return overlay, publisher, subscriber


def publish_round(overlay, publisher, seed):
    docs = generate_documents(psd_dtd(), 1, seed=seed, target_bytes=600)
    publisher.publish_document(docs[0])
    overlay.run()
    return docs[0].doc_id


class TestRestart:
    def test_stateful_restart_preserves_delivery(self):
        overlay, publisher, subscriber = overlay_with_traffic()
        first = publish_round(overlay, publisher, seed=1)
        assert first in subscriber.delivered_documents()

        # Restart the root broker (on the path b2 -> b1 -> b3).
        overlay.restart_broker("b1", with_state=True)
        second = publish_round(overlay, publisher, seed=2)
        assert second in subscriber.delivered_documents()

    def test_cold_restart_loses_routing_state(self):
        """The negative control: an empty-restarted broker drops
        in-flight routing state, so deliveries stop — exactly the
        failure persistence prevents."""
        overlay, publisher, subscriber = overlay_with_traffic()
        overlay.restart_broker("b1", with_state=False)
        lost = publish_round(overlay, publisher, seed=3)
        assert lost not in subscriber.delivered_documents()

    def test_restart_unknown_broker(self):
        overlay, _, _ = overlay_with_traffic()
        with pytest.raises(TopologyError):
            overlay.restart_broker("ghost")

    def test_restarted_broker_keeps_identity_and_links(self):
        overlay, _, _ = overlay_with_traffic()
        replacement = overlay.restart_broker("b1")
        assert replacement.broker_id == "b1"
        assert replacement.neighbors == {"b2", "b3"}
