"""Tests for the predicate-index (counting) matcher."""

from hypothesis import given, settings, strategies as st

from repro.matching.engine import LinearMatcher
from repro.matching.predicate_index import PredicateIndexMatcher
from repro.xpath import parse_xpath
from repro.xpath.ast import Axis, Step, XPathExpr


def x(text):
    return parse_xpath(text)


def build(*texts):
    matcher = PredicateIndexMatcher()
    for t in texts:
        matcher.add(x(t), t)
    return matcher


class TestIndexedPath:
    def test_absolute_simple_counting(self):
        m = build("/a/b", "/a/c", "/a/*")
        assert m.match(("a", "b")) == {"/a/b", "/a/*"}
        assert m.match(("a", "c", "z")) == {"/a/c", "/a/*"}
        assert m.match(("a",)) == set()

    def test_all_wildcard_expressions(self):
        m = build("/*/*", "/*")
        assert m.match(("q",)) == {"/*"}
        assert m.match(("q", "r")) == {"/*", "/*/*"}

    def test_length_gate(self):
        m = build("/a/b/c")
        assert m.match(("a", "b")) == set()
        assert m.match(("a", "b", "c")) == {"/a/b/c"}

    def test_index_stats(self):
        m = build("/a/b", "b/c", "//q", "/a/*[@p]")
        stats = m.index_stats()
        assert stats["indexed_exprs"] == 1
        assert stats["filtered_exprs"] == 3
        assert stats["positional_predicates"] == 2


class TestFilterVerify:
    def test_relative(self):
        m = build("b/c")
        assert m.match(("a", "b", "c")) == {"b/c"}
        assert m.match(("a", "c", "b")) == set()

    def test_descendant(self):
        m = build("/a//z")
        assert m.match(("a", "m", "z")) == {"/a//z"}
        assert m.match(("z", "m", "a")) == set()

    def test_all_wildcard_relative_always_candidate(self):
        m = build("*/*")
        assert m.match(("p", "q")) == {"*/*"}

    def test_predicates_via_verify(self):
        m = build("/a/b[@p='1']")
        assert m.match(("a", "b"), ({}, {"p": "1"})) == {"/a/b[@p='1']"}
        assert m.match(("a", "b"), ({}, {"p": "2"})) == set()
        assert m.match(("a", "b")) == set()


class TestMaintenance:
    def test_remove_indexed(self):
        m = build("/a/b")
        m.remove(x("/a/b"), "/a/b")
        assert m.match(("a", "b")) == set()
        assert len(m) == 0
        assert m.index_stats()["positional_predicates"] == 0

    def test_remove_filtered(self):
        m = build("b//c")
        m.remove(x("b//c"), "b//c")
        assert m.match(("b", "q", "c")) == set()

    def test_shared_keys(self):
        m = PredicateIndexMatcher()
        m.add(x("/a"), "k1")
        m.add(x("/a"), "k2")
        m.remove(x("/a"), "k1")
        assert m.match(("a",)) == {"k2"}


NAMES = st.sampled_from(["a", "b", "c", "*"])


@st.composite
def exprs(draw):
    n = draw(st.integers(1, 5))
    rooted = draw(st.booleans())
    steps = []
    for i in range(n):
        axis = (
            Axis.CHILD
            if (i == 0 and rooted)
            else draw(st.sampled_from([Axis.CHILD, Axis.DESCENDANT]))
        )
        steps.append(Step(axis, draw(NAMES)))
    return XPathExpr(steps=tuple(steps), rooted=rooted)


class TestEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(
        workload=st.lists(exprs(), min_size=1, max_size=10),
        path=st.lists(
            st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=7
        ),
    )
    def test_matches_like_linear_scan(self, workload, path):
        linear = LinearMatcher()
        indexed = PredicateIndexMatcher()
        for i, expr in enumerate(workload):
            linear.add(expr, i)
            indexed.add(expr, i)
        assert indexed.match(tuple(path)) == linear.match(tuple(path))

    @settings(max_examples=100, deadline=None)
    @given(
        workload=st.lists(exprs(), min_size=2, max_size=8),
        path=st.lists(
            st.sampled_from(["a", "b", "c"]), min_size=1, max_size=6
        ),
        data=st.data(),
    )
    def test_removal_keeps_engines_in_sync(self, workload, path, data):
        linear = LinearMatcher()
        indexed = PredicateIndexMatcher()
        for i, expr in enumerate(workload):
            linear.add(expr, i)
            indexed.add(expr, i)
        victim = data.draw(st.integers(0, len(workload) - 1))
        linear.remove(workload[victim], victim)
        indexed.remove(workload[victim], victim)
        assert indexed.match(tuple(path)) == linear.match(tuple(path))
