"""Model-based end-to-end test.

Drives a random overlay through a random interleaving of subscribe /
unsubscribe / publish operations (settling the network between
operations) and checks every delivery against an *oracle*: a global
table of who is subscribed to what, matched centrally against each
document.  Any divergence — lost documents, spurious deliveries,
covering/merging/advertisement bugs — fails the run.
"""

import random

import pytest

from repro.broker.strategies import RoutingConfig
from repro.covering.pathmatch import matches_path
from repro.dtd.samples import psd_dtd
from repro.merging.engine import PathUniverse
from repro.network.latency import ConstantLatency
from repro.network.overlay import Overlay
from repro.workloads.datasets import psd_queries
from repro.workloads.document_generator import generate_documents


def random_tree_overlay(rng, strategy, universe):
    """A random tree topology with 3-7 brokers."""
    overlay = Overlay(
        config=RoutingConfig.by_name(strategy),
        latency_model=ConstantLatency(0.001),
        universe=universe,
        processing_scale=0.0,
    )
    count = rng.randint(3, 7)
    names = ["b%d" % i for i in range(count)]
    for name in names:
        overlay.add_broker(name)
    for index in range(1, count):
        parent = names[rng.randrange(index)]
        overlay.connect(parent, names[index])
    return overlay, names


@pytest.mark.parametrize("strategy", RoutingConfig.ALL_NAMES)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_interleavings_match_oracle(strategy, seed):
    rng = random.Random(seed * 7919)
    dtd = psd_dtd()
    universe = PathUniverse.from_dtd(dtd, max_depth=10)
    overlay, names = random_tree_overlay(rng, strategy, universe)

    publisher = overlay.attach_publisher("pub", rng.choice(names))
    publisher.advertise_dtd(dtd)
    overlay.run()

    queries = list(psd_queries(40, seed=seed).exprs)
    documents = generate_documents(dtd, 6, seed=seed, target_bytes=900)

    subscribers = {}
    for index in range(rng.randint(2, 4)):
        client_id = "sub%d" % index
        subscribers[client_id] = overlay.attach_subscriber(
            client_id, rng.choice(names)
        )

    active = {client_id: set() for client_id in subscribers}
    expected = {client_id: set() for client_id in subscribers}

    for _op in range(30):
        action = rng.random()
        client_id = rng.choice(sorted(subscribers))
        client = subscribers[client_id]
        if action < 0.45:
            expr = rng.choice(queries)
            if expr not in active[client_id]:
                client.subscribe(expr)
                active[client_id].add(expr)
        elif action < 0.6 and active[client_id]:
            expr = rng.choice(sorted(active[client_id], key=str))
            client.unsubscribe(expr)
            active[client_id].discard(expr)
        else:
            doc = rng.choice(documents)
            overlay.run()  # subscriptions settle before the publish
            publisher.publish_document(doc)
            for sid, exprs in active.items():
                if any(
                    matches_path(expr, path)
                    for path in doc.paths()
                    for expr in exprs
                ):
                    expected[sid].add(doc.doc_id)
        overlay.run()

    overlay.run()
    for client_id, client in subscribers.items():
        assert client.delivered_documents() == expected[client_id], (
            "strategy %s, seed %d, client %s" % (strategy, seed, client_id)
        )
