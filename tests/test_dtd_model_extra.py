"""Additional DTD model/particle coverage."""

import pytest

from repro.dtd import (
    ContentKind,
    Occurrence,
    Particle,
    ParticleKind,
    count_paths,
    parse_dtd,
)


class TestOccurrence:
    def test_allows_zero(self):
        assert Occurrence.OPTIONAL.allows_zero
        assert Occurrence.STAR.allows_zero
        assert not Occurrence.ONE.allows_zero
        assert not Occurrence.PLUS.allows_zero

    def test_allows_many(self):
        assert Occurrence.STAR.allows_many
        assert Occurrence.PLUS.allows_many
        assert not Occurrence.ONE.allows_many
        assert not Occurrence.OPTIONAL.allows_many


class TestParticle:
    def test_str_round_readable(self):
        particle = Particle(
            kind=ParticleKind.SEQUENCE,
            children=(
                Particle(kind=ParticleKind.NAME, name="a"),
                Particle(
                    kind=ParticleKind.CHOICE,
                    children=(
                        Particle(kind=ParticleKind.NAME, name="b"),
                        Particle(kind=ParticleKind.NAME, name="c"),
                    ),
                    occurrence=Occurrence.STAR,
                ),
            ),
            occurrence=Occurrence.PLUS,
        )
        text = str(particle)
        assert text == "(a, (b | c)*)+"

    def test_element_names_nested(self):
        dtd = parse_dtd(
            "<!ELEMENT r ((a | (b, c))+, d?)>"
            "<!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
            "<!ELEMENT c EMPTY><!ELEMENT d EMPTY>"
        )
        assert dtd.declaration("r").child_names() == {"a", "b", "c", "d"}

    def test_can_be_empty_through_choice(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a | b*)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
        )
        assert dtd.declaration("r").can_be_leaf()

    def test_sequence_needs_all_empty(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a?, b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
        )
        assert not dtd.declaration("r").can_be_leaf()


class TestDtdConveniences:
    def test_contains_and_len(self):
        dtd = parse_dtd("<!ELEMENT r (a?)><!ELEMENT a EMPTY>")
        assert "a" in dtd
        assert "z" not in dtd
        assert len(dtd) == 2

    def test_count_paths(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a?, b?)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
        )
        # r (leaf-capable), r/a, r/b
        assert count_paths(dtd) == 3

    def test_undeclared_children_dropped_from_child_map(self):
        dtd = parse_dtd("<!ELEMENT r (ghost?, a?)><!ELEMENT a EMPTY>")
        assert dtd.child_map()["r"] == ("a",)

    def test_content_kind_any_is_leaf_capable(self):
        dtd = parse_dtd("<!ELEMENT r ANY>")
        decl = dtd.declaration("r")
        assert decl.kind is ContentKind.ANY
        assert decl.can_be_leaf()
        assert decl.child_names() == set()

    def test_root_must_be_declared(self):
        from repro.dtd.model import DTD

        with pytest.raises(ValueError):
            DTD(root="nope", elements={})
