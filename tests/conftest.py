"""Shared test configuration.

Hypothesis runs derandomised so the suite is deterministic run-to-run
(the property tests have been exercised with random seeds during
development; a release test suite should not flake).
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
