"""Shared test configuration.

Hypothesis runs derandomised by default so the suite is deterministic
run-to-run (the property tests have been exercised with random seeds
during development; a release test suite should not flake).

The CI ``chaos`` job opts back into randomness by exporting
``HYPOTHESIS_PROFILE=chaos``: same settings, but examples are drawn
from the seed pytest reports (``--hypothesis-seed``), so a failing
seed can be captured as an artifact and replayed locally.
"""

import os

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "chaos",
    derandomize=False,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


@pytest.fixture
def audit_oracle():
    """Factory: attach a fresh audit oracle to an overlay.

    Usage: ``oracle = audit_oracle(overlay)`` *before* any client
    traffic is submitted, then ``oracle.check()`` at a quiescent point.
    """
    from repro.audit import AuditOracle

    def _attach(overlay, **kwargs):
        return overlay.attach_auditor(AuditOracle(**kwargs))

    return _attach
