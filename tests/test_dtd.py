"""Unit tests for DTD parsing, the object model and path analysis."""

import pytest

from repro.errors import DTDSyntaxError
from repro.dtd import (
    ContentKind,
    Occurrence,
    parse_dtd,
    enumerate_paths,
    element_positions,
    is_recursive,
    recursive_elements,
    nitf_dtd,
    psd_dtd,
)


SIMPLE = """
<!ELEMENT root (a, b?)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (c*)>
<!ELEMENT c EMPTY>
"""

RECURSIVE = """
<!ELEMENT root (part)>
<!ELEMENT part (part | leaf)*>
<!ELEMENT leaf EMPTY>
"""


class TestParser:
    def test_parses_declarations(self):
        dtd = parse_dtd(SIMPLE)
        assert dtd.root == "root"
        assert set(dtd.element_names()) == {"root", "a", "b", "c"}

    def test_content_kinds(self):
        dtd = parse_dtd(SIMPLE)
        assert dtd.declaration("a").kind is ContentKind.PCDATA
        assert dtd.declaration("c").kind is ContentKind.EMPTY
        assert dtd.declaration("root").kind is ContentKind.CHILDREN

    def test_child_map(self):
        dtd = parse_dtd(SIMPLE)
        cm = dtd.child_map()
        assert cm["root"] == ("a", "b")
        assert cm["b"] == ("c",)
        assert cm["a"] == ()

    def test_mixed_content(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA | em | q)*><!ELEMENT em EMPTY><!ELEMENT q EMPTY>")
        decl = dtd.declaration("p")
        assert decl.kind is ContentKind.MIXED
        assert decl.child_names() == {"em", "q"}
        assert decl.can_be_leaf()

    def test_any_content(self):
        dtd = parse_dtd("<!ELEMENT x ANY>")
        assert dtd.declaration("x").kind is ContentKind.ANY

    def test_comments_and_attlists_skipped(self):
        dtd = parse_dtd(
            """
            <!-- a comment with <!ELEMENT fake (x)> inside -->
            <!ELEMENT real (#PCDATA)>
            <!ATTLIST real id CDATA #IMPLIED>
            """
        )
        assert dtd.element_names() == ["real"]

    def test_explicit_root(self):
        dtd = parse_dtd(SIMPLE, root="b")
        assert dtd.root == "b"

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT a EMPTY><!ELEMENT a EMPTY>")

    def test_unknown_root_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd(SIMPLE, root="zzz")

    def test_empty_input_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("   ")

    def test_mixing_separators_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd(
                "<!ELEMENT a (b, c | d)><!ELEMENT b EMPTY>"
                "<!ELEMENT c EMPTY><!ELEMENT d EMPTY>"
            )

    def test_occurrence_parsing(self):
        dtd = parse_dtd(
            "<!ELEMENT a (b+, c*, d?)><!ELEMENT b EMPTY>"
            "<!ELEMENT c EMPTY><!ELEMENT d EMPTY>"
        )
        particle = dtd.declaration("a").particle
        occurrences = [child.occurrence for child in particle.children]
        assert occurrences == [Occurrence.PLUS, Occurrence.STAR, Occurrence.OPTIONAL]

    def test_nested_groups(self):
        dtd = parse_dtd(
            "<!ELEMENT a ((b | c)+, d)><!ELEMENT b EMPTY>"
            "<!ELEMENT c EMPTY><!ELEMENT d EMPTY>"
        )
        assert dtd.declaration("a").child_names() == {"b", "c", "d"}


class TestLeafAnalysis:
    def test_all_optional_children_can_be_leaf(self):
        dtd = parse_dtd("<!ELEMENT a (b?, c*)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>")
        assert dtd.declaration("a").can_be_leaf()

    def test_required_child_cannot_be_leaf(self):
        dtd = parse_dtd("<!ELEMENT a (b)><!ELEMENT b EMPTY>")
        assert not dtd.declaration("a").can_be_leaf()

    def test_choice_with_empty_alternative(self):
        dtd = parse_dtd("<!ELEMENT a (b | c*)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>")
        assert dtd.declaration("a").can_be_leaf()


class TestRecursion:
    def test_simple_dtd_not_recursive(self):
        assert not is_recursive(parse_dtd(SIMPLE))

    def test_self_recursion_detected(self):
        dtd = parse_dtd(RECURSIVE)
        assert is_recursive(dtd)
        assert "part" in recursive_elements(dtd)
        assert "leaf" not in recursive_elements(dtd)

    def test_mutual_recursion_detected(self):
        dtd = parse_dtd(
            "<!ELEMENT r (x)><!ELEMENT x (y?)><!ELEMENT y (x?)>"
        )
        assert recursive_elements(dtd) == {"x", "y"}

    def test_samples(self):
        assert is_recursive(nitf_dtd())
        assert not is_recursive(psd_dtd())
        rec = recursive_elements(nitf_dtd())
        assert "block" in rec and "li" in rec


class TestEnumeratePaths:
    def test_simple_paths(self):
        paths = enumerate_paths(parse_dtd(SIMPLE))
        assert ("root", "a") in paths
        assert ("root", "b") in paths  # b can be childless (c*)
        assert ("root", "b", "c") in paths
        assert len(paths) == 3

    def test_recursive_paths_bounded(self):
        paths = enumerate_paths(parse_dtd(RECURSIVE), max_depth=4)
        assert ("root", "part", "leaf") in paths
        assert ("root", "part", "part", "leaf") in paths
        assert all(len(p) <= 4 for p in paths)

    def test_deterministic(self):
        dtd = parse_dtd(RECURSIVE)
        assert enumerate_paths(dtd, 5) == enumerate_paths(dtd, 5)

    def test_psd_path_count_matches_advert_count(self):
        # For a non-recursive DTD every root-to-leaf path is one advert.
        from repro.adverts import generate_advertisements

        paths = enumerate_paths(psd_dtd(), max_depth=12)
        adverts = generate_advertisements(psd_dtd())
        assert len(paths) == len(adverts)

    def test_element_positions(self):
        positions = element_positions(enumerate_paths(parse_dtd(SIMPLE)))
        assert positions[1] == {"root"}
        assert positions[2] == {"a", "b"}
        assert positions[3] == {"c"}


class TestSampleDTDRatio:
    def test_advert_ratio_in_paper_ballpark(self):
        """Paper §5: NITF generates ~35x more advertisements than PSD."""
        from repro.adverts import generate_advertisements

        nitf_count = len(generate_advertisements(nitf_dtd()))
        psd_count = len(generate_advertisements(psd_dtd()))
        assert 25 <= nitf_count / psd_count <= 55
