"""Property-based soundness checks for covering and matching.

Covering-based routing loses messages if ``covers`` ever answers True
incorrectly, so soundness is model-checked here: whenever
``covers(s1, s2)`` holds, every publication of a generated family of
paths matching ``s2`` must also match ``s1``.  The path family
instantiates wildcards and descendant gaps adversarially (fresh element
names unknown to ``s1``).

Also cross-checks the KMP-optimised matchers against their naive
references and the paper-faithful recursive-advertisement algorithm
against the expansion-based one.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.adverts.matching import (
    rel_expr_and_adv,
    rel_expr_and_adv_naive,
)
from repro.adverts.model import simple_recursive
from repro.adverts.recursive import (
    abs_expr_and_sim_rec_adv,
    expr_and_rec_adv,
)
from repro.covering.algorithms import covers, rel_sim_cov
from repro.covering.pathmatch import matches_path
from repro.xpath.ast import Axis, Step, XPathExpr

ALPHABET = ["a", "b", "c"]
TESTS = ALPHABET + ["*"]


@st.composite
def xpath_exprs(draw, max_steps=5, allow_descendant=True):
    n = draw(st.integers(1, max_steps))
    rooted = draw(st.booleans())
    steps = []
    for i in range(n):
        if i == 0:
            axis = (
                Axis.CHILD
                if rooted
                else draw(st.sampled_from([Axis.CHILD, Axis.DESCENDANT]))
            )
        elif allow_descendant:
            axis = draw(st.sampled_from([Axis.CHILD, Axis.DESCENDANT]))
        else:
            axis = Axis.CHILD
        steps.append(Step(axis, draw(st.sampled_from(TESTS))))
    return XPathExpr(steps=tuple(steps), rooted=rooted)


def paths_matching(expr, max_gap=2, fresh="zz"):
    """A finite adversarial family of concrete paths matching *expr*.

    Wildcards become fresh symbols; every ``//`` (and the relative
    prefix/suffix) is instantiated with gaps of 0..max_gap fresh
    elements.  Every returned path is checked to match *expr*.
    """
    segments = [
        tuple(fresh if t == "*" else t for t in segment)
        for segment in expr.segments
    ]
    gap_slots = len(segments) - 1
    pre_options = [0] if expr.anchored else [0, 1, max_gap]
    results = []
    for pre in pre_options:
        for gaps in itertools.product(range(max_gap + 1), repeat=gap_slots):
            for post in (0, 1):
                path = [fresh + str(i) for i in range(pre)]
                for index, segment in enumerate(segments):
                    path.extend(segment)
                    if index < gap_slots:
                        path.extend(
                            fresh + "g%d%d" % (index, g)
                            for g in range(gaps[index])
                        )
                path.extend(fresh + "p%d" % i for i in range(post))
                path = tuple(path)
                if matches_path(expr, path):
                    results.append(path)
    return results


class TestCoversSoundness:
    @settings(max_examples=400, deadline=None)
    @given(s1=xpath_exprs(), s2=xpath_exprs())
    def test_covers_true_implies_match_containment(self, s1, s2):
        if not covers(s1, s2):
            return
        for path in paths_matching(s2):
            assert matches_path(s1, path), (
                "covers(%s, %s) claimed but path %r matches s2 only"
                % (s1, s2, path)
            )

    @settings(max_examples=300, deadline=None)
    @given(s=xpath_exprs())
    def test_covers_is_reflexive(self, s):
        assert covers(s, s)

    @settings(max_examples=200, deadline=None)
    @given(s1=xpath_exprs(max_steps=4), s2=xpath_exprs(max_steps=4),
           s3=xpath_exprs(max_steps=4))
    def test_covers_is_transitive(self, s1, s2, s3):
        if covers(s1, s2) and covers(s2, s3):
            assert covers(s1, s3)

    @settings(max_examples=300, deadline=None)
    @given(
        s1=xpath_exprs(allow_descendant=False),
        s2=xpath_exprs(allow_descendant=False),
    )
    def test_simple_covering_completeness(self, s1, s2):
        """For //-free pairs the algorithms are complete as well: if
        every adversarial path matching s2 matches s1, covers must say
        True."""
        family = paths_matching(s2)
        semantically_covered = bool(family) and all(
            matches_path(s1, path) for path in family
        )
        if semantically_covered and len(s1) <= len(s2):
            assert covers(s1, s2), (s1, s2)


class TestMatchersAgree:
    @settings(max_examples=300, deadline=None)
    @given(
        adv=st.lists(st.sampled_from(TESTS), min_size=1, max_size=8),
        sub=xpath_exprs(allow_descendant=False),
    )
    def test_kmp_equals_naive(self, adv, sub):
        if sub.is_absolute:
            sub = sub.with_rooted(False)
        assert rel_expr_and_adv(tuple(adv), sub) == rel_expr_and_adv_naive(
            tuple(adv), sub
        )

    @settings(max_examples=300, deadline=None)
    @given(
        a1=st.lists(st.sampled_from(TESTS), min_size=0, max_size=3),
        a2=st.lists(st.sampled_from(TESTS), min_size=1, max_size=3),
        a3=st.lists(st.sampled_from(TESTS), min_size=0, max_size=3),
        data=st.data(),
    )
    def test_paper_recursive_algorithm_equals_expansion(
        self, a1, a2, a3, data
    ):
        sub = data.draw(xpath_exprs(max_steps=7, allow_descendant=False))
        if not sub.is_absolute:
            steps = (Step(Axis.CHILD, sub.steps[0].test),) + sub.steps[1:]
            sub = XPathExpr(steps=steps, rooted=True)
        advert = simple_recursive(tuple(a1), tuple(a2), tuple(a3))
        fast = abs_expr_and_sim_rec_adv(tuple(a1), tuple(a2), tuple(a3), sub)
        reference = expr_and_rec_adv(advert, sub)
        assert fast == reference, (a1, a2, a3, str(sub))


class TestRelSimCovStringMatching:
    @settings(max_examples=300, deadline=None)
    @given(
        s1=xpath_exprs(allow_descendant=False),
        s2=xpath_exprs(allow_descendant=False),
    )
    def test_rel_sim_cov_sound(self, s1, s2):
        if s1.is_absolute:
            s1 = s1.with_rooted(False)
        if rel_sim_cov(s1, s2):
            for path in paths_matching(s2):
                assert matches_path(s1, path)
