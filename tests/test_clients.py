"""Unit tests for publisher/subscriber clients."""

from repro.broker.strategies import RoutingConfig
from repro.dtd.samples import psd_dtd
from repro.network import ConstantLatency, Overlay
from repro.xmldoc import XMLDocument

DOC = """
<ProteinDatabase>
  <ProteinEntry>
    <header>
      <uid>U1</uid><accession>A1</accession>
      <created-date>d</created-date>
      <seq-rev-date>d</seq-rev-date><txt-rev-date>d</txt-rev-date>
    </header>
    <protein><name>p53</name></protein>
    <organism><formal>H. sapiens</formal></organism>
    <reference><refinfo>
      <authors><author>L</author></authors>
      <citation>c</citation><year>2008</year>
    </refinfo></reference>
    <summary><length>42</length></summary>
    <sequence>MA</sequence>
  </ProteinEntry>
</ProteinDatabase>
"""


def wired_overlay():
    overlay = Overlay.binary_tree(
        2,
        config=RoutingConfig.with_adv_with_cov(),
        latency_model=ConstantLatency(0.001),
    )
    publisher = overlay.attach_publisher("pub", "b2")
    subscriber = overlay.attach_subscriber("sub", "b3")
    publisher.advertise_dtd(psd_dtd())
    overlay.run()
    return overlay, publisher, subscriber


class TestSubscriberViews:
    def test_received_publications_per_document(self):
        overlay, publisher, subscriber = wired_overlay()
        subscriber.subscribe("//header")
        subscriber.subscribe("//sequence")
        overlay.run()
        publisher.publish_document(XMLDocument.parse(DOC, doc_id="d1"))
        overlay.run()
        pubs = subscriber.received_publications("d1")
        assert pubs
        assert all(m.publication.doc_id == "d1" for m in pubs)
        assert subscriber.received_publications("ghost") == []

    def test_matched_paths_are_the_matching_subset(self):
        overlay, publisher, subscriber = wired_overlay()
        subscriber.subscribe("/ProteinDatabase/ProteinEntry/sequence")
        overlay.run()
        doc = XMLDocument.parse(DOC, doc_id="d2")
        publisher.publish_document(doc)
        overlay.run()
        assert subscriber.matched_paths("d2") == [
            ("ProteinDatabase", "ProteinEntry", "sequence")
        ]

    def test_unsubscribed_client_receives_nothing(self):
        overlay, publisher, subscriber = wired_overlay()
        publisher.publish_document(XMLDocument.parse(DOC, doc_id="d3"))
        overlay.run()
        assert subscriber.delivered_documents() == set()

    def test_publish_paths_convenience(self):
        overlay, publisher, subscriber = wired_overlay()
        subscriber.subscribe("/ProteinDatabase/ProteinEntry/sequence")
        overlay.run()
        # publish_paths bypasses document parsing (workload drivers);
        # paths must still lie inside the advertised DTD or the
        # subscription is never routed toward the publisher.
        publisher.publish_paths(
            [
                ("ProteinDatabase", "ProteinEntry", "sequence"),
                ("ProteinDatabase", "ProteinEntry", "summary", "length"),
            ],
            doc_id="raw-1",
        )
        overlay.run()
        assert subscriber.delivered_documents() == {"raw-1"}
        assert subscriber.matched_paths("raw-1") == [
            ("ProteinDatabase", "ProteinEntry", "sequence")
        ]

    def test_repr_smoke(self):
        overlay, publisher, subscriber = wired_overlay()
        assert "pub" in repr(publisher)
        assert "sub" in repr(subscriber)
