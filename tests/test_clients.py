"""Unit tests for publisher/subscriber clients."""

from repro.broker.strategies import RoutingConfig
from repro.dtd.samples import psd_dtd
from repro.network import ConstantLatency, Overlay
from repro.xmldoc import XMLDocument

DOC = """
<ProteinDatabase>
  <ProteinEntry>
    <header>
      <uid>U1</uid><accession>A1</accession>
      <created-date>d</created-date>
      <seq-rev-date>d</seq-rev-date><txt-rev-date>d</txt-rev-date>
    </header>
    <protein><name>p53</name></protein>
    <organism><formal>H. sapiens</formal></organism>
    <reference><refinfo>
      <authors><author>L</author></authors>
      <citation>c</citation><year>2008</year>
    </refinfo></reference>
    <summary><length>42</length></summary>
    <sequence>MA</sequence>
  </ProteinEntry>
</ProteinDatabase>
"""


def wired_overlay():
    overlay = Overlay.binary_tree(
        2,
        config=RoutingConfig.with_adv_with_cov(),
        latency_model=ConstantLatency(0.001),
    )
    publisher = overlay.attach_publisher("pub", "b2")
    subscriber = overlay.attach_subscriber("sub", "b3")
    publisher.advertise_dtd(psd_dtd())
    overlay.run()
    return overlay, publisher, subscriber


class TestSubscriberViews:
    def test_received_publications_per_document(self):
        overlay, publisher, subscriber = wired_overlay()
        subscriber.subscribe("//header")
        subscriber.subscribe("//sequence")
        overlay.run()
        publisher.publish_document(XMLDocument.parse(DOC, doc_id="d1"))
        overlay.run()
        pubs = subscriber.received_publications("d1")
        assert pubs
        assert all(m.publication.doc_id == "d1" for m in pubs)
        assert subscriber.received_publications("ghost") == []

    def test_matched_paths_are_the_matching_subset(self):
        overlay, publisher, subscriber = wired_overlay()
        subscriber.subscribe("/ProteinDatabase/ProteinEntry/sequence")
        overlay.run()
        doc = XMLDocument.parse(DOC, doc_id="d2")
        publisher.publish_document(doc)
        overlay.run()
        assert subscriber.matched_paths("d2") == [
            ("ProteinDatabase", "ProteinEntry", "sequence")
        ]

    def test_unsubscribed_client_receives_nothing(self):
        overlay, publisher, subscriber = wired_overlay()
        publisher.publish_document(XMLDocument.parse(DOC, doc_id="d3"))
        overlay.run()
        assert subscriber.delivered_documents() == set()

    def test_publish_paths_convenience(self):
        overlay, publisher, subscriber = wired_overlay()
        subscriber.subscribe("/ProteinDatabase/ProteinEntry/sequence")
        overlay.run()
        # publish_paths bypasses document parsing (workload drivers);
        # paths must still lie inside the advertised DTD or the
        # subscription is never routed toward the publisher.
        publisher.publish_paths(
            [
                ("ProteinDatabase", "ProteinEntry", "sequence"),
                ("ProteinDatabase", "ProteinEntry", "summary", "length"),
            ],
            doc_id="raw-1",
        )
        overlay.run()
        assert subscriber.delivered_documents() == {"raw-1"}
        assert subscriber.matched_paths("raw-1") == [
            ("ProteinDatabase", "ProteinEntry", "sequence")
        ]

    def test_repr_smoke(self):
        overlay, publisher, subscriber = wired_overlay()
        assert "pub" in repr(publisher)
        assert "sub" in repr(subscriber)


class TestDuplicateSuppression:
    """Redelivered publications (retransmission, crash-recovery replay)
    must be counted once and only once at the subscriber."""

    def make_msg(self, doc_id="d1", path_id=0):
        from repro.broker.messages import PublishMsg
        from repro.xmldoc import Publication

        return PublishMsg(
            publication=Publication(
                doc_id=doc_id,
                path_id=path_id,
                path=("ProteinDatabase", "ProteinEntry", "sequence"),
            ),
            publisher_id="pub",
        )

    def test_receive_reports_first_delivery(self):
        overlay, publisher, subscriber = wired_overlay()
        msg = self.make_msg()
        assert subscriber.receive(msg, hops=2) is True
        assert subscriber.receive(msg, hops=2) is False
        assert len(subscriber.received) == 1
        assert subscriber.duplicates == 1

    def test_distinct_paths_of_one_document_both_count(self):
        overlay, publisher, subscriber = wired_overlay()
        assert subscriber.receive(self.make_msg(path_id=0), hops=2)
        assert subscriber.receive(self.make_msg(path_id=1), hops=2)
        assert len(subscriber.received) == 2
        assert subscriber.duplicates == 0

    def test_matched_paths_distinct_in_arrival_order(self):
        overlay, publisher, subscriber = wired_overlay()
        # two publications carrying the same path (different path ids,
        # as two documents' decompositions would produce)
        subscriber.receive(self.make_msg(path_id=0), hops=2)
        subscriber.receive(self.make_msg(path_id=1), hops=2)
        assert subscriber.matched_paths("d1") == [
            ("ProteinDatabase", "ProteinEntry", "sequence")
        ]

    def test_redelivery_never_reaches_delivery_stats(self):
        overlay, publisher, subscriber = wired_overlay()
        subscriber.subscribe("//sequence")
        overlay.run()
        publisher.publish_document(XMLDocument.parse(DOC, doc_id="d9"))
        overlay.run()
        delivered_before = len(overlay.stats.deliveries)
        assert delivered_before == len(subscriber.received)
        for msg in list(subscriber.received):
            overlay._client_receive("sub", msg, hops=2)
        assert len(overlay.stats.deliveries) == delivered_before
        assert subscriber.duplicates == delivered_before
