"""Unit + property tests for the YFilter-style baseline matcher."""

from hypothesis import given, settings, strategies as st

from repro.covering.pathmatch import matches_path
from repro.matching.engine import LinearMatcher
from repro.matching.yfilter import YFilterMatcher
from repro.xpath import parse_xpath
from repro.xpath.ast import Axis, Step, XPathExpr


def x(text):
    return parse_xpath(text)


def build(*texts):
    matcher = YFilterMatcher()
    for t in texts:
        matcher.add(x(t), t)
    return matcher


class TestBasicMatching:
    def test_absolute_prefix(self):
        m = build("/a/b")
        assert m.match(("a", "b")) == {"/a/b"}
        assert m.match(("a", "b", "c")) == {"/a/b"}
        assert m.match(("b", "a")) == set()

    def test_relative_infix(self):
        m = build("b/c")
        assert m.match(("a", "b", "c", "d")) == {"b/c"}
        assert m.match(("c", "b")) == set()

    def test_wildcards(self):
        m = build("/*/b", "/a/*")
        assert m.match(("a", "b")) == {"/*/b", "/a/*"}
        assert m.match(("q", "b")) == {"/*/b"}

    def test_descendant(self):
        m = build("/a//d")
        assert m.match(("a", "b", "c", "d")) == {"/a//d"}
        assert m.match(("a", "d")) == {"/a//d"}
        assert m.match(("q", "d")) == set()

    def test_leading_descendant(self):
        m = build("//c/d")
        assert m.match(("a", "b", "c", "d")) == {"//c/d"}

    def test_prefix_sharing(self):
        m = build("/a/b/c", "/a/b/d", "/a/b")
        # /a, /a/b shared: expect a compact automaton.
        assert m.state_count() <= 6
        assert m.match(("a", "b", "c")) == {"/a/b/c", "/a/b"}


class TestMaintenance:
    def test_remove(self):
        m = YFilterMatcher()
        m.add(x("/a/b"), "k1")
        m.add(x("/a/b"), "k2")
        m.remove(x("/a/b"), "k1")
        assert m.match(("a", "b")) == {"k2"}
        m.remove(x("/a/b"), "k2")
        assert m.match(("a", "b")) == set()
        assert len(m) == 0

    def test_remove_absent_is_noop(self):
        m = build("/a")
        m.remove(x("/zzz"), "nobody")
        assert len(m) == 1

    def test_keys_of(self):
        m = YFilterMatcher()
        m.add(x("/a"), "k1")
        m.add(x("/a"), "k2")
        assert m.keys_of(x("/a")) == {"k1", "k2"}


class TestPruning:
    """Removal must actually shrink the automaton: dead NFA branches
    accumulating under subscriber churn was the state leak this class
    pins down."""

    def test_churn_returns_state_count_to_baseline(self):
        m = build("/a/b", "/a//c")
        baseline = m.state_count()
        extra = ["/a/b/c/d%d" % i for i in range(8)] + [
            "//x%d//y" % i for i in range(8)
        ]
        for text in extra:
            m.add(x(text), text)
        grown = m.state_count()
        assert grown > baseline
        for text in extra:
            m.remove(x(text), text)
        assert m.state_count() == baseline
        m._nfa.check_refcounts()

    def test_shared_prefix_survives_partial_removal(self):
        m = build("/a/b/c", "/a/b/d")
        size_both = m.state_count()
        m.remove(x("/a/b/c"), "/a/b/c")
        # Only the unshared tail ("c" edge) is released; /a/b stays.
        assert m.state_count() == size_both - 1
        assert m.match(("a", "b", "d")) == {"/a/b/d"}
        assert m.match(("a", "b", "c")) == set()
        m._nfa.check_refcounts()

    def test_descendant_state_pruned_with_last_user(self):
        m = build("/a/b")
        baseline = m.state_count()
        m.add(x("/a//z"), "desc")
        assert m.state_count() > baseline
        m.remove(x("/a//z"), "desc")
        assert m.state_count() == baseline
        assert m.match(("a", "q", "z")) == set()
        m._nfa.check_refcounts()

    def test_duplicate_keys_keep_trail_alive(self):
        m = YFilterMatcher()
        m.add(x("/a/b"), "k1")
        m.add(x("/a/b"), "k2")
        size = m.state_count()
        m.remove(x("/a/b"), "k1")
        assert m.state_count() == size  # k2 still needs the trail
        m.remove(x("/a/b"), "k2")
        assert m.state_count() == 1  # root only
        m._nfa.check_refcounts()


NAMES = st.sampled_from(["a", "b", "c", "*"])


@st.composite
def exprs(draw):
    n = draw(st.integers(1, 5))
    rooted = draw(st.booleans())
    steps = []
    for i in range(n):
        if i == 0 and rooted:
            axis = Axis.CHILD
        else:
            axis = draw(st.sampled_from([Axis.CHILD, Axis.DESCENDANT]))
        steps.append(Step(axis, draw(NAMES)))
    return XPathExpr(steps=tuple(steps), rooted=rooted)


class TestEquivalenceWithLinear:
    @settings(max_examples=200, deadline=None)
    @given(
        workload=st.lists(exprs(), min_size=1, max_size=8),
        path=st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=7),
    )
    def test_same_matches_as_linear_scan(self, workload, path):
        linear = LinearMatcher()
        yfilter = YFilterMatcher()
        for i, expr in enumerate(workload):
            linear.add(expr, i)
            yfilter.add(expr, i)
        assert yfilter.match(tuple(path)) == linear.match(tuple(path))

    @settings(max_examples=200, deadline=None)
    @given(
        expr=exprs(),
        path=st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=7),
    )
    def test_single_expr_agrees_with_matches_path(self, expr, path):
        m = YFilterMatcher()
        m.add(expr, "k")
        expected = {"k"} if matches_path(expr, tuple(path)) else set()
        assert m.match(tuple(path)) == expected
