"""Tests for advertisement-generation internals (cycle regions,
laminar merging) and generation edge cases."""


from repro.adverts.generator import (
    _build_advertisement,
    _merge_overlaps,
    _partially_overlap,
    generate_advertisements,
)
from repro.adverts.model import Lit, Rep
from repro.dtd import parse_dtd


class TestIntervalHandling:
    def test_partially_overlap(self):
        assert _partially_overlap((0, 3), (2, 5))
        assert not _partially_overlap((0, 3), (3, 5))  # disjoint (touching)
        assert not _partially_overlap((0, 5), (1, 3))  # nested
        assert not _partially_overlap((1, 3), (0, 5))  # nested, reversed

    def test_merge_overlaps_makes_laminar(self):
        merged = _merge_overlaps([(0, 3), (2, 5)])
        assert merged == [(0, 5)]

    def test_merge_keeps_nested(self):
        merged = _merge_overlaps([(0, 5), (1, 3)])
        assert sorted(merged) == [(0, 5), (1, 3)]

    def test_merge_chains(self):
        merged = _merge_overlaps([(0, 2), (1, 4), (3, 6)])
        assert merged == [(0, 6)]

    def test_merge_drops_duplicates(self):
        assert _merge_overlaps([(0, 2), (0, 2)]) == [(0, 2)]


class TestBuildAdvertisement:
    def test_plain_path(self):
        advert = _build_advertisement(("a", "b", "c"), [])
        assert advert.nodes == (Lit(("a", "b", "c")),)

    def test_single_region(self):
        advert = _build_advertisement(("a", "b", "c", "d"), [(1, 3)])
        assert str(advert) == "/a(/b/c)+/d"

    def test_nested_regions(self):
        advert = _build_advertisement(
            ("a", "b", "c", "d", "e"), [(1, 4), (2, 3)]
        )
        assert str(advert) == "/a(/b(/c)+/d)+/e"
        assert advert.kind == "embedded-recursive"

    def test_disjoint_regions(self):
        advert = _build_advertisement(
            ("a", "b", "c", "d", "e"), [(1, 2), (3, 4)]
        )
        assert str(advert) == "/a(/b)+/c(/d)+/e"
        assert advert.kind == "series-recursive"

    def test_region_at_start(self):
        advert = _build_advertisement(("a", "b"), [(0, 1)])
        assert str(advert) == "(/a)+/b"
        assert isinstance(advert.nodes[0], Rep)


class TestGenerationEdgeCases:
    def test_single_element_dtd(self):
        dtd = parse_dtd("<!ELEMENT only (#PCDATA)>")
        adverts = generate_advertisements(dtd)
        assert [str(a) for a in adverts] == ["/only"]

    def test_self_recursive_root(self):
        dtd = parse_dtd("<!ELEMENT r (r | leaf)*><!ELEMENT leaf EMPTY>")
        adverts = {str(a) for a in generate_advertisements(dtd)}
        assert "/r" in adverts
        assert "(/r)+/r" in adverts or "/r(/r)+" in adverts or any(
            "(/r)+" in a for a in adverts
        )
        assert any("leaf" in a for a in adverts)

    def test_max_path_length_bounds_output(self):
        dtd = parse_dtd("<!ELEMENT r (r | leaf)*><!ELEMENT leaf EMPTY>")
        short = generate_advertisements(dtd, max_path_length=3)
        for advert in short:
            assert advert.min_length() <= 3

    def test_deterministic(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a*, b?)><!ELEMENT a (b*)><!ELEMENT b EMPTY>"
        )
        first = [str(a) for a in generate_advertisements(dtd)]
        second = [str(a) for a in generate_advertisements(dtd)]
        assert first == second

    def test_no_duplicate_advertisements(self):
        from repro.dtd import nitf_dtd

        adverts = generate_advertisements(nitf_dtd())
        rendered = [str(a) for a in adverts]
        assert len(rendered) == len(set(rendered))
