"""The sharded matching engine: contract, invariants, equivalence.

Four layers of assurance for ``matching_engine="sharded"``:

* engine-contract and placement tests on :class:`ShardedMatcher`
  directly (root homing, floating shard, per-shard cache generations,
  skew-triggered splits with live migration);
* Hypothesis differentials against ``LinearMatcher`` under churn;
* a stateful churn machine interleaving SUB/UNSUB/ADV/merge-sweep/
  rebalance/snapshot-restore on a sharded broker against a
  shared-engine reference broker fed the identical message stream;
* the audited workload (six routing invariants) run end-to-end with
  the sharded engine, plus executor-path and persistence round-trips.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
    run_state_machine_as_test,
)

from repro.adverts import Advertisement
from repro.broker import (
    AdvertiseMsg,
    Broker,
    PublishMsg,
    RoutingConfig,
    SubscribeMsg,
    UnsubscribeMsg,
)
from repro.broker.persistence import restore, snapshot
from repro.broker.strategies import MergingMode
from repro.dtd.samples import psd_dtd
from repro.matching import LinearMatcher, ShardedMatcher
from repro.matching.sharded import root_element
from repro.merging.engine import PathUniverse
from repro.xmldoc import Publication
from repro.xpath import parse_xpath
from repro.xpath.ast import WILDCARD


def x(text):
    return parse_xpath(text)


def build(*texts, **kwargs):
    m = ShardedMatcher(**kwargs)
    for text in texts:
        m.add(x(text), text)
    return m


# -- placement -------------------------------------------------------------


class TestPlacement:
    def test_root_element(self):
        assert root_element(x("/a/b")) == "a"
        assert root_element(x("/a//b")) == "a"
        assert root_element(x("a/b")) is None        # relative
        assert root_element(x("//b")) is None        # relative
        assert root_element(x("/*/b")) is None       # wildcard root
        assert root_element(x("/a[@k]/b")) == "a"

    def test_anchored_exprs_live_in_their_root_shard(self):
        m = build("/a/b", "/a/c")
        shard = m._expr_shard[x("/a/b")]
        assert shard is m._shards[m.shard_index_for_root("a")]
        assert shard is m._expr_shard[x("/a/c")]
        assert len(m.floating.engine) == 0

    def test_rootless_exprs_live_in_the_floating_shard(self):
        m = build("//b", "b/c", "/*/d")
        assert len(m.floating.engine) == 3
        assert all(len(s.engine) == 0 for s in m._shards)

    def test_hashing_is_process_stable(self):
        # crc32, not the salted str hash: the multiprocess backend must
        # shard identically in every worker.
        import zlib

        m = ShardedMatcher(shard_count=4)
        assert m.shard_index_for_root("abc") == zlib.crc32(b"abc") % 4

    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            ShardedMatcher(shard_count=0)
        with pytest.raises(ValueError):
            RoutingConfig(matching_engine="sharded", shard_count=0)


# -- engine contract -------------------------------------------------------


class TestEngineContract:
    def test_match_unions_home_and_floating(self):
        m = build("/a/b", "//b", "/q/b")
        assert m.match(("a", "b")) == {"/a/b", "//b"}
        assert m.match(("q", "b")) == {"/q/b", "//b"}
        assert m.match(("z", "b")) == {"//b"}
        assert m.match(()) == set()

    def test_duplicate_exprs_under_distinct_keys(self):
        m = ShardedMatcher()
        m.add(x("/a/b"), "k1")
        m.add(x("/a/b"), "k2")
        assert m.match(("a", "b")) == {"k1", "k2"}
        assert m.keys_of(x("/a/b")) == {"k1", "k2"}
        assert len(m) == 1
        m.remove(x("/a/b"), "k1")
        assert m.match(("a", "b")) == {"k2"}
        m.remove(x("/a/b"), "k2")
        assert m.match(("a", "b")) == set()
        assert len(m) == 0

    def test_remove_absent_is_noop(self):
        m = build("/a/b")
        version = m.version
        m.remove(x("/z/z"), "nope")
        m.remove(x("/a/b"), "wrong-key")
        assert m.version == version
        assert m.match(("a", "b")) == {"/a/b"}

    def test_predicated_exprs(self):
        m = build("/a/b[@k='1']", "//c[@j]")
        assert m.match(("a", "b"), ({}, {"k": "1"})) == {"/a/b[@k='1']"}
        assert m.match(("a", "b"), ({}, {"k": "2"})) == set()
        assert m.match(("z", "c"), ({}, {"j": "x"})) == {"//c[@j]"}

    def test_clear_keeps_learned_assignment(self):
        m = build("/a/b", "//b")
        m._assignment["a"] = 2
        m.clear()
        assert len(m) == 0
        assert m.shard_index_for_root("a") == 2
        m.add(x("/a/b"), "k")
        assert m._expr_shard[x("/a/b")] is m._shards[2]
        m.check_invariants()

    def test_stats_shape(self):
        m = build("/a/b", "//b")
        m.match(("a", "b"))
        stats = m.stats()
        assert stats["exprs"] == 2
        assert stats["floating_exprs"] == 1
        assert stats["shard_count"] == 4
        assert len(stats["shards"]) == 5  # root shards + floating
        assert {"probes", "cache_hits", "generation"} <= set(
            stats["shards"][0]
        )

    def test_version_bumps_only_on_real_changes(self):
        m = ShardedMatcher()
        v0 = m.version
        m.add(x("/a/b"), "k")
        assert m.version > v0
        v1 = m.version
        m.add(x("/a/b"), "k")  # duplicate: no result change
        assert m.version == v1


# -- per-shard caching -----------------------------------------------------


def _two_roots_in_distinct_shards(m):
    """Two concrete roots homed in different shards of *m*."""
    first = "r0"
    for i in range(1, 64):
        candidate = "r%d" % i
        if m.shard_index_for_root(candidate) != m.shard_index_for_root(first):
            return first, candidate
    raise AssertionError("no pair of distinct-shard roots found")


class TestPerShardCaching:
    def test_mutation_in_one_shard_keeps_other_shards_cached(self):
        m = ShardedMatcher(shard_count=4)
        a, b = _two_roots_in_distinct_shards(m)
        m.add(x("/%s/x" % a), "ka")
        m.add(x("/%s/y" % b), "kb")
        path_b = (b, "y")
        keys, misses = m.match_cached(path_b, None, lambda: None)
        assert keys == frozenset({"kb"}) and misses > 0
        keys, misses = m.match_cached(path_b, None, lambda: None)
        assert keys == frozenset({"kb"}) and misses == 0
        # Churn in a's shard: b's cached probe must stay warm — this is
        # the invalidation locality the broker-global generation lacked.
        m.add(x("/%s/z" % a), "ka2")
        m.remove(x("/%s/x" % a), "ka")
        keys, misses = m.match_cached(path_b, None, lambda: None)
        assert keys == frozenset({"kb"}) and misses == 0
        # ... while a's own probe correctly recomputes.
        keys, misses = m.match_cached((a, "z"), None, lambda: None)
        assert keys == frozenset({"ka2"}) and misses > 0

    def test_floating_mutation_invalidates_every_probe(self):
        m = build("/a/b")
        m.match_cached(("a", "b"), None, lambda: None)
        m.add(x("//b"), "rel")
        keys, misses = m.match_cached(("a", "b"), None, lambda: None)
        assert keys == frozenset({"/a/b", "rel"}) and misses > 0

    def test_attributes_fn_called_only_on_miss(self):
        calls = []

        def attributes_fn():
            calls.append(1)
            return None

        m = build("/a/b")
        m.match_cached(("a", "b"), None, attributes_fn)
        assert calls
        calls.clear()
        m.match_cached(("a", "b"), None, attributes_fn)
        assert calls == []


# -- rebalancing -----------------------------------------------------------


class TestRebalancing:
    def _skewed(self, per_root=40, roots=3):
        # Three roots over two shards: the fuller shard holds >= 2/3 of
        # the table whichever way the roots hash, so a 1.25 factor
        # always trips the trigger while staying above 1.0.
        m = ShardedMatcher(
            shard_count=2,
            min_split_size=16,
            rebalance_factor=1.25,
            rebalance_interval=10_000,  # manual control
            auto_rebalance=False,
        )
        lin = LinearMatcher()
        for r in range(roots):
            for i in range(per_root):
                e = x("/hot%d/c%d" % (r, i))
                m.add(e, (r, i))
                lin.add(e, (r, i))
        return m, lin

    def test_split_migrates_under_invariants_and_preserves_matches(self):
        m, lin = self._skewed()
        m.check_invariants()
        assert m.maybe_rebalance()
        assert m.rebalances == 1
        assert m.shard_count == 3
        assert m.migrated_exprs > 0
        assert m.rebalance_log and m.rebalance_log[0]["exprs"] > 0
        m.check_invariants()
        for r in range(3):
            for i in range(40):
                path = ("hot%d" % r, "c%d" % i)
                assert m.match(path) == lin.match(path), path

    def test_split_reduces_max_shard_population(self):
        m, _ = self._skewed()
        before = max(len(s.engine) for s in m._shards)
        assert m.maybe_rebalance()
        after = max(len(s.engine) for s in m._shards)
        assert after < before

    def test_remove_finds_exprs_after_migration(self):
        m, lin = self._skewed()
        assert m.maybe_rebalance()
        moved_roots = set(m.rebalance_log[0]["roots"])
        assert moved_roots
        for expr in list(m.exprs()):
            if root_element(expr) in moved_roots:
                for key in list(m.keys_of(expr)):
                    m.remove(expr, key)
                    lin.remove(expr, key)
        m.check_invariants()
        for r in range(3):
            path = ("hot%d" % r, "c0")
            assert m.match(path) == lin.match(path)

    def test_single_root_shard_cannot_split(self):
        # Root granularity is the partition floor: a shard hosting one
        # root refuses to split no matter how large it is.
        m = ShardedMatcher(shard_count=1, auto_rebalance=False)
        for i in range(64):
            m.add(x("/only/c%d" % i), i)
        assert not m.split_shard(m._shards[0])
        assert m.shard_count == 1
        m.check_invariants()

    def test_auto_rebalance_triggers_on_mutation_count(self):
        m = ShardedMatcher(
            shard_count=2, min_split_size=8, rebalance_factor=1.3,
            rebalance_interval=50,
        )
        for i in range(400):
            m.add(x("/hot%d/c%d" % (i % 3, i)), i)
        assert m.rebalances >= 1
        m.check_invariants()

    def test_no_split_when_balanced(self):
        m = ShardedMatcher(shard_count=4, auto_rebalance=False)
        for i in range(200):
            m.add(x("/r%d/c%d" % (i % 16, i)), i)
        # 16 uniform roots over 4 shards: no shard is hot enough.
        assert not m.maybe_rebalance()


# -- stale-table rebalancing (bugfix regression) ---------------------------


class TestStaleRebalance:
    """A rebalance racing a pending merge-sweep dirty-rebuild must not
    migrate from shards whose resident expressions are about to be
    discarded (they are a snapshot of the pre-sweep table)."""

    def _merge_broker(self):
        universe = PathUniverse.from_dtd(psd_dtd(), max_depth=6)
        config = RoutingConfig(
            advertisements=False,
            merging=MergingMode.PERFECT,
            merge_interval=1_000_000,
            matching_engine="sharded",
            shard_count=2,
        )
        broker = Broker("b1", config=config, universe=universe)
        broker.connect("n1")
        for leaf in ("uid", "accession", "created-date", "seq-rev-date",
                     "txt-rev-date"):
            broker.handle(_sub(_PSD_HEADER + "/" + leaf), "n1")
        return broker

    def test_rebalance_on_stale_engine_rebuilds_first(self):
        broker = self._merge_broker()
        broker.run_merge_sweep()
        assert broker.merge_log
        assert broker._shared_dirty
        engine = broker.shared  # NOT _shared_engine(): stay stale
        assert engine.stale
        # Force the skew trigger so a split would certainly fire, then
        # rebalance while the dirty rebuild is still pending.
        engine.rebalance_factor = 1.05
        engine.min_split_size = 1
        engine.maybe_rebalance()
        # The hook rebuilt the mirror before any migration decision ...
        assert not engine.stale
        assert not broker._shared_dirty
        engine.check_invariants()
        # ... so the post-sweep table answers correctly.
        publication = Publication(
            doc_id="d", path_id=0,
            path=("ProteinDatabase", "ProteinEntry", "header", "uid"),
        )
        assert broker._publication_keys(publication) == frozenset({"n1"})

    def test_stale_engine_without_hook_refuses_to_migrate(self):
        m, _ = TestRebalancing()._skewed()
        m.mark_stale()
        before = [len(s.engine) for s in m._shards]
        assert not m.maybe_rebalance()
        assert m.stale  # still pending: nothing rebuilt, nothing moved
        assert [len(s.engine) for s in m._shards] == before
        assert not m.rebalance_log

    def test_auto_rebalance_suppressed_while_stale(self):
        m = ShardedMatcher(
            shard_count=2, min_split_size=8, rebalance_factor=1.3,
            rebalance_interval=10,
        )
        m.mark_stale()
        for i in range(200):
            m.add(x("/hot%d/c%d" % (i % 3, i)), i)
        assert m.rebalances == 0 and not m.rebalance_log

    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(st.integers(min_value=0, max_value=2 ** 30),
                     min_size=4, max_size=30),
    )
    def test_interleaved_sweeps_and_rebalances_stay_equivalent(self, ops):
        """Hypothesis interleaving: SUB/UNSUB/merge-sweep/rebalance in
        any order leaves the sharded broker matching exactly like the
        shared-engine reference, with partition invariants intact."""
        universe = PathUniverse.from_dtd(psd_dtd(), max_depth=6)
        sharded, reference = _make_pair(universe)
        live = []
        for op in ops:
            kind = op % 4
            if kind == 0:
                text = _POOL[op % len(_POOL)]
                msg = SubscribeMsg(expr=x(text),
                                   subscriber_id="s%d" % (op % 3))
                sharded.handle(msg, _HOPS[op % len(_HOPS)])
                reference.handle(msg, _HOPS[op % len(_HOPS)])
                live.append((text, op % 3, _HOPS[op % len(_HOPS)]))
            elif kind == 1 and live:
                text, s, hop = live.pop(op % len(live))
                msg = UnsubscribeMsg(expr=x(text), subscriber_id="s%d" % s)
                sharded.handle(msg, hop)
                reference.handle(msg, hop)
            elif kind == 2:
                sharded.run_merge_sweep()
                reference.run_merge_sweep()
            else:
                engine = sharded.shared  # possibly stale: the race
                engine.rebalance_factor = 1.1
                engine.min_split_size = 1
                engine.maybe_rebalance()
                engine.check_invariants()
        for i, path in enumerate(PROBES):
            publication = Publication(doc_id="d%d" % i, path_id=0, path=path)
            got = sharded._publication_keys(publication)
            want = reference._publication_keys(publication)
            assert got == want, (path, got, want)
        sharded._shared_engine().check_invariants()


# -- floating-only workloads (rebalancer no-op) ----------------------------


class TestFloatingOnlyWorkload:
    """All-relative/wildcard-root expressions live in the floating
    shard, which the rebalancer never partitions: the whole machinery
    must stay a no-op while matching stays correct under churn."""

    _FLOATING = ("//b", "//b/c", "a/b", "b", "/*/b", "/*/d", "//c[@j]",
                 "b/c", "//author")

    def test_rebalancer_is_a_noop(self):
        m = ShardedMatcher(
            shard_count=2, min_split_size=1, rebalance_factor=1.05,
            rebalance_interval=5,
        )
        lin = LinearMatcher()
        live = []
        for i in range(120):
            text = self._FLOATING[i % len(self._FLOATING)]
            e = x(text)
            m.add(e, i)
            lin.add(e, i)
            live.append((e, i))
            if i % 3 == 0 and live:
                e, k = live.pop(i % len(live))
                m.remove(e, k)
                lin.remove(e, k)
            m.maybe_rebalance()  # explicit, on top of the auto cadence
        assert m.rebalances == 0
        assert m.rebalance_log == []
        assert m.migrated_exprs == 0
        assert m.shard_count == 2
        assert all(len(s.engine) == 0 for s in m._shards)
        m.check_invariants()
        for path in (("a", "b"), ("z", "b"), ("q", "b", "c"), ("b",),
                     ("x", "d"), ()):
            assert m.match(path) == lin.match(path), path
            a = tuple(
                {"j": "1"} if i == len(path) - 1 else {}
                for i in range(len(path))
            ) or None
            assert m.match(path, a) == lin.match(path, a), (path, "attrs")


# -- Hypothesis differential ----------------------------------------------

_texts = st.lists(
    st.sampled_from((
        "/a/b", "/a/*", "/a/b/c", "/a//c", "/b/c", "/b/*/d", "/c/a",
        "//b", "//b/c", "a/b", "b", "/*/b", "/a/b[@k='1']", "//c[@j]",
    )),
    min_size=1,
    max_size=24,
)
_ops = st.lists(st.integers(min_value=0, max_value=2 ** 30), max_size=24)


@settings(max_examples=120, deadline=None)
@given(_texts, _ops, st.integers(min_value=1, max_value=5))
def test_differential_vs_linear_under_churn(texts, ops, shard_count):
    m = ShardedMatcher(
        shard_count=shard_count,
        min_split_size=2,
        rebalance_interval=7,
        rebalance_factor=1.5,
    )
    lin = LinearMatcher()
    live = []
    for i, text in enumerate(texts):
        e = x(text)
        m.add(e, i)
        lin.add(e, i)
        live.append((e, i))
    for op in ops:
        if live and op % 3 == 0:
            e, k = live.pop(op % len(live))
            m.remove(e, k)
            lin.remove(e, k)
        elif op % 3 == 1:
            e = x(["/a/b", "//b", "/c/a", "b"][op % 4])
            m.add(e, ("op", op))
            lin.add(e, ("op", op))
            live.append((e, ("op", op)))
        else:
            m.maybe_rebalance()
    m.check_invariants()
    probes = [
        ("a", "b"), ("a", "b", "c"), ("a", "q", "c"), ("b", "c"),
        ("b", "z", "d"), ("c", "a"), ("z", "b"), ("b",), (),
        ("a", "b", "b", "c"),
    ]
    attrs = ({}, {"k": "1"}, {"j": "2"}, {})
    for path in probes:
        assert m.match(path) == lin.match(path), path
        keys, _ = m.match_cached(path, None, lambda: None)
        assert keys == frozenset(lin.match(path)), path
        a = attrs[: len(path)]
        assert m.match(path, a) == lin.match(path, a), (path, "attrs")


# -- the churn state machine (satellite: rebalance test coverage) ----------


_PSD_HEADER = "/ProteinDatabase/ProteinEntry/header"

PROBES = (
    ("a", "b"),
    ("a", "b", "c"),
    ("a", "z", "c"),
    ("b", "c"),
    ("c", "d"),
    ("z", "b"),
    ("ProteinDatabase", "ProteinEntry", "header", "uid"),
    ("ProteinDatabase", "ProteinEntry", "header", "accession"),
    ("ProteinDatabase", "ProteinEntry", "protein", "name"),
)

# Abstract roots exercise shard placement; the PSD paths live in the
# merge universe, so sweeps can actually rewrite the table under them.
_POOL = (
    "/a/b", "/a/c", "/a/*", "/a/b/c", "/a//c",
    "/b/c", "/b/*", "/c/d",
    "//b", "a/b", "/*/b",
    _PSD_HEADER + "/uid",
    _PSD_HEADER + "/accession",
    _PSD_HEADER + "/created-date",
    _PSD_HEADER + "/seq-rev-date",
    _PSD_HEADER + "/txt-rev-date",
    "/ProteinDatabase/ProteinEntry/protein/name",
    "/ProteinDatabase/ProteinEntry/protein/alt-name",
    "//author",
)

_HOPS = ("n1", "n2", "c1")


def _make_pair(universe):
    """A sharded broker and a shared-engine reference broker, identical
    in everything but the matching engine."""

    def make(engine):
        config = RoutingConfig(
            advertisements=False,
            covering=True,
            merging=MergingMode.IMPERFECT,
            max_imperfect_degree=0.5,
            merge_interval=1_000_000,  # sweeps fire only explicitly
            matching_engine=engine,
            shard_count=3,
        )
        broker = Broker("b1", config=config, universe=universe)
        for n in ("n1", "n2"):
            broker.connect(n)
        broker.attach_client("c1")
        return broker

    return make("sharded"), make("shared")


class ShardedChurnMachine(RuleBasedStateMachine):
    """SUB/UNSUB/ADV/merge-sweep/rebalance/snapshot-restore, with the
    sharded broker checked against the shared-engine reference after
    every step: identical match sets on every probe publication, and
    the partition invariants intact."""

    @initialize()
    def setup(self):
        self.universe = PathUniverse.from_dtd(psd_dtd(), max_depth=6)
        self.sharded, self.reference = _make_pair(self.universe)
        self.pub_seq = 0

    def _publication(self, path):
        self.pub_seq += 1
        return Publication(
            doc_id="d%d" % self.pub_seq, path_id=0, path=path
        )

    @rule(
        text=st.sampled_from(_POOL),
        hop=st.sampled_from(_HOPS),
        data=st.integers(min_value=0, max_value=3),
    )
    def subscribe(self, text, hop, data):
        msg = SubscribeMsg(expr=x(text), subscriber_id="s%d" % data)
        self.sharded.handle(msg, hop)
        self.reference.handle(msg, hop)

    @rule(
        text=st.sampled_from(_POOL),
        hop=st.sampled_from(_HOPS),
        data=st.integers(min_value=0, max_value=3),
    )
    def unsubscribe(self, text, hop, data):
        msg = UnsubscribeMsg(expr=x(text), subscriber_id="s%d" % data)
        self.sharded.handle(msg, hop)
        self.reference.handle(msg, hop)

    @rule(root=st.sampled_from(("a", "b", "c")), hop=st.sampled_from(_HOPS))
    def advertise(self, root, hop):
        msg = AdvertiseMsg(
            adv_id="adv-%s" % root,
            advert=Advertisement.from_tests((root,)),
            publisher_id="p",
        )
        self.sharded.handle(msg, hop)
        self.reference.handle(msg, hop)

    @rule()
    def merge_sweep(self):
        self.sharded.run_merge_sweep()
        self.reference.run_merge_sweep()

    @rule()
    def rebalance(self):
        engine = self.sharded._shared_engine()
        engine.rebalance_factor = 1.2
        engine.min_split_size = 1
        engine.maybe_rebalance()

    @rule()
    def snapshot_restore(self):
        self.sharded = restore(snapshot(self.sharded),
                               universe=self.universe)
        self.reference = restore(snapshot(self.reference),
                                 universe=self.universe)

    @invariant()
    def match_sets_equal_and_partition_consistent(self):
        if not hasattr(self, "sharded"):
            return
        for path in PROBES:
            publication = self._publication(path)
            got = self.sharded._publication_keys(publication)
            want = self.reference._publication_keys(publication)
            assert got == want, (path, got, want)
        self.sharded._shared_engine().check_invariants()


TestShardedChurnMachine = ShardedChurnMachine.TestCase
TestShardedChurnMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)


# -- audited workload ------------------------------------------------------


def test_audited_workload_clean_with_sharded_engine():
    """The six routing invariants hold end-to-end on a 7-broker overlay
    matching through the sharded engine (zero audit violations)."""
    from repro.audit.harness import run_audited_workload

    _, _, report = run_audited_workload(
        levels=3,
        xpes_per_leaf=8,
        documents=3,
        seed=11,
        matching_engine="sharded",
        shard_count=3,
    )
    assert report.ok, report.problems()


# -- broker integration ----------------------------------------------------


def _sub(text, subscriber="s"):
    return SubscribeMsg(expr=x(text), subscriber_id=subscriber)


def _pub(path, doc_id="d1"):
    return PublishMsg(
        publication=Publication(doc_id=doc_id, path_id=0, path=path),
        publisher_id="pub",
    )


def _wire(config):
    broker = Broker("b1", config=config)
    for n in ("n1", "n2"):
        broker.connect(n)
    broker.attach_client("c1")
    return broker


def _feed(broker):
    broker.handle(_sub("/a/b"), "n1")
    broker.handle(_sub("/a//c"), "n2")
    broker.handle(_sub("//b"), "n2")
    broker.handle(_sub("/q/r"), "n1")


BROKER_PROBES = (("a", "b"), ("a", "z", "c"), ("q", "r"), ("z", "b"), ("n",))


def test_sharded_broker_matches_like_auto_and_shared():
    sharded = _wire(RoutingConfig(matching_engine="sharded", shard_count=3))
    shared = _wire(RoutingConfig(matching_engine="shared"))
    auto = _wire(RoutingConfig())
    for broker in (sharded, shared, auto):
        _feed(broker)
    for path in BROKER_PROBES:
        publication = Publication(doc_id="d", path_id=0, path=path)
        want = auto._publication_keys(publication)
        assert sharded._publication_keys(publication) == want, path
        assert shared._publication_keys(publication) == want, path


def test_sharded_broker_describe_and_per_shard_locality():
    broker = _wire(RoutingConfig(matching_engine="sharded", shard_count=3))
    _feed(broker)
    summary = broker.describe()
    assert summary["matching_engine"] == "sharded"
    assert summary["shared_automaton"]["shard_count"] >= 3
    engine = broker._shared_engine()
    # Second identical publication is a pure per-shard cache hit...
    broker._publication_keys(Publication(doc_id="1", path_id=0,
                                         path=("q", "r")))
    keys, misses = engine.match_cached(("q", "r"), None, lambda: None)
    assert misses == 0
    # ... and churn under a *different* root keeps it warm, unless the
    # two roots happen to share a shard.
    if engine.shard_index_for_root("a") != engine.shard_index_for_root("q"):
        broker.handle(_sub("/a/extra"), "n1")
        keys, misses = engine.match_cached(("q", "r"), None, lambda: None)
        assert misses == 0


def test_executor_path_equals_serial_path():
    serial = _wire(RoutingConfig(matching_engine="sharded", shard_count=4))
    pooled = _wire(RoutingConfig(matching_engine="sharded", shard_count=4))
    _feed(serial)
    _feed(pooled)
    with ThreadPoolExecutor(max_workers=3) as pool:
        pooled.matching_executor = pool
        for path in BROKER_PROBES:
            publication = Publication(doc_id="d", path_id=0, path=path)
            assert pooled._publication_keys(publication) == \
                serial._publication_keys(publication), path
        pooled.matching_executor = None


def test_merge_sweep_rebuild_preserves_matches():
    universe = PathUniverse.from_dtd(psd_dtd(), max_depth=6)
    config = RoutingConfig(
        advertisements=False,
        merging=MergingMode.PERFECT,
        merge_interval=1_000_000,
        matching_engine="sharded",
        shard_count=3,
    )
    broker = Broker("b1", config=config, universe=universe)
    broker.connect("n1")
    # All five children of header: the perfect merger header/* exists.
    for leaf in ("uid", "accession", "created-date", "seq-rev-date",
                 "txt-rev-date"):
        broker.handle(_sub(_PSD_HEADER + "/" + leaf), "n1")
    broker.run_merge_sweep()
    assert broker.merge_log  # a merge actually happened
    assert broker._shared_dirty  # mirror rebuild is lazy
    publication = Publication(
        doc_id="d", path_id=0,
        path=("ProteinDatabase", "ProteinEntry", "header", "uid"),
    )
    keys = broker._publication_keys(publication)
    assert keys == frozenset({"n1"})
    assert not broker._shared_dirty
    broker._shared_engine().check_invariants()


def test_persistence_roundtrip_preserves_shard_config():
    config = RoutingConfig(matching_engine="sharded", shard_count=5)
    broker = _wire(config)
    _feed(broker)
    restored = restore(snapshot(broker))
    assert restored.config.matching_engine == "sharded"
    assert restored.config.shard_count == 5
    assert isinstance(restored.shared, ShardedMatcher)
    for path in BROKER_PROBES:
        publication = Publication(doc_id="d", path_id=0, path=path)
        assert restored._publication_keys(publication) == \
            broker._publication_keys(publication), path
    restored._shared_engine().check_invariants()


def test_wildcard_root_paths_and_exprs_stay_sound():
    broker = _wire(RoutingConfig(matching_engine="sharded"))
    broker.handle(_sub("/*/b"), "n1")
    broker.handle(_sub("/a/b"), "n2")
    publication = Publication(doc_id="d", path_id=0, path=("a", "b"))
    assert broker._publication_keys(publication) == frozenset({"n1", "n2"})
    assert WILDCARD not in [
        root_element(e) for e in broker._shared_engine().exprs()
    ]
