"""Unit tests for the merging rules and engine (paper §4.3)."""

import pytest

from repro.covering.algorithms import covers
from repro.covering.subscription_tree import SubscriptionTree
from repro.dtd import parse_dtd
from repro.merging import (
    MergingEngine,
    PathUniverse,
    merge_general,
    merge_one_difference,
    merge_pair,
    merge_two_differences,
)
from repro.xpath import parse_xpath


def x(text):
    return parse_xpath(text)


class TestRuleOne:
    def test_paper_example(self):
        """§4.3: a/*/c/d and a/*/c/e merge to a/*/c/*."""
        merger = merge_one_difference([x("a/*/c/d"), x("a/*/c/e")])
        assert merger == x("a/*/c/*")

    def test_more_than_two_candidates(self):
        merger = merge_one_difference(
            [x("/a/b/a"), x("/a/b/b"), x("/a/b/d")]
        )
        assert merger == x("/a/b/*")

    def test_requires_same_shape(self):
        assert merge_one_difference([x("/a/b"), x("/a/b/c")]) is None
        assert merge_one_difference([x("/a/b"), x("a/b")]) is None
        assert merge_one_difference([x("/a/b"), x("/a//b")]) is None

    def test_two_differences_rejected(self):
        assert merge_one_difference([x("/a/b"), x("/c/d")]) is None

    def test_wildcard_difference_rejected(self):
        # /a/* covers /a/b — covering, not merging.
        assert merge_one_difference([x("/a/*"), x("/a/b")]) is None

    def test_identical_rejected(self):
        assert merge_one_difference([x("/a/b"), x("/a/b")]) is None

    def test_merger_covers_inputs(self):
        inputs = [x("/a/b/c"), x("/a/q/c")]
        merger = merge_one_difference(inputs)
        assert all(covers(merger, s) for s in inputs)


class TestRuleTwo:
    def test_paper_example(self):
        """§4.3: /a/c/*/* and /a//c/*/c merge to /a//c/*/*."""
        merger = merge_two_differences(x("/a/c/*/*"), x("/a//c/*/c"))
        assert merger == x("/a//c/*/*")

    def test_symmetric(self):
        merger = merge_two_differences(x("/a//c/*/c"), x("/a/c/*/*"))
        assert merger == x("/a//c/*/*")

    def test_requires_exactly_one_of_each(self):
        assert merge_two_differences(x("/a/b/c"), x("/a/q/z")) is None
        assert merge_two_differences(x("/a/b"), x("/a/b")) is None

    def test_operator_only_difference_rejected(self):
        # Covering relation: /a//b covers /a/b.
        assert merge_two_differences(x("/a/b"), x("/a//b")) is None

    def test_merger_covers_inputs(self):
        s1, s2 = x("/a/c/*/*"), x("/a//c/*/c")
        merger = merge_two_differences(s1, s2)
        assert covers(merger, s1)
        assert covers(merger, s2)


class TestRuleThree:
    def test_differing_middles(self):
        merger = merge_general(x("/a/b/c/z"), x("/a/q/r/z"))
        assert merger == x("/a//z")

    def test_merger_covers_inputs(self):
        s1, s2 = x("/a/b/c/z"), x("/a/q/r/s/z")
        merger = merge_general(s1, s2)
        assert merger is not None
        assert covers(merger, s1) and covers(merger, s2)

    def test_requires_common_prefix_and_suffix(self):
        assert merge_general(x("/a/b"), x("/c/b/x")) is None
        assert merge_general(x("/a/b"), x("/a/c")) is not None or True

    def test_identical_rejected(self):
        assert merge_general(x("/a/b"), x("/a/b")) is None

    def test_different_anchoring_rejected(self):
        assert merge_general(x("/a/b/c"), x("a/q/c")) is None


class TestMergePair:
    def test_prefers_rule_one(self):
        assert merge_pair(x("/a/b/z"), x("/a/c/z")) == x("/a/*/z")

    def test_falls_through_to_rule_three(self):
        merger = merge_pair(x("/a/b/c/z"), x("/a/x/y/w/z"))
        assert merger == x("/a//z")


UNIVERSE_DTD = """
<!ELEMENT r (a, b?)>
<!ELEMENT a (c?, d?, e?)>
<!ELEMENT b (c?)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA)>
<!ELEMENT e (#PCDATA)>
"""


class TestPathUniverse:
    def universe(self):
        return PathUniverse.from_dtd(parse_dtd(UNIVERSE_DTD))

    def test_enumerates_paths(self):
        universe = self.universe()
        assert ("r", "a", "c") in universe.paths
        assert universe.match_count(x("/r/a")) > 0

    def test_perfect_merger_degree_zero(self):
        universe = self.universe()
        # /r/a/* vs the full sibling set {c,d,e}: perfect.
        degree = universe.imperfect_degree(
            x("/r/a/*"), [x("/r/a/c"), x("/r/a/d"), x("/r/a/e")]
        )
        assert degree == 0.0

    def test_imperfect_merger_degree(self):
        universe = self.universe()
        # /r/a/* vs only {c,d}: e slips in -> degree 1/3.
        degree = universe.imperfect_degree(
            x("/r/a/*"), [x("/r/a/c"), x("/r/a/d")]
        )
        assert degree == pytest.approx(1.0 / 3.0)

    def test_unmatched_merger_has_degree_zero(self):
        universe = self.universe()
        assert universe.imperfect_degree(x("/zzz"), [x("/r/a/c")]) == 0.0

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            PathUniverse([])


class TestMergingEngine:
    def universe(self):
        return PathUniverse.from_dtd(parse_dtd(UNIVERSE_DTD))

    def build_tree(self, *texts):
        tree = SubscriptionTree()
        for t in texts:
            tree.insert(x(t), t)
        return tree

    def test_perfect_merge_applies(self):
        tree = self.build_tree("/r/a/c", "/r/a/d", "/r/a/e")
        engine = MergingEngine(universe=self.universe(), max_degree=0.0)
        report = engine.merge_tree(tree)
        assert len(report) == 1
        assert report.events[0].merger == x("/r/a/*")
        assert report.events[0].degree == 0.0
        assert tree.top_level_size() == 1
        assert x("/r/a/c") not in tree

    def test_imperfect_merge_blocked_by_budget(self):
        tree = self.build_tree("/r/a/c", "/r/a/d")
        engine = MergingEngine(universe=self.universe(), max_degree=0.0)
        report = engine.merge_tree(tree)
        assert len(report) == 0
        assert tree.top_level_size() == 2

    def test_imperfect_merge_allowed_with_budget(self):
        tree = self.build_tree("/r/a/c", "/r/a/d")
        engine = MergingEngine(universe=self.universe(), max_degree=0.4)
        report = engine.merge_tree(tree)
        assert len(report) == 1
        assert report.events[0].degree == pytest.approx(1.0 / 3.0)

    def test_merged_node_keeps_keys(self):
        tree = self.build_tree("/r/a/c", "/r/a/d", "/r/a/e")
        MergingEngine(universe=self.universe(), max_degree=0.0).merge_tree(tree)
        node = tree.node_of(x("/r/a/*"))
        assert node.keys == {"/r/a/c", "/r/a/d", "/r/a/e"}

    def test_merged_children_reattach(self):
        tree = self.build_tree(
            "/r/a/c", "/r/a/d", "/r/a/e"
        )
        # Give one of them a covered child first.
        tree.insert(x("/r/a/c"), "dup")
        engine = MergingEngine(universe=self.universe(), max_degree=0.0)
        engine.merge_tree(tree)
        tree.validate()

    def test_without_universe_no_merges_at_zero_budget(self):
        tree = self.build_tree("/r/a/c", "/r/a/d", "/r/a/e")
        engine = MergingEngine(universe=None, max_degree=0.0)
        assert len(engine.merge_tree(tree)) == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            MergingEngine(max_degree=-0.1)

    def test_matching_preserved_for_covered_publications(self):
        """Merging must never lose a match (it may add false ones)."""
        tree = self.build_tree("/r/a/c", "/r/a/d", "/r/a/e")
        paths = [("r", "a", "c"), ("r", "a", "d"), ("r", "a", "e")]
        before = {path: tree.match_keys(path) for path in paths}
        MergingEngine(universe=self.universe(), max_degree=0.0).merge_tree(tree)
        for path in paths:
            assert before[path] <= tree.match_keys(path)


# -- the batched sibling covering probe ------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.covering.algorithms import SiblingCoverageProbe  # noqa: E402

_probe_step = st.tuples(
    st.sampled_from(("/", "//", "")),  # "" = relative start (first step)
    st.sampled_from(("a", "b", "c", "d", "*")),
    st.sampled_from(("", "[@k]", "[@k='1']")),
)


@st.composite
def _sibling_groups(draw):
    """A sibling group as the merge sweep sees one: a handful of XPEs
    of assorted shapes (absolute/relative, wildcards, //, predicates)."""
    group = []
    for steps in draw(
        st.lists(
            st.lists(_probe_step, min_size=1, max_size=4),
            min_size=2,
            max_size=6,
        )
    ):
        parts = []
        for index, (sep, test, predicate) in enumerate(steps):
            if index == 0:
                sep = sep or ""
            else:
                sep = sep or "/"
            parts.append(sep + test + predicate)
        group.append(x("".join(parts)))
    return group


@settings(max_examples=250, deadline=None)
@given(_sibling_groups())
def test_sibling_probe_differential_against_per_pair_covers(group):
    """The batched probe is an exact reformulation of per-pair covers:
    every ordered pair over the group must agree (this is the pin for
    the `_find_pairwise_merge` fast path)."""
    probe = SiblingCoverageProbe(group)
    for i in range(len(group)):
        for j in range(len(group)):
            expected = covers(group[i], group[j])
            assert probe.covers(i, j) == expected, (group[i], group[j])
            if i < j:
                assert probe.either_covers(i, j) == (
                    covers(group[i], group[j]) or covers(group[j], group[i])
                )


def test_sibling_probe_interpreted_fallback(monkeypatch):
    """With the compiled layer disabled the probe must still agree —
    everything routes through the interpreted covers()."""
    from repro.xpath import compiled as _compiled

    monkeypatch.setattr(_compiled, "ENABLED", False)
    group = [x("/a/b"), x("/a/*"), x("a/b"), x("//b"), x("/a/b[@k]")]
    probe = SiblingCoverageProbe(group)
    for i in range(len(group)):
        for j in range(len(group)):
            assert probe.covers(i, j) == covers(group[i], group[j])
