"""Tests for the tracing subsystem and ASCII plotting."""

from repro.dtd.samples import psd_dtd
from repro.broker.strategies import RoutingConfig
from repro.network import ConstantLatency, Overlay, Tracer
from repro.workloads.document_generator import generate_documents


def build_traced_overlay(tracer):
    overlay = Overlay.binary_tree(
        2,
        config=RoutingConfig.with_adv_with_cov(),
        latency_model=ConstantLatency(0.001),
    )
    overlay.attach_tracer(tracer)
    publisher = overlay.attach_publisher("pub", "b2")
    subscriber = overlay.attach_subscriber("sub", "b3")
    publisher.advertise_dtd(psd_dtd())
    overlay.run()
    subscriber.subscribe("/ProteinDatabase")
    overlay.run()
    publisher.publish_document(
        generate_documents(psd_dtd(), 1, seed=2, target_bytes=600)[0]
    )
    overlay.run()
    return overlay


class TestTracer:
    def test_records_all_kinds(self):
        tracer = Tracer()
        build_traced_overlay(tracer)
        kinds = tracer.kinds_seen()
        assert kinds["AdvertiseMsg"] > 0
        assert kinds["SubscribeMsg"] > 0
        assert kinds["PublishMsg"] > 0

    def test_kind_filter(self):
        tracer = Tracer(kinds=["PublishMsg"])
        build_traced_overlay(tracer)
        assert set(tracer.kinds_seen()) == {"PublishMsg"}

    def test_broker_filter(self):
        tracer = Tracer(brokers=["b3"])
        build_traced_overlay(tracer)
        assert {r.broker_id for r in tracer.records} == {"b3"}

    def test_limit_counts_drops(self):
        tracer = Tracer(limit=5)
        build_traced_overlay(tracer)
        assert len(tracer) == 5
        assert tracer.dropped > 0
        assert "dropped" in tracer.format()

    def test_predicate_filter(self):
        tracer = Tracer(predicate=lambda r: "ProteinDatabase" in r.detail)
        build_traced_overlay(tracer)
        assert tracer.records
        assert all("ProteinDatabase" in r.detail for r in tracer.records)

    def test_timestamps_monotone(self):
        tracer = Tracer()
        build_traced_overlay(tracer)
        times = [r.time for r in tracer.records]
        assert times == sorted(times)

    def test_format_contains_details(self):
        tracer = Tracer(kinds=["SubscribeMsg"])
        build_traced_overlay(tracer)
        assert "/ProteinDatabase" in tracer.format()

    def test_by_broker_partition(self):
        tracer = Tracer()
        build_traced_overlay(tracer)
        grouped = tracer.by_broker()
        assert sum(len(v) for v in grouped.values()) == len(tracer)

    def test_limit_drops_are_counted_post_filter(self):
        # records the kind filter rejects never count as drops: with the
        # same workload, kept + dropped must equal the *filtered* total
        unlimited = Tracer(kinds=["PublishMsg"])
        build_traced_overlay(unlimited)
        limited = Tracer(kinds=["PublishMsg"], limit=3)
        build_traced_overlay(limited)
        assert len(limited) == 3
        assert limited.dropped == len(unlimited) - 3

    def test_clear_resets_records_but_keeps_filters(self):
        tracer = Tracer(kinds=["PublishMsg"], limit=3)
        build_traced_overlay(tracer)
        assert len(tracer) == 3 and tracer.dropped > 0
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0
        assert "dropped" not in tracer.format()
        build_traced_overlay(tracer)  # filters and limit still apply
        assert len(tracer) == 3
        assert set(tracer.kinds_seen()) == {"PublishMsg"}


class TestAsciiChart:
    def make_result(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(name="demo", columns=("x", "y1", "y2"))
        for x in range(5):
            result.add_row(x=x, y1=x * 2, y2=10 - x)
        return result

    def test_chart_contains_series_markers(self):
        chart = self.make_result().chart(x_column="x")
        assert "o y1" in chart
        assert "x y2" in chart
        assert "demo" in chart

    def test_axis_labels(self):
        chart = self.make_result().chart(x_column="x")
        assert "0" in chart
        assert "10" in chart

    def test_subset_of_series(self):
        chart = self.make_result().chart(x_column="x", y_columns=["y1"])
        assert "y1" in chart and "y2" not in chart

    def test_empty_result(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(name="empty", columns=("x", "y"))
        assert "(no data)" in result.chart(x_column="x")

    def test_non_numeric_series_skipped(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(name="mixed", columns=("x", "label", "y"))
        result.add_row(x=1, label="a", y=5)
        result.add_row(x=2, label="b", y=6)
        chart = result.chart(x_column="x")
        assert "label" not in chart.split("\n")[-1]

    def test_flat_series_handled(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(name="flat", columns=("x", "y"))
        result.add_row(x=1, y=3)
        result.add_row(x=2, y=3)
        assert "flat" in result.chart(x_column="x")
