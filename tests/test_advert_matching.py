"""Unit tests for subscription/advertisement matching (paper §3.2–3.3)."""

import pytest

from repro.adverts import (
    Advertisement,
    abs_expr_and_adv,
    abs_expr_and_sim_rec_adv,
    des_expr_and_adv,
    expr_and_advertisement,
    rel_expr_and_adv,
    rel_expr_and_adv_naive,
    simple_recursive,
    node_tests_overlap,
)
from repro.adverts.model import Lit, Rep
from repro.xpath import parse_xpath


class TestOverlapRules:
    """Figure 2(b)."""

    def test_wildcard_overlaps_everything(self):
        assert node_tests_overlap("*", "*")
        assert node_tests_overlap("*", "t")
        assert node_tests_overlap("t", "*")

    def test_equal_names_overlap(self):
        assert node_tests_overlap("t", "t")

    def test_distinct_names_do_not(self):
        assert not node_tests_overlap("t1", "t2")


class TestAbsExprAndAdv:
    def test_paper_example_rejects(self):
        """Paper §3.2: a=/b/*/*/c/c/d, s=/*/c/*/b/c fails at i=4."""
        adv = ("b", "*", "*", "c", "c", "d")
        assert not abs_expr_and_adv(adv, parse_xpath("/*/c/*/b/c"))

    def test_longer_sub_never_matches(self):
        assert not abs_expr_and_adv(("a", "b"), parse_xpath("/a/b/c"))

    def test_equal_length_overlap(self):
        assert abs_expr_and_adv(("a", "*"), parse_xpath("/a/b"))
        assert abs_expr_and_adv(("a", "b"), parse_xpath("/a/*"))

    def test_shorter_sub_prefix(self):
        assert abs_expr_and_adv(("a", "b", "c"), parse_xpath("/a/b"))

    def test_mismatch_rejected(self):
        assert not abs_expr_and_adv(("a", "b"), parse_xpath("/b"))


class TestRelExprAndAdv:
    def test_matches_anywhere(self):
        assert rel_expr_and_adv(("x", "a", "b", "y"), parse_xpath("a/b"))

    def test_rejects_absent(self):
        assert not rel_expr_and_adv(("x", "a", "b"), parse_xpath("b/a"))

    def test_wildcards_both_sides(self):
        assert rel_expr_and_adv(("x", "*", "b"), parse_xpath("a/b"))
        assert rel_expr_and_adv(("x", "a", "b"), parse_xpath("*/b"))

    def test_too_long_rejected(self):
        assert not rel_expr_and_adv(("a",), parse_xpath("a/b"))

    def test_suffix_match(self):
        assert rel_expr_and_adv(("x", "y", "a", "b"), parse_xpath("a/b"))

    @pytest.mark.parametrize(
        "adv,sub",
        [
            (("a", "a", "b", "a", "a", "a", "b"), "a/a/a/b"),
            (("a", "b", "a", "b", "a", "c"), "a/b/a/c"),
            (("x", "x", "x"), "x/x/x"),
            (("a", "b", "c"), "c/a"),
        ],
    )
    def test_kmp_agrees_with_naive(self, adv, sub):
        expr = parse_xpath(sub)
        assert rel_expr_and_adv(adv, expr) == rel_expr_and_adv_naive(adv, expr)


class TestDesExprAndAdv:
    def test_paper_example(self):
        """Paper §3.2: a=/a/*/e/*/d/*/c/b and s=*/a//d/*/c//b match."""
        adv = ("a", "*", "e", "*", "d", "*", "c", "b")
        assert des_expr_and_adv(adv, parse_xpath("*/a//d/*/c//b"))

    def test_absolute_with_descendant(self):
        adv = ("a", "x", "y", "b")
        assert des_expr_and_adv(adv, parse_xpath("/a//b"))
        assert not des_expr_and_adv(adv, parse_xpath("/b//a"))

    def test_segments_must_be_ordered(self):
        adv = ("a", "b", "c")
        assert des_expr_and_adv(adv, parse_xpath("/a//c"))
        assert not des_expr_and_adv(adv, parse_xpath("/c//a"))

    def test_segments_must_not_overlap(self):
        adv = ("a", "b")
        # //a//b fits, //b//b does not (only one b).
        assert des_expr_and_adv(adv, parse_xpath("//a//b"))
        assert not des_expr_and_adv(adv, parse_xpath("//b//b"))

    def test_total_length_bound(self):
        assert not des_expr_and_adv(("a", "b"), parse_xpath("/a//b/c"))


class TestSimpleRecursive:
    def test_paper_example(self):
        """Paper §3.3: a=/a/*/c(/e/d)+/*/c/e, s=/*/a/c/*/d/e/d/* match."""
        sub = parse_xpath("/*/a/c/*/d/e/d/*")
        assert abs_expr_and_sim_rec_adv(
            ("a", "*", "c"), ("e", "d"), ("*", "c", "e"), sub
        )

    def test_short_sub_checked_against_head(self):
        assert abs_expr_and_sim_rec_adv(("a",), ("b",), ("z",), parse_xpath("/a/b"))
        assert not abs_expr_and_sim_rec_adv(("a",), ("b",), ("z",), parse_xpath("/a/c"))

    def test_single_repetition_with_tail(self):
        # a = /x(/b)+/z ; s = /x/b/z matches with one repetition.
        assert abs_expr_and_sim_rec_adv(("x",), ("b",), ("z",), parse_xpath("/x/b/z"))

    def test_double_repetition(self):
        assert abs_expr_and_sim_rec_adv(("x",), ("b",), ("z",), parse_xpath("/x/b/b/z"))

    def test_erratum_blocks_before_q_are_verified(self):
        # a = /x(/b)+/z/z/z ; s = /x/b/c/z/z/z — position 3 violates the
        # repetition and no expansion matches.
        assert not abs_expr_and_sim_rec_adv(
            ("x",), ("b",), ("z", "z", "z"), parse_xpath("/x/b/c/z/z/z")
        )

    def test_erratum_empty_a3(self):
        # a = /x(/b)+ ; trailing elements must still overlap b's.
        assert abs_expr_and_sim_rec_adv(("x",), ("b",), (), parse_xpath("/x/b/b/b"))
        assert not abs_expr_and_sim_rec_adv(("x",), ("b",), (), parse_xpath("/x/b/c"))

    def test_sub_ends_inside_repetition(self):
        # s shorter than any complete expansion still matches as prefix.
        assert abs_expr_and_sim_rec_adv(
            ("x",), ("b", "c"), ("z",), parse_xpath("/x/b/c/b")
        )

    def test_requires_nonempty_pattern(self):
        with pytest.raises(ValueError):
            abs_expr_and_sim_rec_adv(("x",), (), ("z",), parse_xpath("/x"))


class TestAdvertisementModel:
    def test_kind_classification(self):
        non = Advertisement.from_tests(("a", "b"))
        assert non.kind == "non-recursive"
        simple = simple_recursive(("a",), ("b",), ("c",))
        assert simple.kind == "simple-recursive"
        series = Advertisement(
            (Lit(("a",)), Rep((Lit(("b",)),)), Lit(("c",)), Rep((Lit(("d",)),)))
        )
        assert series.kind == "series-recursive"
        embedded = Advertisement(
            (Lit(("a",)), Rep((Lit(("b",)), Rep((Lit(("c",)),)))),)
        )
        assert embedded.kind == "embedded-recursive"

    def test_min_length(self):
        adv = simple_recursive(("a",), ("b", "c"), ("d",))
        assert adv.min_length() == 4

    def test_words_up_to(self):
        adv = simple_recursive(("a",), ("b",), ("c",))
        words = adv.words_up_to(4)
        assert ("a", "b", "c") in words
        assert ("a", "b", "b", "c") in words
        assert all(len(w) <= 4 for w in words)

    def test_prefixes(self):
        adv = simple_recursive(("a",), ("b",), ("c",))
        prefixes = adv.prefixes(3)
        assert ("a", "b", "c") in prefixes
        assert ("a", "b", "b") in prefixes
        assert len(prefixes) == 2

    def test_str_rendering(self):
        adv = simple_recursive(("a",), ("b", "c"), ("d",))
        assert str(adv) == "/a(/b/c)+/d"

    def test_tests_rejected_for_recursive(self):
        with pytest.raises(ValueError):
            simple_recursive(("a",), ("b",), ()).tests

    def test_from_xpath(self):
        adv = Advertisement.from_xpath(parse_xpath("/a/*/b"))
        assert adv.tests == ("a", "*", "b")
        with pytest.raises(ValueError):
            Advertisement.from_xpath(parse_xpath("a/b"))
        with pytest.raises(ValueError):
            Advertisement.from_xpath(parse_xpath("/a//b"))


class TestExprAndAdvertisement:
    """The top-level dispatch across all advertisement kinds."""

    def test_non_recursive(self):
        adv = Advertisement.from_tests(("a", "b", "c"))
        assert expr_and_advertisement(adv, parse_xpath("/a/b"))
        assert expr_and_advertisement(adv, parse_xpath("b/c"))
        assert expr_and_advertisement(adv, parse_xpath("/a//c"))
        assert not expr_and_advertisement(adv, parse_xpath("/b"))

    def test_simple_recursive_relative_sub(self):
        adv = simple_recursive(("a",), ("b",), ("c",))
        assert expr_and_advertisement(adv, parse_xpath("b/b"))
        assert expr_and_advertisement(adv, parse_xpath("b/c"))
        assert not expr_and_advertisement(adv, parse_xpath("c/b"))

    def test_simple_recursive_descendant_sub(self):
        adv = simple_recursive(("a",), ("b",), ("c",))
        assert expr_and_advertisement(adv, parse_xpath("/a//c"))
        assert expr_and_advertisement(adv, parse_xpath("/a//b/b//c"))
        assert not expr_and_advertisement(adv, parse_xpath("/c//a"))

    def test_series_recursive(self):
        adv = Advertisement(
            (
                Lit(("r",)),
                Rep((Lit(("a",)),)),
                Lit(("m",)),
                Rep((Lit(("b",)),)),
                Lit(("z",)),
            )
        )
        assert expr_and_advertisement(adv, parse_xpath("/r/a/a/m/b/z"))
        assert expr_and_advertisement(adv, parse_xpath("a/m/b"))
        assert not expr_and_advertisement(adv, parse_xpath("/r/b"))
        assert not expr_and_advertisement(adv, parse_xpath("b/a"))

    def test_embedded_recursive(self):
        adv = Advertisement(
            (
                Lit(("r",)),
                Rep((Lit(("a",)), Rep((Lit(("b",)),)))),
                Lit(("z",)),
            )
        )
        assert expr_and_advertisement(adv, parse_xpath("/r/a/b/z"))
        assert expr_and_advertisement(adv, parse_xpath("/r/a/b/b/a/b/z"))
        assert not expr_and_advertisement(adv, parse_xpath("/r/b"))

    def test_wildcard_subscription_matches_everything_short_enough(self):
        adv = Advertisement.from_tests(("a", "b", "c"))
        assert expr_and_advertisement(adv, parse_xpath("/*/*"))
        assert expr_and_advertisement(adv, parse_xpath("*"))
        assert not expr_and_advertisement(adv, parse_xpath("/*/*/*/*"))


class TestSeriesAndEmbeddedRecursive:
    """The §3.3 prose algorithms, pinned to the exact NFA matcher."""

    def setup_method(self):
        from repro.adverts.model import Lit, Rep

        self.series = Advertisement(
            (
                Lit(("r",)),
                Rep((Lit(("a",)),)),
                Lit(("m",)),
                Rep((Lit(("b",)),)),
                Lit(("z",)),
            )
        )
        self.embedded = Advertisement(
            (
                Lit(("r",)),
                Rep((Lit(("a",)), Rep((Lit(("b",)),)))),
                Lit(("z",)),
            )
        )

    def test_series_matches_expansions(self):
        from repro.adverts import abs_expr_and_ser_rec_adv

        assert abs_expr_and_ser_rec_adv(self.series, parse_xpath("/r/a/m/b/z"))
        assert abs_expr_and_ser_rec_adv(
            self.series, parse_xpath("/r/a/a/a/m/b/b")
        )
        assert not abs_expr_and_ser_rec_adv(self.series, parse_xpath("/r/m"))

    def test_embedded_matches_expansions(self):
        from repro.adverts import abs_expr_and_emb_rec_adv

        assert abs_expr_and_emb_rec_adv(self.embedded, parse_xpath("/r/a/b/z"))
        assert abs_expr_and_emb_rec_adv(
            self.embedded, parse_xpath("/r/a/b/b/a/b")
        )
        assert not abs_expr_and_emb_rec_adv(self.embedded, parse_xpath("/r/b"))

    def test_prefix_longer_than_sub(self):
        from repro.adverts import abs_expr_and_ser_rec_adv
        from repro.adverts.model import Lit, Rep

        advert = Advertisement((Lit(("c", "c")), Rep((Lit(("a",)),))))
        assert abs_expr_and_ser_rec_adv(advert, parse_xpath("/*"))
        assert not abs_expr_and_ser_rec_adv(advert, parse_xpath("/a"))

    def test_rejects_relative_subscription(self):
        from repro.adverts import abs_expr_and_ser_rec_adv

        with pytest.raises(ValueError):
            abs_expr_and_ser_rec_adv(self.series, parse_xpath("a/b"))

    def test_agrees_with_nfa_on_random_inputs(self):
        import random

        from repro.adverts import abs_expr_and_emb_rec_adv, expr_and_advert_nfa
        from repro.adverts.model import Lit, Rep
        from repro.xpath.ast import Axis, Step, XPathExpr

        rng = random.Random(5)
        symbols = ["a", "b", "c"]

        def rand_nodes(depth=0):
            nodes = []
            for _ in range(rng.randint(1, 3)):
                if depth < 2 and rng.random() < 0.4:
                    nodes.append(Rep(tuple(rand_nodes(depth + 1))))
                else:
                    nodes.append(
                        Lit(
                            tuple(
                                rng.choice(symbols)
                                for _ in range(rng.randint(1, 2))
                            )
                        )
                    )
            return nodes

        for _ in range(300):
            advert = Advertisement(tuple(rand_nodes()))
            if not advert.is_recursive:
                continue
            sub = XPathExpr(
                steps=tuple(
                    Step(Axis.CHILD, rng.choice(symbols + ["*"]))
                    for _ in range(rng.randint(1, 6))
                ),
                rooted=True,
            )
            assert abs_expr_and_emb_rec_adv(advert, sub) == expr_and_advert_nfa(
                advert, sub
            )
