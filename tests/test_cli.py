"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAdverts:
    def test_sample_psd_list(self, capsys):
        assert main(["adverts", "--sample", "psd"]) == 0
        out = capsys.readouterr().out
        assert "/ProteinDatabase/ProteinEntry/sequence" in out

    def test_sample_nitf_stats(self, capsys):
        assert main(["adverts", "--sample", "nitf", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "recursive DTD: True" in out
        assert "simple-recursive" in out

    def test_dtd_file(self, tmp_path, capsys):
        dtd = tmp_path / "tiny.dtd"
        dtd.write_text("<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>")
        assert main(["adverts", str(dtd)]) == 0
        assert "/r/a" in capsys.readouterr().out

    def test_missing_dtd_errors(self):
        with pytest.raises(SystemExit):
            main(["adverts"])


class TestPaths:
    def test_psd_paths(self, capsys):
        assert main(["paths", "--sample", "psd"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert "/ProteinDatabase/ProteinEntry/header/uid" in out
        assert len(out) == 52


class TestWorkload:
    def test_generates_requested_count(self, capsys):
        assert main(["workload", "--sample", "psd", "-n", "7"]) == 0
        out = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(out) == 7

    def test_deterministic_seed(self, capsys):
        main(["workload", "--sample", "psd", "-n", "5", "--seed", "3"])
        first = capsys.readouterr().out
        main(["workload", "--sample", "psd", "-n", "5", "--seed", "3"])
        assert capsys.readouterr().out == first


class TestMatchAndCovers:
    def test_match_hit(self, capsys):
        assert main(["match", "/a//b", "/a/x/b"]) == 0
        assert "MATCH" in capsys.readouterr().out

    def test_match_miss_sets_exit_code(self, capsys):
        assert main(["match", "/a/b", "/a/c"]) == 1

    def test_covers(self, capsys):
        assert main(["covers", "/a", "/a/b"]) == 0
        assert main(["covers", "/a/b", "/a"]) == 1

    def test_bad_xpe_reports_error(self, capsys):
        assert main(["covers", "///", "/a"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSimulate:
    def test_single_strategy_run(self, capsys):
        rc = main(
            [
                "simulate",
                "--levels",
                "2",
                "--xpes",
                "5",
                "--documents",
                "2",
                "--strategy",
                "with-Adv-with-Cov",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "with-Adv-with-Cov" in out
        assert "network_traffic" in out


class TestAudit:
    def test_single_scenario_clean(self, capsys):
        rc = main(
            [
                "audit",
                "--scenario",
                "fault-free",
                "--xpes",
                "6",
                "--documents",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault-free" in out
        assert "audit OK" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["audit", "--scenario", "no-such-scenario"])
