"""Tests for the interest model, broker queueing and delay percentiles."""

import pytest

from repro.broker.strategies import RoutingConfig
from repro.dtd.samples import psd_dtd
from repro.network import ConstantLatency, Overlay
from repro.network.stats import DeliveryRecord, NetworkStats
from repro.workloads import InterestModel, zipf_weights
from repro.workloads.document_generator import generate_documents


class TestZipfWeights:
    def test_uniform_at_zero_skew(self):
        assert zipf_weights(4, 0.0) == [1.0, 1.0, 1.0, 1.0]

    def test_decreasing_with_skew(self):
        weights = zipf_weights(5, 1.0)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0
        assert weights[1] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(3, -0.1)


class TestInterestModel:
    def test_draws_are_distinct(self):
        model = InterestModel.from_dtd(psd_dtd(), pool_size=100, seed=1)
        draw = model.draw(30)
        assert len(set(draw)) == 30

    def test_draw_capped_by_pool(self):
        model = InterestModel.from_dtd(psd_dtd(), pool_size=20, seed=1)
        assert len(model.draw(100)) == 20

    def test_similarity_increases_with_skew(self):
        low = InterestModel.from_dtd(psd_dtd(), pool_size=200, skew=0.0, seed=2)
        high = InterestModel.from_dtd(psd_dtd(), pool_size=200, skew=2.0, seed=2)
        low_sim = low.similarity([low.draw(30) for _ in range(4)])
        high_sim = high.similarity([high.draw(30) for _ in range(4)])
        assert high_sim > low_sim

    def test_similarity_degenerate_cases(self):
        model = InterestModel.from_dtd(psd_dtd(), pool_size=50, seed=3)
        assert model.similarity([]) == 0.0
        assert model.similarity([model.draw(5)]) == 0.0

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            InterestModel([], skew=0.0)


class TestQueueing:
    def run_overlay(self, queueing):
        overlay = Overlay.binary_tree(
            2,
            config=RoutingConfig.with_adv_with_cov(),
            latency_model=ConstantLatency(0.001),
            processing_scale=1.0,
            queueing=queueing,
        )
        publisher = overlay.attach_publisher("pub", "b2")
        subscriber = overlay.attach_subscriber("sub", "b3")
        publisher.advertise_dtd(psd_dtd())
        overlay.run()
        subscriber.subscribe("/ProteinDatabase")
        overlay.run()
        for doc in generate_documents(psd_dtd(), 4, seed=4, target_bytes=800):
            publisher.publish_document(doc)
        overlay.run()
        return overlay

    def test_queueing_never_faster(self):
        plain = self.run_overlay(queueing=False)
        queued = self.run_overlay(queueing=True)
        assert (
            queued.stats.mean_notification_delay()
            >= plain.stats.mean_notification_delay() * 0.99
        )
        # Deliveries themselves are unaffected.
        assert queued.delivered_map() == plain.delivered_map()


class TestDelayPercentiles:
    def make_stats(self, delays):
        stats = NetworkStats()
        for index, delay in enumerate(delays):
            stats.record_delivery(
                DeliveryRecord(
                    subscriber_id="s",
                    doc_id="d%d" % index,
                    path_id=0,
                    issued_at=0.0,
                    delivered_at=delay,
                    hops=2,
                )
            )
        return stats

    def test_percentiles(self):
        stats = self.make_stats([0.1 * i for i in range(1, 11)])
        assert stats.delay_percentile(0.5) == pytest.approx(0.5)
        assert stats.delay_percentile(1.0) == pytest.approx(1.0)

    def test_empty(self):
        assert NetworkStats().delay_percentile(0.95) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkStats().delay_percentile(0.0)
        with pytest.raises(ValueError):
            NetworkStats().delay_percentile(1.5)

    def test_summary_includes_p95(self):
        stats = self.make_stats([1.0, 2.0])
        assert stats.summary()["p95_delay_ms"] == pytest.approx(2000.0)
