"""Tests for broker snapshot/restore."""

import pytest

from repro.adverts import Advertisement, simple_recursive
from repro.broker import (
    AdvertiseMsg,
    Broker,
    PublishMsg,
    RoutingConfig,
    SubscribeMsg,
)
from repro.broker.persistence import (
    PersistenceError,
    restore,
    restore_json,
    snapshot,
    snapshot_json,
)
from repro.xmldoc import Publication
from repro.xpath import parse_xpath


def x(text):
    return parse_xpath(text)


def populated_broker(config=None):
    broker = Broker("b1", config=config or RoutingConfig.with_adv_with_cov())
    broker.connect("n1")
    broker.connect("n2")
    broker.attach_client("c1")
    broker.handle(
        AdvertiseMsg(
            adv_id="a1",
            advert=Advertisement.from_tests(("x", "y", "z")),
            publisher_id="pub",
        ),
        "n1",
    )
    broker.handle(
        AdvertiseMsg(
            adv_id="a2",
            advert=simple_recursive(("x",), ("w",), ("q",)),
            publisher_id="pub",
        ),
        "n2",
    )
    broker.handle(SubscribeMsg(expr=x("/x/y"), subscriber_id="c1"), "c1")
    broker.handle(SubscribeMsg(expr=x("/x"), subscriber_id="c1"), "c1")
    broker.handle(SubscribeMsg(expr=x("//w"), subscriber_id="s"), "n2")
    return broker


def publish(broker, path, doc_id="d"):
    out = broker.handle(
        PublishMsg(
            publication=Publication(doc_id=doc_id, path_id=0, path=path),
            publisher_id="pub",
        ),
        "n1",
    )
    # Message ids are process-unique; compare routing decisions only.
    return sorted(
        (str(dest), type(msg).__name__, str(msg.publication))
        for dest, msg in out
    )


class TestRoundTrip:
    def test_snapshot_restore_preserves_routing(self):
        original = populated_broker()
        rebuilt = restore(snapshot(original))
        for path in (("x", "y"), ("x",), ("x", "w", "q"), ("q",)):
            assert publish(original, path) == publish(rebuilt, path), path

    def test_json_round_trip(self):
        original = populated_broker()
        rebuilt = restore_json(snapshot_json(original))
        assert rebuilt.broker_id == "b1"
        assert rebuilt.neighbors == original.neighbors
        assert rebuilt.routing_table_size() == original.routing_table_size()

    def test_forwarded_state_preserved(self):
        original = populated_broker()
        rebuilt = restore(snapshot(original))
        for expr in original.forwarded.exprs():
            assert rebuilt.forwarded.neighbors_for(
                expr
            ) == original.forwarded.neighbors_for(expr)

    def test_subscription_handling_continues(self):
        """A restored broker keeps making correct covering decisions."""
        original = populated_broker()
        rebuilt = restore(snapshot(original))
        out = rebuilt.handle(
            SubscribeMsg(expr=x("/x/y/z"), subscriber_id="c1"), "c1"
        )
        # /x already forwarded to n1: the covered /x/y/z stays quiet.
        assert out == []

    def test_recursive_advertisement_survives(self):
        original = populated_broker()
        rebuilt = restore(snapshot(original))
        entry = [e for e in rebuilt.srt.entries() if e.adv_id == "a2"][0]
        assert str(entry.advert) == "/x(/w)+/q"

    def test_non_covering_config(self):
        original = populated_broker(config=RoutingConfig.no_adv_no_cov())
        rebuilt = restore(snapshot(original))
        assert not rebuilt.config.covering
        assert publish(original, ("x", "y")) == publish(rebuilt, ("x", "y"))

    def test_client_subs_preserved(self):
        original = populated_broker()
        rebuilt = restore(snapshot(original))
        assert rebuilt.client_subs["c1"] == original.client_subs["c1"]


class TestErrors:
    def test_malformed_snapshot(self):
        with pytest.raises(PersistenceError):
            restore({"broker_id": "b"})

    def test_malformed_json(self):
        with pytest.raises(PersistenceError):
            restore_json("{not json")
