"""Tests for broker snapshot/restore."""

import pytest

from repro.adverts import Advertisement, simple_recursive
from repro.broker import (
    AdvertiseMsg,
    Broker,
    PublishMsg,
    RoutingConfig,
    SubscribeMsg,
)
from repro.broker.persistence import (
    PersistenceError,
    restore,
    restore_json,
    snapshot,
    snapshot_json,
)
from repro.xmldoc import Publication
from repro.xpath import parse_xpath


def x(text):
    return parse_xpath(text)


def populated_broker(config=None):
    broker = Broker("b1", config=config or RoutingConfig.with_adv_with_cov())
    broker.connect("n1")
    broker.connect("n2")
    broker.attach_client("c1")
    broker.handle(
        AdvertiseMsg(
            adv_id="a1",
            advert=Advertisement.from_tests(("x", "y", "z")),
            publisher_id="pub",
        ),
        "n1",
    )
    broker.handle(
        AdvertiseMsg(
            adv_id="a2",
            advert=simple_recursive(("x",), ("w",), ("q",)),
            publisher_id="pub",
        ),
        "n2",
    )
    broker.handle(SubscribeMsg(expr=x("/x/y"), subscriber_id="c1"), "c1")
    broker.handle(SubscribeMsg(expr=x("/x"), subscriber_id="c1"), "c1")
    broker.handle(SubscribeMsg(expr=x("//w"), subscriber_id="s"), "n2")
    return broker


def publish(broker, path, doc_id="d"):
    out = broker.handle(
        PublishMsg(
            publication=Publication(doc_id=doc_id, path_id=0, path=path),
            publisher_id="pub",
        ),
        "n1",
    )
    # Message ids are process-unique; compare routing decisions only.
    return sorted(
        (str(dest), type(msg).__name__, str(msg.publication))
        for dest, msg in out
    )


class TestRoundTrip:
    def test_snapshot_restore_preserves_routing(self):
        original = populated_broker()
        rebuilt = restore(snapshot(original))
        for path in (("x", "y"), ("x",), ("x", "w", "q"), ("q",)):
            assert publish(original, path) == publish(rebuilt, path), path

    def test_json_round_trip(self):
        original = populated_broker()
        rebuilt = restore_json(snapshot_json(original))
        assert rebuilt.broker_id == "b1"
        assert rebuilt.neighbors == original.neighbors
        assert rebuilt.routing_table_size() == original.routing_table_size()

    def test_forwarded_state_preserved(self):
        original = populated_broker()
        rebuilt = restore(snapshot(original))
        for expr in original.forwarded.exprs():
            assert rebuilt.forwarded.neighbors_for(
                expr
            ) == original.forwarded.neighbors_for(expr)

    def test_subscription_handling_continues(self):
        """A restored broker keeps making correct covering decisions."""
        original = populated_broker()
        rebuilt = restore(snapshot(original))
        out = rebuilt.handle(
            SubscribeMsg(expr=x("/x/y/z"), subscriber_id="c1"), "c1"
        )
        # /x already forwarded to n1: the covered /x/y/z stays quiet.
        assert out == []

    def test_recursive_advertisement_survives(self):
        original = populated_broker()
        rebuilt = restore(snapshot(original))
        entry = [e for e in rebuilt.srt.entries() if e.adv_id == "a2"][0]
        assert str(entry.advert) == "/x(/w)+/q"

    def test_non_covering_config(self):
        original = populated_broker(config=RoutingConfig.no_adv_no_cov())
        rebuilt = restore(snapshot(original))
        assert not rebuilt.config.covering
        assert publish(original, ("x", "y")) == publish(rebuilt, ("x", "y"))

    def test_client_subs_preserved(self):
        original = populated_broker()
        rebuilt = restore(snapshot(original))
        assert rebuilt.client_subs["c1"] == original.client_subs["c1"]


class TestEngineSwitch:
    """Restoring a snapshot under a different matching engine must
    rebuild the mirror for the new engine and invalidate every match
    cache — the regression was a restored broker matching through a
    mirror (and cache generation) built for the old engine."""

    PROBES = (("x", "y"), ("x",), ("x", "w", "q"), ("q",), ("z", "w"))

    def _delivered(self, broker):
        return [publish(broker, path, doc_id="d%d" % i)
                for i, path in enumerate(self.PROBES)]

    def test_shared_snapshot_restored_as_sharded(self):
        import dataclasses

        original = populated_broker(
            dataclasses.replace(
                RoutingConfig.with_adv_with_cov(), matching_engine="shared"
            )
        )
        # Warm the original's caches so stale generations would show.
        baseline = self._delivered(original)
        rebuilt = restore(
            snapshot(original), matching_engine="sharded", shard_count=3
        )
        assert rebuilt.config.matching_engine == "sharded"
        from repro.matching import ShardedMatcher

        assert isinstance(rebuilt.shared, ShardedMatcher)
        assert self._delivered(rebuilt) == baseline
        rebuilt._shared_engine().check_invariants()

    def test_sharded_snapshot_restored_as_shared(self):
        import dataclasses

        original = populated_broker(
            dataclasses.replace(
                RoutingConfig.with_adv_with_cov(),
                matching_engine="sharded",
                shard_count=3,
            )
        )
        baseline = self._delivered(original)
        rebuilt = restore(snapshot(original), matching_engine="shared")
        assert rebuilt.config.matching_engine == "shared"
        from repro.matching import ShardedMatcher

        assert not isinstance(rebuilt.shared, ShardedMatcher)
        assert self._delivered(rebuilt) == baseline

    def test_engine_switch_bumps_match_generation(self):
        import dataclasses

        original = populated_broker(
            dataclasses.replace(
                RoutingConfig.with_adv_with_cov(), matching_engine="shared"
            )
        )
        publish(original, ("x", "y"))
        state = snapshot(original)
        rebuilt = restore(state, matching_engine="sharded", shard_count=2)
        # The mirror rebuild is pending (dirty) and the cache generation
        # moved past anything a warmed snapshot could have carried.
        assert rebuilt._shared_dirty
        assert rebuilt._match_generation > 0
        assert publish(rebuilt, ("x", "y")) == publish(original, ("x", "y"))


class TestErrors:
    def test_malformed_snapshot(self):
        with pytest.raises(PersistenceError):
            restore({"broker_id": "b"})

    def test_malformed_json(self):
        with pytest.raises(PersistenceError):
            restore_json("{not json")

    def test_unknown_matching_engine_names_the_field(self):
        from repro.errors import ConfigError

        state = snapshot(populated_broker())
        state["config"]["matching_engine"] = "quantum"
        with pytest.raises(ConfigError) as excinfo:
            restore(state)
        assert "matching_engine" in str(excinfo.value)
        assert "quantum" in str(excinfo.value)

    def test_unknown_engine_override_names_the_field(self):
        from repro.errors import ConfigError

        state = snapshot(populated_broker())
        with pytest.raises(ConfigError) as excinfo:
            restore(state, matching_engine="future-engine")
        assert "matching_engine" in str(excinfo.value)

    def test_bad_shard_count_names_the_field(self):
        from repro.errors import ConfigError

        state = snapshot(populated_broker())
        state["config"]["matching_engine"] = "sharded"
        state["config"]["shard_count"] = "seven"
        with pytest.raises(ConfigError) as excinfo:
            restore(state)
        assert "shard_count" in str(excinfo.value)

    def test_bool_shard_count_rejected(self):
        from repro.errors import ConfigError

        state = snapshot(populated_broker())
        state["config"]["matching_engine"] = "sharded"
        state["config"]["shard_count"] = True
        with pytest.raises(ConfigError):
            restore(state)

    def test_config_error_is_not_swallowed_by_json_path(self):
        import json

        from repro.errors import ConfigError

        state = json.loads(snapshot_json(populated_broker()))
        state["config"]["matching_engine"] = "quantum"
        with pytest.raises(ConfigError):
            restore_json(json.dumps(state))
