"""Live telemetry plane: rings, SLO health machine, per-backend
sampling, flight dumps on health transitions and crashes, and the
Prometheus endpoint (see docs/telemetry.md).

The three backend scenario tests share one shape: a seeded overload
pinned to a single broker must walk exactly that broker through the
full healthy -> degraded -> overloaded sequence (one level per sample,
never a skip), while the fault-free twin of the same workload reports
every broker healthy with zero alerts.
"""

import json
import os
import threading
import urllib.request

import pytest

from repro import obs
from repro.broker.messages import PublishMsg, SubscribeMsg
from repro.broker.strategies import RoutingConfig
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import (
    DEGRADED,
    HEALTHY,
    OVERLOADED,
    HealthMonitor,
    PrometheusEndpoint,
    SLORule,
    TelemetryPlane,
    TelemetryRing,
    TelemetrySample,
    default_slo_rules,
    load_timeline,
    render_timeline,
    render_top,
)
from repro.runtime.base import scaled
from repro.xmldoc import Publication
from repro.xpath import parse_xpath

GOLDEN = os.path.join(os.path.dirname(__file__), "golden")


@pytest.fixture(autouse=True)
def _clean_global_registry():
    obs.get_registry().reset().disable()
    yield
    obs.get_registry().reset().disable()


def _publication(i, path=("claims", "claim", "amount"), round_no=0):
    return PublishMsg(
        publication=Publication(
            doc_id="doc-%d-%d" % (round_no, i), path_id=0, path=tuple(path)
        ),
        publisher_id="pub",
    )


def _overload_rules(queue_depth=(3.0, 8.0)):
    """Rules where only the queue-depth ceiling can fire — the
    scenario tests pin the escalation to one cause on one broker."""
    return default_slo_rules(
        queue_depth=queue_depth,
        retransmit_rate=(1e9, 2e9),
        delivery_p99=(1e9, 2e9),
    )


def _assert_full_walk(plane, target, others):
    """Exactly *target* walked healthy -> degraded -> overloaded."""
    health = plane.health()
    assert health[target] == OVERLOADED
    for broker in others:
        assert health.get(broker, HEALTHY) == HEALTHY, health
    walked = [
        (t.previous, t.state)
        for t in plane.monitor.transitions
        if t.broker_id == target
    ]
    assert walked == [(HEALTHY, DEGRADED), (DEGRADED, OVERLOADED)]
    assert all(
        t.broker_id == target for t in plane.monitor.transitions
    ), plane.monitor.transitions
    assert plane.monitor.alerts.get("queue-depth", 0) >= 2
    assert set(plane.monitor.alerts) == {"queue-depth"}


# -- the ring ---------------------------------------------------------------


class TestTelemetryRing:
    def test_accepts_until_capacity(self):
        ring = TelemetryRing(capacity=8)
        for i in range(8):
            assert ring.append(TelemetrySample(float(i), {"v": i}))
        assert len(ring) == 8
        assert ring.stride == 1
        assert ring.dropped == 0

    def test_overflow_halves_and_doubles_stride(self):
        ring = TelemetryRing(capacity=8)
        for i in range(9):
            ring.append(TelemetrySample(float(i), {"v": i}))
        assert ring.stride == 2
        # the survivors are the even arrivals plus the new one
        assert [s.time for s in ring] == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_long_run_stays_bounded_and_aligned(self):
        ring = TelemetryRing(capacity=16)
        total = 1000
        for i in range(total):
            ring.append(TelemetrySample(float(i), {"v": i}))
        assert len(ring) <= 16
        assert ring.stride & (ring.stride - 1) == 0  # power of two
        # every retained sample sits on the final stride grid
        assert all(int(s.time) % ring.stride == 0 for s in ring)
        times = [s.time for s in ring]
        assert times == sorted(times)
        assert times[0] == 0.0  # the run's start is never lost
        assert ring.dropped + len(ring) <= total

    def test_to_dict_shape(self):
        ring = TelemetryRing(capacity=4)
        ring.append(TelemetrySample(0.5, {"queue_depth": 2.0}))
        doc = ring.to_dict()
        assert doc["stride"] == 1
        assert doc["samples"][0]["time"] == 0.5
        assert doc["samples"][0]["queue_depth"] == 2.0


# -- SLO rules and the health state machine ---------------------------------


class TestSLORules:
    def test_ceiling_and_floor(self):
        ceiling = SLORule("q", "queue_depth", ">", 10.0, 20.0)
        assert ceiling.evaluate({"queue_depth": 5.0}) == HEALTHY
        assert ceiling.evaluate({"queue_depth": 15.0}) == DEGRADED
        assert ceiling.evaluate({"queue_depth": 25.0}) == OVERLOADED
        floor = SLORule("hit", "view_hit_ratio", "<", 0.05)
        assert floor.evaluate({"view_hit_ratio": 0.5}) == HEALTHY
        assert floor.evaluate({"view_hit_ratio": 0.01}) == DEGRADED

    def test_absent_metric_is_skipped(self):
        rule = SLORule("q", "queue_depth", ">", 10.0)
        assert rule.evaluate({}) is None

    def test_bad_op_raises(self):
        with pytest.raises(ValueError):
            SLORule("q", "queue_depth", "=", 1.0).evaluate(
                {"queue_depth": 2.0}
            )


class TestHealthMonitor:
    def _sample(self, t, depth):
        return TelemetrySample(t, {"queue_depth": float(depth)})

    def test_escalates_one_level_per_sample(self):
        monitor = HealthMonitor(
            rules=[SLORule("q", "queue_depth", ">", 3.0, 8.0)]
        )
        # a sample already past the overloaded ceiling still only steps
        # to degraded first — the full sequence is always narrated
        assert monitor.observe("b1", self._sample(0.0, 100)) == DEGRADED
        assert monitor.observe("b1", self._sample(1.0, 100)) == OVERLOADED
        assert [
            (t.previous, t.state) for t in monitor.transitions
        ] == [(HEALTHY, DEGRADED), (DEGRADED, OVERLOADED)]

    def test_recovery_needs_consecutive_clean_samples(self):
        monitor = HealthMonitor(
            rules=[SLORule("q", "queue_depth", ">", 3.0)], clear_after=2
        )
        monitor.observe("b1", self._sample(0.0, 10))
        assert monitor.state("b1") == DEGRADED
        monitor.observe("b1", self._sample(1.0, 0))
        assert monitor.state("b1") == DEGRADED  # streak of 1 < clear_after
        monitor.observe("b1", self._sample(2.0, 10))  # breach resets streak
        monitor.observe("b1", self._sample(3.0, 0))
        assert monitor.state("b1") == DEGRADED
        monitor.observe("b1", self._sample(4.0, 0))
        assert monitor.state("b1") == HEALTHY

    def test_alert_counters_and_registry(self):
        registry = MetricsRegistry(enabled=True)
        monitor = HealthMonitor(
            rules=[SLORule("q", "queue_depth", ">", 3.0)],
            registry=registry,
        )
        monitor.observe("b1", self._sample(0.0, 10))
        monitor.observe("b1", self._sample(1.0, 10))
        assert monitor.alerts == {"q": 2}
        assert registry.counter("telemetry.alert.q").value == 2
        assert registry.counter("telemetry.transitions").value == 1

    def test_hooks_fire_on_transition(self):
        seen = []
        monitor = HealthMonitor(
            rules=[SLORule("q", "queue_depth", ">", 3.0)]
        )
        monitor.add_hook(
            lambda broker, prev, state, rule, sample: seen.append(
                (broker, prev, state, rule)
            )
        )
        monitor.observe("b1", self._sample(0.0, 10))
        assert seen == [("b1", HEALTHY, DEGRADED, "q")]


class TestTelemetryPlane:
    def test_counters_become_deltas(self):
        plane = TelemetryPlane(
            registry=MetricsRegistry(enabled=True), interval=1.0
        )
        plane.record("b1", 1.0, gauges={}, counters={"handled": 10.0})
        plane.record("b1", 2.0, gauges={}, counters={"handled": 25.0})
        samples = list(plane.ring("b1"))
        assert samples[0].values["handled"] == 10.0
        assert samples[1].values["handled"] == 15.0

    def test_delivery_window_surfaces_p99(self):
        plane = TelemetryPlane(
            registry=MetricsRegistry(enabled=True), interval=1.0
        )
        for delay in (0.01, 0.02, 0.9):
            plane.note_delivery("b1", delay)
        plane.record("b1", 1.0, gauges={}, counters={})
        assert plane.ring("b1").last().values["delivery_p99"] == 0.9

    def test_timeline_roundtrip_and_render(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        plane = TelemetryPlane(registry=registry, interval=0.5)
        for t in range(6):
            plane.record(
                "b1",
                float(t),
                gauges={"queue_depth": float(t * 2)},
                counters={"handled": float(t * 10)},
            )
        path = str(tmp_path / "timeline.json")
        plane.write_timeline(path, meta={"scenario": "unit"})
        document = load_timeline(path)
        assert document["version"] == 1
        assert document["meta"]["scenario"] == "unit"
        assert "b1" in document["brokers"]
        rendered = render_timeline(document, metric="queue_depth")
        assert "b1" in rendered and "queue_depth" in rendered
        top = render_top(plane, now=6.0)
        assert "b1" in top and "health" in top

    def test_load_rejects_unknown_version(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"version": 99}, handle)
        with pytest.raises(ValueError):
            load_timeline(path)


# -- registry thread safety -------------------------------------------------


class TestRegistryConcurrency:
    def test_increments_and_snapshots_race_free(self):
        registry = MetricsRegistry(enabled=True)
        threads, per_thread = 8, 2000
        errors = []

        def work(seed):
            try:
                for i in range(per_thread):
                    registry.inc("stress.count")
                    registry.histogram("stress.seconds").record(
                        1e-4 * ((seed + i) % 7 + 1)
                    )
                    registry.set_gauge("stress.gauge", float(i))
                    if i % 128 == 0:
                        # concurrent readers must never crash or tear
                        registry.snapshot()
                        registry.counter_values(("stress.",))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        workers = [
            threading.Thread(target=work, args=(t,)) for t in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors
        total = threads * per_thread
        assert registry.counter("stress.count").value == total
        histogram = registry.histogram("stress.seconds")
        assert histogram.count == total
        assert sum(n for _, n in histogram.bucket_counts()) == total


# -- Prometheus exposition --------------------------------------------------


class TestPrometheusExposition:
    def _registry(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("broker.publishes").inc(5)
        registry.set_gauge("telemetry.health.b1", 2.0)
        histogram = registry.histogram("matching.match.seconds")
        for value in (0.0005, 0.004, 0.004, 0.25):
            histogram.record(value)
        return registry

    def test_matches_golden_exposition(self):
        # Registered collectors fold process-global cache/compile stats
        # into every snapshot; those vary with test order, so the golden
        # comparison pins exactly the families this test created.
        ours = (
            "repro_broker_",
            "repro_telemetry_",
            "repro_matching_match_seconds",
        )
        text = "\n".join(
            line
            for line in obs.to_prometheus(self._registry()).splitlines()
            if any(marker in line for marker in ours)
        ) + "\n"
        golden = os.path.join(GOLDEN, "telemetry_exposition.prom")
        with open(golden) as handle:
            assert text == handle.read()

    def test_histogram_buckets_are_cumulative_and_consistent(self):
        text = obs.to_prometheus(self._registry())
        buckets = []
        for line in text.splitlines():
            if line.startswith("repro_matching_match_seconds_bucket"):
                buckets.append(float(line.rsplit(" ", 1)[1]))
            if line.startswith("repro_matching_match_seconds_count"):
                count = float(line.rsplit(" ", 1)[1])
            if line.startswith("repro_matching_match_seconds_sum"):
                total = float(line.rsplit(" ", 1)[1])
        assert buckets == sorted(buckets)  # cumulative, monotone
        assert buckets[-1] == count == 4.0  # +Inf bucket equals _count
        assert total == pytest.approx(0.2585)
        assert 'le="+Inf"' in text

    def test_help_and_type_lines(self):
        text = obs.to_prometheus(self._registry())
        assert "# HELP repro_broker_publishes_total" in text
        assert "# TYPE repro_broker_publishes_total counter" in text
        assert "# TYPE repro_telemetry_health_b1 gauge" in text
        assert "# TYPE repro_matching_match_seconds histogram" in text

    def test_name_sanitisation(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("weird-name/with.chars").inc()
        text = obs.to_prometheus(registry)
        assert "repro_weird_name_with_chars_total 1" in text


class TestPrometheusEndpoint:
    def test_http_and_textfile(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        registry.counter("broker.publishes").inc(3)
        plane = TelemetryPlane(registry=registry, interval=1.0)
        plane.record(
            "b1", 1.0, gauges={"queue_depth": 1.0}, counters={}
        )
        textfile = str(tmp_path / "repro.prom")
        endpoint = PrometheusEndpoint(
            registry, plane, port=0, textfile=textfile
        )
        endpoint.start()
        try:
            body = urllib.request.urlopen(endpoint.url, timeout=10).read()
            text = body.decode("utf-8")
            assert "repro_broker_publishes_total 3" in text
            # the plane's health gauges ride along
            assert "repro_telemetry_health_b1 0" in text
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    endpoint.url.replace("/metrics", "/nope"), timeout=10
                )
            assert endpoint.write() == textfile
            with open(textfile) as handle:
                assert "repro_broker_publishes_total 3" in handle.read()
        finally:
            endpoint.close()


# -- backend scenarios ------------------------------------------------------


def _simulator_overlay(registry, queueing=True):
    from repro.network.latency import ConstantLatency
    from repro.network.overlay import Overlay

    return Overlay.binary_tree(
        2,
        config=RoutingConfig.no_adv_no_cov(),
        latency_model=ConstantLatency(0.001),
        processing_scale=0.0,
        queueing=queueing,
        metrics=registry,
    )


class TestSimulatorTelemetry:
    def test_overload_walks_one_broker_through_the_sequence(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        overlay = _simulator_overlay(registry)
        overlay.enable_tracing(flight_dir=str(tmp_path))
        plane = overlay.enable_telemetry(
            interval=0.002, rules=_overload_rules(), clear_after=1000
        )
        overlay.processing_delay["b2"] = 0.005
        publisher = overlay.attach_publisher("pub", "b1")
        subscriber = overlay.attach_subscriber("sub", "b2")
        subscriber.subscribe(parse_xpath("/claims//amount"))
        overlay.run()
        for i in range(40):
            overlay.submit("pub", _publication(i))
        overlay.run()
        assert len(subscriber.received) == 40  # overload loses nothing
        _assert_full_walk(plane, "b2", ("b1", "b3"))
        assert registry.counter("telemetry.alert.queue-depth").value >= 2
        assert registry.counter("telemetry.transitions").value == 2
        dumps = sorted(os.listdir(str(tmp_path)))
        assert any("health-b2-degraded" in name for name in dumps)
        assert any("health-b2-overloaded" in name for name in dumps)

    def test_fault_free_twin_stays_healthy(self):
        registry = MetricsRegistry(enabled=True)
        overlay = _simulator_overlay(registry)
        plane = overlay.enable_telemetry(
            interval=0.002, rules=_overload_rules(), clear_after=1000
        )
        overlay.attach_publisher("pub", "b1")
        subscriber = overlay.attach_subscriber("sub", "b2")
        subscriber.subscribe(parse_xpath("/claims//amount"))
        overlay.run()
        for i in range(40):
            overlay.submit("pub", _publication(i))
        overlay.run()
        assert plane.samples_taken > 0
        assert set(plane.health().values()) == {HEALTHY}
        assert plane.monitor.alerts == {}
        assert plane.monitor.transitions == []

    def test_sampling_timers_never_block_quiescence(self):
        registry = MetricsRegistry(enabled=True)
        overlay = _simulator_overlay(registry, queueing=False)
        overlay.enable_telemetry(interval=0.002)
        overlay.attach_publisher("pub", "b1")
        subscriber = overlay.attach_subscriber("sub", "b3")
        subscriber.subscribe(parse_xpath("/claims//amount"))
        overlay.run()
        # repeated runs: the parked timers must re-arm on new work and
        # park again at quiescence, never spinning the simulator
        for round_no in range(3):
            for i in range(5):
                overlay.submit("pub", _publication(i, round_no=round_no))
            overlay.run()
            assert overlay.sim.pending() == 0
        assert len(subscriber.received) == 15

    def test_restart_scenario_keeps_sampling(self):
        """A crashed-and-recovered broker resumes telemetry (the
        rebuilt core is re-armed) and the audit-degraded gauge follows
        the oracle's stateless-recovery fallback."""
        from repro.audit.oracle import AuditOracle
        from repro.network.faults import FaultPlan

        registry = MetricsRegistry(enabled=True)
        overlay = _simulator_overlay(registry)
        overlay.install_faults(FaultPlan(seed=3))
        oracle = overlay.attach_auditor(AuditOracle())
        plane = overlay.enable_telemetry(interval=0.002)
        overlay.attach_publisher("pub", "b1")
        subscriber = overlay.attach_subscriber("sub", "b2")
        subscriber.subscribe(parse_xpath("/claims//amount"))
        overlay.run()
        overlay.crash_broker("b2", with_state=False)
        overlay.recover_broker("b2")
        before = len(plane.ring("b2"))
        for i in range(20):
            overlay.submit("pub", _publication(i))
        overlay.run()
        assert len(plane.ring("b2")) > before
        assert oracle.stateless_recoveries  # the fallback engaged
        assert plane.ring("b2").last().values["audit_degraded"] == 1.0


class TestAsyncioTelemetry:
    def _runtime(self, registry):
        from repro.runtime.asyncio_backend import AsyncioRuntime

        runtime = AsyncioRuntime(
            config=RoutingConfig.no_adv_no_cov(),
            link_capacity=4,
            client_capacity=4,
            metrics=registry,
        )
        for broker_id in ("b1", "b2", "b3"):
            runtime.add_broker(broker_id)
        runtime.connect("b1", "b2")
        runtime.connect("b2", "b3")
        return runtime

    def test_overload_walks_one_broker_through_the_sequence(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        runtime = self._runtime(registry)
        runtime.enable_tracing(flight_dir=str(tmp_path))
        plane = runtime.enable_telemetry(
            interval=0.01, rules=_overload_rules(), clear_after=100000
        )
        runtime.start()
        try:
            runtime.attach_publisher("pub", "b1")
            subscriber = runtime.attach_subscriber("sub", "b3")
            runtime.submit(
                "sub",
                SubscribeMsg(
                    expr=parse_xpath("/claims//amount"), subscriber_id="sub"
                ),
            )
            runtime.drain()
            runtime.client_delay["sub"] = 0.01  # slow consumer backs b3 up
            for i in range(80):
                runtime.submit("pub", _publication(i))
            runtime.drain(timeout=60.0)
            assert len(subscriber.received) == 80
            _assert_full_walk(plane, "b3", ("b1", "b2"))
            dumps = sorted(os.listdir(str(tmp_path)))
            assert any("health-b3-degraded" in name for name in dumps)
            assert any("health-b3-overloaded" in name for name in dumps)
        finally:
            runtime.close()

    def test_fault_free_twin_stays_healthy(self):
        registry = MetricsRegistry(enabled=True)
        runtime = self._runtime(registry)
        plane = runtime.enable_telemetry(
            interval=0.01, rules=_overload_rules(), clear_after=100000
        )
        runtime.start()
        try:
            runtime.attach_publisher("pub", "b1")
            subscriber = runtime.attach_subscriber("sub", "b3")
            runtime.submit(
                "sub",
                SubscribeMsg(
                    expr=parse_xpath("/claims//amount"), subscriber_id="sub"
                ),
            )
            runtime.drain()
            for i in range(40):
                runtime.submit("pub", _publication(i))
            runtime.drain(timeout=60.0)
            runtime.sample_telemetry()  # at least one sample, even if fast
            assert len(subscriber.received) == 40
            assert set(plane.health().values()) == {HEALTHY}
            assert plane.monitor.alerts == {}
        finally:
            runtime.close()


class TestMultiprocessTelemetry:
    def _deployment(self, tmp_path=None, service_delay=None):
        from repro.runtime.multiprocess import MultiprocessDeployment

        deployment = MultiprocessDeployment(
            config=RoutingConfig.no_adv_no_cov(),
            flight_dir=None if tmp_path is None else str(tmp_path),
            service_delay=service_delay,
        )
        for broker_id in ("b1", "b2", "b3"):
            deployment.add_broker(broker_id)
        deployment.link("b1", "b2")
        deployment.link("b2", "b3")
        deployment.start()
        return deployment

    def test_overload_walks_one_broker_through_the_sequence(self, tmp_path):
        obs.enable_metrics(reset=True)
        deployment = self._deployment(
            tmp_path, service_delay={"b2": 0.01}
        )
        try:
            plane = deployment.enable_telemetry(
                interval=0.05, rules=_overload_rules(), clear_after=100000
            )
            deployment.attach_publisher("pub", "b1")
            subscriber = deployment.attach_subscriber("sub", "b3")
            deployment.submit(
                "sub",
                SubscribeMsg(
                    expr=parse_xpath("/claims//amount"), subscriber_id="sub"
                ),
            )
            assert deployment.settle(timeout=scaled(30.0))
            for i in range(60):
                deployment.submit("pub", _publication(i))
            assert deployment.settle(timeout=scaled(60.0))
            deployment.drain_deliveries()
            assert len(subscriber.received) == 60  # overload loses nothing
            _assert_full_walk(plane, "b2", ("b1", "b3"))
            dumps = sorted(os.listdir(str(tmp_path)))
            assert any("health-b2-degraded" in name for name in dumps)
            assert any("health-b2-overloaded" in name for name in dumps)
            assert not any(deployment.broker_errors().values())
        finally:
            deployment.stop()

    def test_fault_free_twin_stays_healthy(self):
        obs.enable_metrics(reset=True)
        deployment = self._deployment()
        try:
            plane = deployment.enable_telemetry(
                interval=0.05, rules=_overload_rules(), clear_after=100000
            )
            deployment.attach_publisher("pub", "b1")
            subscriber = deployment.attach_subscriber("sub", "b3")
            deployment.submit(
                "sub",
                SubscribeMsg(
                    expr=parse_xpath("/claims//amount"), subscriber_id="sub"
                ),
            )
            assert deployment.settle(timeout=scaled(30.0))
            for i in range(20):
                deployment.submit("pub", _publication(i))
            assert deployment.settle(timeout=scaled(60.0))
            deployment.sample_telemetry()
            assert set(plane.health().values()) == {HEALTHY}
            assert plane.monitor.alerts == {}
            assert not any(deployment.broker_errors().values())
        finally:
            deployment.stop()

    def test_crash_dumps_pre_crash_flight_spans(self, tmp_path):
        obs.enable_metrics(reset=True)
        deployment = self._deployment(tmp_path)
        try:
            deployment.attach_publisher("pub", "b1")
            deployment.attach_subscriber("sub", "b3")
            deployment.submit(
                "sub",
                SubscribeMsg(
                    expr=parse_xpath("/claims//amount"), subscriber_id="sub"
                ),
            )
            assert deployment.settle(timeout=scaled(30.0))
            for i in range(20):
                deployment.submit("pub", _publication(i))
            assert deployment.settle(timeout=scaled(60.0))
            deployment.crash_broker("b2")
            assert "b2" not in deployment._live_ids()
            crash_dumps = [
                name
                for name in os.listdir(str(tmp_path))
                if "crash-b2" in name
            ]
            assert len(crash_dumps) == 1
            with open(os.path.join(str(tmp_path), crash_dumps[0])) as handle:
                document = json.load(handle)
            assert document["reason"] == "crash-b2"
            spans = [
                span
                for spans in document["brokers"].values()
                for span in spans
            ]
            # the black box holds the hops b2 dispatched before dying
            assert spans
            assert all(span["broker"] == "b2" for span in spans)
            assert any(span["name"] == "hop" for span in spans)
        finally:
            deployment.stop()
