"""Unit tests for the deterministic fault-injection layer.

Covers the FaultPlan itself (determinism, spec parsing, partitions,
crash schedules) and the reliable transport's survival of single
faults; whole-workload convergence lives in
tests/test_chaos_convergence.py.
"""

import pytest

from repro.broker.messages import SubscribeMsg
from repro.broker.strategies import RoutingConfig
from repro.errors import TopologyError
from repro.network import ConstantLatency, Overlay
from repro.network.faults import (
    CrashEvent,
    FaultPlan,
    FaultSpecError,
    LinkFaults,
    Partition,
)
from repro.xpath import parse_xpath


def decisions(plan, src="a", dst="b", count=400, now=0.0):
    return [plan.decide(src, dst, i, now) for i in range(count)]


class TestDeterminism:
    def test_same_seed_identical_schedule(self):
        kwargs = dict(
            default=LinkFaults(drop=0.3, duplicate=0.2, reorder=0.4, delay=0.001)
        )
        one = FaultPlan(seed=42, **kwargs)
        two = FaultPlan(seed=42, **kwargs)
        assert decisions(one) == decisions(two)

    def test_different_seed_differs(self):
        kwargs = dict(default=LinkFaults(drop=0.3, duplicate=0.2))
        one = FaultPlan(seed=1, **kwargs)
        two = FaultPlan(seed=2, **kwargs)
        assert decisions(one) != decisions(two)

    def test_decisions_are_call_order_independent(self):
        plan = FaultPlan(seed=9, default=LinkFaults(drop=0.5, reorder=0.5))
        forward = [plan.decide("x", "y", i) for i in range(100)]
        backward = [plan.decide("x", "y", i) for i in reversed(range(100))]
        assert forward == list(reversed(backward))

    def test_link_directions_draw_independent_streams(self):
        plan = FaultPlan(seed=5, default=LinkFaults(drop=0.5))
        assert decisions(plan, "a", "b") != decisions(plan, "b", "a")

    def test_empirical_drop_rate_tracks_probability(self):
        plan = FaultPlan(seed=0, default=LinkFaults(drop=0.25))
        dropped = sum(d.dropped for d in decisions(plan, count=4000))
        assert 0.20 < dropped / 4000 < 0.30

    def test_faultless_plan_never_interferes(self):
        plan = FaultPlan(seed=7)
        for d in decisions(plan, count=50):
            assert d.copies == 1 and d.extra_delay == 0.0 and not d.dropped


class TestLinkResolution:
    def test_with_link_override_is_order_insensitive(self):
        plan = FaultPlan(seed=0).with_link("a", "b", LinkFaults(drop=1.0))
        assert plan.link_faults("a", "b").drop == 1.0
        assert plan.link_faults("b", "a").drop == 1.0
        assert plan.link_faults("a", "c").drop == 0.0

    def test_probability_validation(self):
        with pytest.raises(FaultSpecError):
            LinkFaults(drop=1.5)
        with pytest.raises(FaultSpecError):
            LinkFaults(delay=-0.1)


class TestPartitions:
    def test_partition_window_is_half_open(self):
        plan = FaultPlan(partitions=(Partition("a", "b", 1.0, 2.0),))
        assert not plan.is_partitioned("a", "b", 0.999)
        assert plan.is_partitioned("a", "b", 1.0)
        assert plan.is_partitioned("b", "a", 1.5)  # both directions
        assert not plan.is_partitioned("a", "b", 2.0)  # healed
        assert not plan.is_partitioned("a", "c", 1.5)  # other links fine

    def test_partitioned_decision_drops(self):
        plan = FaultPlan(partitions=(Partition("a", "b", 0.0, 1.0),))
        decision = plan.decide("a", "b", 0, now=0.5)
        assert decision.partitioned and decision.dropped and decision.copies == 0
        healed = plan.decide("a", "b", 1, now=1.5)
        assert healed.copies == 1 and not healed.partitioned

    def test_partition_must_end_after_start(self):
        with pytest.raises(FaultSpecError):
            Partition("a", "b", 2.0, 2.0)


class TestSpecParsing:
    def test_full_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "drop=0.2, dup=0.1, reorder=0.3, delay=0.005, seed=7, rto=0.02,"
            "partition=b1-b2@2.0:5.0, crash=b4@1.0:3.0, crash=b5@0.5:9.0:nostate"
        )
        assert plan.seed == 7 and plan.rto == 0.02
        assert plan.default == LinkFaults(
            drop=0.2, duplicate=0.1, reorder=0.3, delay=0.005
        )
        assert plan.partitions == (Partition("b1", "b2", 2.0, 5.0),)
        assert plan.crashes == (
            CrashEvent("b4", at=1.0, restart_at=3.0),
            CrashEvent("b5", at=0.5, restart_at=9.0, with_state=False),
        )

    def test_empty_spec_is_the_faultless_plan(self):
        assert FaultPlan.from_spec("") == FaultPlan()

    @pytest.mark.parametrize(
        "spec",
        [
            "drop",  # not key=value
            "banana=1",  # unknown key
            "drop=high",  # not a float
            "drop=1.5",  # out of range
            "rto=0",  # must be positive
            "partition=b1@2:5",  # missing peer
            "partition=b1-b2@5",  # missing window end
            "crash=b4@3.0",  # missing restart
            "crash=b4@3.0:1.0",  # restarts before crashing
            "crash=@1:2",  # empty broker name
        ],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_spec(spec)

    def test_duplicate_crash_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultPlan(
                crashes=(
                    CrashEvent("b1", at=1.0, restart_at=2.0),
                    CrashEvent("b1", at=1.0, restart_at=3.0),
                )
            )

    def test_describe_summarises_the_schedule(self):
        plan = FaultPlan.from_spec("drop=0.1,crash=b2@1:2,partition=a-b@0:1")
        described = plan.describe()
        assert described["default"]["drop"] == 0.1
        assert described["crashes"] == ["b2@1:2"]
        assert described["partitions"] == ["a-b@0:1"]


def tiny_overlay(plan):
    return Overlay.binary_tree(
        2,
        config=RoutingConfig.by_name("no-Adv-no-Cov"),
        latency_model=ConstantLatency(0.001),
        processing_scale=0.0,
        faults=plan,
    )


class TestReliableTransport:
    def test_drops_are_healed_by_retransmission(self):
        overlay = tiny_overlay(
            FaultPlan(seed=3, default=LinkFaults(drop=0.4), rto=0.01)
        )
        sub = overlay.attach_subscriber("sub", "b2")
        sub.subscribe("/a/b")
        overlay.run()
        # the subscription floods to every broker despite 40% loss
        assert all(
            b.routing_table_size() >= 1 for b in overlay.brokers.values()
        )
        assert overlay.transport.stats["dropped"] > 0
        assert overlay.transport.stats["retransmits"] > 0
        assert overlay.transport.in_flight() == 0

    def test_duplicates_are_suppressed(self):
        overlay = tiny_overlay(
            FaultPlan(seed=1, default=LinkFaults(duplicate=1.0), rto=0.01)
        )
        sub = overlay.attach_subscriber("sub", "b2")
        sub.subscribe("/a/b")
        overlay.run()
        stats = overlay.transport.stats
        assert stats["duplicated"] > 0
        assert stats["dup_suppressed"] > 0
        # each broker processed the subscription exactly once
        assert all(
            b.routing_table_size() == 1 for b in overlay.brokers.values()
        )

    def test_delivery_is_in_order_under_reordering(self):
        overlay = tiny_overlay(
            FaultPlan(
                seed=6,
                default=LinkFaults(reorder=0.8, reorder_window=0.05),
                rto=0.5,
            )
        )
        arrivals = []
        original = overlay.transport_deliver

        def spy(broker_id, message, from_hop, hops, parent_span=None):
            if isinstance(message, SubscribeMsg):
                arrivals.append((broker_id, str(message.expr)))
            return original(broker_id, message, from_hop, hops, parent_span)

        overlay.transport_deliver = spy
        sub = overlay.attach_subscriber("sub", "b2")
        exprs = ["/a/b", "/a/c", "/a/d", "/a/e"]
        for text in exprs:
            sub.subscribe(text)
        overlay.run()
        per_broker = {}
        for broker_id, expr in arrivals:
            per_broker.setdefault(broker_id, []).append(expr)
        assert overlay.transport.stats["reordered"] > 0
        for sequence in per_broker.values():
            assert sequence == exprs  # FIFO per link despite reordering


class TestCrashSchedule:
    def plan(self, **kwargs):
        defaults = dict(
            seed=4,
            crashes=(CrashEvent("b2", at=0.0005, restart_at=0.05),),
            rto=0.01,
        )
        defaults.update(kwargs)
        return FaultPlan(**defaults)

    def test_crash_and_recovery_fire_exactly_once(self):
        overlay = tiny_overlay(self.plan())
        sub = overlay.attach_subscriber("sub", "b2")
        sub.subscribe("/a/b")
        overlay.run()
        assert overlay.transport.stats["crashes"] == 1
        assert overlay.transport.stats["recoveries"] == 1
        assert not overlay.is_down("b2")
        assert all(
            b.routing_table_size() >= 1 for b in overlay.brokers.values()
        )

    def test_double_crash_of_a_down_broker_is_rejected(self):
        overlay = tiny_overlay(None)
        overlay.install_faults(FaultPlan(seed=0))
        overlay.crash_broker("b2")
        with pytest.raises(TopologyError):
            overlay.crash_broker("b2")
        overlay.recover_broker("b2")
        with pytest.raises(TopologyError):
            overlay.recover_broker("b2")

    def test_crash_requires_fault_plan(self):
        overlay = Overlay.binary_tree(2)
        with pytest.raises(TopologyError):
            overlay.crash_broker("b2")

    def test_install_twice_rejected(self):
        overlay = tiny_overlay(FaultPlan(seed=0))
        with pytest.raises(TopologyError):
            overlay.install_faults(FaultPlan(seed=1))

    def test_scheduled_crash_in_the_past_rejected(self):
        overlay = Overlay.binary_tree(2, latency_model=ConstantLatency(0.001))
        overlay.sim.schedule(1.0, lambda: None)
        overlay.run()
        with pytest.raises(TopologyError):
            overlay.install_faults(
                FaultPlan(crashes=(CrashEvent("b2", at=0.5, restart_at=2.0),))
            )

    def test_submissions_while_down_are_replayed_on_recovery(self):
        overlay = tiny_overlay(None)
        overlay.install_faults(FaultPlan(seed=0, rto=0.01))
        sub = overlay.attach_subscriber("sub", "b2")
        overlay.crash_broker("b2")
        sub.subscribe("/a/b")
        overlay.run()
        assert overlay.transport.stats["held_while_down"] == 1
        assert overlay.brokers["b2"].routing_table_size() == 0
        overlay.recover_broker("b2")
        overlay.run()
        assert all(
            b.routing_table_size() == 1 for b in overlay.brokers.values()
        )


class TestIdempotentHandlers:
    """Redelivered control messages must not corrupt routing state."""

    def test_redelivered_subscription_is_a_no_op(self):
        overlay = Overlay.binary_tree(
            2,
            config=RoutingConfig.by_name("no-Adv-with-Cov"),
            latency_model=ConstantLatency(0.001),
        )
        sub = overlay.attach_subscriber("sub", "b2")
        sub.subscribe("/a/b")
        overlay.run()
        sizes = overlay.routing_table_sizes()
        broker = overlay.brokers["b1"]
        message = SubscribeMsg(expr=parse_xpath("/a/b"), subscriber_id="sub")
        assert broker.handle(message, "b2") == []  # no re-forwarding
        assert overlay.routing_table_sizes() == sizes
        assert broker.stats["redelivered"] >= 1
