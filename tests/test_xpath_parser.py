"""Unit tests for the XPE parser and AST."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath import Axis, Step, XPathExpr, parse_xpath, try_parse_xpath


class TestParseAbsolute:
    def test_single_step(self):
        expr = parse_xpath("/a")
        assert expr.is_absolute
        assert expr.tests == ("a",)

    def test_multi_step(self):
        expr = parse_xpath("/a/b/c")
        assert expr.tests == ("a", "b", "c")
        assert all(step.axis is Axis.CHILD for step in expr.steps)

    def test_wildcards(self):
        expr = parse_xpath("/*/b/*")
        assert expr.tests == ("*", "b", "*")
        assert expr.has_wildcard

    def test_descendant_axis(self):
        expr = parse_xpath("/a//b")
        assert expr.is_absolute
        assert not expr.is_simple
        assert expr.steps[1].axis is Axis.DESCENDANT

    def test_absolute_is_anchored(self):
        assert parse_xpath("/a/b").anchored


class TestParseRelative:
    def test_bare_name(self):
        expr = parse_xpath("d/a")
        assert expr.is_relative
        assert expr.tests == ("d", "a")

    def test_leading_descendant(self):
        expr = parse_xpath("//x/y")
        assert expr.is_relative
        assert not expr.anchored
        assert expr.steps[0].axis is Axis.DESCENDANT

    def test_leading_wildcard(self):
        expr = parse_xpath("*/a//d")
        assert expr.is_relative
        assert expr.tests == ("*", "a", "d")


class TestSegments:
    def test_simple_expression_single_segment(self):
        assert parse_xpath("/a/b/c").segments == (("a", "b", "c"),)

    def test_descendant_splits(self):
        assert parse_xpath("/a/*//b/c").segments == (("a", "*"), ("b", "c"))

    def test_multiple_descendants(self):
        expr = parse_xpath("*/a//d/*/c//b")
        assert expr.segments == (("*", "a"), ("d", "*", "c"), ("b",))

    def test_leading_descendant_single_segment(self):
        assert parse_xpath("//a/b").segments == (("a", "b"),)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "/a",
            "/a/b/c",
            "/*/b/*",
            "/a//b",
            "d/a",
            "//x/y",
            "*/a//d/*/c//b",
            "/a/*//*/d",
            "a//b//c",
        ],
    )
    def test_str_round_trips(self, text):
        assert str(parse_xpath(text)) == text
        assert parse_xpath(str(parse_xpath(text))) == parse_xpath(text)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "/", "//", "/a/", "a//", "/a//", "///a", "/a b", "/a/&", "/9a"],
    )
    def test_rejects(self, text):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(text)

    def test_try_parse_returns_none(self):
        assert try_parse_xpath("///") is None
        assert try_parse_xpath("/ok") is not None

    def test_type_error_for_non_string(self):
        with pytest.raises(TypeError):
            parse_xpath(42)


class TestExprHelpers:
    def test_hashable_and_equal(self):
        assert parse_xpath("/a/b") == parse_xpath("/a/b")
        assert hash(parse_xpath("/a/b")) == hash(parse_xpath("/a/b"))
        assert parse_xpath("/a/b") != parse_xpath("a/b")

    def test_from_tests(self):
        expr = XPathExpr.from_tests(["a", "*", "b"])
        assert str(expr) == "/a/*/b"

    def test_prefix_and_suffix(self):
        expr = parse_xpath("/a/b/c")
        assert str(expr.prefix(2)) == "/a/b"
        assert str(expr.suffix(1)) == "b/c"
        assert expr.suffix(1).is_relative

    def test_concat(self):
        left, right = parse_xpath("/a/b"), parse_xpath("c/d")
        assert str(left.concat(right)) == "/a/b/c/d"

    def test_len(self):
        assert len(parse_xpath("/a/*//b")) == 3

    def test_rooted_rejects_descendant_start(self):
        with pytest.raises(ValueError):
            XPathExpr(steps=(Step(Axis.DESCENDANT, "a"),), rooted=True)

    def test_empty_steps_rejected(self):
        with pytest.raises(ValueError):
            XPathExpr(steps=(), rooted=True)

    def test_with_rooted(self):
        rel = parse_xpath("a/b")
        assert rel.with_rooted(True) == parse_xpath("/a/b")
