"""Tests for the attribute-predicate extension.

The paper defers attributes and content to its companion matcher [16]
("our approach could be easily extended to element attributes and
content ... through value comparison"); this implements and verifies
that extension end to end: parsing, publication matching, covering,
edge delivery and the wire format.
"""

import pytest

from repro.covering import SubscriptionTree, covers, matches_path
from repro.errors import XPathSyntaxError
from repro.network.wire import decode, encode
from repro.broker.messages import PublishMsg, SubscribeMsg
from repro.xmldoc import XMLDocument
from repro.xpath import Predicate, PredicateOp, parse_xpath


def x(text):
    return parse_xpath(text)


class TestParsing:
    def test_exists_predicate(self):
        expr = x("/claims/claim[@urgent]")
        step = expr.steps[1]
        assert step.predicates == (
            Predicate(name="urgent", op=PredicateOp.EXISTS),
        )

    def test_equality_predicate(self):
        expr = x("/claim[@lang='de']")
        assert expr.steps[0].predicates[0] == Predicate(
            name="lang", op=PredicateOp.EQ, value="de"
        )

    def test_inequality_predicate(self):
        expr = x("/claim[@lang!='en']")
        assert expr.steps[0].predicates[0].op is PredicateOp.NE

    def test_double_quotes(self):
        expr = x('/claim[@lang="de"]')
        assert expr.steps[0].predicates[0].value == "de"

    def test_multiple_predicates_one_step(self):
        expr = x("/claim[@lang='de'][@urgent]")
        assert len(expr.steps[0].predicates) == 2

    def test_round_trip(self):
        for text in (
            "/claims/claim[@urgent]",
            "/claim[@lang='de']/amount",
            "//bid[@region='NA'][@line]",
            "claim[@a!='b']",
        ):
            assert str(x(text)) == text
            assert x(str(x(text))) == x(text)

    def test_predicates_affect_equality(self):
        assert x("/a[@p]") != x("/a")
        assert x("/a[@p='1']") != x("/a[@p='2']")

    @pytest.mark.parametrize(
        "bad",
        [
            "/a[",
            "/a[]",
            "/a[@]",
            "/a[@n",
            "/a[@n='v'",
            "/a[@n=v]",
            "/a[@n!'v']",
            "/a[n]",
        ],
    )
    def test_malformed_predicates_rejected(self, bad):
        with pytest.raises(XPathSyntaxError):
            x(bad)


class TestPathMatching:
    PATH = ("claims", "claim", "amount")
    ATTRS = ({}, {"lang": "de", "urgent": "1"}, {})

    def test_exists(self):
        assert matches_path(x("/claims/claim[@urgent]"), self.PATH, self.ATTRS)
        assert not matches_path(x("/claims/claim[@zzz]"), self.PATH, self.ATTRS)

    def test_equality(self):
        assert matches_path(x("/claims/claim[@lang='de']"), self.PATH, self.ATTRS)
        assert not matches_path(
            x("/claims/claim[@lang='en']"), self.PATH, self.ATTRS
        )

    def test_inequality(self):
        assert matches_path(x("/claims/claim[@lang!='en']"), self.PATH, self.ATTRS)
        assert not matches_path(
            x("/claims/claim[@lang!='de']"), self.PATH, self.ATTRS
        )
        # Inequality requires the attribute to be present.
        assert not matches_path(x("/claims[@lang!='de']"), self.PATH, self.ATTRS)

    def test_missing_attribute_annotation_fails_predicates(self):
        assert not matches_path(x("/claims/claim[@urgent]"), self.PATH, None)
        assert matches_path(x("/claims/claim"), self.PATH, None)

    def test_relative_with_predicates(self):
        assert matches_path(x("claim[@urgent]/amount"), self.PATH, self.ATTRS)

    def test_wildcard_with_predicate(self):
        assert matches_path(x("/claims/*[@urgent]"), self.PATH, self.ATTRS)


class TestCovering:
    def test_unconstrained_covers_predicated(self):
        assert covers(x("/a/b"), x("/a/b[@p]"))
        assert covers(x("/a/b"), x("/a/b[@p='1']"))

    def test_predicated_does_not_cover_unconstrained(self):
        assert not covers(x("/a/b[@p]"), x("/a/b"))

    def test_exists_covers_equality(self):
        assert covers(x("/a/b[@p]"), x("/a/b[@p='1']"))
        assert not covers(x("/a/b[@p='1']"), x("/a/b[@p]"))

    def test_equal_predicates_cover(self):
        assert covers(x("/a/b[@p='1']"), x("/a/b[@p='1']"))

    def test_different_values_do_not_cover(self):
        assert not covers(x("/a/b[@p='1']"), x("/a/b[@p='2']"))

    def test_ne_covered_by_different_eq(self):
        # Every element with p=2 satisfies p!=1.
        assert covers(x("/a/b[@p!='1']"), x("/a/b[@p='2']"))
        assert not covers(x("/a/b[@p!='1']"), x("/a/b[@p='1']"))

    def test_prefix_covering_with_predicates(self):
        assert covers(x("/a[@p]"), x("/a[@p]/b/c"))

    def test_relative_predicated_covering(self):
        assert covers(x("b[@p]"), x("/a/b[@p='1']/c"))

    def test_conservative_for_descendant_shapes(self):
        # Sound fallback: a predicated coverer with // only covers
        # itself.
        assert covers(x("/a[@p]//b"), x("/a[@p]//b"))
        assert not covers(x("/a[@p]//b"), x("/a[@p]/x/b"))

    def test_tree_insertion_with_predicates(self):
        tree = SubscriptionTree()
        tree.insert(x("/a/b"), 1)
        outcome = tree.insert(x("/a/b[@p='1']"), 2)
        assert outcome.covered
        tree.validate()


class TestEndToEnd:
    DOC = """
    <claims>
      <claim lang="de" urgent="1"><amount>100</amount></claim>
      <claim lang="en"><amount>200</amount></claim>
    </claims>
    """

    def test_document_attributes_decomposed(self):
        doc = XMLDocument.parse(self.DOC, doc_id="d")
        pubs = doc.publications()
        assert pubs[0].attribute_maps()[1] == {"lang": "de", "urgent": "1"}
        assert pubs[1].attribute_maps()[1] == {"lang": "en"}

    def test_broker_routes_on_predicates(self):
        from repro.broker import Broker, RoutingConfig

        broker = Broker("b1", config=RoutingConfig.no_adv_no_cov())
        broker.attach_client("german")
        broker.attach_client("all")
        broker.handle(
            SubscribeMsg(
                expr=x("/claims/claim[@lang='de']"), subscriber_id="german"
            ),
            "german",
        )
        broker.handle(
            SubscribeMsg(expr=x("/claims/claim"), subscriber_id="all"),
            "all",
        )
        doc = XMLDocument.parse(self.DOC, doc_id="d")
        deliveries = set()
        for pub in doc.publications():
            out = broker.handle(
                PublishMsg(publication=pub, publisher_id="p"), "upstream"
            )
            deliveries |= {dest for dest, _ in out}
        assert deliveries == {"german", "all"}

        # The English-only claim must not reach the German desk.
        doc_en = XMLDocument.parse(
            "<claims><claim lang='en'><amount>5</amount></claim></claims>",
            doc_id="d2",
        )
        for pub in doc_en.publications():
            out = broker.handle(
                PublishMsg(publication=pub, publisher_id="p"), "upstream"
            )
            assert {dest for dest, _ in out} == {"all"}

    def test_wire_round_trip_with_attributes(self):
        doc = XMLDocument.parse(self.DOC, doc_id="d")
        pub = doc.publications()[0]
        msg = PublishMsg(publication=pub, publisher_id="p")
        decoded = decode(encode(msg))
        assert decoded.publication == pub

    def test_wire_round_trip_predicated_subscription(self):
        msg = SubscribeMsg(expr=x("/claims/claim[@lang='de']"))
        assert decode(encode(msg)).expr == msg.expr


class TestTextPredicates:
    """The text() half of the value-comparison extension."""

    DOC = """
    <claims>
      <claim><amount currency="EUR">2400000</amount></claim>
      <claim><amount currency="USD">1200</amount></claim>
    </claims>
    """

    def test_parse_and_round_trip(self):
        for text in (
            "/claims/claim/amount[text()='100']",
            "//amount[text()!='0']",
            "/a/b[@p='1'][text()='v']",
        ):
            assert str(x(text)) == text

    def test_text_exists_rejected(self):
        with pytest.raises(XPathSyntaxError):
            x("/a[text()]")

    def test_match_on_text_content(self):
        doc = XMLDocument.parse(self.DOC, doc_id="d")
        pubs = doc.publications()
        big = x("//amount[text()='2400000']")
        assert matches_path(big, pubs[0].path, pubs[0].attribute_maps())
        assert not matches_path(big, pubs[1].path, pubs[1].attribute_maps())

    def test_text_and_attribute_combined(self):
        doc = XMLDocument.parse(self.DOC, doc_id="d")
        pubs = doc.publications()
        expr = x("//amount[@currency='USD'][text()='1200']")
        assert not matches_path(expr, pubs[0].path, pubs[0].attribute_maps())
        assert matches_path(expr, pubs[1].path, pubs[1].attribute_maps())

    def test_text_covering(self):
        assert covers(x("/a/b"), x("/a/b[text()='v']"))
        assert not covers(x("/a/b[text()='v']"), x("/a/b"))
        assert covers(x("/a/b[text()!='w']"), x("/a/b[text()='v']"))

    def test_wire_round_trip(self):
        msg = SubscribeMsg(expr=x("//amount[text()='5']"))
        assert decode(encode(msg)).expr == msg.expr

    def test_whitespace_stripped_from_text(self):
        doc = XMLDocument.parse("<a><b>  padded  </b></a>", doc_id="d")
        pub = doc.publications()[0]
        assert pub.attribute_maps()[1] == {"#text": "padded"}
