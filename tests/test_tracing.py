"""Tests for causal distributed tracing (repro.obs.tracing).

Covers context propagation through the simulator and the reliable
transport (retransmission and crash/restart redelivery keep the
*original* trace id), span-tree assembly and verification against the
recorded deliveries, the per-broker flight recorder with its dump
triggers, and the Chrome-trace / Prometheus exporters.
"""

import json
import os

from repro.audit import AuditOracle, audit_scenarios, run_audited_workload
from repro.broker.messages import SubscribeMsg
from repro.broker.strategies import RoutingConfig
from repro.dtd.samples import psd_dtd
from repro.network import ConstantLatency, Overlay
from repro.network.faults import CrashEvent, FaultPlan, LinkFaults
from repro.obs.flight import FlightRecorder, FlightRecorderSet
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import (
    Span,
    TraceContext,
    TraceRecorder,
    assemble_traces,
    current_scope,
    mint_context,
    stamp,
    trace_of,
    verify_traces,
)
from repro.workloads.document_generator import generate_documents
from repro.xpath import parse_xpath


def traced_overlay(levels=2, faults=None, flight_dir=None, **tracing_kwargs):
    overlay = Overlay.binary_tree(
        levels,
        config=RoutingConfig.with_adv_with_cov(),
        latency_model=ConstantLatency(0.001),
        processing_scale=0.0,
        faults=faults,
    )
    overlay.enable_tracing(flight_dir=flight_dir, **tracing_kwargs)
    return overlay


def run_small_workload(overlay, documents=1):
    publisher = overlay.attach_publisher("pub", "b2")
    subscriber = overlay.attach_subscriber("sub", "b3")
    publisher.advertise_dtd(psd_dtd())
    overlay.run()
    subscriber.subscribe("/ProteinDatabase")
    overlay.run()
    for document in generate_documents(
        psd_dtd(), documents, seed=2, target_bytes=600
    ):
        publisher.publish_document(document)
    overlay.run()
    return overlay


class TestContextPropagation:
    def test_every_submission_mints_one_trace(self):
        overlay = run_small_workload(traced_overlay())
        recorder = overlay.tracing
        roots = [s for s in recorder.spans if s.name == "submit"]
        assert len(roots) == len(recorder.traces)
        assert {root.parent_id for root in roots} == {None}

    def test_root_kinds_cover_the_client_operations(self):
        overlay = run_small_workload(traced_overlay())
        subscriber = overlay.subscribers["sub"]
        subscriber.unsubscribe("/ProteinDatabase")
        overlay.run()
        kinds = {
            s.attrs["kind"]
            for s in overlay.tracing.spans
            if s.name == "submit"
        }
        assert {"AdvertiseMsg", "SubscribeMsg", "PublishMsg",
                "UnsubscribeMsg"} <= kinds

    def test_resubmission_keeps_its_original_trace(self):
        overlay = traced_overlay()
        message = SubscribeMsg(
            expr=parse_xpath("/ProteinDatabase"), subscriber_id="sub"
        )
        stamp(message, TraceContext("t-original", "s-root"))
        overlay.attach_subscriber("sub", "b3")
        overlay.submit("sub", message)
        overlay.run()
        assert trace_of(message).trace_id == "t-original"
        # no fresh trace was minted; no extra submit root either
        assert "t-original" in overlay.tracing.traces
        assert not any(
            s.name == "submit" for s in overlay.tracing.traces["t-original"]
        )

    def test_broker_originated_traffic_joins_the_causing_trace(self):
        # advertising floods broker-derived messages; every span must
        # still belong to a trace rooted at a client submit
        overlay = run_small_workload(traced_overlay(levels=3))
        trees = overlay.tracing.assemble()
        assert trees
        for tree in trees.values():
            assert tree.complete, tree.render()


class TestSpanDecomposition:
    def test_verify_traces_is_clean_fault_free(self):
        overlay = run_small_workload(traced_overlay())
        assert verify_traces(overlay) == []

    def test_fault_free_chain_sum_equals_delivery_delay(self):
        overlay = run_small_workload(traced_overlay())
        trees = overlay.tracing.assemble()
        checked = 0
        for record in overlay.stats.deliveries:
            for tree in trees.values():
                for span in tree.delivery_spans():
                    if (
                        span.attrs["subscriber"] == record.subscriber_id
                        and span.attrs["doc"] == record.doc_id
                        and span.attrs["path_id"] == record.path_id
                    ):
                        # no queueing and no retries: the decomposition
                        # is gapless, so stages sum to the exact delay
                        assert abs(
                            tree.path_sum(span) - record.delay
                        ) < 1e-9
                        checked += 1
        assert checked == len(overlay.stats.deliveries) > 0

    def test_match_sub_spans_carry_engine_and_cache_outcome(self):
        overlay = run_small_workload(traced_overlay(), documents=2)
        matches = [
            s for s in overlay.tracing.spans if s.name == "match"
        ]
        assert matches
        assert all(s.attrs["cache"] in ("hit", "miss", "stale")
                   for s in matches)
        assert any(s.attrs.get("engine") for s in matches)
        assert all("wall" in s.attrs for s in matches)

    def test_covering_check_spans_on_subscription_paths(self):
        overlay = run_small_workload(traced_overlay())
        covering = [
            s for s in overlay.tracing.spans if s.name == "covering.check"
        ]
        assert covering
        assert all(s.parent_id is not None for s in covering)

    def test_verify_reports_when_tracing_is_off(self):
        overlay = Overlay.binary_tree(2)
        assert verify_traces(overlay) == [
            "tracing is not enabled on this overlay"
        ]


class TestReliableTransport:
    def drop_plan(self):
        return FaultPlan(seed=3, default=LinkFaults(drop=0.4), rto=0.01)

    def test_retransmission_stays_in_the_original_trace(self):
        overlay = run_small_workload(traced_overlay(faults=self.drop_plan()))
        recorder = overlay.tracing
        retransmits = [
            s for s in recorder.spans if s.name == "retransmit"
        ]
        assert retransmits
        for span in retransmits:
            roots = [
                s
                for s in recorder.traces[span.trace_id]
                if s.name == "submit"
            ]
            assert len(roots) == 1  # retried delivery, original trace
        # retries never mint traces: one trace per client submission
        submits = sum(1 for s in recorder.spans if s.name == "submit")
        assert len(recorder.traces) == submits

    def test_duplicate_suppression_emits_a_span_not_a_trace(self):
        plan = FaultPlan(
            seed=1, default=LinkFaults(duplicate=1.0), rto=0.01
        )
        overlay = run_small_workload(traced_overlay(faults=plan))
        recorder = overlay.tracing
        dropped = [
            s for s in recorder.spans if s.name == "dropped.duplicate"
        ]
        assert dropped
        for span in dropped:
            assert span.trace_id in recorder.traces
            assert span.duration == 0.0
        submits = sum(1 for s in recorder.spans if s.name == "submit")
        assert len(recorder.traces) == submits
        assert verify_traces(overlay) == []

    def test_verification_survives_heavy_loss(self):
        overlay = run_small_workload(
            traced_overlay(faults=self.drop_plan()), documents=2
        )
        assert verify_traces(overlay) == []


class TestCrashRestart:
    def plan(self):
        return FaultPlan(
            seed=4,
            default=LinkFaults(drop=0.1),
            crashes=(CrashEvent("b2", at=0.002, restart_at=0.2),),
            rto=0.01,
        )

    def test_redelivery_after_crash_keeps_the_trace(self, tmp_path):
        overlay = run_small_workload(
            traced_overlay(faults=self.plan(), flight_dir=str(tmp_path))
        )
        recorder = overlay.tracing
        assert overlay.transport.stats["crashes"] == 1
        submits = sum(1 for s in recorder.spans if s.name == "submit")
        assert len(recorder.traces) == submits
        assert verify_traces(overlay) == []

    def test_crash_dumps_the_flight_rings(self, tmp_path):
        overlay = run_small_workload(
            traced_overlay(faults=self.plan(), flight_dir=str(tmp_path))
        )
        dumps = overlay.tracing.flight.dumps
        crash_dumps = [d for d in dumps if d["reason"] == "crash-b2"]
        assert len(crash_dumps) == 1
        path = crash_dumps[0]["path"]
        assert os.path.exists(path)
        with open(path) as handle:
            document = json.load(handle)
        assert document["reason"] == "crash-b2"
        spans = [
            span
            for ring in document["brokers"].values()
            for span in ring
        ]
        assert spans
        assert {"trace", "span", "name", "broker", "start", "end",
                "attrs"} <= set(spans[0])

    def test_partition_heal_dumps_the_affected_brokers(self):
        scenarios = audit_scenarios(0)
        overlay, _, report = run_audited_workload(
            plan=scenarios["partition-heals"], tracing=True
        )
        assert report.ok
        heal = [
            d
            for d in overlay.tracing.flight.dumps
            if d["reason"].startswith("partition-heal-")
        ]
        assert heal
        assert set(heal[0]["brokers"]) == {"b1", "b3"}


class TestChaosMatrix:
    def test_chaos_runs_reconstruct_complete_delivery_trees(self):
        scenarios = audit_scenarios(0)
        for name in ("drop-only", "crash-restart"):
            overlay, _, report = run_audited_workload(
                plan=scenarios[name], tracing=True
            )
            assert report.ok, report.summary()
            assert verify_traces(overlay) == []
            trees = overlay.tracing.assemble()
            assert all(tree.complete for tree in trees.values())


class TestAuditViolationDump:
    def test_violation_stamps_trace_ids_and_dumps_flight(self, tmp_path):
        overlay = run_small_workload(
            traced_overlay(flight_dir=str(tmp_path))
        )
        # the auditor must be attached before traffic to see submits;
        # rebuild the workload with one attached instead
        overlay = traced_overlay(flight_dir=str(tmp_path))
        oracle = overlay.attach_auditor(AuditOracle())
        run_small_workload(overlay)
        assert oracle.check().ok
        # forge a missed delivery: the oracle saw the publication but we
        # erase its delivery record, as if routing had dropped it
        oracle.delivered.clear()
        report = oracle.check()
        assert not report.ok
        missed = [
            v for v in report.soundness if v.code == "missed-delivery"
        ]
        assert missed
        assert missed[0].trace_ids
        assert "[trace " in str(missed[0])
        assert missed[0].trace_ids[0] in report.info["traces"]
        assert "flight_dump" in report.info
        dumps = overlay.tracing.flight.dumps
        assert any(d["reason"] == "audit-violation" for d in dumps)
        assert os.path.exists(report.info["flight_dump"])


class TestFlightRecorder:
    def span(self, i, broker="b1"):
        return Span("t1", "s%d" % i, None, "hop", broker, float(i), float(i))

    def test_ring_is_bounded_and_keeps_the_newest(self):
        ring = FlightRecorder("b1", capacity=4)
        for i in range(10):
            ring.record(self.span(i))
        assert len(ring) == 4
        assert [s.span_id for s in ring.spans()] == ["s6", "s7", "s8", "s9"]

    def test_set_routes_spans_by_broker(self):
        recorders = FlightRecorderSet(capacity=8)
        recorders.record(self.span(1, "b1"))
        recorders.record(self.span(2, "b2"))
        assert set(recorders.recorders) == {"b1", "b2"}

    def test_dump_writes_json_with_path(self, tmp_path):
        recorders = FlightRecorderSet(capacity=8, out_dir=str(tmp_path))
        recorders.record(self.span(1))
        document = recorders.dump("unit test!", time=1.5)
        assert document["time"] == 1.5
        assert document["path"].endswith("flight-000-unit-test.json")
        with open(document["path"]) as handle:
            assert json.load(handle)["brokers"]["b1"]

    def test_in_memory_dumps_are_capped(self):
        recorders = FlightRecorderSet(capacity=2)
        for i in range(FlightRecorderSet.MAX_DUMPS + 5):
            recorders.record(self.span(i))
            recorders.dump("r%d" % i)
        assert len(recorders.dumps) == FlightRecorderSet.MAX_DUMPS


class TestTraceRecorderUnit:
    def test_max_spans_cap_counts_drops_but_feeds_the_ring(self):
        recorder = TraceRecorder(max_spans=2, flight_capacity=8)
        for i in range(4):
            recorder.span("t1", None, "hop", "b1", float(i), float(i))
        assert len(recorder) == 2
        assert recorder.dropped == 2
        assert len(recorder.flight.recorder("b1")) == 4

    def test_clear_resets_spans_and_drop_count(self):
        recorder = TraceRecorder(max_spans=1)
        recorder.span("t1", None, "hop", "b1", 0.0, 0.0)
        recorder.span("t1", None, "hop", "b1", 1.0, 1.0)
        assert recorder.dropped == 1
        recorder.clear()
        assert len(recorder) == 0 and recorder.dropped == 0
        recorder.span("t2", None, "hop", "b1", 2.0, 2.0)
        assert len(recorder) == 1

    def test_hop_scope_maps_wall_time_onto_the_virtual_clock(self):
        recorder = TraceRecorder()
        hop = recorder.span("t1", None, "hop", "b1", 10.0, 10.5)
        scope = recorder.push_hop(hop, scale=0.5)
        try:
            assert current_scope() is scope
            sub = scope.sub_span(
                "match",
                scope.wall_anchor,
                scope.wall_anchor + 2.0,
                cache="miss",
            )
        finally:
            recorder.pop_hop(scope)
        assert current_scope() is None
        assert sub.parent_id == hop.span_id
        assert sub.start == 10.0
        assert abs(sub.end - 11.0) < 1e-9  # 2.0 wall s * 0.5 scale
        assert sub.attrs["wall"] == 2.0

    def test_stage_metrics_publish_into_a_registry(self):
        recorder = TraceRecorder()
        recorder.span("t1", None, "hop", "b1", 0.0, 0.25)
        recorder.span("t1", None, "forward", "b1", 0.25, 0.5)
        registry = MetricsRegistry(enabled=True)
        recorder.publish_stage_metrics(registry)
        stats = registry.histogram("trace.stage.hop").snapshot()
        assert stats["count"] == 1 and abs(stats["sum"] - 0.25) < 1e-9

    def test_assemble_traces_groups_loose_spans(self):
        spans = [
            Span("t1", "s1", None, "submit", "pub", 0.0, 0.1),
            Span("t1", "s2", "s1", "hop", "b1", 0.1, 0.2),
            Span("t2", "s3", None, "submit", "pub", 0.0, 0.1),
        ]
        trees = assemble_traces(spans)
        assert set(trees) == {"t1", "t2"}
        assert trees["t1"].complete
        assert [s.span_id for s in trees["t1"].chain(spans[1])] == [
            "s1", "s2",
        ]

    def test_mint_context_ids_are_unique(self):
        contexts = {mint_context().trace_id for _ in range(100)}
        assert len(contexts) == 100


class TestExporters:
    def test_chrome_trace_events_cover_every_span(self):
        from repro import obs

        overlay = run_small_workload(traced_overlay())
        spans = overlay.tracing.spans
        document = obs.to_chrome_trace(spans)
        complete = [
            e for e in document["traceEvents"] if e["ph"] == "X"
        ]
        assert len(complete) == len(spans)
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
        # virtual seconds map to microseconds
        first = min(spans, key=lambda s: (s.start, s.span_id))
        assert any(
            abs(e["ts"] - first.start * 1e6) < 1e-3 for e in complete
        )
        json.dumps(document)  # must be serialisable as-is

    def test_prometheus_text_includes_stage_summaries(self):
        from repro import obs

        overlay = run_small_workload(traced_overlay())
        registry = MetricsRegistry(enabled=True)
        overlay.tracing.publish_stage_metrics(registry)
        text = obs.to_prometheus(registry)
        assert "# TYPE repro_trace_stage_hop histogram" in text
        assert 'repro_trace_stage_hop_bucket{le="+Inf"}' in text
        assert "repro_trace_stage_hop_count" in text
        assert "repro_trace_stage_hop_sum" in text


class TestSocketDeployment:
    def test_deployed_submission_mints_and_propagates_a_trace(self):
        from repro.broker.messages import PublishMsg, SubscribeMsg
        from repro.network.sockets import LocalDeployment
        from repro.xmldoc import Publication

        deployment = LocalDeployment(
            config=RoutingConfig.no_adv_no_cov()
        )
        for name in ("b1", "b2"):
            deployment.add_broker(name)
        deployment.link("b1", "b2")
        deployment.start()
        try:
            publisher = deployment.publisher("pub", "b1")
            subscriber = deployment.subscriber("sub", "b2")
            subscriber.submit(
                SubscribeMsg(
                    expr=parse_xpath("/claims//amount"),
                    subscriber_id="sub",
                )
            )
            assert deployment.settle(timeout=5.0)
            publication = PublishMsg(
                publication=Publication(
                    doc_id="c-1",
                    path_id=0,
                    path=("claims", "claim", "amount"),
                ),
                publisher_id="pub",
            )
            publisher.submit(publication)
            assert deployment.settle(timeout=5.0)
            minted = trace_of(publication)
            assert minted is not None
            received = subscriber.received
            assert received
            # the delivery crossed a wire hop: the decoded copy carries
            # the publisher's trace context
            assert trace_of(received[0]).trace_id == minted.trace_id
        finally:
            deployment.stop()
