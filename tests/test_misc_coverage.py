"""Assorted coverage: TreeMatcher, xpath helpers, CLI experiments
subcommand, advert covering corner cases."""

import pytest

from repro.adverts import Advertisement, advert_covers, simple_recursive
from repro.matching.engine import TreeMatcher
from repro.xpath import parse_xpath, steps_from_tests, try_parse_xpath
from repro.xpath.ast import Axis, XPathExpr


class TestTreeMatcher:
    def test_add_match_remove(self):
        matcher = TreeMatcher()
        matcher.add(parse_xpath("/a"), "k1")
        matcher.add(parse_xpath("/a/b"), "k2")
        assert matcher.match(("a", "b")) == {"k1", "k2"}
        assert set(matcher.matching_exprs(("a", "b"))) == {
            parse_xpath("/a"),
            parse_xpath("/a/b"),
        }
        matcher.remove(parse_xpath("/a"), "k1")
        assert matcher.match(("a", "b")) == {"k2"}
        assert len(matcher) == 1

    def test_wraps_existing_tree(self):
        from repro.covering.subscription_tree import SubscriptionTree

        tree = SubscriptionTree()
        tree.insert(parse_xpath("/q"), "k")
        matcher = TreeMatcher(tree)
        assert matcher.tree is tree
        assert matcher.match(("q",)) == {"k"}

    def test_exprs_listing(self):
        matcher = TreeMatcher()
        matcher.add(parse_xpath("/a"), 1)
        assert matcher.exprs() == [parse_xpath("/a")]


class TestXPathHelpers:
    def test_steps_from_tests(self):
        steps = steps_from_tests(["a", "b"], axis=Axis.DESCENDANT)
        assert all(s.axis is Axis.DESCENDANT for s in steps)
        expr = XPathExpr(
            steps=steps_from_tests(["a", "b"]), rooted=False
        )
        assert str(expr) == "a/b"

    def test_try_parse(self):
        assert try_parse_xpath("/ok/fine") is not None
        assert try_parse_xpath("!!") is None

    def test_prefix_suffix_bounds(self):
        expr = parse_xpath("/a/b")
        with pytest.raises(ValueError):
            expr.prefix(0)
        with pytest.raises(ValueError):
            expr.prefix(3)
        with pytest.raises(ValueError):
            expr.suffix(2)

    def test_with_rooted_rejects_leading_descendant(self):
        expr = parse_xpath("//a")
        with pytest.raises(ValueError):
            expr.with_rooted(True)


class TestAdvertCoveringCorners:
    def test_wildcard_in_covered_needs_wildcard_coverer(self):
        # a2 = /a/* stands for ANY second element: /a/b cannot cover it.
        assert not advert_covers(
            Advertisement.from_tests(("a", "b")),
            Advertisement.from_tests(("a", "*")),
        )
        assert advert_covers(
            Advertisement.from_tests(("a", "*")),
            Advertisement.from_tests(("a", "*")),
        )

    def test_recursive_vs_recursive_different_units(self):
        rec_b = simple_recursive(("a",), ("b",), ("z",))
        rec_c = simple_recursive(("a",), ("c",), ("z",))
        assert not advert_covers(rec_b, rec_c)
        assert not advert_covers(rec_c, rec_b)

    def test_wider_unit_contains_narrower_language(self):
        one = simple_recursive(("a",), ("b",), ("z",))
        double = simple_recursive(("a",), ("b", "b"), ("z",))
        # Every word of `double` (even numbers of b) is a word of `one`.
        assert advert_covers(one, double)
        # But not vice versa: a single-b word escapes `double`.
        assert not advert_covers(double, one)


class TestCliExperiments:
    def test_experiments_subcommand_runs(self, capsys):
        from repro.cli import main

        assert main(["experiments", "--only", "tableprofile"]) == 0
        out = capsys.readouterr().out
        assert "Routing-table profile" in out
