"""End-to-end coverage on the third sample DTD (XMark-like auctions).

Exercises every layer on a DTD with a different recursion structure
(choice-based parlist/listitem recursion instead of NITF's block
nesting) to guard against NITF/PSD-specific assumptions.
"""

import collections

from repro.adverts import generate_advertisements, expr_and_advertisement
from repro.broker.strategies import RoutingConfig
from repro.covering.subscription_tree import SubscriptionTree
from repro.dtd import is_recursive, recursive_elements, xmark_dtd
from repro.merging.engine import PathUniverse
from repro.network import ConstantLatency, Overlay
from repro.workloads import (
    covering_rate,
    generate_documents,
    generate_queries,
)
from repro.xpath import parse_xpath


class TestXmarkStructure:
    def test_recursion_through_parlist(self):
        dtd = xmark_dtd()
        assert is_recursive(dtd)
        assert recursive_elements(dtd) == {"parlist", "listitem"}

    def test_advertisements_include_recursive_patterns(self):
        adverts = generate_advertisements(xmark_dtd())
        kinds = collections.Counter(a.kind for a in adverts)
        assert kinds["non-recursive"] > 0
        assert kinds["simple-recursive"] > 0

    def test_choice_content_model_children(self):
        dtd = xmark_dtd()
        assert dtd.declaration("description").child_names() == {
            "text",
            "parlist",
        }
        # description requires exactly one child: not leaf-capable.
        assert not dtd.declaration("description").can_be_leaf()


class TestXmarkWorkloads:
    def test_documents_conform(self):
        dtd = xmark_dtd()
        graph = dtd.child_map()
        for doc in generate_documents(dtd, 3, seed=2, target_bytes=1500):
            assert doc.depth() <= 10
            for path in doc.paths():
                for parent, child in zip(path, path[1:]):
                    assert child in graph[parent], path

    def test_queries_intersect_advertisements(self):
        dtd = xmark_dtd()
        adverts = generate_advertisements(dtd)
        for query in generate_queries(dtd, 40, seed=3):
            assert any(
                expr_and_advertisement(advert, query) for advert in adverts
            ), query

    def test_covering_tree_handles_xmark_queries(self):
        queries = generate_queries(xmark_dtd(), 150, seed=4)
        tree = SubscriptionTree()
        for i, query in enumerate(queries):
            tree.insert(query, i)
        tree.validate()
        assert 0.0 <= covering_rate(queries) <= 1.0


class TestXmarkEndToEnd:
    def test_auction_dissemination(self):
        dtd = xmark_dtd()
        overlay = Overlay.binary_tree(
            3,
            config=RoutingConfig.full(),
            latency_model=ConstantLatency(0.001),
            universe=PathUniverse.from_dtd(dtd, max_depth=8),
        )
        seller = overlay.attach_publisher("seller", "b4")
        bid_watcher = overlay.attach_subscriber("bids", "b5")
        people_desk = overlay.attach_subscriber("people", "b7")

        seller.advertise_dtd(dtd)
        overlay.run()
        bid_watcher.subscribe("/site/open-auctions/open-auction/bidder")
        people_desk.subscribe("//person/address/city")
        overlay.run()

        docs = generate_documents(dtd, 6, seed=5, target_bytes=1800)
        for doc in docs:
            seller.publish_document(doc)
        overlay.run()

        expected_bids = {
            doc.doc_id
            for doc in docs
            if any(
                path[:4]
                == ("site", "open-auctions", "open-auction", "bidder")
                for path in doc.paths()
            )
        }
        from repro.covering.pathmatch import matches_path

        expected_people = {
            doc.doc_id
            for doc in docs
            if any(
                matches_path(parse_xpath("//person/address/city"), path)
                for path in doc.paths()
            )
        }
        assert bid_watcher.delivered_documents() == expected_bids
        assert people_desk.delivered_documents() == expected_people
