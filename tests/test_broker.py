"""Unit tests for the broker (message handling, tables, strategies)."""

import pytest

from repro.adverts import Advertisement
from repro.broker import (
    AdvertiseMsg,
    Broker,
    PublishMsg,
    RoutingConfig,
    SubscribeMsg,
    SubscriptionRoutingTable,
    UnadvertiseMsg,
    UnsubscribeMsg,
)
from repro.errors import RoutingError
from repro.xmldoc import Publication
from repro.xpath import parse_xpath


def x(text):
    return parse_xpath(text)


def adv(*tests, adv_id="adv1", publisher="pub"):
    return AdvertiseMsg(
        adv_id=adv_id,
        advert=Advertisement.from_tests(tests),
        publisher_id=publisher,
    )


def sub(text, subscriber="s"):
    return SubscribeMsg(expr=x(text), subscriber_id=subscriber)


def pub(path, doc_id="d1", path_id=0):
    return PublishMsg(
        publication=Publication(doc_id=doc_id, path_id=path_id, path=path),
        publisher_id="pub",
    )


def make_broker(config=None, neighbors=(), clients=()):
    broker = Broker("b1", config=config or RoutingConfig.with_adv_with_cov())
    for n in neighbors:
        broker.connect(n)
    for c in clients:
        broker.attach_client(c)
    return broker


class TestWiring:
    def test_cannot_neighbor_self(self):
        broker = Broker("b1")
        with pytest.raises(RoutingError):
            broker.connect("b1")

    def test_client_cannot_shadow_neighbor(self):
        broker = make_broker(neighbors=["n1"])
        with pytest.raises(RoutingError):
            broker.attach_client("n1")


class TestAdvertisements:
    def test_advert_floods_to_other_neighbors(self):
        broker = make_broker(neighbors=["n1", "n2", "n3"])
        out = broker.handle(adv("a", "b"), "n1")
        destinations = {d for d, _ in out}
        assert destinations == {"n2", "n3"}

    def test_duplicate_advert_stops_flooding(self):
        broker = make_broker(neighbors=["n1", "n2"])
        broker.handle(adv("a", "b"), "n1")
        assert broker.handle(adv("a", "b"), "n2") == []

    def test_unadvertise_removes_and_floods(self):
        broker = make_broker(neighbors=["n1", "n2"])
        broker.handle(adv("a", "b"), "n1")
        out = broker.handle(UnadvertiseMsg(adv_id="adv1"), "n1")
        assert {d for d, _ in out} == {"n2"}
        assert "adv1" not in broker.srt

    def test_subscription_replay_toward_new_advert(self):
        broker = make_broker(neighbors=["n1", "n2"], clients=["c1"])
        broker.handle(sub("/a/b"), "c1")  # no adverts yet: goes nowhere
        out = broker.handle(adv("a", "b", "c"), "n2")
        subs_out = [(d, m) for d, m in out if isinstance(m, SubscribeMsg)]
        assert ("n2", subs_out[0][1])[0] == "n2"
        assert subs_out[0][1].expr == x("/a/b")

    def test_no_replay_when_advert_does_not_intersect(self):
        broker = make_broker(neighbors=["n1", "n2"], clients=["c1"])
        broker.handle(sub("/z/z"), "c1")
        out = broker.handle(adv("a", "b"), "n2")
        assert not any(isinstance(m, SubscribeMsg) for _, m in out)


class TestSubscriptionForwarding:
    def test_advertisement_based_targets(self):
        broker = make_broker(neighbors=["n1", "n2"], clients=["c1"])
        broker.handle(adv("a", "b"), "n1")
        out = broker.handle(sub("/a"), "c1")
        assert [(d, m.expr) for d, m in out] == [("n1", x("/a"))]

    def test_flooding_without_advertisements(self):
        broker = make_broker(
            config=RoutingConfig.no_adv_no_cov(),
            neighbors=["n1", "n2", "n3"],
            clients=["c1"],
        )
        out = broker.handle(sub("/a"), "c1")
        assert {d for d, _ in out} == {"n1", "n2", "n3"}

    def test_subscription_not_sent_back_to_source(self):
        broker = make_broker(
            config=RoutingConfig.no_adv_no_cov(), neighbors=["n1", "n2"]
        )
        out = broker.handle(sub("/a"), "n1")
        assert {d for d, _ in out} == {"n2"}

    def test_covered_subscription_suppressed_same_hop(self):
        broker = make_broker(neighbors=["n1", "n2"], clients=["c1", "c2"])
        broker.handle(adv("a", "b"), "n1")
        broker.handle(sub("/a", subscriber="c1"), "c1")
        out = broker.handle(sub("/a/b", subscriber="c2"), "c2")
        assert out == []  # /a already went to n1

    def test_covering_suppression_is_per_neighbor(self):
        """The correctness corner from the broker docstring: s1 from X
        must not suppress s2's forwarding toward X."""
        broker = make_broker(
            config=RoutingConfig.no_adv_with_cov(),
            neighbors=["X", "Y", "Z"],
        )
        broker.handle(sub("/a"), "X")  # forwarded to Y and Z only
        out = broker.handle(sub("/a/b"), "Y")
        # /a/b is covered at Z (which got /a) but X never saw /a.
        assert {d for d, _ in out} == {"X"}

    def test_displaced_subscriptions_unsubscribed(self):
        broker = make_broker(
            config=RoutingConfig.no_adv_with_cov(),
            neighbors=["n1"],
            clients=["c1", "c2"],
        )
        broker.handle(sub("/a/b", subscriber="c1"), "c1")
        out = broker.handle(sub("/a", subscriber="c2"), "c2")
        kinds = [(d, type(m).__name__, getattr(m, "expr", None)) for d, m in out]
        assert ("n1", "SubscribeMsg", x("/a")) in kinds
        assert ("n1", "UnsubscribeMsg", x("/a/b")) in kinds


class TestUnsubscribe:
    def test_unsubscribe_propagates(self):
        broker = make_broker(
            config=RoutingConfig.no_adv_no_cov(),
            neighbors=["n1"],
            clients=["c1"],
        )
        broker.handle(sub("/a"), "c1")
        out = broker.handle(UnsubscribeMsg(expr=x("/a")), "c1")
        assert [(d, type(m).__name__) for d, m in out] == [
            ("n1", "UnsubscribeMsg")
        ]

    def test_unsubscribe_promotes_covered_children(self):
        broker = make_broker(
            config=RoutingConfig.no_adv_with_cov(),
            neighbors=["n1"],
            clients=["c1", "c2"],
        )
        broker.handle(sub("/a", subscriber="c1"), "c1")
        broker.handle(sub("/a/b", subscriber="c2"), "c2")  # covered
        out = broker.handle(UnsubscribeMsg(expr=x("/a")), "c1")
        kinds = {(d, type(m).__name__, getattr(m, "expr", None)) for d, m in out}
        assert ("n1", "UnsubscribeMsg", x("/a")) in kinds
        assert ("n1", "SubscribeMsg", x("/a/b")) in kinds

    def test_unsubscribe_keeps_shared_expr(self):
        broker = make_broker(
            config=RoutingConfig.no_adv_no_cov(),
            neighbors=["n1"],
            clients=["c1", "c2"],
        )
        broker.handle(sub("/a", subscriber="c1"), "c1")
        broker.handle(sub("/a", subscriber="c2"), "c2")
        out = broker.handle(UnsubscribeMsg(expr=x("/a")), "c1")
        assert out == []  # c2 still needs it


class TestPublishing:
    def test_delivery_to_matching_client(self):
        broker = make_broker(
            config=RoutingConfig.no_adv_no_cov(), clients=["c1", "c2"]
        )
        broker.handle(sub("/a/b", subscriber="c1"), "c1")
        broker.handle(sub("/z", subscriber="c2"), "c2")
        out = broker.handle(pub(("a", "b", "c")), "n-upstream")
        assert [(d, m.publication.doc_id) for d, m in out] == [("c1", "d1")]

    def test_forward_to_subscribed_neighbor(self):
        broker = make_broker(
            config=RoutingConfig.no_adv_no_cov(), neighbors=["n1", "n2"]
        )
        broker.handle(sub("/a"), "n1")
        out = broker.handle(pub(("a", "b")), "n2")
        assert [(d, type(m).__name__) for d, m in out] == [
            ("n1", "PublishMsg")
        ]

    def test_never_sent_back_to_source_hop(self):
        broker = make_broker(
            config=RoutingConfig.no_adv_no_cov(), neighbors=["n1"]
        )
        broker.handle(sub("/a"), "n1")
        assert broker.handle(pub(("a",)), "n1") == []

    def test_edge_recheck_blocks_false_positives(self):
        """A client key reached via a merged/covering node must still
        pass the client's exact subscriptions."""
        broker = make_broker(
            config=RoutingConfig.no_adv_with_cov(), clients=["c1"]
        )
        broker.handle(sub("/a/b", subscriber="c1"), "c1")
        # Manually widen the tree node (simulating an imperfect merger
        # that kept c1's key on a more general expression).
        node = broker.tree.node_of(x("/a/b"))
        broker.tree._by_expr.pop(node.expr)
        object.__setattr__(node, "expr", x("/a/*"))
        broker.tree._by_expr[x("/a/*")] = node
        out = broker.handle(pub(("a", "z")), "upstream")
        assert out == []  # matched the merger but not c1's real sub


class TestSRT:
    def test_matching_last_hops(self):
        srt = SubscriptionRoutingTable()
        srt.add("a1", Advertisement.from_tests(("a", "b")), "n1")
        srt.add("a2", Advertisement.from_tests(("z",)), "n2")
        assert srt.matching_last_hops(x("/a")) == {"n1"}
        assert srt.matching_last_hops(x("/a/b")) == {"n1"}
        assert srt.matching_last_hops(x("/q")) == set()

    def test_duplicate_add_rejected(self):
        srt = SubscriptionRoutingTable()
        assert srt.add("a1", Advertisement.from_tests(("a",)), "n1")
        assert not srt.add("a1", Advertisement.from_tests(("a",)), "n2")
        assert len(srt) == 1

    def test_remove(self):
        srt = SubscriptionRoutingTable()
        srt.add("a1", Advertisement.from_tests(("a",)), "n1")
        assert srt.remove("a1")
        assert not srt.remove("a1")


class TestStats:
    def test_message_counters(self):
        broker = make_broker(
            config=RoutingConfig.no_adv_no_cov(), clients=["c1"]
        )
        broker.handle(sub("/a"), "c1")
        broker.handle(pub(("a",)), "c1")
        assert broker.stats["SubscribeMsg"] == 1
        assert broker.stats["PublishMsg"] == 1

    def test_routing_table_size(self):
        broker = make_broker(
            config=RoutingConfig.no_adv_with_cov(), clients=["c1"]
        )
        broker.handle(sub("/a", subscriber="c1"), "c1")
        broker.handle(sub("/a/b", subscriber="c1"), "c1")
        assert broker.routing_table_size() == 2
