"""Cache correctness for the routing fast path.

Three properties guard the result caches introduced with the compiled
matching core:

* the ``covers()`` memo always agrees with the uncached dispatch
  (expressions are immutable, so any disagreement is a caching bug);
* a broker's publication-match cache is generation-invalidated: after
  SUB/UNSUB/ADV churn and a merge sweep, cached match results equal a
  cold-cache recomputation;
* restored brokers (restart and crash/recovery) start with empty
  caches — cached destination sets never survive a process boundary;
* batched publication dispatch delivers exactly the same document sets
  as per-message dispatch.
"""

from repro.broker import (
    AdvertiseMsg,
    Broker,
    PublishMsg,
    RoutingConfig,
    SubscribeMsg,
    UnsubscribeMsg,
)
from repro.adverts import Advertisement
from repro.covering.algorithms import covers, covers_uncached
from repro.dtd.samples import psd_dtd
from repro.merging.engine import PathUniverse
from repro.network import ConstantLatency, Overlay
from repro.network.faults import FaultPlan
from repro.workloads.document_generator import generate_documents
from repro.workloads.xpath_generator import XPathWorkloadParams, generate_queries
from repro.xmldoc import Publication
from repro.xpath import parse_xpath


def x(text):
    return parse_xpath(text)


def sub(text, subscriber="s"):
    return SubscribeMsg(expr=x(text), subscriber_id=subscriber)


def unsub(text, subscriber="s"):
    return UnsubscribeMsg(expr=x(text), subscriber_id=subscriber)


def pub(path, doc_id="d1", path_id=0):
    return PublishMsg(
        publication=Publication(doc_id=doc_id, path_id=path_id, path=path),
        publisher_id="pub",
    )


# -- covers() memo ---------------------------------------------------------


def test_covers_memo_agrees_with_uncached():
    pool = generate_queries(
        psd_dtd(),
        60,
        params=XPathWorkloadParams(
            wildcard_prob=0.3, descendant_prob=0.3, relative_prob=0.3
        ),
        seed=99,
    )
    for s1 in pool:
        for s2 in pool:
            assert covers(s1, s2) == covers_uncached(s1, s2), (s1, s2)
    # ... and asking again (pure cache hits) still agrees.
    for s1 in pool[:20]:
        for s2 in pool[:20]:
            assert covers(s1, s2) == covers_uncached(s1, s2)


# -- broker match cache ----------------------------------------------------


def make_broker(config=None):
    broker = Broker("b1", config=config or RoutingConfig.with_adv_with_cov())
    for n in ("n1", "n2"):
        broker.connect(n)
    broker.attach_client("c1")
    return broker


def cold_keys(broker, publication):
    """What the matcher computes with no cache in the loop."""
    attributes = publication.attribute_maps()
    if broker.config.covering:
        return frozenset(broker.tree.match_keys(publication.path, attributes))
    return frozenset(broker.flat.match(publication.path, attributes))


PROBE_PATHS = (
    ("ProteinDatabase", "ProteinEntry"),
    ("ProteinDatabase", "ProteinEntry", "protein"),
    ("ProteinDatabase", "ProteinEntry", "reference"),
    ("somewhere", "else"),
)


def churn(broker):
    """A SUB/UNSUB/ADV sequence touching every invalidation site."""
    broker.handle(sub("/ProteinDatabase//protein"), "n1")
    broker.handle(sub("/ProteinDatabase/ProteinEntry"), "n2")
    broker.handle(sub("//reference"), "c1")
    broker.handle(
        AdvertiseMsg(
            adv_id="advA",
            advert=Advertisement.from_tests(("ProteinDatabase",)),
            publisher_id="p",
        ),
        "n1",
    )
    broker.handle(unsub("/ProteinDatabase//protein"), "n1")
    broker.handle(sub("/ProteinDatabase/*"), "n1")


def test_cached_matches_equal_cold_recomputation_after_churn():
    broker = make_broker()
    churn(broker)
    probes = [pub(path, path_id=i) for i, path in enumerate(PROBE_PATHS)]
    # Warm the cache, then churn more — every warm entry is now stale.
    for msg in probes:
        broker.handle(msg, "n2")
    generation_before = broker._match_generation
    broker.handle(sub("//organism"), "n2")
    broker.handle(unsub("/ProteinDatabase/*"), "n1")
    assert broker._match_generation > generation_before
    stale_before = broker.match_cache_stale
    for msg in probes:
        cached = broker._publication_keys(msg.publication)
        assert cached == cold_keys(broker, msg.publication)
    assert broker.match_cache_stale > stale_before


def test_repeat_publication_hits_cache_with_identical_output():
    broker = make_broker()
    churn(broker)
    msg = pub(PROBE_PATHS[1])
    first = broker.handle(msg, "n2")
    hits_before = broker.match_cache.hits
    second = broker.handle(msg, "n2")
    assert second == first
    assert broker.match_cache.hits > hits_before


def test_merge_sweep_invalidates_cache():
    universe = PathUniverse.from_dtd(psd_dtd(), max_depth=6)
    config = RoutingConfig.by_name("with-Adv-with-CovIPM")
    broker = Broker("b1", config=config, universe=universe)
    broker.connect("n1")
    broker.connect("n2")
    for i, text in enumerate(
        ("/ProteinDatabase/ProteinEntry", "/ProteinDatabase/*", "//protein")
    ):
        broker.handle(sub(text, subscriber="s%d" % i), "n1")
    msg = pub(PROBE_PATHS[1])
    broker.handle(msg, "n2")  # warm
    generation = broker._match_generation
    broker.run_merge_sweep()
    assert broker._match_generation > generation
    assert broker._publication_keys(msg.publication) == cold_keys(
        broker, msg.publication
    )


def test_flat_merge_sweep_invalidates_cache():
    """Regression: non-covering merge sweeps rewrite the flat table, so
    match results cached before the sweep must version out too (the
    sweep used to be covering-only and left flat caches untouched)."""
    from repro.broker.strategies import MergingMode

    universe = PathUniverse.from_dtd(psd_dtd(), max_depth=6)
    config = RoutingConfig(
        advertisements=True,
        covering=False,
        merging=MergingMode.IMPERFECT,
        max_imperfect_degree=1.0,
        merge_interval=1000,
    )
    broker = Broker("b1", config=config, universe=universe)
    broker.connect("n1")
    broker.connect("n2")
    broker.handle(sub("/ProteinDatabase/ProteinEntry/protein"), "n1")
    broker.handle(sub("/ProteinDatabase/ProteinEntry/reference"), "n1")
    msg = pub(("ProteinDatabase", "ProteinEntry", "protein"))
    broker.handle(msg, "n2")  # warm
    generation = broker._match_generation
    broker.run_merge_sweep()
    assert broker.merge_log, "the generous budget should allow the merge"
    assert x("/ProteinDatabase/ProteinEntry/*") in broker.flat.exprs()
    assert broker._match_generation > generation
    assert broker._publication_keys(msg.publication) == cold_keys(
        broker, msg.publication
    )


def test_nocov_broker_cache_agrees_with_flat_matcher():
    broker = make_broker(config=RoutingConfig.by_name("no-Adv-no-Cov"))
    broker.handle(sub("//protein"), "n1")
    broker.handle(sub("/ProteinDatabase//reference"), "n2")
    for i, path in enumerate(PROBE_PATHS):
        message = pub(path, path_id=i)
        broker.handle(message, "n1")  # warm
        assert broker._publication_keys(message.publication) == cold_keys(
            broker, message.publication
        )


# -- matcher-level keys caches ---------------------------------------------


def test_tree_keys_cache_invalidates_on_mutation_and_merge():
    from repro.covering.subscription_tree import SubscriptionTree
    from repro.merging.engine import MergingEngine, PathUniverse

    tree = SubscriptionTree()
    for i, text in enumerate(
        ("/ProteinDatabase/ProteinEntry", "/ProteinDatabase/*", "//protein")
    ):
        tree.insert(x(text), "k%d" % i)
    path = PROBE_PATHS[1]
    warm = tree.match_keys(path)
    assert tree.match_keys(path) == warm  # hit
    assert tree.keys_cache.hits > 0
    # Mutations version the memo out; results track the live tree.
    tree.insert(x("//reference"), "k3")
    assert tree.match_keys(path) == warm  # same result, recomputed
    tree.remove(x("/ProteinDatabase/*"), "k1")
    assert tree.match_keys(path) == frozenset(
        k for node in tree.match(path) for k in node.keys
    )
    # A merge sweep rewrites the tree through the engine's internals —
    # invalidate_matches() keeps the memo honest there too.
    universe = PathUniverse.from_dtd(psd_dtd(), max_depth=6)
    epoch = tree.match_epoch
    MergingEngine(universe=universe, max_degree=0.0).merge_tree(tree)
    assert tree.match_epoch >= epoch
    assert tree.match_keys(path) == frozenset(
        k for node in tree.match(path) for k in node.keys
    )


def test_linear_keys_cache_invalidates_on_add_remove():
    from repro.matching.engine import LinearMatcher

    matcher = LinearMatcher()
    matcher.add(x("//protein"), "a")
    path = PROBE_PATHS[1] + ("protein",)
    assert matcher.match(path) == {"a"}
    assert matcher.match(path) == {"a"}
    assert matcher.keys_cache.hits > 0
    matcher.add(x("/ProteinDatabase//protein"), "b")
    assert matcher.match(path) == {"a", "b"}
    matcher.remove(x("//protein"), "a")
    assert matcher.match(path) == {"b"}


# -- restart / crash-recovery start cold -----------------------------------


def overlay_with_traffic(**kwargs):
    overlay = Overlay.binary_tree(
        2,
        config=RoutingConfig.with_adv_with_cov(),
        latency_model=ConstantLatency(0.001),
        **kwargs,
    )
    publisher = overlay.attach_publisher("pub", "b2")
    subscriber = overlay.attach_subscriber("sub", "b3")
    publisher.advertise_dtd(psd_dtd())
    overlay.run()
    subscriber.subscribe("/ProteinDatabase")
    overlay.run()
    return overlay, publisher, subscriber


def publish_round(overlay, publisher, seed):
    docs = generate_documents(psd_dtd(), 1, seed=seed, target_bytes=600)
    publisher.publish_document(docs[0])
    overlay.run()
    return docs[0].doc_id


def test_restarted_broker_starts_with_empty_cache():
    overlay, publisher, subscriber = overlay_with_traffic()
    publish_round(overlay, publisher, seed=1)
    assert any(
        len(b.match_cache) > 0 for b in overlay.brokers.values()
    ), "traffic should have warmed at least one broker cache"
    warmed = overlay.brokers["b1"]
    assert len(warmed.match_cache) > 0
    restored = overlay.restart_broker("b1", with_state=True)
    assert len(restored.match_cache) == 0
    assert restored._match_generation == 0
    # ... and routing still works from the cold cache.
    doc = publish_round(overlay, publisher, seed=2)
    assert doc in subscriber.delivered_documents()


def test_snapshot_restore_drops_cache():
    """The persisted broker image carries no cached match results."""
    from repro.broker.persistence import restore, snapshot

    broker = make_broker()
    churn(broker)
    for i, path in enumerate(PROBE_PATHS):
        broker.handle(pub(path, path_id=i), "n2")
    assert len(broker.match_cache) > 0
    assert broker._match_generation > 0
    clone = restore(snapshot(broker))
    assert len(clone.match_cache) == 0
    assert clone._match_generation == 0


def test_crash_recovery_starts_with_empty_cache():
    overlay, publisher, subscriber = overlay_with_traffic(faults=FaultPlan())
    publish_round(overlay, publisher, seed=3)
    warmed = overlay.brokers["b1"]
    assert len(warmed.match_cache) > 0
    overlay.crash_broker("b1", with_state=True)
    overlay.recover_broker("b1")
    overlay.run()
    recovered = overlay.brokers["b1"]
    # The recovery replay may already have warmed the *new* cache, but
    # it is a fresh object — nothing cached before the crash survives
    # (test_snapshot_restore_drops_cache pins the cold-start itself).
    assert recovered is not warmed
    assert recovered.match_cache is not warmed.match_cache
    doc = publish_round(overlay, publisher, seed=4)
    assert doc in subscriber.delivered_documents()


# -- batched dispatch equivalence ------------------------------------------


def delivered_with(batching):
    overlay, publisher, subscriber = overlay_with_traffic(batching=batching)
    subscriber2 = overlay.attach_subscriber("sub2", "b2")
    subscriber2.subscribe("//ProteinEntry")
    overlay.run()
    docs = generate_documents(psd_dtd(), 4, seed=17, target_bytes=800)
    for doc in docs:
        publisher.publish_document(doc)
    overlay.run()
    return overlay.delivered_map()


def test_batched_dispatch_delivers_identical_sets():
    assert delivered_with(batching=True) == delivered_with(batching=False)
