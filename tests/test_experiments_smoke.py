"""Smoke tests for the experiment harness at tiny scales.

Each runner must produce a well-formed result whose qualitative shape
matches the paper's even at toy sizes (the benchmarks assert the same
shapes at the recorded scales).
"""

import os

import pytest

from repro.dtd.samples import nitf_dtd
from repro.experiments import (
    ExperimentResult,
    run_fig6,
    run_fig7,
    run_fig9,
    run_table1,
    run_traffic_experiment,
    scaled,
)
from repro.experiments.report import result_to_markdown, write_report
from repro.merging.engine import PathUniverse
from repro.workloads.datasets import set_a, set_b


@pytest.fixture(scope="module")
def tiny_sets():
    return set_a(200, seed=41), set_b(200, seed=42)


@pytest.fixture(scope="module")
def universe():
    return PathUniverse.from_dtd(nitf_dtd(), max_depth=7)


class TestRunners:
    def test_fig6_shape(self, tiny_sets):
        dataset_a, dataset_b = tiny_sets
        result = run_fig6(
            scale=0.002, dataset_a=dataset_a, dataset_b=dataset_b
        )
        rows = result.rows()
        assert len(rows) == 5
        assert rows[-1]["covering_set_a"] < rows[-1]["covering_set_b"]
        assert rows[-1]["covering_set_b"] < rows[-1]["no_covering"]

    def test_fig7_shape(self, tiny_sets, universe):
        _, dataset_b = tiny_sets
        result = run_fig7(scale=0.002, dataset=dataset_b, universe=universe)
        last = result.rows()[-1]
        assert last["imperfect_merging"] <= last["perfect_merging"]
        assert last["perfect_merging"] <= last["covering"]

    def test_table1_shape(self, tiny_sets, universe):
        dataset_a, dataset_b = tiny_sets
        result = run_table1(
            scale=0.002,
            documents=4,
            dataset_a=dataset_a,
            dataset_b=dataset_b,
            universe=universe,
        )
        rows = {row["method"]: row for row in result.rows()}
        assert set(rows) == {
            "No Covering",
            "Covering",
            "Perfect Merging",
            "Imperfect Merging",
        }
        assert rows["Covering"]["set_a_ms"] < rows["No Covering"]["set_a_ms"]

    def test_fig9_monotone(self):
        result = run_fig9(documents=8)
        fps = [row["false_positive_pct"] for row in result.rows()]
        assert fps[0] == 0.0
        assert all(b >= a - 1e-9 for a, b in zip(fps, fps[1:]))

    def test_traffic_experiment_single_strategy(self):
        result = run_traffic_experiment(
            levels=2,
            xpes_per_subscriber=10,
            documents=2,
            strategies=["with-Adv-with-Cov"],
            check_delivery_equivalence=False,
        )
        row = result.rows()[0]
        assert row["network_traffic"] > 0
        assert row["delay_ms"] is not None

    def test_traffic_experiment_equivalence_enforced(self):
        # Running two strategies with the check on must not raise.
        run_traffic_experiment(
            levels=2,
            xpes_per_subscriber=8,
            documents=2,
            strategies=["no-Adv-no-Cov", "with-Adv-with-Cov"],
        )


class TestScaledHelper:
    def test_rounding_and_floor(self):
        assert scaled(100, 0.5) == 50
        assert scaled(100, 0.0001) == 1
        assert scaled(100, 0.0001, minimum=7) == 7
        assert scaled(10, 2.0) == 20


class TestResultFormatting:
    def make_result(self):
        result = ExperimentResult(
            name="demo", columns=("a", "b"), notes="note"
        )
        result.add_row(a=1, b=None)
        result.add_row(a=2, b=3.14159)
        return result

    def test_format_alignment_and_none(self):
        text = self.make_result().format()
        assert "demo" in text
        assert "-" in text  # the None cell
        assert "3.142" in text
        assert "note" in text

    def test_markdown_rendering(self):
        markdown = result_to_markdown(self.make_result())
        assert markdown.startswith("## demo")
        assert "| a | b |" in markdown
        assert "—" in markdown

    def test_column_accessor(self):
        assert self.make_result().column("a") == [1, 2]


class TestReportWriter:
    def test_write_report(self, tmp_path):
        result = ExperimentResult(name="one", columns=("x",))
        result.add_row(x=1)
        path = os.path.join(str(tmp_path), "report.md")
        ran = write_report({"one": lambda: result}, path, title="T")
        assert ran == ["one"]
        text = open(path).read()
        assert text.startswith("# T")
        assert "## one" in text

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            write_report(
                {},
                os.path.join(str(tmp_path), "r.md"),
                only=["ghost"],
            )
