"""Integration tests: overlay routing correctness across strategies.

The central invariant (DESIGN.md §5): for any workload and topology,
every routing strategy delivers exactly the same (subscriber, document)
set as flooding — the optimisations change traffic, never delivery.
"""


import pytest

from repro.broker.strategies import RoutingConfig
from repro.dtd.samples import psd_dtd
from repro.merging.engine import PathUniverse
from repro.network.latency import ConstantLatency
from repro.network.overlay import Overlay
from repro.workloads.datasets import psd_queries
from repro.workloads.document_generator import generate_documents


def build_overlay(strategy, levels=3, universe=None):
    return Overlay.binary_tree(
        levels,
        config=RoutingConfig.by_name(strategy),
        latency_model=ConstantLatency(0.001),
        universe=universe,
        processing_scale=0.0,
    )


def run_workload(overlay, dtd, n_queries=40, n_docs=6, seed=3,
                 publisher_broker="b2", subscribe_first=False):
    subscribers = []
    for index, leaf in enumerate(overlay.leaf_brokers()):
        subscribers.append(
            (overlay.attach_subscriber("sub%d" % index, leaf), index)
        )
    publisher = overlay.attach_publisher("pub", publisher_broker)

    def do_subscribe():
        for sub, index in subscribers:
            queries = psd_queries(n_queries, seed=seed * 100 + index)
            for expr in queries.exprs:
                sub.subscribe(expr)
        overlay.run()

    def do_advertise():
        if overlay.config.advertisements:
            publisher.advertise_dtd(dtd)
            overlay.run()

    if subscribe_first:
        do_subscribe()
        do_advertise()
    else:
        do_advertise()
        do_subscribe()

    docs = generate_documents(dtd, n_docs, seed=seed, target_bytes=1024)
    for doc in docs:
        publisher.publish_document(doc)
    overlay.run()
    return overlay.delivered_map()


class TestDeliveryEquivalence:
    @pytest.fixture(scope="class")
    def baseline(self):
        dtd = psd_dtd()
        overlay = build_overlay("no-Adv-no-Cov")
        return run_workload(overlay, dtd)

    @pytest.mark.parametrize("strategy", RoutingConfig.ALL_NAMES[1:])
    def test_strategy_delivers_like_flooding(self, baseline, strategy):
        dtd = psd_dtd()
        universe = PathUniverse.from_dtd(dtd, max_depth=10)
        overlay = build_overlay(strategy, universe=universe)
        delivered = run_workload(overlay, dtd)
        assert delivered == baseline

    def test_baseline_actually_delivers_something(self, baseline):
        assert any(docs for docs in baseline.values())

    def test_subscribe_before_advertise_equivalent(self, baseline):
        """Subscription replay on advertisement arrival makes message
        order irrelevant."""
        dtd = psd_dtd()
        overlay = build_overlay("with-Adv-with-Cov")
        delivered = run_workload(overlay, dtd, subscribe_first=True)
        assert delivered == baseline


class TestTrafficOrdering:
    def test_covering_reduces_subscription_traffic(self):
        """With many overlapping subscriptions, covering must lower the
        subscription message count."""
        dtd = psd_dtd()

        def traffic(strategy):
            overlay = build_overlay(strategy)
            run_workload(overlay, dtd, n_queries=80, n_docs=2, seed=6)
            return overlay.stats.traffic_of_kind("SubscribeMsg")

        assert traffic("no-Adv-with-Cov") < traffic("no-Adv-no-Cov")

    def test_advertisements_restrict_subscription_spread(self):
        """Subscriptions must not travel beyond paths toward publishers
        when advertisement-based routing is on (with enough
        subscriptions to amortise the advertisement flood)."""
        dtd = psd_dtd()

        def sub_traffic(strategy):
            overlay = build_overlay(strategy, levels=4)
            run_workload(
                overlay, dtd, n_queries=60, n_docs=1, seed=8,
                publisher_broker="b8",
            )
            return overlay.stats.traffic_of_kind("SubscribeMsg")

        assert sub_traffic("with-Adv-no-Cov") < sub_traffic("no-Adv-no-Cov")


class TestUnsubscribeFlow:
    def test_unsubscribe_stops_delivery(self):
        dtd = psd_dtd()
        overlay = build_overlay("with-Adv-with-Cov")
        sub = overlay.attach_subscriber("s", overlay.leaf_brokers()[0])
        publisher = overlay.attach_publisher("pub", "b1")
        publisher.advertise_dtd(dtd)
        overlay.run()
        sub.subscribe("/ProteinDatabase//sequence")
        overlay.run()
        docs = generate_documents(dtd, 2, seed=5, target_bytes=800)
        publisher.publish_document(docs[0])
        overlay.run()
        delivered_before = set(sub.delivered_documents())
        sub.unsubscribe("/ProteinDatabase//sequence")
        overlay.run()
        publisher.publish_document(docs[1])
        overlay.run()
        assert set(sub.delivered_documents()) == delivered_before

    def test_covered_subscription_survives_coverer_removal(self):
        """s2 covered by s1; when s1 unsubscribes, s2 must still get
        documents (promotion re-forwards it)."""
        dtd = psd_dtd()
        overlay = build_overlay("with-Adv-with-Cov")
        leaves = overlay.leaf_brokers()
        s1 = overlay.attach_subscriber("s1", leaves[0])
        s2 = overlay.attach_subscriber("s2", leaves[0])
        publisher = overlay.attach_publisher("pub", "b1")
        publisher.advertise_dtd(dtd)
        overlay.run()
        s1.subscribe("/ProteinDatabase")
        overlay.run()
        s2.subscribe("/ProteinDatabase/ProteinEntry/keywords/keyword")
        overlay.run()
        s1.unsubscribe("/ProteinDatabase")
        overlay.run()
        docs = generate_documents(dtd, 1, seed=5, target_bytes=800)
        publisher.publish_document(docs[0])
        overlay.run()
        assert docs[0].doc_id in s2.delivered_documents()
        assert docs[0].doc_id not in s1.delivered_documents()
