"""Edge materialized views (repro.views): unit contract, byte-identity
with the core route, window replay for late subscribers, crash
semantics, audit classification and backend equivalence.

The load-bearing guarantees (docs/views.md):

* a view-served delivery is byte-identical to the core-routed one —
  pinned through ``canonical_effects``, which renders ``ViewServe`` as
  a plain delivery;
* replays are exactly-once per ``(doc_id, path_id)`` at the client;
* views are derived state — never persisted, dropped on crash/restore,
  lazily rewarmed — so correctness never depends on a view existing;
* the audit oracle classifies ``view_served``/``replayed`` deliveries
  and fails the run when either leaves the expected set.
"""

import dataclasses

import pytest

from repro.audit.harness import audit_scenarios, run_audited_workload
from repro.audit.oracle import AuditOracle
from repro.broker import (
    Broker,
    PublishMsg,
    RoutingConfig,
    SubscribeMsg,
)
from repro.broker.core import (
    BrokerCore,
    Deliver,
    Replay,
    ViewServe,
    canonical_effects,
)
from repro.broker.persistence import restore, snapshot
from repro.dtd.samples import psd_dtd
from repro.merging.engine import PathUniverse
from repro.network.latency import ConstantLatency
from repro.network.overlay import Overlay
from repro.views import ViewManager
from repro.workloads.datasets import psd_queries
from repro.workloads.document_generator import generate_documents
from repro.xmldoc import Publication
from repro.xpath import parse_xpath


def x(text):
    return parse_xpath(text)


def _pub(path, doc_id, path_id=0):
    return PublishMsg(
        publication=Publication(doc_id=doc_id, path_id=path_id, path=path),
        publisher_id="pub",
    )


def _views_config(**overrides):
    base = dict(views=True, view_hot_threshold=2)
    base.update(overrides)
    return dataclasses.replace(RoutingConfig.no_adv_with_cov(), **base)


# -- ViewManager unit contract ---------------------------------------------


class TestViewManager:
    GROUP = (("a", "b"), None)

    def _warm(self, views, stamp=(0, 0), count=None):
        keys, wanting = frozenset({"c1"}), frozenset({"c1"})
        for _ in range(count if count is not None else views.hot_threshold):
            views.observe(*self.GROUP, keys, wanting, stamp)
        return keys, wanting

    def test_materializes_only_at_hot_threshold(self):
        views = ViewManager(hot_threshold=3)
        self._warm(views, count=2)
        assert views.serve(*self.GROUP, (0, 0)) is None
        self._warm(views, count=1)
        assert views.serve(*self.GROUP, (0, 0)) == (
            frozenset({"c1"}), frozenset({"c1"})
        )

    def test_stale_stamp_drops_the_view_but_heat_survives(self):
        views = ViewManager(hot_threshold=2)
        self._warm(views)
        assert views.serve(*self.GROUP, (0, 0)) is not None
        # Routing state moved: the memo (and its window) is poison.
        assert views.serve(*self.GROUP, (1, 0)) is None
        assert views.dropped_stale == 1
        assert not views.views
        # The group is still known-hot: one fresh observe rewarms it.
        views.observe(*self.GROUP, frozenset({"c2"}), frozenset({"c2"}),
                      (1, 0))
        assert views.serve(*self.GROUP, (1, 0)) == (
            frozenset({"c2"}), frozenset({"c2"})
        )

    def test_client_epoch_is_part_of_the_stamp(self):
        views = ViewManager(hot_threshold=2)
        self._warm(views, stamp=(0, views.client_epoch))
        views.client_epoch += 1  # a local client joined or left
        assert views.serve(*self.GROUP, (0, views.client_epoch)) is None

    def test_window_capacity_evicts_oldest(self):
        views = ViewManager(window=2, hot_threshold=1)
        self._warm(views, count=1)
        for i in range(4):
            views.capture(*self.GROUP, _pub(("a", "b"), "d%d" % i))
        view = views.views[self.GROUP]
        assert [m.publication.doc_id for m in view.replay_messages()] == [
            "d2", "d3"
        ]

    def test_max_views_lru_eviction(self):
        views = ViewManager(hot_threshold=1, max_views=2)
        for root in ("a", "b", "c"):
            views.observe((root, "x"), None, frozenset(), frozenset(), (0, 0))
        assert len(views.views) == 2
        assert (("a", "x"), None) not in views.views

    def test_replay_queueing_matches_the_subscription(self):
        views = ViewManager(hot_threshold=1)
        self._warm(views, count=1)
        views.capture(*self.GROUP, _pub(("a", "b"), "d1"))
        views.capture(*self.GROUP, _pub(("a", "b"), "d2"))
        assert views.queue_replays_for("late", x("/a/b")) == 2
        assert views.queue_replays_for("late", x("/z/q")) == 0
        pending = views.take_pending_replays()
        assert len(pending) == 1
        client_id, messages, group = pending[0]
        assert client_id == "late" and group == ("a", "b")
        assert [m.publication.doc_id for m in messages] == ["d1", "d2"]
        assert not views.take_pending_replays()

    def test_stats_shape_and_hit_ratio(self):
        views = ViewManager(hot_threshold=1)
        self._warm(views, count=1)
        views.serve(*self.GROUP, (0, 0))
        views.serve(*self.GROUP, (9, 9))  # stale -> miss
        stats = views.stats()
        assert stats["serves"] == 1 and stats["misses"] == 1
        assert stats["hit_ratio"] == 0.5
        assert {"views", "hot_groups", "materialized", "dropped_stale",
                "replays_queued", "window_capacity", "retained"} <= set(stats)


# -- byte-identity with the core route -------------------------------------


def _core(config):
    core = BrokerCore("b1", config=config)
    core.connect("n1")
    core.attach_client("c1")
    core.on_message(SubscribeMsg(expr=x("/a/b"), subscriber_id="c1"), "c1")
    return core


class TestByteIdentity:
    def test_view_served_effects_equal_core_routed_effects(self):
        viewed = _core(_views_config(view_hot_threshold=1))
        plain = _core(dataclasses.replace(_views_config(), views=False))
        saw_serve = False
        for i in range(6):
            message = _pub(("a", "b"), "doc%d" % i)
            got = viewed.on_message(message, "n1")
            want = plain.on_message(
                dataclasses.replace(message), "n1"
            )
            assert canonical_effects(got) == canonical_effects(want), i
            saw_serve = saw_serve or any(
                isinstance(e, ViewServe) for e in got
            )
        assert saw_serve  # the fast path actually engaged
        assert viewed.broker.views.serves >= 1

    def test_replay_effect_carries_the_window(self):
        core = _core(_views_config(view_hot_threshold=1))
        for i in range(3):
            core.on_message(_pub(("a", "b"), "doc%d" % i), "n1")
        core.attach_client("late")
        effects = core.on_message(
            SubscribeMsg(expr=x("/a/b"), subscriber_id="late"), "late"
        )
        replays = [e for e in effects if isinstance(e, Replay)]
        assert len(replays) == 1
        assert replays[0].client_id == "late"
        assert [m.publication.doc_id for m in replays[0].messages] == [
            "doc1", "doc2"
        ] or len(replays[0].messages) >= 1
        # Replays target only local clients; a neighbor subscribing to
        # the same expression must not trigger one.
        core.connect("n2")
        effects = core.on_message(
            SubscribeMsg(expr=x("/a/b"), subscriber_id="s9"), "n2"
        )
        assert not [e for e in effects if isinstance(e, Replay)]

    def test_unsubscribe_invalidates_the_serve_memo(self):
        core = _core(_views_config(view_hot_threshold=1))
        core.attach_client("c2")
        core.on_message(
            SubscribeMsg(expr=x("/a/b"), subscriber_id="c2"), "c2"
        )
        for i in range(2):
            core.on_message(_pub(("a", "b"), "w%d" % i), "n1")
        # c2 leaves: the wanting set cached by the view is now wrong,
        # and the client-epoch stamp must force a core re-route.
        from repro.broker.messages import UnsubscribeMsg

        core.on_message(
            UnsubscribeMsg(expr=x("/a/b"), subscriber_id="c2"), "c2"
        )
        effects = core.on_message(_pub(("a", "b"), "after"), "n1")
        delivered = {
            e.client_id for e in effects if isinstance(e, Deliver)
        }
        assert delivered == {"c1"}


# -- views are derived state (crash / restore semantics) -------------------


class TestCrashSemantics:
    def test_views_are_not_persisted_and_restore_fresh(self):
        broker = Broker("b1", config=_views_config(view_hot_threshold=1))
        broker.connect("n1")
        broker.attach_client("c1")
        broker.handle(SubscribeMsg(expr=x("/a/b"), subscriber_id="c1"), "c1")
        for i in range(4):
            broker.handle(_pub(("a", "b"), "d%d" % i), "n1")
        assert broker.views.stats()["views"] >= 1
        rebuilt = restore(snapshot(broker))
        assert rebuilt.config.views
        stats = rebuilt.views.stats()
        assert stats["views"] == 0 and stats["serves"] == 0
        # First post-crash publication converges through the core ...
        out = rebuilt.handle(_pub(("a", "b"), "post0"), "n1")
        assert [d for d, _ in out] == ["c1"]
        # ... and the view lazily rewarms afterwards.
        rebuilt.handle(_pub(("a", "b"), "post1"), "n1")
        assert rebuilt.views.stats()["views"] >= 1


# -- simulator: equivalence, replay, tracing, audit ------------------------


def _overlay(config, levels=2, universe=None):
    return Overlay.binary_tree(
        levels,
        config=config,
        latency_model=ConstantLatency(0.001),
        universe=universe,
        processing_scale=0.0,
    )


def _run_workload(config, docs=3, repeats=2):
    dtd = psd_dtd()
    universe = PathUniverse.from_dtd(dtd, max_depth=10)
    overlay = _overlay(config, universe=universe)
    oracle = overlay.attach_auditor(AuditOracle())
    publisher = overlay.attach_publisher("pub", "b1")
    if config.advertisements:
        publisher.advertise_dtd(dtd)
        overlay.run()
    for index, leaf in enumerate(overlay.leaf_brokers()):
        subscriber = overlay.attach_subscriber("sub%d" % index, leaf)
        for expr in psd_queries(6, seed=50 + index).exprs:
            subscriber.subscribe(expr)
    overlay.run()
    # Same seed each round: the rounds repeat the same publication
    # groups (hot!) under fresh doc ids — the view-serve sweet spot.
    for round_no in range(repeats):
        for document in generate_documents(
            dtd, docs, seed=9, target_bytes=600,
            doc_prefix="r%d" % round_no,
        ):
            publisher.publish_document(document)
    overlay.run()
    return overlay, oracle


class TestSimulator:
    def test_views_do_not_change_the_delivered_set(self):
        config = RoutingConfig.with_adv_with_cov()
        off, off_oracle = _run_workload(config)
        on, on_oracle = _run_workload(
            dataclasses.replace(config, views=True, view_hot_threshold=1)
        )
        assert off.delivered_map() == on.delivered_map()
        assert off_oracle.check().ok
        report = on_oracle.check()
        assert report.ok, report.problems()
        assert report.info.get("view_served", 0) >= 1
        served = sum(
            b.views.stats()["serves"] for b in on.brokers.values()
            if b.views is not None
        )
        assert served >= 1

    def test_late_subscriber_replay_is_exactly_once(self):
        config = dataclasses.replace(
            RoutingConfig.with_adv_with_cov(), views=True,
            view_hot_threshold=1,
        )
        dtd = psd_dtd()
        universe = PathUniverse.from_dtd(dtd, max_depth=10)
        overlay = _overlay(config, universe=universe)
        oracle = overlay.attach_auditor(AuditOracle())
        publisher = overlay.attach_publisher("pub", "b1")
        publisher.advertise_dtd(dtd)
        overlay.run()
        leaf = overlay.leaf_brokers()[0]
        exprs = list(psd_queries(6, seed=3).exprs)
        sub0 = overlay.attach_subscriber("sub0", leaf)
        for expr in exprs:
            sub0.subscribe(expr)
        overlay.run()
        docs = generate_documents(dtd, 4, seed=1, target_bytes=600)
        for document in docs:
            publisher.publish_document(document)
        for document in docs:  # repeats fill the windows
            publisher.publish_document(document)
        overlay.run()
        got0 = {
            (m.publication.doc_id, tuple(m.publication.path))
            for m in sub0.received
        }
        late = overlay.attach_subscriber("late", leaf)
        for expr in exprs:
            late.subscribe(expr)
        overlay.run()
        got_late = {
            (m.publication.doc_id, tuple(m.publication.path))
            for m in late.received
        }
        assert got_late == got0  # full catch-up ...
        # ... exactly once despite duplicated window entries.
        seen = [
            (m.publication.doc_id, m.publication.path_id)
            for m in late.received
        ]
        assert len(seen) == len(set(seen))
        report = oracle.check()
        assert report.ok, report.problems()
        assert report.info.get("replayed", 0) >= 1

    def test_traces_stay_causally_complete_with_views(self):
        from repro.obs.tracing import verify_traces

        overlay, _, report = run_audited_workload(
            views=True, view_hot_threshold=1, tracing=True
        )
        assert report.ok, report.problems()
        assert verify_traces(overlay) == []
        names = {span.name for span in overlay.tracing.spans}
        assert "view.serve" in names

    def test_replay_emits_its_broker_side_span(self):
        from repro.obs.tracing import verify_traces

        config = dataclasses.replace(
            RoutingConfig.with_adv_with_cov(), views=True,
            view_hot_threshold=1,
        )
        dtd = psd_dtd()
        universe = PathUniverse.from_dtd(dtd, max_depth=10)
        overlay = _overlay(config, universe=universe)
        overlay.enable_tracing()
        publisher = overlay.attach_publisher("pub", "b1")
        publisher.advertise_dtd(dtd)
        overlay.run()
        leaf = overlay.leaf_brokers()[0]
        sub0 = overlay.attach_subscriber("sub0", leaf)
        exprs = list(psd_queries(4, seed=3).exprs)
        for expr in exprs:
            sub0.subscribe(expr)
        overlay.run()
        for document in generate_documents(dtd, 3, seed=1, target_bytes=600):
            publisher.publish_document(document)
        overlay.run()
        late = overlay.attach_subscriber("late", leaf)
        for expr in exprs:
            late.subscribe(expr)
        overlay.run()
        if any(m for m in late.received):
            names = {span.name for span in overlay.tracing.spans}
            assert "view.replay" in names
        assert verify_traces(overlay) == []


# -- the chaos matrix with views on ----------------------------------------


@pytest.mark.parametrize("scenario", ["fault-free", "crash-restart"])
def test_audited_chaos_with_views(scenario):
    """The six invariants (plus the view classifications) hold with
    views enabled — including a broker crash that drops its views
    mid-stream, after which deliveries converge via the core."""
    plan = audit_scenarios(0)[scenario]
    _, _, report = run_audited_workload(
        plan=plan, views=True, view_hot_threshold=1, seed=5
    )
    assert report.ok, report.problems()


def test_audited_views_with_sharded_engine():
    _, _, report = run_audited_workload(
        views=True, view_hot_threshold=1,
        matching_engine="sharded", shard_count=3, seed=7,
    )
    assert report.ok, report.problems()
