"""Integration tests: brokers over real TCP sockets.

The same routing layer the simulator exercises in-process runs here
over localhost connections with the JSON wire protocol — the runnable
equivalent of the paper's cluster/PlanetLab deployment.

Every wall-clock deadline below (the ``settle(timeout=...)`` calls and
the transport's internal ack/retransmit timers) is multiplied by the
``REPRO_TEST_TIMEOUT_SCALE`` environment knob, so a loaded CI runner
slows the whole file down with one export instead of per-test edits.
"""

import pytest

from repro.adverts import Advertisement
from repro.broker.messages import AdvertiseMsg, PublishMsg, SubscribeMsg
from repro.broker.strategies import RoutingConfig
from repro.network.sockets import LocalDeployment
from repro.runtime.base import TIMEOUT_SCALE_ENV, scaled, timeout_scale
from repro.xmldoc import Publication
from repro.xpath import parse_xpath


@pytest.fixture
def chain():
    deployment = LocalDeployment(config=RoutingConfig.with_adv_with_cov())
    for name in ("b1", "b2", "b3"):
        deployment.add_broker(name)
    deployment.link("b1", "b2")
    deployment.link("b2", "b3")
    deployment.start()
    yield deployment
    deployment.stop()


def test_end_to_end_over_tcp(chain):
    publisher = chain.publisher("pub", "b1")
    subscriber = chain.subscriber("sub", "b3")

    publisher.submit(
        AdvertiseMsg(
            adv_id="adv1",
            advert=Advertisement.from_tests(("claims", "claim", "amount")),
            publisher_id="pub",
        )
    )
    assert chain.settle(timeout=5.0)

    subscriber.submit(
        SubscribeMsg(expr=parse_xpath("/claims//amount"), subscriber_id="sub")
    )
    assert chain.settle(timeout=5.0)

    publisher.submit(
        PublishMsg(
            publication=Publication(
                doc_id="c-1", path_id=0, path=("claims", "claim", "amount")
            ),
            publisher_id="pub",
        )
    )
    assert chain.settle(timeout=5.0)
    assert subscriber.delivered_documents() == {"c-1"}


def test_non_matching_publication_not_delivered(chain):
    publisher = chain.publisher("pub", "b1")
    subscriber = chain.subscriber("sub", "b3")

    publisher.submit(
        AdvertiseMsg(
            adv_id="adv1",
            advert=Advertisement.from_tests(("claims", "claim", "amount")),
            publisher_id="pub",
        )
    )
    chain.settle(timeout=5.0)
    subscriber.submit(
        SubscribeMsg(expr=parse_xpath("/claims/claim/policy"), subscriber_id="sub")
    )
    chain.settle(timeout=5.0)
    publisher.submit(
        PublishMsg(
            publication=Publication(
                doc_id="c-2", path_id=0, path=("claims", "claim", "amount")
            ),
            publisher_id="pub",
        )
    )
    chain.settle(timeout=5.0)
    assert subscriber.delivered_documents() == set()


def test_subscription_travels_only_toward_advertiser(chain):
    """With advertisement-based routing, b3's subscription reaches b1
    via b2; brokers store it along the way."""
    publisher = chain.publisher("pub", "b1")
    subscriber = chain.subscriber("sub", "b3")
    publisher.submit(
        AdvertiseMsg(
            adv_id="adv1",
            advert=Advertisement.from_tests(("a", "b")),
            publisher_id="pub",
        )
    )
    chain.settle(timeout=5.0)
    subscriber.submit(
        SubscribeMsg(expr=parse_xpath("/a"), subscriber_id="sub")
    )
    chain.settle(timeout=5.0)
    assert chain.nodes["b1"].broker.routing_table_size() == 1
    assert chain.nodes["b2"].broker.routing_table_size() == 1


class TestRobustness:
    def test_garbage_handshake_is_ignored(self, chain):
        """A peer that fails the handshake must not crash the node."""
        import socket

        node = chain.nodes["b2"]
        sock = socket.create_connection((node.host, node.port))
        sock.sendall(b"GET / HTTP/1.1\r\n\r\n")
        sock.close()
        # The deployment still works end to end afterwards.
        publisher = chain.publisher("pub2", "b1")
        subscriber = chain.subscriber("sub2", "b3")
        publisher.submit(
            AdvertiseMsg(
                adv_id="adv9",
                advert=Advertisement.from_tests(("r", "s")),
                publisher_id="pub2",
            )
        )
        chain.settle(timeout=5.0)
        subscriber.submit(
            SubscribeMsg(expr=parse_xpath("/r"), subscriber_id="sub2")
        )
        chain.settle(timeout=5.0)
        publisher.submit(
            PublishMsg(
                publication=Publication(
                    doc_id="r-1", path_id=0, path=("r", "s")
                ),
                publisher_id="pub2",
            )
        )
        chain.settle(timeout=5.0)
        assert subscriber.delivered_documents() == {"r-1"}

    def test_half_open_connection_ignored(self, chain):
        import socket

        node = chain.nodes["b1"]
        sock = socket.create_connection((node.host, node.port))
        # Say nothing; just disconnect.
        sock.close()
        assert chain.settle(timeout=2.0)


class TestTimeoutScale:
    """The single knob every deadline in this file derives from."""

    def test_default_is_identity(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_SCALE_ENV, raising=False)
        assert timeout_scale() == 1.0
        assert scaled(5.0) == 5.0

    def test_scales_every_deadline(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_SCALE_ENV, "3")
        assert timeout_scale() == 3.0
        assert scaled(5.0) == 15.0

    @pytest.mark.parametrize("raw", ["banana", "", "0", "-2"])
    def test_broken_values_never_shrink_timeouts(self, raw, monkeypatch):
        """An unparseable or non-positive export must fall back to 1.0
        — a broken env var should never turn into a zero deadline."""
        monkeypatch.setenv(TIMEOUT_SCALE_ENV, raw)
        assert timeout_scale() == 1.0
        assert scaled(2.0) == 2.0

    def test_deployment_honours_the_knob(self, monkeypatch):
        """A scaled deployment still settles: the knob stretches the
        deadline and the transport timers together, it never races one
        against the other."""
        monkeypatch.setenv(TIMEOUT_SCALE_ENV, "2")
        deployment = LocalDeployment(config=RoutingConfig.no_adv_no_cov())
        deployment.add_broker("b1")
        deployment.add_broker("b2")
        deployment.link("b1", "b2")
        deployment.start()
        try:
            subscriber = deployment.subscriber("sub", "b2")
            subscriber.submit(
                SubscribeMsg(expr=parse_xpath("/x"), subscriber_id="sub")
            )
            assert deployment.settle(timeout=2.5)
        finally:
            deployment.stop()


class TestLossyLinks:
    """The TCP layer's sequence/ack/retransmit protocol heals
    sender-side injected frame loss (the deployment-level twin of the
    simulator's FaultPlan)."""

    @pytest.fixture
    def lossy_chain(self):
        deployment = LocalDeployment(
            config=RoutingConfig.no_adv_no_cov(),
            loss_rate=0.25,
            loss_seed=7,
            rto=0.05,
        )
        for name in ("b1", "b2", "b3"):
            deployment.add_broker(name)
        deployment.link("b1", "b2")
        deployment.link("b2", "b3")
        deployment.start()
        yield deployment
        deployment.stop()

    def test_delivery_survives_injected_loss(self, lossy_chain):
        publisher = lossy_chain.publisher("pub", "b1")
        subscriber = lossy_chain.subscriber("sub", "b3")
        subscriber.submit(
            SubscribeMsg(expr=parse_xpath("/claims//amount"), subscriber_id="sub")
        )
        assert lossy_chain.settle(timeout=10.0)
        doc_ids = ["c-%d" % i for i in range(5)]
        for doc_id in doc_ids:
            publisher.submit(
                PublishMsg(
                    publication=Publication(
                        doc_id=doc_id,
                        path_id=0,
                        path=("claims", "claim", "amount"),
                    ),
                    publisher_id="pub",
                )
            )
        assert lossy_chain.settle(timeout=10.0)
        assert subscriber.delivered_documents() == set(doc_ids)
        stats = lossy_chain.transport_stats()
        assert stats["injected_drops"] > 0
        assert stats["retransmits"] > 0
        # loss was healed, never surfaced: every loss was retried and
        # each broker saw each message once (no dup delivered twice)
        assert stats["abandoned"] == 0
