"""The shared-automaton mass-subscription engine, unit to overlay level.

Four layers of assurance, mirroring how the engine is deployed:

* unit tests of the engine contract (duplicate keys, versioning, NFA
  pruning, lazy-DFA caching/invalidation/flush);
* Hypothesis differentials against :class:`LinearMatcher` and the
  reference interpreter, attribute predicates included;
* broker-level equivalence: a ``matching_engine="shared"`` broker makes
  the same routing decisions as the default one, across merge sweeps
  and snapshot/restore;
* the audit oracle's six invariants hold on chaos workloads (fault-free
  and crash-restart) run entirely on the shared engine.
"""

from hypothesis import given, settings, strategies as st

from repro.adverts import Advertisement
from repro.broker import (
    AdvertiseMsg,
    Broker,
    PublishMsg,
    RoutingConfig,
    SubscribeMsg,
    UnsubscribeMsg,
)
from repro.broker.persistence import restore_json, snapshot_json
from repro.covering.pathmatch import matches_path_reference
from repro.matching import LinearMatcher, SharedAutomatonMatcher
from repro.xmldoc import Publication
from repro.xpath import parse_xpath


def x(text):
    return parse_xpath(text)


def build(*texts):
    matcher = SharedAutomatonMatcher()
    for t in texts:
        matcher.add(x(t), t)
    return matcher


class TestEngineContract:
    def test_structural_matching(self):
        m = build("/a/b", "b/c", "/a//d", "//c/d", "/*/b")
        assert m.match(("a", "b")) == {"/a/b", "/*/b"}
        assert m.match(("a", "b", "c")) == {"/a/b", "/*/b", "b/c"}
        assert m.match(("a", "q", "q", "d")) == {"/a//d"}
        assert m.match(("q", "c", "d")) == {"//c/d"}

    def test_predicates_via_side_index(self):
        m = SharedAutomatonMatcher()
        m.add(x("/a/b[@lang='de']"), "pred")
        m.add(x("/a/b"), "plain")
        attrs_de = [{}, {"lang": "de"}]
        attrs_en = [{}, {"lang": "en"}]
        assert m.match(("a", "b"), attrs_de) == {"pred", "plain"}
        assert m.match(("a", "b"), attrs_en) == {"plain"}
        assert m.match(("a", "b")) == {"plain"}

    def test_duplicate_exprs_under_distinct_keys(self):
        m = SharedAutomatonMatcher()
        m.add(x("/a/b"), "k1")
        m.add(x("/a/b"), "k2")
        assert len(m) == 1  # one resident expression, two keys
        assert m.match(("a", "b")) == {"k1", "k2"}
        m.remove(x("/a/b"), "k1")
        assert m.match(("a", "b")) == {"k2"}
        m.remove(x("/a/b"), "k2")
        assert m.match(("a", "b")) == set()
        assert len(m) == 0

    def test_remove_absent_is_noop(self):
        m = build("/a")
        before = m.version
        m.remove(x("/zzz"), "nobody")
        m.remove(x("/a"), "wrong-key")
        assert len(m) == 1
        assert m.version == before

    def test_version_bumps_on_match_changing_mutations(self):
        m = SharedAutomatonMatcher()
        v0 = m.version
        m.add(x("/a"), "k1")
        assert m.version == v0 + 1
        m.add(x("/a"), "k1")  # idempotent: no result can change
        assert m.version == v0 + 1
        m.add(x("/a"), "k2")  # new key: match results change
        assert m.version == v0 + 2
        m.remove(x("/a"), "k2")
        assert m.version == v0 + 3
        m.clear()
        assert m.version == v0 + 4

    def test_keys_of_and_exprs(self):
        m = SharedAutomatonMatcher()
        m.add(x("/a"), "k1")
        m.add(x("/a"), "k2")
        m.add(x("/b[@u]"), "k3")
        assert m.keys_of(x("/a")) == {"k1", "k2"}
        assert m.keys_of(x("/zzz")) == set()
        assert {str(e) for e in m.exprs()} == {"/a", "/b[@u]"}


class TestPruningAndDFA:
    def test_churn_returns_automaton_to_baseline(self):
        m = build("/a/b/c", "/a/b/d", "//q/r")
        baseline = m.automaton_size()
        extra = ["/a/b/c/e%d" % i for i in range(10)] + [
            "//deep//x%d" % i for i in range(10)
        ]
        for text in extra:
            m.add(x(text), text)
        assert m.automaton_size() > baseline
        for text in extra:
            m.remove(x(text), text)
        assert m.automaton_size() == baseline
        m._nfa.check_refcounts()

    def test_dfa_caches_and_is_invalidated_by_structure(self):
        m = build("/a/b", "/a//c")
        assert m.dfa_size() == 0
        assert m.match(("a", "b")) == {"/a/b"}
        assert m.dfa_size() > 0
        m.add(x("/a/b/z"), "new")  # structural change: cache discarded
        assert m.dfa_size() == 0
        assert m.match(("a", "b", "z")) == {"/a/b", "new"}

    def test_predicated_add_keeps_dfa(self):
        m = build("/a/b")
        m.match(("a", "b"))
        cached = m.dfa_size()
        assert cached > 0
        m.add(x("/a/b[@u]"), "pred")  # side index only: structure intact
        assert m.dfa_size() == cached

    def test_dfa_eviction_at_limit_preserves_results(self):
        m = SharedAutomatonMatcher(dfa_state_limit=3)
        linear = LinearMatcher()
        for text in ("/a/b", "//b/c", "/a//d", "b"):
            m.add(x(text), text)
            linear.add(x(text), text)
        paths = [
            ("a", "b"), ("b", "c"), ("a", "q", "d"), ("b",),
            ("a", "b", "c"), ("q", "b", "c", "d"), ("a", "d"),
        ]
        for path in paths * 2:
            assert m.match(path) == linear.match(path), path
        # Overflow evicts the cold half; a wholesale flush would only
        # come from a structural change, and matching is not one.
        assert m.dfa_evictions > 0
        assert m.dfa_flushes == 0
        assert m.dfa_size() <= 3

    def test_eviction_keeps_hot_states_and_prunes_dangling_edges(self):
        m = build("/a/b/c", "/q/r/s", "/u/v/w")
        hot = ("a", "b", "c")
        m.match(hot)
        hot_states = m.dfa_size()
        m.dfa_state_limit = m.dfa_size() + 1
        # Cold traffic forces evictions; the hot walk stays resident.
        for path in (("q", "r", "s"), ("u", "v", "w"), ("q", "z"),
                     ("u", "z"), ("z", "z")):
            m.match(path)
        assert m.dfa_evictions > 0
        m.match(hot)  # must still resolve purely from / into the cache
        assert m.match(hot) == {"/a/b/c"}
        # Surviving states never point at evicted objects: every cached
        # transition target is the cached object for its subset key.
        by_key = {
            frozenset(id(s) for s in state.nfa_states): state
            for state in m._dfa_cache.values()
        }
        from repro.matching.shared_automaton import _DEAD
        for state in m._dfa_cache.values():
            for target in state.transitions.values():
                if target is not _DEAD:
                    key = frozenset(id(s) for s in target.nfa_states)
                    assert by_key.get(key) is target
        assert hot_states >= 1


# -- Hypothesis differentials ----------------------------------------------

_step = st.tuples(
    st.sampled_from(("/", "//", "")),  # "" = relative start (first step only)
    st.sampled_from(("a", "b", "c", "d", "*")),
    st.sampled_from(("", "[@k]", "[@k='1']", "[@k!='1']", "[@j='2']")),
)


@st.composite
def xpe_texts(draw):
    steps = draw(st.lists(_step, min_size=1, max_size=5))
    parts = []
    for index, (sep, test, predicate) in enumerate(steps):
        if index == 0:
            sep = sep or ""  # "a/..." is a relative expression
        else:
            sep = sep or "/"
        parts.append(sep + test + predicate)
    return "".join(parts)


@st.composite
def probes(draw):
    elements = draw(
        st.lists(
            st.sampled_from(("a", "b", "c", "d", "e")),
            min_size=0,
            max_size=7,
        )
    )
    attributes = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.sampled_from(({}, {"k": "1"}, {"k": "2"}, {"j": "2"})),
                min_size=len(elements),
                max_size=len(elements),
            ).map(tuple),
        )
    )
    return tuple(elements), attributes


@settings(max_examples=300, deadline=None)
@given(
    texts=st.lists(xpe_texts(), min_size=1, max_size=10),
    removals=st.lists(st.integers(0, 9), max_size=6),
    probe=probes(),
)
def test_differential_vs_linear_under_churn(texts, removals, probe):
    """Interleaved adds and removes (duplicate expressions included)
    leave the shared engine agreeing with the linear scan."""
    path, attributes = probe
    shared = SharedAutomatonMatcher()
    linear = LinearMatcher()
    pool = [(parse_xpath(text), "k%d" % i) for i, text in enumerate(texts)]
    for expr, key in pool:
        shared.add(expr, key)
        linear.add(expr, key)
    for index in removals:
        if index < len(pool):
            expr, key = pool[index]
            shared.remove(expr, key)
            linear.remove(expr, key)
    assert shared.match(path, attributes) == linear.match(path, attributes)
    shared._nfa.check_refcounts()


@settings(max_examples=300, deadline=None)
@given(text=xpe_texts(), probe=probes())
def test_differential_vs_reference_interpreter(text, probe):
    path, attributes = probe
    expr = parse_xpath(text)
    m = SharedAutomatonMatcher()
    m.add(expr, "k")
    expected = (
        {"k"} if matches_path_reference(expr, path, attributes) else set()
    )
    assert m.match(path, attributes) == expected


# -- broker level -----------------------------------------------------------

def _broker_pair():
    base = RoutingConfig.with_adv_with_cov()
    import dataclasses

    shared_config = dataclasses.replace(base, matching_engine="shared")
    auto = Broker("b1", config=base)
    shared = Broker("b1", config=shared_config)
    for broker in (auto, shared):
        broker.connect("n1")
        broker.connect("n2")
        broker.attach_client("c1")
        broker.handle(
            AdvertiseMsg(
                adv_id="a1",
                advert=Advertisement.from_tests(("x", "y", "z", "w")),
                publisher_id="pub",
            ),
            "n1",
        )
    return auto, shared


def _decisions(broker, path, doc_id):
    out = broker.handle(
        PublishMsg(
            publication=Publication(doc_id=doc_id, path_id=0, path=path),
            publisher_id="pub",
        ),
        "n1",
    )
    return sorted(
        (str(dest), str(msg.publication)) for dest, msg in out
    )


PUBLISH_PATHS = (
    ("x", "y"),
    ("x", "y", "z"),
    ("x", "w"),
    ("x", "q", "z"),
    ("x", "y", "w", "z"),
)


def _assert_same_decisions(auto, shared, tag):
    for index, path in enumerate(PUBLISH_PATHS):
        doc_id = "%s%d" % (tag, index)
        assert _decisions(auto, path, doc_id) == _decisions(
            shared, path, doc_id
        ), path


class TestBrokerIntegration:
    SUBS = ("/x/y", "/x/y/z", "//z", "/x/*", "x/y", "//w")

    def test_shared_broker_routes_like_default(self):
        auto, shared = _broker_pair()
        for index, text in enumerate(self.SUBS):
            msg = SubscribeMsg(expr=x(text), subscriber_id="c1")
            for broker in (auto, shared):
                broker.handle(msg, "n2" if index % 2 else "c1")
        _assert_same_decisions(auto, shared, "d")
        # Unsubscribe half and re-check: the mirror tracks retirements.
        for text in self.SUBS[::2]:
            msg = UnsubscribeMsg(expr=x(text), subscriber_id="c1")
            for broker in (auto, shared):
                broker.handle(msg, "c1")
        _assert_same_decisions(auto, shared, "u")

    def test_merge_sweep_resyncs_mirror(self):
        import dataclasses

        from repro.dtd.parser import parse_dtd
        from repro.merging.engine import PathUniverse

        universe = PathUniverse.from_dtd(
            parse_dtd(
                """
                <!ELEMENT r (a, b)>
                <!ELEMENT a (c | d | e)>
                <!ELEMENT b (c?)>
                <!ELEMENT c (#PCDATA)>
                <!ELEMENT d (#PCDATA)>
                <!ELEMENT e (#PCDATA)>
                """
            )
        )
        base = RoutingConfig.with_adv_with_cov_pm(merge_interval=3)
        auto = Broker("b1", config=base, universe=universe)
        shared = Broker(
            "b1",
            config=dataclasses.replace(base, matching_engine="shared"),
            universe=universe,
        )
        advert = AdvertiseMsg(
            adv_id="a1",
            advert=Advertisement.from_tests(("r", "a", "b", "c", "d", "e")),
            publisher_id="pub",
        )
        for broker in (auto, shared):
            broker.connect("n1")
            broker.attach_client("c1")
            broker.handle(advert, "n1")
            # The full sibling set under /r/a: the interval-3 sweep
            # rewrites it to the perfect merger /r/a/*, marking the
            # shared mirror dirty; the next publication must rebuild
            # the automaton from the rewritten table and still agree.
            for text in ("/r/a/c", "/r/a/d", "/r/a/e"):
                broker.handle(
                    SubscribeMsg(expr=x(text), subscriber_id="c1"), "c1"
                )
        assert shared.merge_log, "sweep never ran — interval misconfigured"
        assert shared._shared_dirty
        for index, path in enumerate(
            (("r", "a", "c"), ("r", "a", "d"), ("r", "b", "c"), ("r", "a"))
        ):
            doc_id = "m%d" % index
            assert _decisions(auto, path, doc_id) == _decisions(
                shared, path, doc_id
            ), path
        assert not shared._shared_dirty  # the publishes above resynced it

    def test_snapshot_restore_round_trip(self):
        _, shared = _broker_pair()
        for text in self.SUBS:
            shared.handle(SubscribeMsg(expr=x(text), subscriber_id="c1"), "c1")
        shared.handle(
            PublishMsg(
                publication=Publication(
                    doc_id="warm", path_id=0, path=("x", "y")
                ),
                publisher_id="pub",
            ),
            "n1",
        )
        restored = restore_json(snapshot_json(shared))
        assert restored.config.matching_engine == "shared"
        assert restored.shared is not None
        assert restored._shared_dirty  # rebuilt lazily on first publish
        _assert_same_decisions(shared, restored, "r")
        assert not restored._shared_dirty
        assert restored.describe()["shared_automaton"]["exprs"] == len(
            shared.shared.exprs()
        )


class TestAuditChaos:
    def _run(self, scenario):
        from repro.audit import audit_scenarios, run_audited_workload

        plan = audit_scenarios(0)[scenario]
        _, _, report = run_audited_workload(
            plan=plan,
            levels=3,
            xpes_per_leaf=8,
            documents=3,
            matching_engine="shared",
        )
        assert report.ok, "%s: %s" % (
            scenario,
            report.soundness + report.unexplained_fp,
        )

    def test_fault_free_audit_on_shared_engine(self):
        self._run("fault-free")

    def test_crash_restart_audit_on_shared_engine(self):
        self._run("crash-restart")
