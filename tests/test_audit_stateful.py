"""Audit oracle: stateful interleaving suite + pinned regressions.

The stateful machine interleaves SUB/UNSUB/ADV/publish/merge-sweep/
crash-restart on the paper's 7-broker tree with imperfect merging
enabled and asserts, after every step settles, that the audit oracle
reports zero soundness violations and zero unexplained false positives.

The pinned regression tests demonstrate the two bug classes this PR
fixes — the unsubscribe/merge leak (a constituent UNSUB hitting the
"unknown expression" no-op so the merger never retires) and stale
``forwarded`` marks surviving the retraction of the entry they describe
— and show that *reverting* either fix makes the audit fail.
"""

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.audit import AuditOracle, run_audited_workload
from repro.broker.broker import Broker
from repro.broker.messages import SubscribeMsg, UnsubscribeMsg
from repro.broker.persistence import restore, snapshot
from repro.broker.strategies import MergingMode, RoutingConfig
from repro.dtd import parse_dtd
from repro.dtd.samples import psd_dtd
from repro.merging.engine import MergeEvent, PathUniverse
from repro.merging.registry import MergerRegistry
from repro.network import ConstantLatency, Overlay
from repro.network.faults import FaultPlan
from repro.workloads.datasets import psd_queries
from repro.workloads.document_generator import generate_documents
from repro.xpath import parse_xpath


def x(text):
    return parse_xpath(text)


UNIVERSE_DTD = """
<!ELEMENT r (a, b?)>
<!ELEMENT a (c?, d?, e?)>
<!ELEMENT b (c?)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA)>
<!ELEMENT e (#PCDATA)>
"""


def make_merging_broker(covering=True, max_degree=0.0):
    universe = PathUniverse.from_dtd(parse_dtd(UNIVERSE_DTD))
    config = RoutingConfig(
        advertisements=False,
        covering=covering,
        merging=(
            MergingMode.PERFECT if max_degree == 0.0 else MergingMode.IMPERFECT
        ),
        max_imperfect_degree=max_degree,
        merge_interval=1000,
    )
    broker = Broker("B", config=config, universe=universe)
    broker.connect("up")
    broker.connect("down")
    return broker


CONSTITUENTS = ("/r/a/c", "/r/a/d", "/r/a/e")
MERGER = "/r/a/*"


def merged_broker(covering=True):
    broker = make_merging_broker(covering=covering)
    for text in CONSTITUENTS:
        broker.handle(SubscribeMsg(expr=x(text)), "down")
    sweep_out = broker.run_merge_sweep()
    return broker, sweep_out


# -- fix #1: unsubscribe of merged constituents ----------------------------


@pytest.mark.parametrize("covering", [True, False])
def test_unsubscribe_of_last_constituent_retires_merger(covering):
    broker, sweep_out = merged_broker(covering=covering)
    merger = x(MERGER)
    assert broker._keys_of(merger) == {"down"}
    assert broker._merge_registry.is_merger(merger)
    # The sweep forwarded the merger and retracted the constituents.
    assert any(
        isinstance(m, SubscribeMsg) and m.expr == merger and d == "up"
        for d, m in sweep_out
    )
    retracted = {
        m.expr for d, m in sweep_out if isinstance(m, UnsubscribeMsg)
    }
    assert retracted == {x(t) for t in CONSTITUENTS}
    for text in CONSTITUENTS:
        assert not broker.forwarded.was_sent(x(text), "up")

    # Unsubscribing all but the last constituent keeps the merger alive.
    for text in CONSTITUENTS[:-1]:
        assert broker.handle(UnsubscribeMsg(expr=x(text)), "down") == []
        assert broker._keys_of(merger) == {"down"}
    # The last constituent retires the merger key and propagates the
    # retraction upstream (pre-fix: "unknown expression" no-op, leak).
    out = broker.handle(UnsubscribeMsg(expr=x(CONSTITUENTS[-1])), "down")
    assert any(
        isinstance(m, UnsubscribeMsg) and m.expr == merger and d == "up"
        for d, m in out
    )
    assert broker.routing_table_size() == 0
    assert len(broker._merge_registry) == 0
    assert not broker.forwarded.was_sent(merger, "up")


def test_direct_merger_subscription_outlives_constituents():
    broker, _ = merged_broker()
    merger = x(MERGER)
    # The same hop also subscribes the merger expression itself: the
    # redelivery branch must record direct interest, not drop it.
    assert broker.handle(SubscribeMsg(expr=merger), "down") == []
    for text in CONSTITUENTS:
        assert broker.handle(UnsubscribeMsg(expr=x(text)), "down") == []
    # All constituents gone, but the direct subscription holds the key.
    assert broker._keys_of(merger) == {"down"}
    out = broker.handle(UnsubscribeMsg(expr=merger), "down")
    assert any(
        isinstance(m, UnsubscribeMsg) and m.expr == merger for _, m in out
    )
    assert broker.routing_table_size() == 0


def test_constituent_resubscribe_is_absorbed_by_the_merger():
    broker, _ = merged_broker()
    merger = x(MERGER)
    # Re-subscribing a merged-away constituent must not duplicate state:
    # the merger already carries this hop's interest.
    assert broker.handle(SubscribeMsg(expr=x(CONSTITUENTS[0])), "down") == []
    assert broker._keys_of(x(CONSTITUENTS[0])) == set()
    assert broker._keys_of(merger) == {"down"}


def test_chained_merges_flatten_in_the_registry():
    registry = MergerRegistry()
    registry.record(
        MergeEvent(
            merger=x("/r/a/*"),
            replaced=(x("/r/a/c"), x("/r/a/d")),
            degree=0.0,
            replaced_keys=(frozenset({"h"}), frozenset({"h"})),
        )
    )
    registry.record(
        MergeEvent(
            merger=x("/r/*/*"),
            replaced=(x("/r/a/*"), x("/r/b/c")),
            degree=0.0,
            replaced_keys=(frozenset({"h"}), frozenset({"h"})),
        )
    )
    assert not registry.is_merger(x("/r/a/*"))
    assert registry.find_contribution(x("/r/a/c"), "h") == x("/r/*/*")
    assert registry.find_contribution(x("/r/b/c"), "h") == x("/r/*/*")
    registry.remove_contribution(x("/r/*/*"), x("/r/a/c"), "h")
    registry.remove_contribution(x("/r/*/*"), x("/r/a/d"), "h")
    registry.remove_contribution(x("/r/*/*"), x("/r/b/c"), "h")
    assert not registry.hop_needs(x("/r/*/*"), "h")


def test_registry_survives_snapshot_restore():
    broker, _ = merged_broker()
    clone = restore(
        snapshot(broker), universe=PathUniverse.from_dtd(parse_dtd(UNIVERSE_DTD))
    )
    assert clone._merge_registry.constituents == broker._merge_registry.constituents
    assert clone._merge_registry.direct == broker._merge_registry.direct
    assert [e.merger for e in clone.merge_log] == [
        e.merger for e in broker.merge_log
    ]
    # The restored broker retires the merger exactly like the original.
    for text in CONSTITUENTS:
        clone.handle(UnsubscribeMsg(expr=x(text)), "down")
    assert clone.routing_table_size() == 0
    assert len(clone._merge_registry) == 0


# -- fix #2: forwarded mark lifecycle --------------------------------------


def test_retraction_clears_marks_so_repromotion_forwards_again():
    broker = make_merging_broker()
    expr = x("/r/a/c")
    out = broker.handle(SubscribeMsg(expr=expr), "down")
    assert any(d == "up" for d, _ in out)
    assert broker.forwarded.was_sent(expr, "up")
    broker.handle(UnsubscribeMsg(expr=expr), "down")
    assert not broker.forwarded.was_sent(expr, "up")
    # Re-promotion: the same expression subscribed again must travel
    # upstream again (a stale mark would suppress it — the bug class).
    out = broker.handle(SubscribeMsg(expr=expr), "down")
    assert any(
        isinstance(m, SubscribeMsg) and m.expr == expr and d == "up"
        for d, m in out
    )


def test_merge_sweep_clears_constituent_marks():
    broker, _ = merged_broker()
    for text in CONSTITUENTS:
        assert not broker.forwarded.was_sent(x(text), "up")
    assert broker.forwarded.was_sent(x(MERGER), "up")


# -- revert demonstrations: the audit catches both bug classes -------------


def _small_audited_overlay():
    dtd = parse_dtd(UNIVERSE_DTD)
    universe = PathUniverse.from_dtd(dtd)
    overlay = Overlay.binary_tree(
        2,
        config=RoutingConfig.with_adv_with_cov_ipm(
            max_imperfect_degree=1.0, merge_interval=1000
        ),
        latency_model=ConstantLatency(0.001),
        universe=universe,
        processing_scale=0.0,
    )
    oracle = overlay.attach_auditor(AuditOracle())
    publisher = overlay.attach_publisher("pub", "b2")
    publisher.advertise_dtd(dtd)
    overlay.run()
    subscriber = overlay.attach_subscriber("sub", "b3")
    subscriber.subscribe("/r/a/c")
    subscriber.subscribe("/r/a/d")
    overlay.run()
    return overlay, oracle, subscriber


def test_reverting_the_registry_fix_makes_the_audit_fail():
    overlay, oracle, subscriber = _small_audited_overlay()
    overlay.trigger_merge_sweep("b1")
    overlay.run()
    assert oracle.check().ok
    # Revert fix #1: the pre-fix broker kept no constituent bookkeeping,
    # so a constituent UNSUB hits the unknown-expression no-op and the
    # merger key at b1 leaks forever.
    registry = overlay.brokers["b1"]._merge_registry
    registry.constituents.clear()
    registry.direct.clear()
    subscriber.unsubscribe("/r/a/c")
    subscriber.unsubscribe("/r/a/d")
    overlay.run()
    report = oracle.check()
    assert not report.ok
    assert any(
        v.code in ("stale-entry", "leaked-merger")
        for v in report.unexplained_fp
    ), report.summary()


def test_reverting_the_mark_fix_makes_the_audit_fail():
    overlay, oracle, subscriber = _small_audited_overlay()
    subscriber.unsubscribe("/r/a/c")
    subscriber.unsubscribe("/r/a/d")
    overlay.run()
    assert oracle.check().ok
    # Revert fix #2: pre-fix, an emitted UNSUBSCRIBE could leave the
    # forwarding mark behind.  Reinstate such a stale mark by hand: the
    # mark claims /r/a/c is still forwarded to b2, but b2 holds no entry.
    overlay.brokers["b1"].forwarded.mark(x("/r/a/c"), "b2")
    report = oracle.check()
    assert not report.ok
    assert any(
        v.code == "stale-forward-mark" for v in report.soundness
    ), report.summary()
    # ... and the mark has the advertised consequence: a re-subscription
    # is suppressed upstream, which the representation check also flags.
    subscriber.subscribe("/r/a/c")
    overlay.run()
    report = oracle.check()
    assert any(
        v.code == "missing-routing-entry" for v in report.soundness
    ), report.summary()


# -- the chaos-matrix acceptance gate --------------------------------------


def test_audited_workload_matrix_is_clean_under_crash_faults():
    """Seed-pinned acceptance slice: the crash-restart scenario (the
    hardest one: persistence + replay + merge state) audits clean."""
    from repro.audit import audit_scenarios

    plan = audit_scenarios(seed=0)["crash-restart"]
    _, _, report = run_audited_workload(plan=plan)
    assert report.ok, report.summary()


# -- stateful interleaving --------------------------------------------------


class AuditMachine(RuleBasedStateMachine):
    """Random interleavings of every routing-state mutation the overlay
    supports, audited to quiescence after each step."""

    def __init__(self):
        super().__init__()
        self.dtd = psd_dtd()
        universe = PathUniverse.from_dtd(self.dtd, max_depth=10)
        self.overlay = Overlay.binary_tree(
            3,
            config=RoutingConfig.with_adv_with_cov_ipm(
                max_imperfect_degree=0.1, merge_interval=1000
            ),
            latency_model=ConstantLatency(0.001),
            universe=universe,
            processing_scale=0.0,
            faults=FaultPlan(seed=0, rto=0.01),
        )
        self.oracle = self.overlay.attach_auditor(AuditOracle(probe_limit=60))
        self.publisher = self.overlay.attach_publisher("pub", "b1")
        self.publisher.advertise_dtd(self.dtd)
        self.second_publisher = self.overlay.attach_publisher("pub2", "b7")
        self.pool = list(psd_queries(24, seed=7).exprs)
        documents = generate_documents(self.dtd, 3, seed=2, target_bytes=400)
        self.doc_paths = [
            [p.path for p in document.publications()] for document in documents
        ]
        self.subscribers = [
            self.overlay.attach_subscriber("sub%d" % i, leaf)
            for i, leaf in enumerate(self.overlay.leaf_brokers())
        ]
        self.published = 0
        self._settle()

    def _settle(self):
        self.overlay.run()
        report = self.oracle.check(drain=False)
        assert report.ok, report.summary()

    @rule(sub=st.integers(0, 3), expr=st.integers(0, 23))
    def subscribe(self, sub, expr):
        self.subscribers[sub].subscribe(self.pool[expr])
        self._settle()

    @rule(sub=st.integers(0, 3), expr=st.integers(0, 23))
    def unsubscribe(self, sub, expr):
        subscriber = self.subscribers[sub]
        if self.pool[expr] in subscriber.subscriptions:
            subscriber.unsubscribe(self.pool[expr])
        self._settle()

    @rule(doc=st.integers(0, 2))
    def publish(self, doc):
        self.published += 1
        self.publisher.publish_paths(
            self.doc_paths[doc],
            doc_id="d%d" % self.published,
            size_bytes=400,
        )
        self._settle()

    @rule(broker=st.integers(1, 7))
    def merge_sweep(self, broker):
        self.overlay.trigger_merge_sweep("b%d" % broker)
        self._settle()

    @rule(broker=st.integers(2, 7))
    def crash_restart(self, broker):
        broker_id = "b%d" % broker
        if not self.overlay.is_down(broker_id):
            self.overlay.crash_broker(broker_id, with_state=True)
            self.overlay.recover_broker(broker_id)
        self._settle()

    @rule()
    def toggle_second_publisher(self):
        if self.second_publisher.advertised:
            for adv_id in list(self.second_publisher.advertised):
                self.second_publisher.unadvertise(adv_id)
        else:
            self.second_publisher.advertise_dtd(self.dtd)
        self._settle()


TestAuditMachine = AuditMachine.TestCase
TestAuditMachine.settings = settings(
    max_examples=10, stateful_step_count=10, deadline=None
)
