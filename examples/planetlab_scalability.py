#!/usr/bin/env python
"""Scalability on wide-area links, in the style of the paper's
PlanetLab experiment (§5, Figures 10–11).

Builds a chain of brokers with PlanetLab-like link latencies, loads
each hop with subscriptions, and measures how the notification delay
grows with the number of broker hops — once with covering and once
without.  Covering compacts the routing table at every hop, so the
per-hop matching cost (charged to the virtual clock from the real
matching wall time) shrinks and the delay slope flattens.

Run:  python examples/planetlab_scalability.py
"""

from repro.broker import RoutingConfig
from repro.dtd import psd_dtd
from repro.network import Overlay, PlanetLabLatency
from repro.workloads import XPathWorkloadParams, generate_documents, generate_queries


def measure(covering, hops=6, xpes_per_hop=150, seed=21):
    dtd = psd_dtd()
    config = (
        RoutingConfig.with_adv_with_cov()
        if covering
        else RoutingConfig.with_adv_no_cov()
    )
    overlay = Overlay(
        config=config,
        latency_model=PlanetLabLatency(seed=seed),
        processing_scale=1.0,
    )
    names = ["hop%d" % i for i in range(hops + 1)]
    for name in names:
        overlay.add_broker(name)
    for left, right in zip(names, names[1:]):
        overlay.connect(left, right)

    publisher = overlay.attach_publisher("source", names[0])
    publisher.advertise_dtd(dtd)
    overlay.run()

    params = XPathWorkloadParams(
        wildcard_prob=0.2, descendant_prob=0.15, relative_prob=0.2, min_length=2
    )
    queries = generate_queries(
        dtd, xpes_per_hop * hops, params=params, seed=seed
    )
    subscribers = []
    for index, name in enumerate(names[1:], start=1):
        subscriber = overlay.attach_subscriber("sink%d" % index, name)
        for expr in queries[(index - 1) * xpes_per_hop: index * xpes_per_hop]:
            subscriber.subscribe(expr)
        subscribers.append(subscriber)
    overlay.run()

    for document in generate_documents(dtd, 4, seed=seed, target_bytes=10240):
        publisher.publish_document(document)
    overlay.run()

    return {
        hop_count: 1e3 * sum(delays) / len(delays)
        for hop_count, delays in overlay.stats.delays_by_hops().items()
    }


def main():
    with_cov = measure(covering=True)
    without_cov = measure(covering=False)
    print("notification delay vs. broker hops (10K PSD documents)\n")
    print("hops   with covering   without covering")
    for hop_count in sorted(set(with_cov) | set(without_cov)):
        print(
            "%4d   %10.1f ms   %13.1f ms"
            % (
                hop_count,
                with_cov.get(hop_count, float("nan")),
                without_cov.get(hop_count, float("nan")),
            )
        )
    print(
        "\nDelay grows ~linearly with hops; covering keeps routing "
        "tables small\nalong the path, so each hop matches faster "
        "(paper Figures 10-11)."
    )


if __name__ == "__main__":
    main()
