#!/usr/bin/env python
"""Quickstart: a 7-broker XML dissemination network in ~40 lines.

Builds the paper's small binary-tree overlay, attaches a publisher
described by the PSD (protein database) DTD and three subscribers with
XPath subscriptions, publishes a document and shows who received it.

Run:  python examples/quickstart.py
"""

from repro.broker import RoutingConfig
from repro.dtd import psd_dtd
from repro.network import Overlay
from repro.xmldoc import XMLDocument

DOCUMENT = """
<ProteinDatabase>
  <ProteinEntry>
    <header>
      <uid>PW0001</uid>
      <accession>A12345</accession>
      <created-date>06-Jul-2026</created-date>
      <seq-rev-date>06-Jul-2026</seq-rev-date>
      <txt-rev-date>06-Jul-2026</txt-rev-date>
    </header>
    <protein><name>insulin receptor</name></protein>
    <organism><formal>Homo sapiens</formal></organism>
    <reference>
      <refinfo>
        <authors><author>Li, G.</author><author>Hou, S.</author></authors>
        <citation>ICDCS</citation>
        <year>2008</year>
      </refinfo>
    </reference>
    <keywords><keyword>receptor</keyword></keywords>
    <summary><length>1382</length></summary>
    <sequence>MATGGRRG...</sequence>
  </ProteinEntry>
</ProteinDatabase>
"""


def main():
    # A complete binary tree of 7 content-based XML routers, running the
    # paper's full strategy: advertisement-based routing + covering +
    # imperfect merging.
    overlay = Overlay.binary_tree(levels=3, config=RoutingConfig.full())

    # Clients only know their edge broker.
    publisher = overlay.attach_publisher("newsdesk", "b4")
    alice = overlay.attach_subscriber("alice", "b5")
    bob = overlay.attach_subscriber("bob", "b6")
    carol = overlay.attach_subscriber("carol", "b7")

    # The publisher's DTD becomes its advertisement set, flooded once.
    publisher.advertise_dtd(psd_dtd())
    overlay.run()

    # Subscribers register XPath expressions (XPEs).
    alice.subscribe("/ProteinDatabase/ProteinEntry/header/uid")
    bob.subscribe("//author")          # relative XPE with //
    carol.subscribe("/ProteinDatabase//genetics")  # matches nothing here
    overlay.run()

    # Publish a whole XML document; the edge broker decomposes it into
    # root-to-leaf paths and routes them by content.
    document = XMLDocument.parse(DOCUMENT, doc_id="pw-0001")
    publisher.publish_document(document)
    overlay.run()

    for client in (alice, bob, carol):
        received = sorted(client.delivered_documents())
        print("%-6s received: %s" % (client.client_id, received or "nothing"))

    print("\nnetwork traffic: %d broker messages" % overlay.stats.network_traffic)
    delay = overlay.stats.mean_notification_delay()
    if delay is not None:
        print("mean notification delay: %.2f ms" % (delay * 1e3))

    assert "pw-0001" in alice.delivered_documents()
    assert "pw-0001" in bob.delivered_documents()
    assert "pw-0001" not in carol.delivered_documents()


if __name__ == "__main__":
    main()
