#!/usr/bin/env python
"""A real TCP deployment of the dissemination network on localhost.

The same broker state machine the simulator drives runs here behind TCP
listeners speaking the newline-delimited JSON wire protocol — the
runnable equivalent of the paper's cluster/PlanetLab deployment, shrunk
to one machine.  Also demonstrates broker snapshots: the middle broker
is serialised to JSON and its state printed.

Run:  python examples/tcp_deployment.py
"""


from repro.adverts import generate_advertisements
from repro.broker import RoutingConfig, SubscribeMsg, AdvertiseMsg, PublishMsg
from repro.broker.persistence import snapshot_json
from repro.dtd import parse_dtd
from repro.network.sockets import LocalDeployment
from repro.xmldoc import XMLDocument
from repro.xpath import parse_xpath

ORDERS_DTD = """
<!ELEMENT orders (order*)>
<!ELEMENT order (customer, sku, qty, region)>
<!ELEMENT customer (#PCDATA)>
<!ELEMENT sku (#PCDATA)>
<!ELEMENT qty (#PCDATA)>
<!ELEMENT region (#PCDATA)>
"""

ORDER_DOC = """
<orders>
  <order>
    <customer>ACME Corp</customer>
    <sku>WIDGET-42</sku>
    <qty>1000</qty>
    <region>EMEA</region>
  </order>
</orders>
"""


def main():
    dtd = parse_dtd(ORDERS_DTD)
    deployment = LocalDeployment(config=RoutingConfig.with_adv_with_cov())
    for name in ("edge-west", "core", "edge-east"):
        deployment.add_broker(name)
    deployment.link("edge-west", "core")
    deployment.link("core", "edge-east")
    deployment.start()
    print("brokers listening:")
    for name, node in deployment.nodes.items():
        print("  %-10s 127.0.0.1:%d" % (name, node.port))

    try:
        producer = deployment.publisher("order-entry", "edge-west")
        fulfilment = deployment.subscriber("fulfilment", "edge-east")

        for index, advert in enumerate(generate_advertisements(dtd)):
            producer.submit(
                AdvertiseMsg(
                    adv_id="orders/%d" % index,
                    advert=advert,
                    publisher_id="order-entry",
                )
            )
        deployment.settle()

        fulfilment.submit(
            SubscribeMsg(
                expr=parse_xpath("/orders/order/sku"),
                subscriber_id="fulfilment",
            )
        )
        deployment.settle()

        document = XMLDocument.parse(ORDER_DOC, doc_id="order-1001")
        for publication in document.publications():
            producer.submit(
                PublishMsg(publication=publication, publisher_id="order-entry")
            )
        deployment.settle()

        print(
            "\nfulfilment received over TCP: %s"
            % sorted(fulfilment.delivered_documents())
        )
        assert fulfilment.delivered_documents() == {"order-1001"}

        core = deployment.nodes["core"].broker
        print("\ncore broker state snapshot (persistable JSON):")
        text = snapshot_json(core)
        print(
            "\n".join(
                line for line in text.splitlines()[:14]
            )
            + "\n  ... (%d bytes total)" % len(text)
        )
    finally:
        deployment.stop()


if __name__ == "__main__":
    main()
