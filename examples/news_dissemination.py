#!/usr/bin/env python
"""News dissemination with a recursive DTD: inside a broker.

Shows the machinery the evaluation section measures, on the NITF-like
news DTD:

* advertisement generation from a *recursive* DTD (the ``(...)+``
  patterns of paper §3.1),
* the subscription tree and covering-based table compaction (§4.1–4.2),
* merging and its effect on routing-table size (§4.3),
* publication matching against the compacted table.

Run:  python examples/news_dissemination.py
"""

import collections

from repro.adverts import generate_advertisements
from repro.covering import SubscriptionTree
from repro.dtd import nitf_dtd
from repro.merging import MergingEngine, PathUniverse
from repro.workloads import generate_documents, set_b
from repro.xpath import parse_xpath


def main():
    dtd = nitf_dtd()

    # 1. Advertisements from a recursive DTD.
    adverts = generate_advertisements(dtd)
    kinds = collections.Counter(advert.kind for advert in adverts)
    print("advertisements derived from the NITF-like DTD: %d" % len(adverts))
    for kind, count in sorted(kinds.items()):
        print("  %-20s %5d" % (kind, count))
    recursive = next(a for a in adverts if a.kind == "simple-recursive")
    print("  e.g. %s\n" % recursive)

    # 2. A newsroom's subscription workload in a covering tree.
    workload = set_b(600, seed=7)
    tree = SubscriptionTree()
    for index, expr in enumerate(workload.exprs):
        tree.insert(expr, "client-%d" % index)
    print("subscriptions inserted:   %d" % len(workload))
    print("stored XPEs (all):        %d" % len(tree))
    print(
        "forwarded XPEs (maximal): %d  (covering removed %.0f%%)"
        % (
            tree.top_level_size(),
            100.0 * (1 - tree.top_level_size() / len(workload)),
        )
    )

    # 3. Merging compacts the forwarded table further.
    universe = PathUniverse.from_dtd(dtd, max_depth=8)
    engine = MergingEngine(universe=universe, max_degree=0.1)
    report = engine.merge_tree(tree)
    print(
        "after imperfect merging:  %d  (%d mergers, %d XPEs absorbed)\n"
        % (tree.top_level_size(), len(report), report.merged_away)
    )

    # 4. Route some publications against the compacted table.
    documents = generate_documents(dtd, 5, seed=3, target_bytes=2048)
    for document in documents:
        matched_clients = set()
        for publication in document.publications():
            matched_clients |= tree.match_keys(publication.path)
        print(
            "document %-7s (%2d paths, depth %2d) -> %3d interested clients"
            % (
                document.doc_id,
                len(document.paths()),
                document.depth(),
                len(matched_clients),
            )
        )

    # 5. Covering detection on individual expressions.
    print("\ncovering spot checks:")
    for sup, sub in (
        ("/nitf/body", "/nitf/body/body-content/p"),
        ("//block/p", "/nitf/body/body-content/block/p"),
        ("/nitf/*//hl2", "/nitf/body//hl2"),
    ):
        from repro.covering import covers

        print(
            "  %-14s covers %-38s : %s"
            % (sup, sub, covers(parse_xpath(sup), parse_xpath(sub)))
        )


if __name__ == "__main__":
    main()
