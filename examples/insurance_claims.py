#!/usr/bin/env python
"""The paper's motivating scenario (§1): a globally operating insurance
company whose branch offices are linked by an overlay of content-based
XML routers.

Claims, bids and requests-for-proposal are submitted anywhere in the
network and routed — purely by content — to currently-online experts
whose interest profiles are XPath expressions.  Producers and consumers
are fully decoupled: nobody holds anybody's address.

Run:  python examples/insurance_claims.py
"""

from repro.broker import RoutingConfig
from repro.dtd import parse_dtd
from repro.network import Overlay, PlanetLabLatency
from repro.xmldoc import XMLDocument

INSURANCE_DTD = """
<!ELEMENT claims (claim | bid | rfp)*>
<!ELEMENT claim (policy, incident, amount, language?)>
<!ELEMENT policy (holder, region, line)>
<!ELEMENT holder (#PCDATA)>
<!ELEMENT region (#PCDATA)>
<!ELEMENT line (auto | home | health | marine)>
<!ELEMENT auto EMPTY>
<!ELEMENT home EMPTY>
<!ELEMENT health EMPTY>
<!ELEMENT marine EMPTY>
<!ELEMENT incident (date, location, severity, description?)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT severity (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT amount (#PCDATA)>
<!ELEMENT language (#PCDATA)>
<!ELEMENT bid (policy, amount)>
<!ELEMENT rfp (policy, description)>
"""

MARINE_CLAIM = """
<claims>
  <claim>
    <policy>
      <holder>Nordsee Shipping GmbH</holder>
      <region>EMEA</region>
      <line><marine/></line>
    </policy>
    <incident>
      <date>2026-07-01</date>
      <location>Rotterdam</location>
      <severity>major</severity>
    </incident>
    <amount>2400000</amount>
    <language>de</language>
  </claim>
</claims>
"""

AUTO_BID = """
<claims>
  <bid>
    <policy>
      <holder>J. Smith</holder>
      <region>NA</region>
      <line><auto/></line>
    </policy>
    <amount>1200</amount>
  </bid>
</claims>
"""


def main():
    dtd = parse_dtd(INSURANCE_DTD)

    # Offices on three continents; wide-area latencies between them.
    overlay = Overlay(
        config=RoutingConfig.full(),
        latency_model=PlanetLabLatency(seed=42),
    )
    for office in ("frankfurt", "toronto", "singapore", "rotterdam", "chicago"):
        overlay.add_broker(office)
    overlay.connect("frankfurt", "toronto")
    overlay.connect("frankfurt", "rotterdam")
    overlay.connect("toronto", "chicago")
    overlay.connect("frankfurt", "singapore")

    # A broker submits claims at the Rotterdam office.
    broker_client = overlay.attach_publisher("third-party-broker", "rotterdam")
    broker_client.advertise_dtd(dtd)
    overlay.run()

    # Experts subscribe with XPE interest profiles.
    marine_expert = overlay.attach_subscriber("marine-expert", "frankfurt")
    marine_expert.subscribe("/claims/claim/policy/line/marine")
    german_speaker = overlay.attach_subscriber("german-desk", "frankfurt")
    german_speaker.subscribe("/claims/claim/language")
    auto_desk = overlay.attach_subscriber("auto-desk", "chicago")
    auto_desk.subscribe("//bid/policy/line/auto")
    audit = overlay.attach_subscriber("audit", "singapore")
    audit.subscribe("/claims")  # everything — covers all of the above
    overlay.run()

    for doc_id, text in (("claim-7731", MARINE_CLAIM), ("bid-0042", AUTO_BID)):
        broker_client.publish_document(XMLDocument.parse(text, doc_id=doc_id))
    overlay.run()

    print("Routing of two documents through the insurance overlay:\n")
    for client in (marine_expert, german_speaker, auto_desk, audit):
        print(
            "  %-13s @ %-9s -> %s"
            % (
                client.client_id,
                client.broker_id,
                sorted(client.delivered_documents()) or "nothing",
            )
        )

    print("\nbroker messages: %d" % overlay.stats.network_traffic)
    for record in sorted(
        overlay.stats.delivered_documents().values(),
        key=lambda r: (r.subscriber_id, r.doc_id),
    ):
        print(
            "  %-13s got %-10s after %5.1f ms over %d hops"
            % (record.subscriber_id, record.doc_id, record.delay * 1e3, record.hops)
        )

    assert marine_expert.delivered_documents() == {"claim-7731"}
    assert german_speaker.delivered_documents() == {"claim-7731"}
    assert auto_desk.delivered_documents() == {"bid-0042"}
    assert audit.delivered_documents() == {"claim-7731", "bid-0042"}


if __name__ == "__main__":
    main()
