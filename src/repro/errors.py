"""Exception hierarchy shared by all :mod:`repro` subsystems."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class XPathSyntaxError(ReproError):
    """Raised when an XPath expression cannot be parsed.

    Carries the offending source text and the position of the first
    character that could not be consumed.
    """

    def __init__(self, source, position, reason):
        self.source = source
        self.position = position
        self.reason = reason
        super().__init__(
            "invalid XPath expression %r at position %d: %s"
            % (source, position, reason)
        )


class DTDSyntaxError(ReproError):
    """Raised when a DTD document cannot be parsed."""

    def __init__(self, reason, line=None):
        self.reason = reason
        self.line = line
        location = "" if line is None else " (line %d)" % line
        super().__init__("invalid DTD%s: %s" % (location, reason))


class XMLSyntaxError(ReproError):
    """Raised when an XML document cannot be parsed."""


class RoutingError(ReproError):
    """Raised on protocol violations inside a broker or the overlay.

    Examples: publishing without a prior advertisement when
    advertisement-based routing is enabled, or delivering a message to an
    unknown destination.
    """


class ProtocolError(RoutingError):
    """Raised when a broker receives a message it cannot interpret —
    an unknown message kind, or a payload that violates the dissemination
    protocol.  Subclasses :class:`RoutingError` so existing handlers of
    broker-side failures keep working."""


class ConfigError(ReproError):
    """Raised when a configuration value is unusable — an unknown
    matching engine in a snapshot, a shard count that is not a positive
    integer, and similar.  Deliberately *not* a subclass of
    :class:`ValueError`/:class:`KeyError`: persistence wraps those in
    :class:`~repro.broker.persistence.PersistenceError`, and a
    configuration problem must surface under its own name (with the
    offending field) instead of as "malformed snapshot".
    """


class TopologyError(ReproError):
    """Raised when an overlay topology is malformed (cycles, unknown
    brokers, duplicate links)."""


class WorkloadError(ReproError):
    """Raised when a workload generator is configured inconsistently."""
