"""Experiment runners — one per table/figure of the paper's §5.

Run everything (scaled down) with::

    python -m repro.experiments

or individually::

    from repro.experiments import run_fig6
    print(run_fig6(scale=0.05).format())
"""

from repro.experiments.ablation_interest import run_interest_ablation
from repro.experiments.scalability import run_scalability_sweep
from repro.experiments.table_profile import run_table_profile
from repro.experiments.common import ExperimentResult, scaled
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10_11 import (
    run_delay_experiment,
    run_fig10,
    run_fig11,
)
from repro.experiments.table1 import run_table1
from repro.experiments.tables23 import (
    run_table2,
    run_table3,
    run_traffic_experiment,
)

__all__ = [
    "ExperimentResult",
    "scaled",
    "run_interest_ablation",
    "run_scalability_sweep",
    "run_table_profile",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_delay_experiment",
    "run_fig10",
    "run_fig11",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_traffic_experiment",
]
