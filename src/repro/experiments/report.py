"""Markdown report generation for experiment runs.

``write_report`` runs a set of experiments and writes one self-contained
markdown document with each result as a table (figures also as ASCII
charts), timestamps-free so reruns diff cleanly.  This is the artifact
behind ``python -m repro.experiments --output report.md``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentResult


def result_to_markdown(result: ExperimentResult, chart: bool = False) -> str:
    """One experiment as a markdown section."""
    lines = ["## %s" % result.name, ""]
    headers = list(result.columns)
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in result.rows():
        lines.append(
            "| "
            + " | ".join(_fmt(row.get(column)) for column in headers)
            + " |"
        )
    if result.notes:
        lines.append("")
        lines.append("*%s*" % result.notes)
    if chart:
        lines.append("")
        lines.append("```")
        lines.append(result.chart())
        lines.append("```")
    lines.append("")
    return "\n".join(lines)


def write_report(
    runners: Dict[str, Callable[[], ExperimentResult]],
    path: str,
    title: str = "Reproduced tables and figures",
    chart_prefixes: Sequence[str] = ("fig",),
    only: Optional[Sequence[str]] = None,
) -> List[str]:
    """Run *runners* (name -> callable) and write the report to *path*.

    Returns the names run, in order.
    """
    selected = list(only) if only else list(runners)
    unknown = [name for name in selected if name not in runners]
    if unknown:
        raise KeyError("unknown experiments: %s" % ", ".join(unknown))

    sections = ["# %s" % title, ""]
    for name in selected:
        result = runners[name]()
        chart = any(name.startswith(prefix) for prefix in chart_prefixes)
        sections.append(result_to_markdown(result, chart=chart))
    with open(path, "w") as handle:
        handle.write("\n".join(sections))
    return selected


def _fmt(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)
