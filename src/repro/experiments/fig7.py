"""Figure 7 — routing table size under covering + merging (Set B).

The paper applies the merging rules on top of covering for Set B:
perfect merging compacts the table to ~87% of the covering-only size,
imperfect merging with ``D_imperfect = 0.1`` to ~67%.
"""

from __future__ import annotations

from typing import Optional

from repro.covering.subscription_tree import SubscriptionTree
from repro.dtd.samples import nitf_dtd
from repro.experiments.common import ExperimentResult, scaled
from repro.merging.engine import MergingEngine, PathUniverse
from repro.workloads.datasets import Dataset, set_b


def run_fig7(
    scale: float = 0.05,
    checkpoints: int = 5,
    imperfect_degree: float = 0.1,
    merge_every: int = 200,
    dataset: Optional[Dataset] = None,
    universe: Optional[PathUniverse] = None,
) -> ExperimentResult:
    """Reproduce Figure 7 (Set B, NITF)."""
    total = scaled(100_000, scale, minimum=checkpoints)
    if dataset is None:
        dataset = set_b(total)
    if universe is None:
        universe = PathUniverse.from_dtd(nitf_dtd(), max_depth=8)

    marks = [
        max(1, (i + 1) * total // checkpoints) for i in range(checkpoints)
    ]
    covering = _run(dataset, marks, merger=None, merge_every=merge_every)
    perfect = _run(
        dataset,
        marks,
        merger=MergingEngine(universe=universe, max_degree=0.0),
        merge_every=merge_every,
    )
    imperfect = _run(
        dataset,
        marks,
        merger=MergingEngine(universe=universe, max_degree=imperfect_degree),
        merge_every=merge_every,
    )

    result = ExperimentResult(
        name="Figure 7 — RTS with merging (Set B)",
        columns=(
            "subscriptions",
            "covering",
            "perfect_merging",
            "imperfect_merging",
        ),
        notes=(
            "imperfect merging degree <= %.2f; paper reports perfect "
            "merging ~87%% and D=0.1 ~67%% of the covering-only table."
            % imperfect_degree
        ),
    )
    for mark, c, p, i in zip(marks, covering, perfect, imperfect):
        result.add_row(
            subscriptions=mark,
            covering=c,
            perfect_merging=p,
            imperfect_merging=i,
        )
    return result


def _run(dataset, marks, merger, merge_every):
    tree = SubscriptionTree()
    sizes = []
    mark_iter = iter(marks)
    next_mark = next(mark_iter)
    for index, expr in enumerate(dataset.exprs, start=1):
        tree.insert(expr, index)
        if merger is not None and index % merge_every == 0:
            merger.merge_tree(tree)
        if index == next_mark:
            if merger is not None:
                merger.merge_tree(tree)
            sizes.append(tree.top_level_size())
            try:
                next_mark = next(mark_iter)
            except StopIteration:
                break
    while len(sizes) < len(marks):
        sizes.append(tree.top_level_size())
    return sizes
