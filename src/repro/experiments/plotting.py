"""Terminal plotting for experiment results.

The paper's figures are line charts; :func:`ascii_chart` renders an
:class:`~repro.experiments.common.ExperimentResult`'s series as a
fixed-grid ASCII plot so ``python -m repro.experiments --chart``
regenerates recognisable figures with no plotting dependency.
"""

from __future__ import annotations

from typing import Optional, Sequence

MARKERS = "ox+*#@%&"


def ascii_chart(
    result,
    x_column: str,
    y_columns: Optional[Sequence[str]] = None,
    width: int = 64,
    height: int = 18,
) -> str:
    """Render selected columns of *result* as an ASCII line chart.

    Args:
        result: an ExperimentResult.
        x_column: column used for the x axis (numeric).
        y_columns: series to plot (default: every other numeric column).
        width/height: plot area in characters.
    """
    rows = result.rows()
    if not rows:
        return "%s\n(no data)" % result.name
    if y_columns is None:
        y_columns = [
            column
            for column in result.columns
            if column != x_column
            and any(isinstance(row.get(column), (int, float)) for row in rows)
        ]

    xs = [float(row[x_column]) for row in rows]
    series = {}
    for column in y_columns:
        points = [
            (x, float(row[column]))
            for x, row in zip(xs, rows)
            if isinstance(row.get(column), (int, float))
        ]
        if points:
            series[column] = points
    if not series:
        return "%s\n(no numeric series)" % result.name

    x_min, x_max = min(xs), max(xs)
    all_ys = [y for points in series.values() for _x, y in points]
    y_min, y_max = min(all_ys), max(all_ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def plot(x, y, marker):
        column = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        grid[height - 1 - row][column] = marker

    legend = []
    for index, (name, points) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend.append("%s %s" % (marker, name))
        # Line interpolation between consecutive points keeps the shape
        # readable at coarse resolutions.
        for (x1, y1), (x2, y2) in zip(points, points[1:]):
            steps = max(
                2,
                int(abs(x2 - x1) / (x_max - x_min) * width) + 1,
            )
            for step in range(steps + 1):
                t = step / steps
                plot(x1 + (x2 - x1) * t, y1 + (y2 - y1) * t, marker)
        for x, y in points:
            plot(x, y, marker)

    y_label_width = max(len(_fmt(y_min)), len(_fmt(y_max)))
    lines = [result.name]
    for index, row in enumerate(grid):
        if index == 0:
            label = _fmt(y_max).rjust(y_label_width)
        elif index == height - 1:
            label = _fmt(y_min).rjust(y_label_width)
        else:
            label = " " * y_label_width
        lines.append("%s |%s" % (label, "".join(row)))
    lines.append(
        "%s +%s" % (" " * y_label_width, "-" * width)
    )
    x_left, x_right = _fmt(x_min), _fmt(x_max)
    padding = width - len(x_left) - len(x_right)
    lines.append(
        "%s  %s%s%s"
        % (" " * y_label_width, x_left, " " * max(1, padding), x_right)
    )
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if abs(value) >= 1000 or value == int(value):
        return "%d" % round(value)
    return "%.2f" % value
