"""Run every reproduced table and figure at a reduced scale.

Usage::

    python -m repro.experiments [--scale FRACTION]

The per-experiment default scales keep the full sweep at a few minutes
on a laptop; ``--scale`` multiplies them.
"""

import argparse
import sys
import time

from repro.experiments import (
    run_interest_ablation,
    run_scalability_sweep,
    run_table_profile,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_table1,
    run_table2,
    run_table3,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures."
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply each experiment's default workload scale",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset to run, e.g. --only fig6 table2",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render figure experiments as ASCII charts",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write a markdown report instead of printing tables",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="enable hot-path metrics and write the observability "
        "snapshot (JSON) here after the run",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="run the overlay experiments (table2/table3) over faulty "
        "links, e.g. 'drop=0.1,dup=0.05,seed=7' — see "
        "repro.network.faults.FaultPlan.from_spec",
    )
    args = parser.parse_args(argv)

    faults = None
    if args.faults:
        from repro.network.faults import FaultPlan, FaultSpecError

        try:
            faults = FaultPlan.from_spec(args.faults)
        except FaultSpecError as exc:
            parser.error(str(exc))

    if args.metrics_out:
        from repro import obs

        obs.enable_metrics(reset=True)

    experiments = {
        "fig6": lambda: run_fig6(scale=0.05 * args.scale),
        "fig7": lambda: run_fig7(scale=0.03 * args.scale),
        "fig8": lambda: run_fig8(scale=0.1 * args.scale),
        "table1": lambda: run_table1(scale=0.02 * args.scale),
        "table2": lambda: run_table2(scale=args.scale, faults=faults),
        "table3": lambda: run_table3(scale=args.scale, faults=faults),
        "fig9": lambda: run_fig9(scale=0.5 * args.scale),
        "fig10": lambda: run_fig10(scale=0.5 * args.scale),
        "fig11": lambda: run_fig11(scale=0.5 * args.scale),
        "interest": lambda: run_interest_ablation(),
        "scalability": lambda: run_scalability_sweep(),
        "tableprofile": lambda: run_table_profile(),
    }
    selected = args.only if args.only else list(experiments)
    unknown = [name for name in selected if name not in experiments]
    if unknown:
        parser.error("unknown experiment(s): %s" % ", ".join(unknown))

    def flush_metrics():
        if not args.metrics_out:
            return
        from repro import obs

        obs.write_json(
            obs.get_registry(),
            args.metrics_out,
            meta={"command": "experiments", "only": selected, "scale": args.scale},
        )
        print("metrics written to %s" % args.metrics_out)

    if args.output:
        from repro.experiments.report import write_report

        write_report(experiments, args.output, only=selected)
        print("report written to %s" % args.output)
        flush_metrics()
        return 0

    for name in selected:
        start = time.time()
        result = experiments[name]()
        print(result.format())
        if args.chart and name.startswith("fig"):
            print()
            print(result.chart())
        print("[%s completed in %.1fs]" % (name, time.time() - start))
        print()
    flush_metrics()
    return 0


if __name__ == "__main__":
    sys.exit(main())
