"""Figure 6 — routing table size vs. number of XPath queries.

The paper inserts 100,000 NITF XPEs from two data sets (Set A: 90%
covering rate, Set B: 50%) and plots the routing table size with and
without the covering optimisation.  Without covering the table grows
linearly (every distinct XPE is stored and forwarded); with covering
only the non-covered XPEs remain — ~10% for Set A, ~50% for Set B.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.covering.subscription_tree import SubscriptionTree
from repro.experiments.common import ExperimentResult, scaled
from repro.workloads.datasets import Dataset, set_a, set_b


def run_fig6(
    scale: float = 0.1,
    checkpoints: int = 5,
    dataset_a: Optional[Dataset] = None,
    dataset_b: Optional[Dataset] = None,
) -> ExperimentResult:
    """Reproduce Figure 6.

    Args:
        scale: fraction of the paper's 100,000 XPEs to use.
        checkpoints: number of x-axis points.
        dataset_a / dataset_b: pre-built workloads (generated at the
            right size when omitted).
    """
    total = scaled(100_000, scale, minimum=checkpoints)
    if dataset_a is None:
        dataset_a = set_a(total)
    if dataset_b is None:
        dataset_b = set_b(total)

    result = ExperimentResult(
        name="Figure 6 — Routing Table Size (RTS)",
        columns=(
            "queries",
            "no_covering",
            "covering_set_a",
            "covering_set_b",
        ),
        notes=(
            "Set A covering rate %.2f, Set B %.2f (paper: 0.90 / 0.50). "
            "no_covering applies to both sets (table = all queries)."
            % (dataset_a.target_covering_rate, dataset_b.target_covering_rate)
        ),
    )

    marks = [
        max(1, (i + 1) * total // checkpoints) for i in range(checkpoints)
    ]
    sizes_a = _progressive_sizes(dataset_a.exprs, marks)
    sizes_b = _progressive_sizes(dataset_b.exprs, marks)
    for mark, size_a, size_b in zip(marks, sizes_a, sizes_b):
        result.add_row(
            queries=mark,
            no_covering=mark,
            covering_set_a=size_a,
            covering_set_b=size_b,
        )
    return result


def _progressive_sizes(exprs: Sequence, marks) -> list:
    """Top-level table size after each checkpoint's worth of inserts."""
    tree = SubscriptionTree()
    sizes = []
    mark_iter = iter(marks)
    next_mark = next(mark_iter)
    for index, expr in enumerate(exprs, start=1):
        tree.insert(expr, index)
        if index == next_mark:
            sizes.append(tree.top_level_size())
            try:
                next_mark = next(mark_iter)
            except StopIteration:
                break
    while len(sizes) < len(marks):
        sizes.append(tree.top_level_size())
    return sizes
