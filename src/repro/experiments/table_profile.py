"""Routing-table profile along a dissemination path.

The paper explains the Figure 10/11 delay gap by table compaction:
"the routing table size along the routing path has been reduced by the
covering technique ... for instance, the routing table size is reduced
to 6% for PSD XPEs."  This runner measures exactly that: per-broker
forwarded-table sizes on a chain overlay, with and without covering,
and the resulting reduction per hop.
"""

from __future__ import annotations

from repro.broker.strategies import RoutingConfig
from repro.dtd.samples import psd_dtd
from repro.experiments.common import ExperimentResult
from repro.network.latency import ConstantLatency
from repro.network.overlay import Overlay
from repro.workloads.xpath_generator import (
    XPathWorkloadParams,
    generate_queries,
)


def run_table_profile(
    chain_length: int = 6,
    xpes_per_subscriber: int = 150,
    seed: int = 37,
) -> ExperimentResult:
    """Per-broker stored/forwarded table sizes on a chain, with and
    without covering."""
    dtd = psd_dtd()
    params = XPathWorkloadParams(
        wildcard_prob=0.2,
        descendant_prob=0.15,
        relative_prob=0.2,
        min_length=2,
    )

    profiles = {}
    for covering in (True, False):
        config = (
            RoutingConfig.with_adv_with_cov()
            if covering
            else RoutingConfig.with_adv_no_cov()
        )
        overlay = Overlay(
            config=config,
            latency_model=ConstantLatency(0.001),
            processing_scale=0.0,
        )
        names = ["b%d" % i for i in range(1, chain_length + 1)]
        for name in names:
            overlay.add_broker(name)
        for left, right in zip(names, names[1:]):
            overlay.connect(left, right)
        publisher = overlay.attach_publisher("pub", names[0])
        publisher.advertise_dtd(dtd)
        overlay.run()
        for index, name in enumerate(names[1:], start=1):
            subscriber = overlay.attach_subscriber("sub%d" % index, name)
            for expr in generate_queries(
                dtd,
                xpes_per_subscriber,
                params=params,
                seed=seed * 100 + index,
            ):
                subscriber.subscribe(expr)
        overlay.run()
        profiles[covering] = [
            overlay.brokers[name].routing_table_size() for name in names
        ]

    result = ExperimentResult(
        name="Routing-table profile along the dissemination chain",
        columns=(
            "broker",
            "stored_no_cov",
            "stored_cov",
            "reduced_to_pct",
        ),
        notes=(
            "Chain of %d brokers, publisher at b1, one subscriber with "
            "%d PSD XPEs per downstream broker.  The paper attributes "
            "the Fig. 10/11 delay gap to this per-hop compaction "
            "('reduced to 6%% for PSD XPEs')."
            % (chain_length, xpes_per_subscriber)
        ),
    )
    for index in range(chain_length):
        no_cov = profiles[False][index]
        cov = profiles[True][index]
        result.add_row(
            broker="b%d" % (index + 1),
            stored_no_cov=no_cov,
            stored_cov=cov,
            reduced_to_pct=(100.0 * cov / no_cov) if no_cov else None,
        )
    return result
