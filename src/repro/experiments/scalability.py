"""Scalability sweep — benefit vs. overlay size.

The paper closes its traffic evaluation with: "Overall, we achieve more
benefit in a larger broker network.  The scalability of the system is
improved."  This runner quantifies that claim: the same per-subscriber
workload runs on growing binary-tree overlays, and for each size we
record the flooding baseline's traffic, the fully optimised strategy's
traffic, and their ratio — the *benefit factor* that the claim predicts
grows with the network.
"""

from __future__ import annotations

from typing import Sequence

from repro.broker.strategies import RoutingConfig
from repro.dtd.samples import psd_dtd
from repro.experiments.common import ExperimentResult
from repro.merging.engine import PathUniverse
from repro.network.latency import ConstantLatency
from repro.network.overlay import Overlay
from repro.workloads.datasets import psd_queries
from repro.workloads.document_generator import generate_documents


def run_scalability_sweep(
    levels: Sequence[int] = (2, 3, 4, 5),
    xpes_per_subscriber: int = 60,
    documents: int = 6,
    baseline: str = "no-Adv-no-Cov",
    optimised: str = "with-Adv-with-Cov",
    seed: int = 31,
) -> ExperimentResult:
    """Traffic of *baseline* vs. *optimised* across overlay sizes."""
    dtd = psd_dtd()
    universe = PathUniverse.from_dtd(dtd, max_depth=10)
    docs = generate_documents(dtd, documents, seed=seed, target_bytes=1024)

    result = ExperimentResult(
        name="Scalability — optimisation benefit vs. overlay size",
        columns=(
            "brokers",
            "subscribers",
            "traffic_baseline",
            "traffic_optimised",
            "benefit_factor",
        ),
        notes=(
            "%s vs. %s; %d PSD XPEs per leaf subscriber, %d documents. "
            "The paper's closing §5 claim: the benefit grows with the "
            "network." % (baseline, optimised, xpes_per_subscriber, documents)
        ),
    )

    for level in levels:
        traffic = {}
        for strategy in (baseline, optimised):
            overlay = Overlay.binary_tree(
                level,
                config=RoutingConfig.by_name(strategy),
                latency_model=ConstantLatency(0.001),
                universe=universe,
                processing_scale=0.0,
            )
            publisher = overlay.attach_publisher("pub", "b1")
            if overlay.config.advertisements:
                publisher.advertise_dtd(dtd)
                overlay.run()
            leaves = overlay.leaf_brokers()
            for index, leaf in enumerate(leaves):
                subscriber = overlay.attach_subscriber("sub%d" % index, leaf)
                for expr in psd_queries(
                    xpes_per_subscriber, seed=seed * 100 + index
                ).exprs:
                    subscriber.subscribe(expr)
            overlay.run()
            for doc in docs:
                publisher.publish_document(doc)
            overlay.run()
            traffic[strategy] = overlay.stats.network_traffic

        result.add_row(
            brokers=2 ** level - 1,
            subscribers=len(leaves),
            traffic_baseline=traffic[baseline],
            traffic_optimised=traffic[optimised],
            benefit_factor=traffic[baseline] / traffic[optimised],
        )
    return result
