"""Ablation: covering benefit vs. subscriber interest similarity.

The paper claims "the covering technique achieves more benefit when
subscribers have similar interests" (§5).  This runner makes the claim
quantitative: subscribers draw from a shared query pool under a Zipf
skew; for each skew we measure interest similarity (mean pairwise
Jaccard), the network traffic with and without covering, and the
traffic saved by covering.  The paper's claim predicts the saving
grows with similarity.
"""

from __future__ import annotations

from typing import Sequence

from repro.broker.strategies import RoutingConfig
from repro.dtd.samples import psd_dtd
from repro.experiments.common import ExperimentResult
from repro.network.latency import ConstantLatency
from repro.network.overlay import Overlay
from repro.workloads.document_generator import generate_documents
from repro.workloads.interest import InterestModel


def run_interest_ablation(
    skews: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    xpes_per_subscriber: int = 60,
    pool_size: int = 400,
    documents: int = 6,
    levels: int = 3,
    seed: int = 23,
) -> ExperimentResult:
    """Traffic saved by covering as subscriber interests align."""
    dtd = psd_dtd()
    docs = generate_documents(dtd, documents, seed=seed, target_bytes=1024)

    result = ExperimentResult(
        name="Ablation — covering benefit vs. interest similarity",
        columns=(
            "skew",
            "similarity",
            "traffic_no_cov",
            "traffic_cov",
            "saved_pct",
        ),
        notes=(
            "Zipf skew over a shared pool of %d PSD queries, %d per "
            "subscriber; similarity = mean pairwise Jaccard of interest "
            "sets.  The paper's §5 claim: covering saves more when "
            "interests align." % (pool_size, xpes_per_subscriber)
        ),
    )

    for skew in skews:
        model = InterestModel.from_dtd(
            dtd, pool_size=pool_size, skew=skew, seed=seed
        )
        draws = None
        traffic = {}
        for covering in (False, True):
            config = (
                RoutingConfig.with_adv_with_cov()
                if covering
                else RoutingConfig.with_adv_no_cov()
            )
            overlay = Overlay.binary_tree(
                levels,
                config=config,
                latency_model=ConstantLatency(0.001),
                processing_scale=0.0,
            )
            publisher = overlay.attach_publisher("pub", "b1")
            publisher.advertise_dtd(dtd)
            overlay.run()
            # Identical draws for both configurations of one skew.
            local_model = InterestModel.from_dtd(
                dtd, pool_size=pool_size, skew=skew, seed=seed
            )
            draws = [
                local_model.draw(xpes_per_subscriber)
                for _ in overlay.leaf_brokers()
            ]
            for index, leaf in enumerate(overlay.leaf_brokers()):
                subscriber = overlay.attach_subscriber(
                    "sub%d" % index, leaf
                )
                for expr in draws[index]:
                    subscriber.subscribe(expr)
            overlay.run()
            for doc in docs:
                publisher.publish_document(doc)
            overlay.run()
            traffic[covering] = overlay.stats.network_traffic

        saved = 100.0 * (traffic[False] - traffic[True]) / traffic[False]
        result.add_row(
            skew=skew,
            similarity=model.similarity(draws),
            traffic_no_cov=traffic[False],
            traffic_cov=traffic[True],
            saved_pct=saved,
        )
    return result
