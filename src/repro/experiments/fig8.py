"""Figure 8 — XPE processing time with and without covering.

Processing an incoming XPE means deciding where to forward it.  Without
covering every XPE is matched against all stored advertisements; with
covering an XPE that is covered by an existing one skips advertisement
matching entirely.  The gain is larger for NITF than for PSD because
the NITF DTD yields ~35x more advertisements (§5).

The runner reports the cumulative-average processing time per XPE at
each 10%-of-workload checkpoint, mirroring the paper's per-500-XPE data
points.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from repro.adverts.generator import generate_advertisements
from repro.adverts.recursive import expr_and_advertisement
from repro.covering.subscription_tree import SubscriptionTree
from repro.dtd.samples import nitf_dtd, psd_dtd
from repro.experiments.common import ExperimentResult, scaled
from repro.workloads.xpath_generator import (
    XPathWorkloadParams,
    generate_queries,
)


def run_fig8(
    scale: float = 0.2,
    checkpoints: int = 10,
    seed: int = 7,
) -> ExperimentResult:
    """Reproduce Figure 8.

    The paper issues 5000 XPEs per DTD; organically generated query
    sets reach high covering fractions on both DTDs (the paper reports
    90% covered for PSD).
    """
    total = scaled(5000, scale, minimum=checkpoints)
    result = ExperimentResult(
        name="Figure 8 — XPE processing time",
        columns=(
            "xpes",
            "nitf_with_cov_ms",
            "nitf_without_cov_ms",
            "psd_with_cov_ms",
            "psd_without_cov_ms",
        ),
        notes=(
            "Cumulative mean milliseconds per processed XPE. NITF "
            "benefits more: its advertisement set is ~35x larger."
        ),
    )

    params = XPathWorkloadParams(
        wildcard_prob=0.2,
        descendant_prob=0.15,
        relative_prob=0.2,
        min_length=2,
    )
    runs = {}
    for label, dtd in (("nitf", nitf_dtd()), ("psd", psd_dtd())):
        adverts = generate_advertisements(dtd)
        queries = generate_queries(dtd, total, params=params, seed=seed)
        runs["%s_with_cov_ms" % label] = _with_covering(
            queries, adverts, checkpoints
        )
        runs["%s_without_cov_ms" % label] = _without_covering(
            queries, adverts, checkpoints
        )

    marks = [
        max(1, (i + 1) * total // checkpoints) for i in range(checkpoints)
    ]
    for index, mark in enumerate(marks):
        result.add_row(
            xpes=mark,
            nitf_with_cov_ms=runs["nitf_with_cov_ms"][index],
            nitf_without_cov_ms=runs["nitf_without_cov_ms"][index],
            psd_with_cov_ms=runs["psd_with_cov_ms"][index],
            psd_without_cov_ms=runs["psd_without_cov_ms"][index],
        )
    return result


def _checkpoint_means(elapsed: List[float], checkpoints: int) -> List[float]:
    """Cumulative mean (ms) at each checkpoint."""
    marks = [
        max(1, (i + 1) * len(elapsed) // checkpoints)
        for i in range(checkpoints)
    ]
    means = []
    running = 0.0
    position = 0
    for mark in marks:
        while position < mark:
            running += elapsed[position]
            position += 1
        means.append(1e3 * running / mark)
    return means


def _with_covering(
    queries: Sequence, adverts: Sequence, checkpoints: int
) -> List[float]:
    """Covering-based processing: covered XPEs skip advert matching."""
    tree = SubscriptionTree()
    elapsed = []
    for index, expr in enumerate(queries):
        start = time.perf_counter()
        outcome = tree.insert(expr, index)
        if not outcome.covered:
            for advert in adverts:
                expr_and_advertisement(advert, expr)
        elapsed.append(time.perf_counter() - start)
    return _checkpoint_means(elapsed, checkpoints)


def _without_covering(
    queries: Sequence, adverts: Sequence, checkpoints: int
) -> List[float]:
    """Every XPE is matched against every advertisement."""
    elapsed = []
    for expr in queries:
        start = time.perf_counter()
        for advert in adverts:
            expr_and_advertisement(advert, expr)
        elapsed.append(time.perf_counter() - start)
    return _checkpoint_means(elapsed, checkpoints)
