"""Tables 2 and 3 — network traffic and notification delay in the
7-broker and 127-broker overlays.

The paper builds complete binary trees of brokers (3 levels = 7 brokers,
7 levels = 127 brokers), attaches one subscriber per leaf broker (1000
distinct PSD XPEs each), one publisher at a random broker (50 documents,
4,182 publication paths) and measures, for each of six routing
strategies, the total number of messages received by brokers and the
mean notification delay::

    7 brokers:   no-Adv-no-Cov 58,138 msgs / 29.02 ms ...
                 with-Adv-with-CovIPM 26,146 / 3.92
    127 brokers: no-Adv-no-Cov 654,871 / 97.82 ...
                 with-Adv-with-CovIPM 257,567 / 12.24

The reproduction target is the ordering and the rough reduction factors
(advertisements cut subscription flooding; covering cuts both traffic
and delay; merging cuts further, with imperfect merging trading a little
extra traffic for the shortest delays).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional, Sequence

from repro.broker.strategies import RoutingConfig
from repro.dtd.samples import psd_dtd
from repro.experiments.common import ExperimentResult, scaled
from repro.merging.engine import PathUniverse
from repro.network.latency import ClusterLatency
from repro.network.overlay import Overlay
from repro.workloads.datasets import psd_queries
from repro.workloads.document_generator import generate_documents


def run_traffic_experiment(
    levels: int,
    xpes_per_subscriber: int = 100,
    documents: int = 10,
    strategies: Optional[Sequence[str]] = None,
    seed: int = 5,
    merge_interval: int = 50,
    check_delivery_equivalence: bool = True,
    faults=None,
    batching: bool = False,
    matching_engine: str = "auto",
    shard_count: int = 4,
    views: bool = False,
    telemetry_interval: Optional[float] = None,
) -> ExperimentResult:
    """Run the Tables 2/3 experiment on a ``levels``-deep broker tree.

    ``faults`` optionally installs a
    :class:`~repro.network.faults.FaultPlan` on every overlay (the plan
    is stateless and shareable), running the experiment over degraded
    links with the reliability layer engaged — the PlanetLab-style
    condition.  Delivery equivalence continues to hold: reliable
    links plus idempotent handlers mask the faults.

    ``batching`` publishes each document's paths as one batch (see
    ``Overlay.submit_batch``); delivered document sets are unaffected.

    ``matching_engine`` selects the publication-matching backend on
    every broker (``auto``, ``shared`` or ``sharded`` — the latter
    partitioned into ``shard_count`` root shards); routing decisions
    and delivered document sets are identical across engines.

    ``views`` enables edge materialized views (:mod:`repro.views`) on
    every broker; delivered document sets are unaffected (views serve
    byte-identical deliveries for hot groups).

    ``telemetry_interval`` (virtual seconds) turns on the live
    telemetry plane per strategy; each strategy's timeline document
    lands in ``result.telemetry[name]`` (see docs/telemetry.md).
    """
    if strategies is None:
        strategies = RoutingConfig.ALL_NAMES
    dtd = psd_dtd()
    universe = PathUniverse.from_dtd(dtd, max_depth=10)
    docs = generate_documents(
        dtd, documents, seed=seed, target_bytes=2048
    )

    broker_count = 2 ** levels - 1
    result = ExperimentResult(
        name="Table %s — %d Broker Network"
        % ("2" if levels == 3 else "3" if levels == 7 else "2/3-style",
           broker_count),
        columns=("method", "network_traffic", "delay_ms"),
        notes=(
            "%d XPEs per leaf subscriber (PSD), %d documents from one "
            "publisher." % (xpes_per_subscriber, documents)
        ),
    )

    result.telemetry = {}
    baseline_deliveries = None
    for name in strategies:
        config = _configure(
            name, merge_interval, matching_engine, shard_count, views
        )
        overlay = Overlay.binary_tree(
            levels,
            config=config,
            latency_model=ClusterLatency(seed=seed),
            universe=universe,
            processing_scale=1.0,
            faults=faults,
            batching=batching,
        )
        if telemetry_interval is not None:
            overlay.enable_telemetry(interval=telemetry_interval)
        rng = random.Random(seed)
        leaves = overlay.leaf_brokers()
        subscribers = []
        for index, leaf in enumerate(leaves):
            sub = overlay.attach_subscriber("sub%d" % index, leaf)
            subscribers.append((sub, index))
        publisher_home = rng.choice(sorted(overlay.brokers))
        publisher = overlay.attach_publisher("pub0", publisher_home)

        if config.advertisements:
            publisher.advertise_dtd(dtd)
            overlay.run()
        for sub, index in subscribers:
            queries = psd_queries(
                xpes_per_subscriber, seed=seed * 1000 + index
            )
            for expr in queries.exprs:
                sub.subscribe(expr)
        overlay.run()
        for doc in docs:
            publisher.publish_document(doc)
        overlay.run()

        delivered = overlay.delivered_map()
        if check_delivery_equivalence:
            if baseline_deliveries is None:
                baseline_deliveries = delivered
            elif delivered != baseline_deliveries:
                raise AssertionError(
                    "strategy %s delivered a different document set than "
                    "the baseline — routing correctness violated" % name
                )

        if telemetry_interval is not None:
            result.telemetry[name] = overlay.telemetry.timeline_document(
                meta={"strategy": name, "levels": levels}
            )
        mean_delay = overlay.stats.mean_notification_delay()
        result.add_row(
            method=name,
            network_traffic=overlay.stats.network_traffic,
            delay_ms=None if mean_delay is None else mean_delay * 1e3,
        )
    return result


def _configure(
    name: str,
    merge_interval: int,
    matching_engine: str = "auto",
    shard_count: int = 4,
    views: bool = False,
) -> RoutingConfig:
    config = RoutingConfig.by_name(name)
    if config.merging.value != "off" and config.merge_interval != merge_interval:
        config = replace(config, merge_interval=merge_interval)
    if config.matching_engine != matching_engine:
        config = replace(config, matching_engine=matching_engine)
    if config.shard_count != shard_count:
        config = replace(config, shard_count=shard_count)
    if config.views != views:
        config = replace(config, views=views)
    return config


def run_table2(scale: float = 1.0, **kwargs) -> ExperimentResult:
    """Table 2: the 7-broker overlay."""
    return run_traffic_experiment(
        levels=3,
        xpes_per_subscriber=scaled(1000, scale * 0.1),
        documents=scaled(50, scale * 0.2),
        **kwargs,
    )


def run_table3(scale: float = 1.0, **kwargs) -> ExperimentResult:
    """Table 3: the 127-broker overlay."""
    return run_traffic_experiment(
        levels=7,
        xpes_per_subscriber=scaled(1000, scale * 0.02),
        documents=scaled(50, scale * 0.1),
        **kwargs,
    )
