"""Figure 9 — false positives vs. imperfect-merging degree.

Raising the allowed imperfection degree merges more XPEs, so the
routing table matches more publications than the original subscription
set did — those extra matches are in-network false positives (never
delivered to clients).  The paper reports the false-positive percentage
staying under ~2% for ``D_imperfect < 0.1`` and growing with D.

Workload: subscriptions are a random subset of the PSD DTD's exact
root-to-leaf paths.  Rule-1 merging then faces sibling groups with a
few members missing — exactly the situation that creates *imperfect*
mergers whose degree is the missing fraction of the group, and whose
false positives are publications on the unsubscribed sibling paths.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.covering.subscription_tree import SubscriptionTree
from repro.dtd.paths import enumerate_paths
from repro.dtd.samples import psd_dtd
from repro.experiments.common import ExperimentResult, scaled
from repro.matching.engine import LinearMatcher
from repro.merging.engine import MergingEngine, PathUniverse
from repro.workloads.document_generator import generate_documents
from repro.xpath.ast import XPathExpr


def run_fig9(
    scale: float = 1.0,
    degrees: Sequence[float] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40),
    documents: int = 25,
    subscribed_fraction: float = 0.75,
    seed: int = 9,
) -> ExperimentResult:
    """Reproduce Figure 9 (PSD workload)."""
    dtd = psd_dtd()
    universe = PathUniverse.from_dtd(dtd, max_depth=10)
    all_paths = enumerate_paths(dtd, max_depth=10)
    rng = random.Random(seed)
    subscribed = sorted(
        rng.sample(
            all_paths, max(2, int(len(all_paths) * subscribed_fraction))
        )
    )
    exprs: List[XPathExpr] = [
        XPathExpr.from_tests(path) for path in subscribed
    ]

    docs = generate_documents(
        dtd, scaled(documents, scale), seed=seed, target_bytes=2048
    )
    paths = [p.path for doc in docs for p in doc.publications()]

    exact = LinearMatcher()
    for index, expr in enumerate(exprs):
        exact.add(expr, index)

    result = ExperimentResult(
        name="Figure 9 — False positives from imperfect merging",
        columns=("imperfect_degree", "false_positive_pct", "table_size"),
        notes=(
            "%d of the PSD DTD's %d root-to-leaf paths subscribed "
            "exactly; %d publication paths routed.  False positives = "
            "publications matched by the merged table but by no exact "
            "subscription (%% of matched publications)."
            % (len(exprs), len(all_paths), len(paths))
        ),
    )

    for degree in degrees:
        tree = SubscriptionTree()
        for index, expr in enumerate(exprs):
            tree.insert(expr, index)
        merger = MergingEngine(universe=universe, max_degree=degree)
        merger.merge_tree(tree)

        matched = 0
        false_positives = 0
        for path in paths:
            if tree.matches_any(path):
                matched += 1
                if not exact.match(path):
                    false_positives += 1
        pct = 100.0 * false_positives / matched if matched else 0.0
        result.add_row(
            imperfect_degree=degree,
            false_positive_pct=pct,
            table_size=tree.top_level_size(),
        )
    return result
