"""Shared infrastructure for the experiment runners.

Every runner reproduces one table or figure of the paper's §5 and
returns a small result object with a ``rows()`` method (list of dicts)
and a ``format()`` method (aligned text, the same rows/series the paper
reports).  Runners take a ``scale`` knob: 1.0 approximates the paper's
workload sizes, smaller values shrink them proportionally (the paper's
100k-XPE runs are impractical per benchmark iteration in Python; see
EXPERIMENTS.md for the sizes used in the recorded results).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure."""

    name: str
    columns: Sequence[str]
    data: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values):
        self.data.append(values)

    def rows(self) -> List[Dict[str, object]]:
        return list(self.data)

    def column(self, key: str) -> List[object]:
        return [row.get(key) for row in self.data]

    def chart(self, x_column=None, y_columns=None, **kwargs) -> str:
        """ASCII line chart of the result (see
        :func:`repro.experiments.plotting.ascii_chart`)."""
        from repro.experiments.plotting import ascii_chart

        if x_column is None:
            x_column = self.columns[0]
        return ascii_chart(self, x_column, y_columns, **kwargs)

    def format(self) -> str:
        """Render as an aligned text table."""
        headers = list(self.columns)
        rendered = [
            [_fmt(row.get(column)) for column in headers]
            for row in self.data
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rendered))
            if rendered
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.name]
        lines.append(
            "  ".join(headers[i].ljust(widths[i]) for i in range(len(headers)))
        )
        lines.append("  ".join("-" * w for w in widths))
        for r in rendered:
            lines.append(
                "  ".join(r[i].ljust(widths[i]) for i in range(len(headers)))
            )
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)


def timed(fn: Callable[[], object]) -> float:
    """Wall-clock seconds of one call."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale a paper workload size down (or up), keeping a floor."""
    return max(minimum, int(round(value * scale)))
