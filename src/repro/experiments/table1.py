"""Table 1 — publication routing time per message.

The paper routes 23,098 publication paths (from 500 XML documents)
against 100,000 NITF XPEs and reports the mean routing time per
publication under four configurations::

    Method              Set A (ms)   Set B (ms)
    No Covering         13.96        14.23
    Covering             2.15         7.47
    Perfect Merging      1.87         6.88
    Imperfect Merging    1.27         6.38

Covering helps Set A (90% covered → a tiny tree) far more than Set B;
merging compacts the table further.  The shape — ordering of the four
methods and a much larger win on Set A — is the reproduction target.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.covering.subscription_tree import SubscriptionTree
from repro.dtd.samples import nitf_dtd
from repro.experiments.common import ExperimentResult, scaled
from repro.matching.engine import LinearMatcher
from repro.merging.engine import MergingEngine, PathUniverse
from repro.workloads.datasets import Dataset, set_a, set_b
from repro.workloads.document_generator import generate_documents


def run_table1(
    scale: float = 0.02,
    documents: int = 20,
    imperfect_degree: float = 0.1,
    dataset_a: Optional[Dataset] = None,
    dataset_b: Optional[Dataset] = None,
    universe: Optional[PathUniverse] = None,
) -> ExperimentResult:
    """Reproduce Table 1.

    Args:
        scale: fraction of the paper's 100,000 XPEs.
        documents: NITF documents to decompose into publications
            (paper: 500).
    """
    total = scaled(100_000, scale)
    if dataset_a is None:
        dataset_a = set_a(total)
    if dataset_b is None:
        dataset_b = set_b(total)
    if universe is None:
        universe = PathUniverse.from_dtd(nitf_dtd(), max_depth=8)

    docs = generate_documents(
        nitf_dtd(), documents, seed=11, target_bytes=2048
    )
    paths = [
        publication.path
        for doc in docs
        for publication in doc.publications()
    ]

    result = ExperimentResult(
        name="Table 1 — Publication Routing Performance",
        columns=("method", "set_a_ms", "set_b_ms"),
        notes=(
            "%d XPEs per set, %d publication paths from %d documents. "
            "Paper (100k XPEs, C++): 13.96/14.23 -> 2.15/7.47 -> "
            "1.87/6.88 -> 1.27/6.38 ms." % (total, len(paths), documents)
        ),
    )

    rows = {
        "No Covering": (_no_covering, {}),
        "Covering": (_covering, {}),
        "Perfect Merging": (
            _covering,
            {"merger": MergingEngine(universe=universe, max_degree=0.0)},
        ),
        "Imperfect Merging": (
            _covering,
            {
                "merger": MergingEngine(
                    universe=universe, max_degree=imperfect_degree
                )
            },
        ),
    }
    for method, (runner, kwargs) in rows.items():
        ms_a = runner(dataset_a.exprs, paths, **kwargs)
        ms_b = runner(dataset_b.exprs, paths, **kwargs)
        result.add_row(method=method, set_a_ms=ms_a, set_b_ms=ms_b)
    return result


def _route_all(matcher_match, paths) -> float:
    """Mean milliseconds to match one publication path."""
    start = time.perf_counter()
    for path in paths:
        matcher_match(path)
    return 1e3 * (time.perf_counter() - start) / max(1, len(paths))


def _no_covering(exprs: Sequence, paths: Sequence) -> float:
    table = LinearMatcher()
    for index, expr in enumerate(exprs):
        table.add(expr, index)
    return _route_all(table.match, paths)


def _covering(
    exprs: Sequence,
    paths: Sequence,
    merger: Optional[MergingEngine] = None,
    merge_every: int = 500,
) -> float:
    tree = SubscriptionTree()
    for index, expr in enumerate(exprs):
        tree.insert(expr, index)
        if merger is not None and (index + 1) % merge_every == 0:
            merger.merge_tree(tree)
    if merger is not None:
        merger.merge_tree(tree)
    return _route_all(tree.match_keys, paths)
