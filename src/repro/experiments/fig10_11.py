"""Figures 10 and 11 — notification delay vs. broker hops (PlanetLab).

The paper deploys a broker chain with a maximum end-to-end distance of
seven hops on PlanetLab and measures the notification delay for
different document sizes, with and without covering.  Findings to
reproduce: delay grows linearly with hop count; covering flattens the
slope (smaller routing tables → cheaper per-hop matching); larger
documents are slower per hop but gain *more* from covering.

Here the brokers run the real matching code (its wall-clock cost is
charged to the virtual clock) and the links use the
:class:`~repro.network.latency.PlanetLabLatency` wide-area model —
the same two delay components as the testbed measurement.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.broker.strategies import RoutingConfig
from repro.dtd.model import DTD
from repro.dtd.samples import nitf_dtd, psd_dtd
from repro.experiments.common import ExperimentResult, scaled
from repro.merging.engine import PathUniverse
from repro.network.latency import PlanetLabLatency
from repro.network.overlay import Overlay
from repro.workloads.xpath_generator import (
    XPathWorkloadParams,
    generate_queries,
)
from repro.workloads.document_generator import generate_documents


def run_delay_experiment(
    dtd: DTD,
    doc_sizes: Sequence[int],
    name: str,
    chain_length: int = 8,
    xpes_per_subscriber: int = 100,
    documents_per_size: int = 3,
    seed: int = 13,
) -> ExperimentResult:
    """Delay vs. hops for one DTD across document sizes and covering
    on/off — one result row per hop count, one column per (size, mode).
    """
    columns = ["hops"]
    for size in doc_sizes:
        columns.append("%dK_cov_ms" % (size // 1024))
        columns.append("%dK_nocov_ms" % (size // 1024))
    result = ExperimentResult(
        name=name,
        columns=tuple(columns),
        notes=(
            "PlanetLab-style link latencies + measured matching cost; "
            "%d XPEs per subscriber, %d docs per size."
            % (xpes_per_subscriber, documents_per_size)
        ),
    )

    series: Dict[str, Dict[int, float]] = {}
    for size in doc_sizes:
        for covering in (True, False):
            key = "%dK_%s_ms" % (size // 1024, "cov" if covering else "nocov")
            series[key] = _measure_chain(
                dtd,
                size,
                covering,
                chain_length,
                xpes_per_subscriber,
                documents_per_size,
                seed,
            )

    hop_counts = sorted(
        {hop for data in series.values() for hop in data}
    )
    for hops in hop_counts:
        row = {"hops": hops}
        for key, data in series.items():
            row[key] = data.get(hops)
        result.add_row(**row)
    return result


def _measure_chain(
    dtd: DTD,
    doc_size: int,
    covering: bool,
    chain_length: int,
    xpes_per_subscriber: int,
    documents: int,
    seed: int,
) -> Dict[int, float]:
    """Mean delivery delay (ms) per broker hop count on a chain."""
    config = (
        RoutingConfig.with_adv_with_cov()
        if covering
        else RoutingConfig.with_adv_no_cov()
    )
    overlay = Overlay(
        config=config,
        latency_model=PlanetLabLatency(seed=seed),
        universe=PathUniverse.from_dtd(dtd, max_depth=8),
        processing_scale=1.0,
    )
    names = ["b%d" % i for i in range(1, chain_length + 1)]
    for broker_id in names:
        overlay.add_broker(broker_id)
    for left, right in zip(names, names[1:]):
        overlay.connect(left, right)

    publisher = overlay.attach_publisher("pub", names[0])
    subscribers = []
    for index, broker_id in enumerate(names[1:], start=1):
        sub = overlay.attach_subscriber("sub%d" % index, broker_id)
        subscribers.append((sub, index))

    publisher.advertise_dtd(dtd)
    overlay.run()

    params = XPathWorkloadParams(
        wildcard_prob=0.2,
        descendant_prob=0.15,
        relative_prob=0.2,
        min_length=2,
    )
    exprs = generate_queries(
        dtd, xpes_per_subscriber * len(subscribers), params=params, seed=seed
    )
    for sub, index in subscribers:
        chunk = exprs[
            (index - 1) * xpes_per_subscriber: index * xpes_per_subscriber
        ]
        for expr in chunk:
            sub.subscribe(expr)
    overlay.run()

    docs = generate_documents(
        dtd,
        documents,
        seed=seed,
        target_bytes=doc_size,
        doc_prefix="doc%d" % doc_size,
    )
    for doc in docs:
        publisher.publish_document(doc)
    overlay.run()

    return {
        hops: 1e3 * sum(delays) / len(delays)
        for hops, delays in overlay.stats.delays_by_hops().items()
    }


def run_fig10(scale: float = 1.0, **kwargs) -> ExperimentResult:
    """Figure 10: PSD documents of 2K/10K/20K."""
    return run_delay_experiment(
        psd_dtd(),
        doc_sizes=(2048, 10240, 20480),
        name="Figure 10 — Notification delay, PSD XML",
        xpes_per_subscriber=scaled(100, scale),
        **kwargs,
    )


def run_fig11(scale: float = 1.0, **kwargs) -> ExperimentResult:
    """Figure 11: NITF documents of 2K/20K/40K."""
    return run_delay_experiment(
        nitf_dtd(),
        doc_sizes=(2048, 20480, 40960),
        name="Figure 11 — Notification delay, NITF XML",
        xpes_per_subscriber=scaled(100, scale),
        **kwargs,
    )
