"""The XPath-expression (XPE) subscription language of the paper.

Exports the AST (:class:`XPathExpr`, :class:`Step`, :class:`Axis`,
:data:`WILDCARD`) and the parser (:func:`parse_xpath`).
"""

from repro.xpath.ast import (
    Axis,
    Predicate,
    PredicateOp,
    Step,
    TEXT_KEY,
    WILDCARD,
    XPathExpr,
    steps_from_tests,
)
from repro.xpath.parser import parse_xpath, try_parse_xpath

__all__ = [
    "Axis",
    "Predicate",
    "PredicateOp",
    "Step",
    "TEXT_KEY",
    "WILDCARD",
    "XPathExpr",
    "steps_from_tests",
    "parse_xpath",
    "try_parse_xpath",
]
