"""Abstract syntax for the XPath fragment used by the paper.

The subscription language (paper §3.2) is the single-path XPath fragment
with three operators:

* the *parent-child* operator ``/``,
* the *ancestor-descendant* operator ``//``,
* the *wildcard* node test ``*``.

An expression is a sequence of :class:`Step` objects.  Each step carries
the axis that connects it to the previous step (``/`` or ``//``) and a node
test (an element name or the wildcard).  An expression is *absolute*
(called "rooted" here) when it began with a single ``/`` — its first
segment is anchored at the document root.  Expressions beginning with
``//`` or with a bare name/wildcard are *relative*: they may match anywhere
along a publication path.

Expressions are immutable and hashable so they can serve as routing-table
keys.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Tuple

WILDCARD = "*"

#: Reserved pseudo-attribute carrying an element's text content.
TEXT_KEY = "#text"


class Axis(enum.Enum):
    """The axis connecting a step to its predecessor."""

    CHILD = "/"
    DESCENDANT = "//"

    def __str__(self):
        return self.value


class PredicateOp(enum.Enum):
    """Attribute-predicate operators of the extension (paper §3.1/§3.2:
    "our approach could be easily extended to element attributes ...
    through value comparison")."""

    EXISTS = "exists"  # [@name]
    EQ = "="  # [@name='value']
    NE = "!="  # [@name!='value']

    def __str__(self):
        return self.value


@dataclass(frozen=True)
class Predicate:
    """One attribute predicate attached to a location step."""

    name: str
    op: PredicateOp = PredicateOp.EXISTS
    value: str = ""

    def evaluate(self, attributes) -> bool:
        """Evaluate against an attribute mapping (name -> value)."""
        if self.op is PredicateOp.EXISTS:
            return self.name in attributes
        if self.name not in attributes:
            return False
        if self.op is PredicateOp.EQ:
            return attributes[self.name] == self.value
        return attributes[self.name] != self.value

    def implied_by(self, others: "Tuple[Predicate, ...]") -> bool:
        """True when any predicate in *others* logically implies this
        one — the covering direction (a less constrained step covers a
        more constrained one)."""
        for other in others:
            if other.name != self.name:
                continue
            if self == other:
                return True
            if self.op is PredicateOp.EXISTS and other.op in (
                PredicateOp.EXISTS,
                PredicateOp.EQ,
            ):
                return True
            if (
                self.op is PredicateOp.NE
                and other.op is PredicateOp.EQ
                and other.value != self.value
            ):
                return True
        return False

    def __str__(self):
        if self.name == TEXT_KEY:
            return "[text()%s'%s']" % (self.op, self.value)
        if self.op is PredicateOp.EXISTS:
            return "[@%s]" % self.name
        return "[@%s%s'%s']" % (self.name, self.op, self.value)


@dataclass(frozen=True)
class Step:
    """One location step: an axis, a node test, optional predicates.

    ``test`` is either an XML element name or :data:`WILDCARD`;
    ``predicates`` are attribute constraints (the value-comparison
    extension the paper defers to its companion matcher [16]).
    """

    axis: Axis
    test: str
    predicates: Tuple[Predicate, ...] = ()

    @property
    def is_wildcard(self):
        """True when the node test is ``*``."""
        return self.test == WILDCARD

    def __str__(self):
        return "%s%s%s" % (
            self.axis,
            self.test,
            "".join(str(p) for p in self.predicates),
        )


@dataclass(frozen=True, eq=False)
class XPathExpr:
    """A parsed single-path XPath expression (an *XPE*).

    Attributes:
        steps: the location steps, in document order.
        rooted: True when the expression was written with a single leading
            ``/`` (an *absolute* XPE).  ``//``-prefixed and bare
            expressions are relative.

    Equality and hashing are value-based (rooted + step sequence) but
    implemented over a memoised key — expressions are compared millions
    of times inside routing tables, where the generated dataclass
    equality was a measured hot spot.
    """

    steps: Tuple[Step, ...]
    rooted: bool = True

    def __post_init__(self):
        if not self.steps:
            raise ValueError("an XPath expression needs at least one step")
        if self.rooted and self.steps[0].axis is not Axis.CHILD:
            raise ValueError(
                "a rooted expression cannot start with a descendant axis"
            )

    @property
    def _key(self):
        try:
            return self._key_cache
        except AttributeError:
            value = (
                self.rooted,
                tuple(
                    (step.axis is Axis.DESCENDANT, step.test, step.predicates)
                    for step in self.steps
                ),
            )
            object.__setattr__(self, "_key_cache", value)
            return value

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, XPathExpr):
            return NotImplemented
        return self._key == other._key

    def __hash__(self):
        try:
            return self._hash_cache
        except AttributeError:
            value = hash(self._key)
            object.__setattr__(self, "_hash_cache", value)
            return value

    # -- classification -------------------------------------------------

    @property
    def is_absolute(self):
        """True for expressions anchored at the document root."""
        return self.rooted

    @property
    def is_relative(self):
        """True for expressions that may match anywhere along a path."""
        return not self.rooted

    @property
    def is_simple(self):
        """True when the expression contains no ``//`` operator.

        The paper calls these *simple XPEs*; they are matched with the
        ``AbsExprAndAdv``/``RelExprAndAdv`` algorithms.
        """
        try:
            return self._simple_cache
        except AttributeError:
            value = all(step.axis is Axis.CHILD for step in self.steps)
            object.__setattr__(self, "_simple_cache", value)
            return value

    @property
    def has_wildcard(self):
        """True when any node test is ``*``."""
        return any(step.is_wildcard for step in self.steps)

    @property
    def has_predicates(self):
        """True when any step carries attribute predicates."""
        return any(step.predicates for step in self.steps)

    # -- views ----------------------------------------------------------
    #
    # tests/segments are on every matching and covering hot path, so
    # they are memoised on the instance (safe: expressions are
    # immutable, and dataclass eq/hash only consider the declared
    # fields).

    @property
    def tests(self):
        """The node tests as a tuple of strings (names or ``*``)."""
        try:
            return self._tests_cache
        except AttributeError:
            value = tuple(step.test for step in self.steps)
            object.__setattr__(self, "_tests_cache", value)
            return value

    @property
    def segments(self):
        """Maximal ``//``-free runs of node tests, in order.

        The first segment is anchored at the root iff the expression is
        rooted.  Every subsequent segment is connected to its predecessor
        by a ``//`` operator.  A leading ``//`` leaves the expression with
        a single floating first segment, exactly like a relative one.
        """
        try:
            return self._segments_cache
        except AttributeError:
            pass
        result = []
        current = []
        for step in self.steps:
            if step.axis is Axis.DESCENDANT and current:
                result.append(tuple(current))
                current = []
            if step.axis is Axis.DESCENDANT and not current and not result:
                # Leading // — the first segment floats; nothing to flush.
                pass
            current.append(step.test)
        result.append(tuple(current))
        value = tuple(result)
        object.__setattr__(self, "_segments_cache", value)
        return value

    @property
    def step_segments(self):
        """Like :attr:`segments` but yielding the :class:`Step` objects
        (predicates included) instead of bare node tests."""
        try:
            return self._step_segments_cache
        except AttributeError:
            pass
        result = []
        current = []
        for step in self.steps:
            if step.axis is Axis.DESCENDANT and current:
                result.append(tuple(current))
                current = []
            current.append(step)
        result.append(tuple(current))
        value = tuple(result)
        object.__setattr__(self, "_step_segments_cache", value)
        return value

    @property
    def anchored(self):
        """True when the first segment must match at path position 0."""
        return self.rooted and self.steps[0].axis is Axis.CHILD

    def __len__(self):
        return len(self.steps)

    # -- construction helpers -------------------------------------------

    @classmethod
    def from_tests(cls, tests, rooted=True):
        """Build a ``//``-free expression from a sequence of node tests."""
        steps = tuple(Step(Axis.CHILD, t) for t in tests)
        return cls(steps=steps, rooted=rooted)

    def with_rooted(self, rooted):
        """Return a copy of this expression with a different anchoring."""
        if rooted and self.steps[0].axis is Axis.DESCENDANT:
            raise ValueError("cannot root an expression starting with //")
        return XPathExpr(steps=self.steps, rooted=rooted)

    def prefix(self, length):
        """The rooted/relative prefix consisting of the first *length* steps."""
        if not 1 <= length <= len(self.steps):
            raise ValueError("prefix length out of range")
        return XPathExpr(steps=self.steps[:length], rooted=self.rooted)

    def suffix(self, start):
        """A relative expression made of the steps from index *start* on.

        The first retained step's axis is normalised to ``/`` so the
        result is a well-formed relative expression.
        """
        if not 0 <= start < len(self.steps):
            raise ValueError("suffix start out of range")
        steps = self.steps[start:]
        steps = (
            Step(Axis.CHILD, steps[0].test, steps[0].predicates),
        ) + steps[1:]
        return XPathExpr(steps=steps, rooted=False)

    def concat(self, other):
        """Concatenate two expressions with a ``/`` between them."""
        other_steps = (
            Step(Axis.CHILD, other.steps[0].test, other.steps[0].predicates),
        ) + other.steps[1:]
        return XPathExpr(steps=self.steps + other_steps, rooted=self.rooted)

    # -- rendering -------------------------------------------------------

    def __str__(self):
        parts = []
        first = self.steps[0]
        first_preds = "".join(str(p) for p in first.predicates)
        if first.axis is Axis.DESCENDANT:
            parts.append("//%s%s" % (first.test, first_preds))
        elif self.rooted:
            parts.append("/%s%s" % (first.test, first_preds))
        else:
            parts.append("%s%s" % (first.test, first_preds))
        for step in self.steps[1:]:
            parts.append(str(step))
        return "".join(parts)

    def __repr__(self):
        return "XPathExpr(%r)" % str(self)


def steps_from_tests(tests: Iterable[str], axis=Axis.CHILD):
    """Utility: turn a test sequence into steps sharing one axis."""
    return tuple(Step(axis, t) for t in tests)
