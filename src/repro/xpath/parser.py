"""Parser for the paper's single-path XPath fragment.

Grammar::

    expr      := rooted | relative
    rooted    := '/' step ('/' step | '//' step)*
    relative  := ('//')? step ('/' step | '//' step)*
    step      := (NAME | '*') predicate*
    predicate := '[@' NAME (('=' | '!=') STRING)? ']'
               | '[text()' ('=' | '!=') STRING ']'
    NAME      := [A-Za-z_][A-Za-z0-9_.:-]*
    STRING    := "'" chars "'" | '"' chars '"'

Element steps with ``/``, ``//`` and ``*`` are the paper's §3.2 routing
language; attribute predicates are the extension the paper defers to
its companion matcher [16] ("easily extended ... through value
comparison").  The parser is a simple hand-written scanner; XPEs are
short (the paper caps them at 10 steps) so there is no need for
anything heavier.
"""

from __future__ import annotations

import re

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    Axis,
    Predicate,
    PredicateOp,
    Step,
    TEXT_KEY,
    XPathExpr,
)

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.:\-]*")


def parse_xpath(text):
    """Parse *text* into an :class:`~repro.xpath.ast.XPathExpr`.

    Raises:
        XPathSyntaxError: when *text* is not a valid expression in the
            supported fragment.
    """
    if not isinstance(text, str):
        raise TypeError("expected str, got %r" % type(text).__name__)
    source = text.strip()
    if not source:
        raise XPathSyntaxError(text, 0, "empty expression")

    pos = 0
    rooted = False
    first_axis = Axis.CHILD
    if source.startswith("//"):
        first_axis = Axis.DESCENDANT
        pos = 2
    elif source.startswith("/"):
        rooted = True
        pos = 1

    steps = []
    axis = first_axis
    while True:
        test, pos = _scan_test(source, pos)
        predicates = []
        while pos < len(source) and source[pos] == "[":
            predicate, pos = _scan_predicate(source, pos)
            predicates.append(predicate)
        steps.append(Step(axis, test, tuple(predicates)))
        if pos == len(source):
            break
        if source.startswith("//", pos):
            axis = Axis.DESCENDANT
            pos += 2
        elif source.startswith("/", pos):
            axis = Axis.CHILD
            pos += 1
        else:
            raise XPathSyntaxError(
                text, pos, "expected '/' or '//' between steps"
            )
        if pos == len(source):
            raise XPathSyntaxError(text, pos, "trailing path operator")

    return XPathExpr(steps=tuple(steps), rooted=rooted)


def _scan_test(source, pos):
    """Scan one node test (a name or ``*``) starting at *pos*."""
    if pos >= len(source):
        raise XPathSyntaxError(source, pos, "expected a node test")
    if source[pos] == "*":
        return "*", pos + 1
    match = _NAME_RE.match(source, pos)
    if match is None:
        raise XPathSyntaxError(
            source, pos, "expected an element name or '*'"
        )
    return match.group(0), match.end()


def _scan_predicate(source, pos):
    """Scan one ``[@name]`` / ``[@name='v']`` / ``[@name!='v']`` /
    ``[text()='v']`` group starting at the ``[``."""
    start = pos
    pos += 1  # consume '['
    if source.startswith("text()", pos):
        # Text content is carried as the reserved TEXT_KEY pseudo
        # attribute of the element (see repro.xmldoc).
        name = TEXT_KEY
        pos += len("text()")
    elif pos < len(source) and source[pos] == "@":
        pos += 1
        match = _NAME_RE.match(source, pos)
        if match is None:
            raise XPathSyntaxError(source, pos, "expected attribute name")
        name = match.group(0)
        pos = match.end()
    else:
        raise XPathSyntaxError(
            source, pos, "expected '@name' or 'text()' in predicate"
        )
    if name == TEXT_KEY and source.startswith("]", pos):
        raise XPathSyntaxError(
            source, pos, "text() predicates need a comparison"
        )
    if source.startswith("]", pos):
        return Predicate(name=name, op=PredicateOp.EXISTS), pos + 1
    if source.startswith("!=", pos):
        op = PredicateOp.NE
        pos += 2
    elif source.startswith("=", pos):
        op = PredicateOp.EQ
        pos += 1
    else:
        raise XPathSyntaxError(
            source, pos, "expected ']', '=' or '!=' in predicate"
        )
    if pos >= len(source) or source[pos] not in "'\"":
        raise XPathSyntaxError(
            source, pos, "expected a quoted attribute value"
        )
    quote = source[pos]
    pos += 1
    end = source.find(quote, pos)
    if end < 0:
        raise XPathSyntaxError(source, start, "unterminated attribute value")
    value = source[pos:end]
    pos = end + 1
    if not source.startswith("]", pos):
        raise XPathSyntaxError(source, pos, "expected ']' to close predicate")
    return Predicate(name=name, op=op, value=value), pos + 1


def try_parse_xpath(text):
    """Like :func:`parse_xpath` but returns ``None`` on syntax errors."""
    try:
        return parse_xpath(text)
    except XPathSyntaxError:
        return None
