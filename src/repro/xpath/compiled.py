"""Compiled XPE matching (the interpretation-free fast path).

Every publication match used to walk :class:`~repro.xpath.ast.XPathExpr`
segments in Python — the per-step interpretation overhead that compiled
filter indexes (YFilter [Diao et al., TODS 2003], XTrie) were designed
to eliminate.  This module compiles each expression **once** into a
:class:`CompiledXPE`:

* **Predicate-free expressions** become one anchored regular expression
  over a sentinel-joined path string.  A publication path
  ``(a, b, c)`` is rendered as ``"/a/b/c/"``; each ``//``-free segment
  compiles to its element names joined by ``/`` (wildcards become
  ``[^/]+``), segments are connected by ``(?:[^/]+/)*`` (zero or more
  whole skipped elements — exactly the descendant gap), and absolute
  expressions anchor with ``re.match`` while relative ones ``re.search``
  from any element boundary.  Matching then runs entirely inside CPython's
  regex engine.

* **Predicated expressions** become a closure over precomputed
  ``(test, predicates)`` segment tuples — the same greedy
  earliest-placement algorithm as the reference interpreter (exact,
  see :mod:`repro.covering.pathmatch`), minus all per-call attribute
  and property traffic.

Compilation results are interned on the expression instance (safe:
expressions are immutable, and the :mod:`~repro.xpath.ast` hash/eq
memos already use the same idiom), so each distinct XPE pays the regex
build exactly once per process.

The same compiled regexes double as **covering** accelerators: for two
simple (``//``-free) expressions, ``s1 ⊒ s2`` is the regex of ``s1``
run over the sentinel-joined *node tests* of ``s2`` — a wildcard test
in ``s2`` is just another symbol, which only ``s1``'s wildcard pattern
can absorb, reproducing ``covers_test`` exactly.

The fast path is on by default; export ``REPRO_COMPILED=0`` (or run the
CLI with ``--no-compiled``, or call :func:`set_compiled_enabled`) to
fall back to the reference interpreter — the differential test suite
asserts both modes agree on every engine and workload.
"""

from __future__ import annotations

import os
import re
from functools import lru_cache
from typing import Optional, Sequence

from repro import obs
from repro.xpath.ast import WILDCARD, XPathExpr

#: Path-element separator in the compiled string representation.  XML
#: element names can never contain ``/``; inputs that do (possible only
#: through hand-built expressions) fall back to the closure matcher.
SEP = "/"

#: Module-level switch read by every dispatch site.  Mutate through
#: :func:`set_compiled_enabled` only.
ENABLED = os.environ.get("REPRO_COMPILED", "1") != "0"

_EMPTY_ATTRS: dict = {}

#: Regex fragment for one wildcard element.
_ANY_ELEMENT = "[^/]+"
#: Regex fragment for a ``//`` gap: zero or more whole skipped elements.
_GAP = "(?:[^/]+/)*"


def compiled_enabled() -> bool:
    """Is the compiled fast path currently active?"""
    return ENABLED


def set_compiled_enabled(flag: bool) -> bool:
    """Toggle the compiled fast path at runtime (returns the new value).

    The reference interpreter in :mod:`repro.covering.pathmatch` and the
    interpreted covering algorithms take over while disabled; compiled
    objects already interned on expressions are kept (they are inert).
    """
    global ENABLED
    ENABLED = bool(flag)
    return ENABLED


@lru_cache(maxsize=8192)
def path_string(path: tuple) -> Optional[str]:
    """The sentinel-joined string form of a path tuple, LRU-cached.

    Returns None when an element contains the separator (cannot be
    represented; callers fall back to the interpreted matcher).
    """
    for element in path:
        if SEP in element:
            return None
    return SEP + SEP.join(path) + SEP


def _segment_pattern(tests: Sequence[str]) -> Optional[str]:
    """Regex for one ``//``-free run of node tests (with trailing SEP)."""
    parts = []
    for test in tests:
        if test == WILDCARD:
            parts.append(_ANY_ELEMENT)
        elif SEP in test:
            return None
        else:
            parts.append(re.escape(test))
        parts.append(SEP)
    return "".join(parts)


def _build_regex(expr: XPathExpr):
    """The compiled pattern for a predicate-free expression, or None
    when regex compilation does not apply (predicates, separator
    collision).  Returns the bound ``match``/``search`` callable so the
    hot path holds a single C function."""
    if expr.has_predicates:
        return None
    parts = [SEP]
    for index, segment in enumerate(expr.segments):
        if index:
            parts.append(_GAP)
        segment_pattern = _segment_pattern(segment)
        if segment_pattern is None:
            return None
        parts.append(segment_pattern)
    pattern = re.compile("".join(parts))
    # An anchored (absolute) expression must place its first segment at
    # path position 0 — regex ``match``; a relative one may start at any
    # element boundary, and every boundary is a SEP — regex ``search``.
    return pattern.match if expr.anchored else pattern.search


def _compile_segments(expr: XPathExpr):
    """Precompute ``(test-or-None, predicates)`` tuples per segment for
    the closure matcher; None marks a wildcard test."""
    return tuple(
        tuple(
            (None if step.test == WILDCARD else step.test, step.predicates)
            for step in segment
        )
        for segment in expr.step_segments
    )


def _segment_at(segment, path, attributes, offset) -> bool:
    """One precompiled segment against *path* at *offset* (bounds are
    the caller's responsibility)."""
    index = offset
    for test, predicates in segment:
        if test is not None and test != path[index]:
            return False
        if predicates:
            attrs = attributes[index] if attributes is not None else _EMPTY_ATTRS
            for predicate in predicates:
                if not predicate.evaluate(attrs):
                    return False
        index += 1
    return True


class CompiledXPE:
    """One expression, compiled for repeated matching.

    Use :func:`compile_xpe` rather than constructing directly — the
    factory interns instances on the expression.
    """

    __slots__ = ("expr", "min_length", "anchored", "regex", "segments")

    def __init__(self, expr: XPathExpr):
        self.expr = expr
        self.min_length = len(expr.steps)
        self.anchored = expr.anchored
        #: Bound ``match``/``search`` of the compiled pattern, or None
        #: when only the closure form applies.
        self.regex = _build_regex(expr)
        self.segments = _compile_segments(expr)

    def matches(self, path: Sequence[str], attributes=None) -> bool:
        """Equivalent of :func:`repro.covering.pathmatch.matches_path`."""
        if self.min_length > len(path):
            return False
        if self.regex is not None:
            text = path_string(path if type(path) is tuple else tuple(path))
            if text is not None:
                return self.regex(text) is not None
        return self._closure_match(path, attributes)

    def matches_text(self, text: Optional[str], path, attributes=None) -> bool:
        """Like :meth:`matches` with the path string precomputed — bulk
        matchers render the path once and probe many expressions."""
        if self.min_length > len(path):
            return False
        if self.regex is not None and text is not None:
            return self.regex(text) is not None
        return self._closure_match(path, attributes)

    def _closure_match(self, path, attributes) -> bool:
        """Greedy earliest placement over the precompiled segments
        (mirrors the reference interpreter; exact for this language)."""
        position = 0
        path_length = len(path)
        for index, segment in enumerate(self.segments):
            segment_length = len(segment)
            if index == 0 and self.anchored:
                if (
                    segment_length > path_length
                    or not _segment_at(segment, path, attributes, 0)
                ):
                    return False
                position = segment_length
                continue
            placed = False
            for offset in range(position, path_length - segment_length + 1):
                if _segment_at(segment, path, attributes, offset):
                    position = offset + segment_length
                    placed = True
                    break
            if not placed:
                return False
        return True

    def __repr__(self):
        form = "regex" if self.regex is not None else "closure"
        return "CompiledXPE(%r, %s)" % (str(self.expr), form)


#: Lifetime compilation tallies, published as ``matching.compiled.*``
#: gauges at every registry snapshot (plain ints here: compilation is
#: already a once-per-expression cold path, and snapshot-time export
#: also captures compilations that happened before metrics were
#: enabled).
_STATS = {"compilations": 0, "regex": 0, "closure": 0}


@obs.register_collector
def _collect_compile_stats(registry):
    for name, value in _STATS.items():
        registry.gauge("matching.compiled." + name).set(value)


def compile_stats() -> dict:
    """Lifetime compilation counts (``compilations``/``regex``/
    ``closure``)."""
    return dict(_STATS)


def compile_xpe(expr: XPathExpr) -> CompiledXPE:
    """The interned compiled form of *expr* (compiled on first use)."""
    try:
        return expr._compiled_cache
    except AttributeError:
        pass
    compiled = CompiledXPE(expr)
    object.__setattr__(expr, "_compiled_cache", compiled)
    _STATS["compilations"] += 1
    _STATS["regex" if compiled.regex is not None else "closure"] += 1
    return compiled


def covers_simple(s1: XPathExpr, tests2: tuple) -> Optional[bool]:
    """Compiled covering check for simple shapes: does simple *s1*
    cover the expression whose node tests are *tests2*?

    Runs ``s1``'s compiled regex over the sentinel-joined *tests2*
    string — node tests of the covered side are treated as concrete
    symbols, so a wildcard there is absorbed only by a wildcard in
    ``s1``, which is exactly ``covers_test``.  Returns None when the
    compiled form does not apply (predicates, separator collision) and
    the caller must use the interpreted algorithm.
    """
    compiled = compile_xpe(s1)
    if compiled.regex is None:
        return None
    text = path_string(tests2)
    if text is None:
        return None
    return compiled.regex(text) is not None
