"""Reproduction of *Routing of XML and XPath Queries in Data Dissemination
Networks* (Li, Hou, Jacobsen — ICDCS 2008).

The package implements the complete system described in the paper:

* :mod:`repro.xpath` — the XPath-expression (XPE) subscription language.
* :mod:`repro.dtd` — DTD parsing and path analysis for publishers.
* :mod:`repro.adverts` — advertisement generation from DTDs and the six
  subscription/advertisement intersection algorithms.
* :mod:`repro.covering` — covering detection and the subscription tree.
* :mod:`repro.merging` — XPE merging rules and the imperfect-merge degree.
* :mod:`repro.xmldoc` — XML documents and their root-to-leaf path model.
* :mod:`repro.matching` — publication-vs-XPE matching engines.
* :mod:`repro.broker` — the content-based XML router.
* :mod:`repro.network` — the discrete-event overlay network simulator.
* :mod:`repro.workloads` — XPE / XML document workload generators.
* :mod:`repro.experiments` — runners for every table and figure in the
  paper's evaluation.
"""

from repro.errors import (
    ReproError,
    XPathSyntaxError,
    DTDSyntaxError,
    RoutingError,
)
from repro.xpath import XPathExpr, Step, Axis, parse_xpath
from repro.broker import Broker, RoutingConfig

__all__ = [
    "ReproError",
    "XPathSyntaxError",
    "DTDSyntaxError",
    "RoutingError",
    "XPathExpr",
    "Step",
    "Axis",
    "parse_xpath",
    "Broker",
    "RoutingConfig",
]

__version__ = "1.0.0"
