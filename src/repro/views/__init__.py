"""Edge materialized views over the delivered-publication stream.

The paper routes every publication through the matching core.  This
module places *content* at the edge (following the ViP2P/LiquidXML
line of work — see PAPERS.md): a broker with local subscribers watches
its publication groups (one group = one ``(path, attribute
fingerprint)``, the same key the match caches use), and when a group
turns hot it **materializes a view**:

* the *routing memo* — the matched subscriber keys and the per-client
  exact-filter (``_client_wants``) outcomes, stamped with the broker's
  match-cache generation and the client-subscription epoch, so a
  repeat publication of the group is served byte-identically to the
  core route without touching the matching engine or re-running the
  XPath filters;
* the *replay window* — the last ``view_window`` publications the
  group delivered, so a **late subscriber** whose XPE matches the
  group gets the window replayed over the reliable transport (client
  dedup on ``(doc_id, path_id)`` gives replay its exactly-once
  semantics for free).

Views are **rebuildable state**: they are never persisted, a crashed
or restored broker comes back with an empty :class:`ViewManager`, and
any routing-state change (the generation stamp) or client-subscription
change (the epoch stamp) drops the affected view lazily — the group's
heat survives, so the view rewarms on the next publication.  The audit
oracle checks view-served deliveries against its expected set exactly
(``view-false-positive`` is a soundness violation — see docs/views.md
and docs/audit.md).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.covering.pathmatch import matches_path
from repro.xpath.ast import XPathExpr

#: A publication group key: ``(path, attribute fingerprint)``.
GroupKey = Tuple[Tuple[str, ...], object]


class MaterializedView:
    """One hot publication group's routing memo + replay window."""

    __slots__ = (
        "path", "attrs_key", "keys", "wanting", "stamp",
        "window", "capacity", "serves", "created_gen",
    )

    def __init__(
        self,
        path: Tuple[str, ...],
        attrs_key: object,
        keys: frozenset,
        wanting: frozenset,
        stamp: Tuple[int, int],
        capacity: int,
    ):
        self.path = path
        self.attrs_key = attrs_key
        #: every matched subscriber key (local clients and neighbours).
        self.keys = keys
        #: the local-client subset that passed the exact edge filter.
        self.wanting = wanting
        #: ``(match generation, client epoch)`` the memo was computed
        #: under; any mismatch at serve time drops the view.
        self.stamp = stamp
        #: ``(doc_id, path_id)`` -> PublishMsg, insertion-ordered.
        self.window: "OrderedDict[Tuple[str, int], object]" = OrderedDict()
        self.capacity = capacity
        self.serves = 0
        self.created_gen = stamp[0]

    def capture(self, message) -> None:
        """Retain one delivered publication in the replay window."""
        publication = message.publication
        key = (publication.doc_id, publication.path_id)
        if key in self.window:
            return
        self.window[key] = message
        while len(self.window) > self.capacity:
            self.window.popitem(last=False)

    def replay_messages(self) -> Tuple[object, ...]:
        return tuple(self.window.values())

    def stats(self) -> Dict[str, object]:
        return {
            "path": "/" + "/".join(self.path),
            "keys": len(self.keys),
            "wanting": len(self.wanting),
            "window": len(self.window),
            "serves": self.serves,
        }


class ViewManager:
    """Per-broker registry of materialized views.

    The owning broker calls :meth:`serve` on every publication (the
    fast path), :meth:`observe` after a core-routed match (heat +
    materialization + window capture), :meth:`queue_replays_for` when a
    local client subscribes, and bumps :attr:`client_epoch` whenever
    its exact client-subscription table changes without a match-cache
    generation bump.  The broker core drains :attr:`pending_replays`
    into ``Replay`` effects.
    """

    def __init__(
        self,
        window: int = 64,
        hot_threshold: int = 3,
        max_views: int = 128,
    ):
        self.window = window
        self.hot_threshold = hot_threshold
        self.max_views = max_views
        #: group key -> live view, insertion-ordered for LRU eviction.
        self.views: "OrderedDict[GroupKey, MaterializedView]" = OrderedDict()
        #: group key -> core-routed delivery count (the heat signal).
        #: Survives a dropped view so it rewarms on the next match.
        self.heat: Dict[GroupKey, int] = {}
        #: Bumped by the broker on client-subscription mutations that do
        #: not bump the match-cache generation (redelivered SUBs, the
        #: early-return UNSUB path): the memo's local-client decisions
        #: depend on ``client_subs``, so generation alone is not enough.
        self.client_epoch = 0
        #: ``(client_id, messages, group_path)`` triples awaiting
        #: conversion into Replay effects by the broker core.
        self.pending_replays: List[Tuple[object, Tuple[object, ...], Tuple[str, ...]]] = []
        self.serves = 0
        self.misses = 0
        self.dropped_stale = 0
        self.materialized = 0
        self.replays_queued = 0

    # -- the serve fast path ---------------------------------------------

    def serve(
        self, path, attrs_key, stamp: Tuple[int, int]
    ) -> Optional[Tuple[frozenset, frozenset]]:
        """Return the live routing memo ``(keys, wanting)`` for this
        publication group, or None (miss or stale-dropped)."""
        group: GroupKey = (path, attrs_key)
        view = self.views.get(group)
        if view is None:
            self.misses += 1
            obs.inc("views.misses")
            return None
        if view.stamp != stamp:
            # Routing state or client subscriptions moved under the
            # view: drop it (the window with it — its contents were
            # selected by the stale memo) and rewarm lazily.
            del self.views[group]
            self.dropped_stale += 1
            obs.inc("views.dropped_stale")
            self.misses += 1
            obs.inc("views.misses")
            return None
        view.serves += 1
        self.serves += 1
        self.views.move_to_end(group)
        obs.inc("views.serves")
        return view.keys, view.wanting

    # -- heat / materialization / capture --------------------------------

    def observe(
        self,
        path,
        attrs_key,
        keys: frozenset,
        wanting: frozenset,
        stamp: Tuple[int, int],
        message=None,
    ) -> None:
        """A core-routed match finished: account heat, materialize the
        view once the group is hot, and capture *message* (when given —
        audit probes route without one) into the window."""
        group: GroupKey = (path, attrs_key)
        view = self.views.get(group)
        if view is not None and view.stamp != stamp:
            del self.views[group]
            self.dropped_stale += 1
            obs.inc("views.dropped_stale")
            view = None
        if view is None:
            count = self.heat.get(group, 0) + 1
            self.heat[group] = count
            if count >= self.hot_threshold:
                view = MaterializedView(
                    path, attrs_key, keys, wanting, stamp, self.window
                )
                self.views[group] = view
                self.materialized += 1
                obs.inc("views.materialized")
                while len(self.views) > self.max_views:
                    self.views.popitem(last=False)
        if view is not None and message is not None:
            view.capture(message)

    def capture(self, path, attrs_key, message) -> None:
        """Append one served publication to its view's window."""
        view = self.views.get((path, attrs_key))
        if view is not None:
            view.capture(message)

    # -- replay -----------------------------------------------------------

    def queue_replays_for(self, client_id, expr: XPathExpr) -> int:
        """A local client subscribed *expr*: queue a window replay from
        every view whose group the expression matches.  Returns the
        number of publications queued (dedup happens client-side)."""
        queued = 0
        for view in self.views.values():
            if not view.window:
                continue
            sample = next(iter(view.window.values()))
            attribute_maps = sample.publication.attribute_maps()
            if not matches_path(expr, view.path, attribute_maps):
                continue
            messages = view.replay_messages()
            self.pending_replays.append((client_id, messages, view.path))
            self.replays_queued += 1
            queued += len(messages)
            obs.inc("views.replays")
            obs.inc("views.replayed_msgs", len(messages))
        return queued

    def take_pending_replays(self):
        if not self.pending_replays:
            return ()
        pending = tuple(self.pending_replays)
        del self.pending_replays[:]
        return pending

    # -- reporting --------------------------------------------------------

    def hit_ratio(self) -> float:
        total = self.serves + self.misses
        return (self.serves / total) if total else 0.0

    def stats(self) -> Dict[str, object]:
        return {
            "views": len(self.views),
            "hot_groups": len(self.heat),
            "serves": self.serves,
            "misses": self.misses,
            "hit_ratio": round(self.hit_ratio(), 4),
            "materialized": self.materialized,
            "dropped_stale": self.dropped_stale,
            "replays_queued": self.replays_queued,
            "window_capacity": self.window,
            "retained": sum(len(v.window) for v in self.views.values()),
        }
