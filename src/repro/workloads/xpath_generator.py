"""DTD-driven XPath query generator.

Replicates the role of the XPath generator of Diao et al. used by the
paper (§5): queries are derived from a DTD's legal paths with three
tuning knobs — the probability ``W`` of a wildcard at a location step,
the probability ``DO`` of a descendant (``//``) operator at a location
step, and a maximum query length (the paper fixes 10).  Queries are
distinct.

Generation walks a sampled DTD path, optionally starts mid-path
(relative queries), replaces tests with ``*`` with probability ``W``
and, with probability ``DO``, jumps over one or two path elements while
emitting a ``//`` axis — so every query matches at least one legal
document path of the DTD by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.dtd.model import DTD
from repro.errors import WorkloadError
from repro.workloads.sampling import pump_path, sample_dtd_path
from repro.xpath.ast import Axis, Step, WILDCARD, XPathExpr


@dataclass(frozen=True)
class XPathWorkloadParams:
    """Knobs of the query generator (Diao et al.'s parameter space).

    ``full_path_prob`` biases queries toward complete root-to-leaf
    paths — distinct full paths never cover each other, which lowers a
    workload's covering rate; truncated prefixes raise it.
    ``wildcard_min_position`` keeps the first step(s) concrete so a
    handful of all-wildcard queries cannot cover an entire workload.
    """

    wildcard_prob: float = 0.2  # W
    descendant_prob: float = 0.2  # DO
    relative_prob: float = 0.2
    max_length: int = 10
    min_length: int = 1
    leaf_prob: float = 0.35
    full_path_prob: float = 0.0
    wildcard_min_position: int = 1
    pump_prob: float = 0.0

    def __post_init__(self):
        for name in (
            "wildcard_prob",
            "descendant_prob",
            "relative_prob",
            "full_path_prob",
            "pump_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError("%s must be a probability" % name)
        if not 1 <= self.min_length <= self.max_length:
            raise WorkloadError("bad length bounds")
        if self.wildcard_min_position < 0:
            raise WorkloadError("wildcard_min_position cannot be negative")


def generate_query(
    dtd: DTD,
    rng: random.Random,
    params: XPathWorkloadParams,
) -> XPathExpr:
    """Generate one query (not necessarily unique)."""
    path = sample_dtd_path(
        dtd, rng, max_depth=params.max_length + 2, leaf_prob=params.leaf_prob
    )
    for _ in range(32):
        if len(path) >= params.min_length:
            break
        path = sample_dtd_path(
            dtd,
            rng,
            max_depth=params.max_length + 2,
            leaf_prob=params.leaf_prob,
        )
    path = pump_path(
        path, rng, max_depth=params.max_length, pump_prob=params.pump_prob
    )
    relative = rng.random() < params.relative_prob
    if relative and len(path) > 1:
        # Keep at least min_length steps after the chosen start when the
        # path allows it.
        latest = max(1, len(path) - params.min_length)
        start = rng.randrange(1, latest + 1)
    else:
        relative = False
        start = 0

    available = len(path) - start
    if rng.random() < params.full_path_prob:
        length = min(params.max_length, available)
    else:
        length = rng.randint(
            min(params.min_length, available),
            min(params.max_length, available),
        )

    steps: List[Step] = []
    position = start
    axis = Axis.CHILD
    while len(steps) < length and position < len(path):
        test = path[position]
        if (
            len(steps) >= params.wildcard_min_position
            and rng.random() < params.wildcard_prob
        ):
            test = WILDCARD
        steps.append(Step(axis, test))
        position += 1
        axis = Axis.CHILD
        if (
            rng.random() < params.descendant_prob
            and len(steps) < length
            and position + 1 < len(path)
        ):
            skip = rng.randint(1, min(2, len(path) - position - 1))
            position += skip
            axis = Axis.DESCENDANT
    return XPathExpr(steps=tuple(steps), rooted=not relative)


def generate_queries(
    dtd: DTD,
    count: int,
    params: Optional[XPathWorkloadParams] = None,
    seed: int = 0,
    distinct: bool = True,
) -> List[XPathExpr]:
    """Generate *count* queries (distinct by default, as in the paper).

    Raises :class:`WorkloadError` when the parameter space cannot yield
    enough distinct queries (tiny DTDs with aggressive wildcarding).
    """
    params = params if params is not None else XPathWorkloadParams()
    rng = random.Random(seed)
    if not distinct:
        return [generate_query(dtd, rng, params) for _ in range(count)]
    queries: List[XPathExpr] = []
    seen = set()
    attempts = 0
    max_attempts = max(1000, count * 200)
    while len(queries) < count:
        attempts += 1
        if attempts > max_attempts:
            raise WorkloadError(
                "exhausted %d attempts generating %d distinct queries "
                "(got %d)" % (attempts, count, len(queries))
            )
        query = generate_query(dtd, rng, params)
        if query not in seen:
            seen.add(query)
            queries.append(query)
    return queries
