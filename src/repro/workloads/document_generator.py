"""DTD-driven XML document generator.

Replicates the role of the IBM XML Generator used by the paper (§5):
documents conform to a DTD, the number of levels is capped (the paper
uses 10, matching the maximum XPE length) and the serialised size is
steered toward a target (Figures 10–11 use 2K–40K documents).

Root-to-leaf paths are sampled with the same cycle discipline as the
advertisement generator, optionally *pumped* (a detected repetition unit
repeated extra times) so recursive DTDs produce genuinely deep
documents; pumped paths remain inside the advertisement language, which
preserves the system invariant that every publication intersects its
publisher's advertisements.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.dtd.model import DTD
from repro.workloads.sampling import pump_path, sample_dtd_path
from repro.xmldoc.document import XMLDocument


def generate_document(
    dtd: DTD,
    doc_id: str,
    rng: Optional[random.Random] = None,
    target_bytes: int = 2048,
    max_depth: int = 10,
    max_paths: int = 500,
    pump_prob: float = 0.5,
) -> XMLDocument:
    """Generate one document of roughly *target_bytes* serialised size.

    Paths are accumulated until the unfilled document reaches about half
    the target; leaf text filler then tops the size up precisely.  The
    returned document's :meth:`~repro.xmldoc.document.XMLDocument.paths`
    decomposition is what the edge broker routes.
    """
    rng = rng if rng is not None else random.Random(0)
    paths: List[Tuple[str, ...]] = []
    seen = set()
    estimated = 0
    while estimated < target_bytes // 2 and len(paths) < max_paths:
        path = pump_path(
            sample_dtd_path(dtd, rng, max_depth=max_depth),
            rng,
            max_depth=max_depth,
            pump_prob=pump_prob,
        )
        if path in seen:
            estimated += 8  # avoid spinning on tiny DTDs
            continue
        # Keep the path set an antichain under the prefix order: a path
        # that is a prefix of another cannot be a leaf path of the same
        # document tree.
        if any(_is_prefix(path, other) for other in seen):
            continue
        seen_prefixes = [p for p in paths if _is_prefix(p, path)]
        for prefix in seen_prefixes:
            paths.remove(prefix)
            seen.discard(prefix)
        seen.add(path)
        paths.append(path)
        estimated += sum(2 * len(tag) + 5 for tag in path)

    paths.sort()
    skeleton = XMLDocument.from_paths(paths, doc_id=doc_id)
    deficit = target_bytes - skeleton.size_bytes()
    if deficit > 0:
        filler_per_leaf = max(1, deficit // max(1, len(paths)))
        return XMLDocument.from_paths(
            paths, doc_id=doc_id, text_filler="x" * filler_per_leaf
        )
    return skeleton


def generate_documents(
    dtd: DTD,
    count: int,
    seed: int = 0,
    target_bytes: int = 2048,
    max_depth: int = 10,
    doc_prefix: str = "doc",
    pump_prob: float = 0.5,
) -> List[XMLDocument]:
    """Generate a corpus of *count* documents."""
    rng = random.Random(seed)
    return [
        generate_document(
            dtd,
            doc_id="%s-%d" % (doc_prefix, i),
            rng=rng,
            target_bytes=target_bytes,
            max_depth=max_depth,
            pump_prob=pump_prob,
        )
        for i in range(count)
    ]


def _is_prefix(shorter: Sequence[str], longer: Sequence[str]) -> bool:
    return len(shorter) < len(longer) and tuple(longer[: len(shorter)]) == tuple(
        shorter
    )
