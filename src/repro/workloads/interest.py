"""Subscriber interest models.

The paper observes that "the covering technique achieves more benefit
when subscribers have similar interests" (§5, Figure 6 discussion).
This module makes interest similarity a first-class workload knob so
that claim can be tested directly: subscribers draw their queries from
a shared pool under a Zipf-like popularity distribution whose skew
parameter ``s`` controls how similar their interests are.

* ``s = 0`` — uniform choice over the pool: subscribers are maximally
  dissimilar (for pools much larger than the per-subscriber count).
* growing ``s`` — probability mass concentrates on the head of the
  pool: subscribers increasingly pick the same popular queries, raising
  the covering/duplication rate across the network.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.dtd.model import DTD
from repro.workloads.xpath_generator import (
    XPathWorkloadParams,
    generate_queries,
)
from repro.xpath.ast import XPathExpr


def zipf_weights(count: int, skew: float) -> List[float]:
    """Unnormalised Zipf weights ``1 / rank^skew`` for *count* ranks."""
    if count < 1:
        raise ValueError("need at least one rank")
    if skew < 0:
        raise ValueError("skew cannot be negative")
    return [1.0 / ((rank + 1) ** skew) for rank in range(count)]


class InterestModel:
    """Draws per-subscriber query sets from a shared popularity-ranked
    pool."""

    def __init__(
        self,
        pool: Sequence[XPathExpr],
        skew: float = 0.0,
        seed: int = 0,
    ):
        if not pool:
            raise ValueError("the query pool cannot be empty")
        self._pool = list(pool)
        self._weights = zipf_weights(len(self._pool), skew)
        self._rng = random.Random(seed)
        self.skew = skew

    @classmethod
    def from_dtd(
        cls,
        dtd: DTD,
        pool_size: int = 500,
        skew: float = 0.0,
        seed: int = 0,
        params: Optional[XPathWorkloadParams] = None,
    ) -> "InterestModel":
        params = params if params is not None else XPathWorkloadParams(
            wildcard_prob=0.2,
            descendant_prob=0.15,
            relative_prob=0.2,
            min_length=2,
        )
        pool = generate_queries(dtd, pool_size, params=params, seed=seed)
        return cls(pool, skew=skew, seed=seed + 1)

    def draw(self, count: int) -> List[XPathExpr]:
        """One subscriber's interest set: *count* distinct queries drawn
        by popularity (truncated when the pool runs out)."""
        count = min(count, len(self._pool))
        chosen: Dict[XPathExpr, None] = {}
        # Weighted sampling without replacement via repeated draws; the
        # pool is small enough that rejection is cheap.
        attempts = 0
        while len(chosen) < count and attempts < count * 200:
            attempts += 1
            expr = self._rng.choices(self._pool, weights=self._weights)[0]
            chosen.setdefault(expr)
        if len(chosen) < count:
            for expr in self._pool:
                chosen.setdefault(expr)
                if len(chosen) == count:
                    break
        return list(chosen)

    def similarity(self, draws: Sequence[Sequence[XPathExpr]]) -> float:
        """Mean pairwise Jaccard similarity of the drawn interest sets —
        the measurable notion behind "similar interests"."""
        if len(draws) < 2:
            return 0.0
        sets = [set(draw) for draw in draws]
        total = 0.0
        pairs = 0
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                union = sets[i] | sets[j]
                if union:
                    total += len(sets[i] & sets[j]) / len(union)
                pairs += 1
        return total / pairs if pairs else 0.0
