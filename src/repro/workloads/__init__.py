"""Workload generators: XPath query sets and XML document corpora."""

from repro.workloads.datasets import (
    Dataset,
    covering_rate,
    covering_workload,
    nitf_queries,
    psd_queries,
    set_a,
    set_b,
)
from repro.workloads.document_generator import (
    generate_document,
    generate_documents,
)
from repro.workloads.interest import InterestModel, zipf_weights
from repro.workloads.mass import (
    MassWorkloadParams,
    generate_mass_subscriptions,
    generate_probe_paths,
)
from repro.workloads.sampling import pump_path, sample_dtd_path
from repro.workloads.xpath_generator import (
    XPathWorkloadParams,
    generate_queries,
    generate_query,
)

__all__ = [
    "XPathWorkloadParams",
    "generate_queries",
    "generate_query",
    "sample_dtd_path",
    "generate_document",
    "generate_documents",
    "pump_path",
    "InterestModel",
    "zipf_weights",
    "MassWorkloadParams",
    "generate_mass_subscriptions",
    "generate_probe_paths",
    "Dataset",
    "covering_rate",
    "covering_workload",
    "nitf_queries",
    "psd_queries",
    "set_a",
    "set_b",
]
