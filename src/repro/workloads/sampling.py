"""Shared DTD path sampling for the workload generators.

Both the query generator and the document generator draw legal
root-to-leaf paths from a DTD.  Sampling walks the element graph with
the same discipline as advertisement generation (each element at most
twice per path), so everything sampled here is guaranteed to intersect
the DTD's advertisement set; :func:`pump_path` deepens a path by
repeating a detected recursion unit, which stays inside the
advertisement language (it corresponds to more unrollings of the same
``(...)+`` region).
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.dtd.model import DTD
from repro.errors import WorkloadError


def sample_dtd_path(
    dtd: DTD,
    rng: random.Random,
    max_depth: int = 10,
    leaf_prob: float = 0.35,
    max_attempts: int = 64,
) -> Tuple[str, ...]:
    """Sample one legal root-to-leaf path by random walk.

    Each element occurs at most twice on the path and the walk restarts
    when the depth bound strands it short of a permissible leaf.
    """
    graph = dtd.child_map()
    for _attempt in range(max_attempts):
        path = [dtd.root]
        counts = {dtd.root: 1}
        while True:
            name = path[-1]
            decl = dtd.elements[name]
            children = [
                child
                for child in graph.get(name, ())
                if counts.get(child, 0) < 2
            ]
            can_leaf = decl.can_be_leaf() or not children
            if not children:
                if can_leaf:
                    return tuple(path)
                break  # dead end: restart
            if len(path) >= max_depth:
                if can_leaf:
                    return tuple(path)
                break  # too deep: restart
            if can_leaf and rng.random() < leaf_prob:
                return tuple(path)
            child = rng.choice(children)
            path.append(child)
            counts[child] = counts.get(child, 0) + 1
    raise WorkloadError(
        "could not sample a path from DTD rooted at %r within depth %d"
        % (dtd.root, max_depth)
    )


def pump_path(
    path: Tuple[str, ...],
    rng: random.Random,
    max_depth: int = 10,
    pump_prob: float = 0.5,
) -> Tuple[str, ...]:
    """Repeat a detected recursion unit of *path* while it fits.

    A unit is the span between two occurrences of the same element; the
    pumped path corresponds to a deeper unrolling of the same ``(...)+``
    advertisement region.  Non-recursive paths are returned unchanged.
    """
    if rng.random() >= pump_prob:
        return path
    first_index = {}
    unit = None
    for i, name in enumerate(path):
        if name in first_index:
            unit = (first_index[name], i)
            break
        first_index[name] = i
    if unit is None:
        return path
    start, end = unit
    block = path[start:end]
    pumped = list(path)
    while len(pumped) + len(block) <= max_depth and rng.random() < 0.5:
        pumped[start:start] = block
    return tuple(pumped)
