"""Mass-subscription workloads for the shared-automaton engine.

The paper's evaluation stops at 8,000 XPEs per broker; the
mass-subscription path (ROADMAP item 1) asks what happens at 100k–1M.
DTD-derived workloads cannot reach that scale — the PSD/NITF path
universes top out around a few thousand distinct queries — so this
module generates subscriptions over a *synthetic* element universe: a
fixed vocabulary whose step names are drawn Zipf-skewed (popular
elements appear in many subscriptions, which is exactly the regime
where shared-prefix automata win).

Everything is seeded and parameterised by :class:`MassWorkloadParams`,
so benchmark runs are reproducible bit-for-bit:

* ``generate_mass_subscriptions`` — ``(expr, key)`` pairs, with a
  controlled fraction of *duplicate* expressions under distinct keys
  (distinct subscribers asking for the same thing — the common case a
  shared automaton collapses to one trail).
* ``generate_probe_paths`` — publication paths over the same skewed
  vocabulary, deliberately a little deeper than the subscriptions so
  descendant axes do real work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.workloads.interest import zipf_weights
from repro.xpath.ast import XPathExpr
from repro.xpath.parser import parse_xpath

#: Default synthetic vocabulary: 40 element names.  Small enough that
#: subscriptions share prefixes heavily, large enough that 100k of them
#: don't collapse to a handful of distinct expressions.
DEFAULT_VOCABULARY = tuple("e%02d" % index for index in range(40))


@dataclass(frozen=True)
class MassWorkloadParams:
    """Knobs of the mass-subscription generator.

    The axis probabilities mirror :class:`~repro.workloads.
    xpath_generator.XPathWorkloadParams` (Diao et al.'s parameter
    space); ``skew`` is the Zipf exponent over the vocabulary ranks,
    and ``duplicate_prob`` is the chance a subscription reuses an
    earlier expression verbatim (under its own key).
    """

    vocabulary: Tuple[str, ...] = DEFAULT_VOCABULARY
    skew: float = 0.9
    min_depth: int = 2
    max_depth: int = 8
    wildcard_prob: float = 0.10
    descendant_prob: float = 0.15
    relative_prob: float = 0.15
    predicate_prob: float = 0.0
    duplicate_prob: float = 0.05
    attributes: Tuple[str, ...] = ("lang", "urgent", "priority")
    attribute_values: Tuple[str, ...] = ("en", "de", "fr", "high")

    def __post_init__(self):
        if not self.vocabulary:
            raise ValueError("the vocabulary cannot be empty")
        if not 1 <= self.min_depth <= self.max_depth:
            raise ValueError("need 1 <= min_depth <= max_depth")


def _expr_text(rng: random.Random, params: MassWorkloadParams,
               weights) -> str:
    depth = rng.randint(params.min_depth, params.max_depth)
    text = "//" if rng.random() < params.relative_prob else "/"
    for position in range(depth):
        if position:
            text += "//" if rng.random() < params.descendant_prob else "/"
        # The first step stays concrete so no expression matches
        # everything (mirrors XPathWorkloadParams.wildcard_min_position).
        if position and rng.random() < params.wildcard_prob:
            text += "*"
        else:
            text += rng.choices(params.vocabulary, weights=weights)[0]
    if rng.random() < params.predicate_prob:
        attr = rng.choice(params.attributes)
        if rng.random() < 0.5:
            text += "[@%s]" % attr
        else:
            text += "[@%s='%s']" % (attr, rng.choice(params.attribute_values))
    return text


def generate_mass_subscriptions(
    count: int,
    params: MassWorkloadParams = MassWorkloadParams(),
    seed: int = 0,
) -> List[Tuple[XPathExpr, str]]:
    """*count* seeded ``(expr, key)`` pairs; keys ``m0`` … ``m<count-1>``
    are always distinct even when the expressions repeat."""
    rng = random.Random(seed)
    weights = zipf_weights(len(params.vocabulary), params.skew)
    pairs: List[Tuple[XPathExpr, str]] = []
    for index in range(count):
        if pairs and rng.random() < params.duplicate_prob:
            expr = pairs[rng.randrange(len(pairs))][0]
        else:
            expr = parse_xpath(_expr_text(rng, params, weights))
        pairs.append((expr, "m%d" % index))
    return pairs


def generate_probe_paths(
    count: int,
    params: MassWorkloadParams = MassWorkloadParams(),
    seed: int = 0,
) -> List[Tuple[str, ...]]:
    """*count* seeded publication paths over the same skewed vocabulary,
    up to two steps deeper than the subscription ceiling so descendant
    axes and relative expressions have interior structure to bind to."""
    rng = random.Random(seed)
    weights = zipf_weights(len(params.vocabulary), params.skew)
    paths = []
    for _ in range(count):
        depth = rng.randint(params.min_depth, params.max_depth + 2)
        paths.append(tuple(
            rng.choices(params.vocabulary, weights=weights)[0]
            for _ in range(depth)
        ))
    return paths
