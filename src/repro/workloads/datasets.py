"""The paper's named workloads.

Section 5 builds two NITF query sets by varying ``W`` (wildcard
probability) and ``DO`` (descendant probability) to reach two *covering
rates* — the fraction of queries covered by other queries of the set:

* **Set A** — high overlap, ~90% of the queries covered,
* **Set B** — lower overlap, ~50% covered.

Our NITF stand-in has a much smaller path space than the real News
Industry Text Format DTD, so organically generated workloads drift to
very high covering rates as the query count grows.  The sets are
therefore built *constructively*: a base of mutually incomparable
queries (truncated, lightly wildcarded DTD paths) plus, per base query,
covered companions — deeper extensions along the same (possibly pumped)
DTD path, optionally wildcarded in the extension region, which the base
query provably covers.  The companion fraction *is* the covering rate,
so the sets land on the paper's bands by construction; tests assert the
measured rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.covering.subscription_tree import SubscriptionTree
from repro.dtd.model import DTD
from repro.dtd.samples import nitf_dtd, psd_dtd
from repro.errors import WorkloadError
from repro.workloads.sampling import pump_path, sample_dtd_path
from repro.workloads.xpath_generator import (
    XPathWorkloadParams,
    generate_queries,
)
from repro.xpath.ast import Axis, Step, WILDCARD, XPathExpr


@dataclass(frozen=True)
class Dataset:
    """A named query workload with its target covering rate."""

    name: str
    exprs: Tuple[XPathExpr, ...]
    target_covering_rate: float

    def __len__(self):
        return len(self.exprs)


def covering_rate(exprs: List[XPathExpr]) -> float:
    """Fraction of queries covered by some other query in the set —
    one minus the fraction that stays in a covering router's table."""
    if not exprs:
        return 0.0
    tree = SubscriptionTree()
    for i, expr in enumerate(exprs):
        tree.insert(expr, i)
    return 1.0 - tree.top_level_size() / len(exprs)


def _steps_from(path, start, length, wildcard_positions):
    steps = []
    for offset in range(length):
        test = path[start + offset]
        if start + offset in wildcard_positions:
            test = WILDCARD
        steps.append(Step(Axis.CHILD, test))
    return XPathExpr(steps=tuple(steps), rooted=(start == 0))


def _extend_prefix(dtd, graph, prefix, rng, max_length):
    """Random legal continuation of *prefix* through the DTD child
    graph: at least one extra step, at most *max_length* total, each
    element at most twice on the whole path."""
    if len(prefix) >= max_length:
        return None
    counts = {}
    for name in prefix:
        counts[name] = counts.get(name, 0) + 1
    path = list(prefix)
    target = rng.randint(len(prefix) + 1, max_length)
    while len(path) < target:
        children = [
            child
            for child in graph.get(path[-1], ())
            if counts.get(child, 0) < 2
        ]
        if not children:
            break
        child = rng.choice(children)
        path.append(child)
        counts[child] = counts.get(child, 0) + 1
    if len(path) <= len(prefix):
        return None
    return tuple(path)


def covering_workload(
    dtd: DTD,
    count: int,
    target_rate: float,
    seed: int = 0,
    base_min: int = 4,
    base_max: int = 6,
    max_length: int = 10,
    wildcard_prob: float = 0.3,
    pump_prob: float = 0.5,
    leaf_prob: float = 0.05,
    name: str = "workload",
) -> Dataset:
    """Build *count* distinct queries with ≈ *target_rate* covering.

    ``round(count * (1-target_rate))`` mutually incomparable base
    queries are drawn first; the remainder are covered companions.
    """
    if not 0.0 <= target_rate < 1.0:
        raise WorkloadError("target_rate must be in [0, 1)")
    rng = random.Random(seed)
    base_count = max(1, round(count * (1.0 - target_rate)))

    # Bases are truncated paths with a sparse wildcard mask.  Distinct
    # wildcard patterns over the same trie level are mutually
    # incomparable, which multiplies the antichain supply; a
    # SubscriptionTree serves as the incomparability filter (accepted
    # bases are exactly its top level, inserting and reverting on
    # conflict).
    bases: List[Tuple[XPathExpr, Tuple[str, ...], int, frozenset]] = []
    base_tree = SubscriptionTree()
    seen = set()
    attempts = 0
    while len(bases) < base_count:
        attempts += 1
        if attempts > count * 400:
            if len(bases) >= base_count * 0.8:
                # The DTD's antichain is nearly exhausted; proceed with
                # the bases found — the extra companions nudge the
                # measured covering rate marginally above the target,
                # which the calibration tests tolerate.
                break
            raise WorkloadError(
                "cannot assemble %d incomparable base queries (got %d)"
                % (base_count, len(bases))
            )
        path = pump_path(
            sample_dtd_path(
                dtd, rng, max_depth=max_length, leaf_prob=leaf_prob
            ),
            rng,
            max_depth=max_length,
            pump_prob=pump_prob,
        )
        if len(path) < base_min:
            continue
        # Take the longest truncation the knobs allow: bases then sit on
        # one (wide) level of the path trie instead of scattering across
        # levels, where a short base would block its whole subtree and
        # starve the antichain.  Bases stay strictly shorter than their
        # path whenever possible so companions can extend them.
        length = min(base_max, len(path) - 1)
        if length < base_min:
            length = min(base_max, len(path))
        mask = frozenset(
            i for i in range(1, length) if rng.random() < 0.15
        )
        expr = _steps_from(path, 0, length, mask)
        if expr in seen:
            continue
        outcome = base_tree.insert(expr, len(bases))
        if not outcome.is_new or outcome.covered or outcome.displaced:
            base_tree.remove(expr, len(bases))
            continue
        seen.add(expr)
        bases.append((expr, path, length, mask))

    graph = dtd.child_map()
    exprs: List[XPathExpr] = [b[0] for b in bases]
    attempts = 0
    while len(exprs) < count:
        attempts += 1
        if attempts > count * 400:
            raise WorkloadError(
                "cannot generate %d covered companions (got %d)"
                % (count - base_count, len(exprs) - base_count)
            )
        base_expr, path, base_len, mask = bases[rng.randrange(len(bases))]
        extended = _extend_prefix(
            dtd, graph, path[:base_len], rng, max_length
        )
        if extended is None:
            continue
        # Covered-by-base construction: within the base prefix a
        # companion may keep any subset of the base's wildcards (or
        # instantiate them with the concrete path element); beyond it,
        # wildcards are free.
        wildcards = {i for i in mask if rng.random() < 0.5}
        wildcards |= {
            i
            for i in range(base_len, len(extended))
            if rng.random() < wildcard_prob
        }
        companion = _steps_from(extended, 0, len(extended), wildcards)
        if companion in seen:
            continue
        seen.add(companion)
        exprs.append(companion)

    rng.shuffle(exprs)
    return Dataset(
        name=name, exprs=tuple(exprs), target_covering_rate=target_rate
    )


def set_a(count: int = 1000, dtd: Optional[DTD] = None, seed: int = 1) -> Dataset:
    """The high-overlap workload (~90% covering, paper's Set A)."""
    dtd = dtd if dtd is not None else nitf_dtd()
    return covering_workload(
        dtd,
        count,
        target_rate=0.9,
        seed=seed,
        base_min=4,
        base_max=8,
        wildcard_prob=0.3,
        pump_prob=0.6,
        name="Set A",
    )


def set_b(count: int = 1000, dtd: Optional[DTD] = None, seed: int = 2) -> Dataset:
    """The lower-overlap workload (~50% covering, paper's Set B)."""
    dtd = dtd if dtd is not None else nitf_dtd()
    return covering_workload(
        dtd,
        count,
        target_rate=0.5,
        seed=seed,
        base_min=5,
        base_max=10,
        wildcard_prob=0.3,
        pump_prob=0.7,
        name="Set B",
    )


def psd_queries(
    count: int = 1000,
    seed: int = 3,
    params: Optional[XPathWorkloadParams] = None,
) -> Dataset:
    """PSD query workload (used by the traffic and delay experiments)."""
    params = params if params is not None else XPathWorkloadParams(
        wildcard_prob=0.2,
        descendant_prob=0.15,
        relative_prob=0.2,
        min_length=2,
    )
    exprs = generate_queries(psd_dtd(), count, params=params, seed=seed)
    return Dataset(name="PSD", exprs=tuple(exprs), target_covering_rate=-1.0)


def nitf_queries(
    count: int = 1000,
    seed: int = 4,
    params: Optional[XPathWorkloadParams] = None,
) -> Dataset:
    """NITF query workload with generic generator parameters."""
    params = params if params is not None else XPathWorkloadParams(
        wildcard_prob=0.2,
        descendant_prob=0.15,
        relative_prob=0.2,
        min_length=2,
    )
    exprs = generate_queries(nitf_dtd(), count, params=params, seed=seed)
    return Dataset(name="NITF", exprs=tuple(exprs), target_covering_rate=-1.0)
