"""Merging engine: imperfection degrees and subscription-tree merging
(paper §4.3).

The *imperfect degree* of a merger ``s`` of ``s1..sn`` is::

    D_imperfect = |P(s) - ∪ P(si)| / |P(s)|

Computing it requires knowing the publication universe; the paper
assumes "each broker in the network knows the DTD relative to the XML
data producer".  :class:`PathUniverse` materialises the (depth-bounded)
set of root-to-leaf paths a DTD admits and counts matches against it.

:class:`MergingEngine` periodically sweeps a
:class:`~repro.covering.subscription_tree.SubscriptionTree`, merging
sibling groups whose merger stays within a configured imperfection
budget — ``max_degree=0`` is the paper's *perfect merging*,
``max_degree=0.1`` its headline *imperfect merging* configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.covering.algorithms import SiblingCoverageProbe, covers
from repro.covering.pathmatch import matches_path
from repro.covering.subscription_tree import SubNode, SubscriptionTree
from repro.dtd.model import DTD
from repro.dtd.paths import enumerate_paths
from repro.merging.rules import merge_one_difference, merge_pair
from repro.xpath.ast import WILDCARD, XPathExpr


class PathUniverse:
    """A finite stand-in for the publication universe of a DTD."""

    def __init__(self, paths: Sequence[Tuple[str, ...]]):
        if not paths:
            raise ValueError("a path universe cannot be empty")
        self._paths = list(paths)
        self._match_cache: Dict[XPathExpr, frozenset] = {}

    @classmethod
    def from_dtd(cls, dtd: DTD, max_depth: int = 10, max_paths: int = 20000):
        """Enumerate the DTD's bounded root-to-leaf paths.

        For heavily recursive DTDs the enumeration is truncated at
        *max_paths* (deterministically — depth-first order), which keeps
        degree computation affordable while preserving the relative
        ordering of merger imperfections.
        """
        paths = enumerate_paths(dtd, max_depth=max_depth)
        return cls(paths[:max_paths])

    def __len__(self):
        return len(self._paths)

    @property
    def paths(self):
        return list(self._paths)

    def matching_indices(self, expr: XPathExpr) -> frozenset:
        """Indices of universe paths matched by *expr* (cached)."""
        cached = self._match_cache.get(expr)
        if cached is None:
            cached = frozenset(
                i
                for i, path in enumerate(self._paths)
                if matches_path(expr, path)
            )
            self._match_cache[expr] = cached
        return cached

    def match_count(self, expr: XPathExpr) -> int:
        return len(self.matching_indices(expr))

    def imperfect_degree(
        self, merger: XPathExpr, parts: Sequence[XPathExpr]
    ) -> float:
        """``D_imperfect`` of *merger* with respect to *parts*.

        A merger that matches nothing in the universe has degree 0 by
        convention (it can introduce no false positives).
        """
        merged = self.matching_indices(merger)
        if not merged:
            return 0.0
        union: Set[int] = set()
        for part in parts:
            union |= self.matching_indices(part)
        return len(merged - union) / len(merged)


@dataclass(frozen=True)
class MergeEvent:
    """One applied merge: *merger* replaced *replaced* in the tree.

    ``replaced_keys`` carries the last-hop keys each replaced XPE held
    at the moment of the merge (aligned with ``replaced``), and
    ``merger_prior_keys`` the keys a pre-existing merger node already
    held (None when the merger node was created by this event).  Both
    exist so a broker can keep an exact constituent registry — the
    state needed to retire a merger once its last constituent
    unsubscribes (see :mod:`repro.merging.registry`)."""

    merger: XPathExpr
    replaced: Tuple[XPathExpr, ...]
    degree: float
    replaced_keys: Tuple[frozenset, ...] = ()
    merger_prior_keys: Optional[frozenset] = None


@dataclass
class MergeReport:
    """Everything a broker needs to propagate a merge sweep downstream:
    unsubscribe the replaced top-level XPEs, subscribe the mergers."""

    events: List[MergeEvent] = field(default_factory=list)

    @property
    def merged_away(self) -> int:
        return sum(len(e.replaced) - 1 for e in self.events)

    def __len__(self):
        return len(self.events)


class MergingEngine:
    """Sweeps a subscription tree, merging sibling groups.

    Args:
        universe: publication universe for degree computation.  Without
            one, only *structurally perfect* rule-1 mergers are applied
            (see :meth:`_degree`).
        max_degree: imperfection budget; 0 means perfect merging only.
        pairwise_limit: sibling-group size above which the quadratic
            rule-2/rule-3 pair search is skipped (rule-1 bucketing still
            runs — it is near-linear and does the bulk of the work).
    """

    def __init__(
        self,
        universe: Optional[PathUniverse] = None,
        max_degree: float = 0.0,
        pairwise_limit: int = 200,
    ):
        if max_degree < 0:
            raise ValueError("max_degree cannot be negative")
        self._universe = universe
        self._max_degree = max_degree
        self._pairwise_limit = pairwise_limit

    # -- degree -------------------------------------------------------------

    def _degree(
        self, merger: XPathExpr, parts: Sequence[XPathExpr]
    ) -> Optional[float]:
        """Imperfection degree, or None when it cannot be assessed.

        Without a universe only a structural criterion is available: a
        rule-1 merger is perfect iff its wildcard position ranges over
        every element the universe allows there — unknowable without the
        DTD — so we conservatively treat universe-less mergers as
        imperfect with unknown degree and only apply them when the
        caller allows any degree (max_degree >= 1).
        """
        if self._universe is not None:
            return self._universe.imperfect_degree(merger, parts)
        return None

    def _acceptable(self, merger, parts) -> Tuple[bool, float]:
        degree = self._degree(merger, parts)
        if degree is None:
            return self._max_degree >= 1.0, 1.0
        return degree <= self._max_degree, degree

    # -- tree sweep ----------------------------------------------------------

    def merge_tree(self, tree: SubscriptionTree) -> MergeReport:
        """One merging sweep over every sibling group of *tree*.

        Returns the applied :class:`MergeEvent` list; top-level events
        are the ones a covering-based router propagates (unsubscribe the
        replaced XPEs, forward the merger).
        """
        registry = obs.get_registry()
        if not registry.enabled:
            return self._merge_tree(tree)
        with registry.timer("merging.sweep"):
            report = self._merge_tree(tree)
        registry.counter("merging.events").inc(len(report.events))
        registry.counter("merging.merged_away").inc(report.merged_away)
        return report

    def _merge_tree(self, tree: SubscriptionTree) -> MergeReport:
        report = MergeReport()
        # Snapshot parents first: the sweep mutates children lists.
        parents = [tree.root] + [node for node in tree.iter_nodes()]
        for parent in parents:
            if not parent.children:
                continue
            self._merge_siblings(tree, parent, report)
        return report

    def _merge_siblings(
        self, tree: SubscriptionTree, parent: SubNode, report: MergeReport
    ):
        changed = True
        while changed:
            changed = False
            event = self._find_rule1_merge(parent)
            if event is None and len(parent.children) <= self._pairwise_limit:
                event = self._find_pairwise_merge(parent)
            if event is None:
                break
            merger, group, degree = event
            existing = tree.node_of(merger)
            prior_keys = (
                frozenset(existing.keys) if existing is not None else None
            )
            replaced_keys = tuple(frozenset(node.keys) for node in group)
            self._apply(tree, parent, merger, group)
            report.events.append(
                MergeEvent(
                    merger=merger,
                    replaced=tuple(node.expr for node in group),
                    degree=degree,
                    replaced_keys=replaced_keys,
                    merger_prior_keys=prior_keys,
                )
            )
            changed = True

    def _find_rule1_merge(self, parent: SubNode):
        """Bucket siblings by shape-with-one-masked-position; any bucket
        holding two or more distinct element names is a rule-1 group."""
        buckets: Dict[tuple, List[SubNode]] = {}
        for node in parent.children:
            expr = node.expr
            axes = tuple(step.axis for step in expr.steps)
            tests = expr.tests
            for i, test in enumerate(tests):
                if test == WILDCARD:
                    continue
                key = (expr.rooted, axes, i, tests[:i], tests[i + 1:])
                buckets.setdefault(key, []).append(node)
        for key, nodes in buckets.items():
            if len(nodes) < 2:
                continue
            group = list({id(n): n for n in nodes}.values())
            if len(group) < 2:
                continue
            merger = merge_one_difference([n.expr for n in group])
            if merger is None:
                continue
            ok, degree = self._acceptable(merger, [n.expr for n in group])
            if ok:
                return merger, group, degree
        return None

    def _find_pairwise_merge(self, parent: SubNode):
        """Quadratic rule-2/rule-3 search over a bounded sibling group.

        The covering skip-check runs through a
        :class:`~repro.covering.algorithms.SiblingCoverageProbe` built
        once per group: each sibling's node-test string is rendered and
        its regex bound exactly once for the whole O(k²) scan, instead
        of per pair (differentially pinned against per-pair ``covers``
        in the merging tests)."""
        children = parent.children
        probe = SiblingCoverageProbe([node.expr for node in children])
        for i in range(len(children)):
            for j in range(i + 1, len(children)):
                if probe.either_covers(i, j):
                    continue
                s1, s2 = children[i].expr, children[j].expr
                merger = merge_pair(s1, s2)
                if merger is None or merger in (s1, s2):
                    continue
                ok, degree = self._acceptable(merger, [s1, s2])
                if ok:
                    return merger, [children[i], children[j]], degree
        return None

    def _apply(
        self,
        tree: SubscriptionTree,
        parent: SubNode,
        merger: XPathExpr,
        group: Sequence[SubNode],
    ):
        """Replace *group* under *parent* with a single merger node.

        The merged nodes' children become the merger's children (the
        merger covers them transitively), and the merged nodes' keys are
        unioned — a notification matching the merger must reach every
        last-hop the originals served.  Interior routers drop the
        originals entirely; edge brokers retain exact client
        subscriptions outside this tree (see repro.broker).
        """
        tree.invalidate_matches()
        existing = tree.node_of(merger)
        merged_keys: Set[object] = set()
        merged_children: List[SubNode] = []
        for node in group:
            if node is existing:
                continue
            parent.children.remove(node)
            merged_keys |= node.keys
            merged_children.extend(node.children)
            tree._by_expr.pop(node.expr, None)
        if existing is not None:
            target = existing
        else:
            target = SubNode(expr=merger, parent=parent, keys=set())
            parent.children.append(target)
            tree._by_expr[merger] = target
        target.keys |= merged_keys
        for child in merged_children:
            child.parent = target
            target.children.append(child)
        # A general merger may cover further siblings; capture them so
        # the covering invariant (a node covers its subtree) extends to
        # sibling relations the sweep just created.
        captured = [
            sibling
            for sibling in parent.children
            if sibling is not target and covers(merger, sibling.expr)
        ]
        for sibling in captured:
            parent.children.remove(sibling)
            sibling.parent = target
            target.children.append(sibling)

    # -- flat sweep ----------------------------------------------------------

    def merge_flat(self, matcher) -> MergeReport:
        """One merging sweep over a flat :class:`LinearMatcher` table.

        Non-covering brokers keep their PRT in a flat table; merging
        still applies (the rules act on XPE shapes, not on tree
        structure) by treating the whole table as one sibling group.
        The matcher is rewritten through its ``add``/``remove`` API so
        its match epoch advances and memoised results version out.
        """
        registry = obs.get_registry()
        if not registry.enabled:
            return self._merge_flat(matcher)
        with registry.timer("merging.sweep"):
            report = self._merge_flat(matcher)
        registry.counter("merging.events").inc(len(report.events))
        registry.counter("merging.merged_away").inc(report.merged_away)
        return report

    def _merge_flat(self, matcher) -> MergeReport:
        report = MergeReport()
        # A detached sibling group mirroring the flat table lets the
        # rule-1 bucketing and bounded pairwise search run unchanged.
        parent = SubNode(expr=None)
        for expr in matcher.exprs():
            parent.children.append(
                SubNode(expr=expr, parent=parent, keys=matcher.keys_of(expr))
            )
        by_expr = {node.expr: node for node in parent.children}
        while True:
            event = self._find_rule1_merge(parent)
            if event is None and len(parent.children) <= self._pairwise_limit:
                event = self._find_pairwise_merge(parent)
            if event is None:
                break
            merger, group, degree = event
            existing = by_expr.get(merger)
            prior_keys = (
                frozenset(existing.keys) if existing is not None else None
            )
            merged_keys: Set[object] = set()
            replaced = []
            replaced_keys = []
            for node in group:
                if node is existing:
                    continue
                parent.children.remove(node)
                del by_expr[node.expr]
                merged_keys |= node.keys
                replaced.append(node.expr)
                replaced_keys.append(frozenset(node.keys))
                for key in node.keys:
                    matcher.remove(node.expr, key)
            if existing is None:
                existing = SubNode(expr=merger, parent=parent, keys=set())
                parent.children.append(existing)
                by_expr[merger] = existing
            existing.keys |= merged_keys
            for key in merged_keys:
                matcher.add(merger, key)
            report.events.append(
                MergeEvent(
                    merger=merger,
                    replaced=tuple(replaced),
                    degree=degree,
                    replaced_keys=tuple(replaced_keys),
                    merger_prior_keys=prior_keys,
                )
            )
        return report
