"""The XPE merging rules (paper §4.3).

When subscriptions are not in a covering relation they may still be
*merged* into a more general XPE whose publication set contains the
union of theirs.  Three rules, in increasing generality:

1. **one element difference** — ``a/*/c/d`` and ``a/*/c/e`` merge to
   ``a/*/c/*`` (any number of candidates);
2. **two differences** — an element difference plus a ``/`` vs. ``//``
   operator difference: ``/a/c/*/*`` and ``/a//c/*/c`` merge to
   ``/a//c/*/*``;
3. **general** — equal prefix and suffix with arbitrary differing
   middles: the middles are replaced by a single ``//``.

Every rule returns a merger that *covers* each input (checked by an
assertion in debug builds, and by the property-based test suite); the
merger may be perfect (``P(s) = ∪ P(si)``) or imperfect, which
:mod:`repro.merging.engine` quantifies against a DTD path universe.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.xpath.ast import Axis, Step, WILDCARD, XPathExpr


def _same_shape(exprs: Sequence[XPathExpr]) -> bool:
    """Same anchoring, length and axis sequence."""
    first = exprs[0]
    return all(
        e.rooted == first.rooted
        and len(e.steps) == len(first.steps)
        and all(
            e.steps[i].axis is first.steps[i].axis
            for i in range(len(e.steps))
        )
        for e in exprs[1:]
    )


def merge_one_difference(exprs: Sequence[XPathExpr]) -> Optional[XPathExpr]:
    """Rule 1: same shape, tests equal everywhere except one position
    where all candidates carry (distinct) element names.

    Returns the merger with a wildcard at the differing position, or
    None when the rule does not apply.  Two or more candidates allowed.
    """
    if len(exprs) < 2 or not _same_shape(exprs):
        return None
    first = exprs[0]
    diff_position = None
    for i in range(len(first.steps)):
        tests = {e.steps[i].test for e in exprs}
        if len(tests) == 1:
            continue
        if diff_position is not None:
            return None  # more than one differing position
        if WILDCARD in tests:
            # A wildcard at the differing position means a covering
            # relation, which the subscription tree already handles.
            return None
        diff_position = i
    if diff_position is None:
        return None  # identical expressions
    steps = list(first.steps)
    steps[diff_position] = Step(steps[diff_position].axis, WILDCARD)
    return XPathExpr(steps=tuple(steps), rooted=first.rooted)


def merge_two_differences(s1: XPathExpr, s2: XPathExpr) -> Optional[XPathExpr]:
    """Rule 2: one element difference plus one ``/`` vs. ``//`` operator
    difference.  The merger takes ``*`` and ``//`` at those positions.

    When only the operator differs the expressions are in a covering
    relation (the ``//`` one covers the other) and the rule does not
    apply — covering handles it.
    """
    if s1.rooted != s2.rooted or len(s1.steps) != len(s2.steps):
        return None
    element_diffs: List[int] = []
    operator_diffs: List[int] = []
    for i in range(len(s1.steps)):
        if s1.steps[i].test != s2.steps[i].test:
            element_diffs.append(i)
        if s1.steps[i].axis is not s2.steps[i].axis:
            operator_diffs.append(i)
    if len(element_diffs) != 1 or len(operator_diffs) != 1:
        return None
    # Unlike rule 1, a wildcard on one side of the element difference is
    # fine here (the paper's own example merges /a/c/*/* with /a//c/*/c):
    # the operator difference prevents a covering relation.
    i = element_diffs[0]
    j = operator_diffs[0]
    if j == 0 and s1.rooted:
        return None  # a rooted expression cannot start with //
    steps = list(s1.steps)
    steps[i] = Step(steps[i].axis, WILDCARD)
    steps[j] = Step(Axis.DESCENDANT, steps[j].test)
    if i == j:
        steps[i] = Step(Axis.DESCENDANT, WILDCARD)
    return XPathExpr(steps=tuple(steps), rooted=s1.rooted)


def merge_general(s1: XPathExpr, s2: XPathExpr) -> Optional[XPathExpr]:
    """Rule 3: equal (axis+test) prefix and suffix, arbitrary differing
    middles replaced by a ``//`` operator.

    Applied only when both prefix and suffix are non-empty — the paper
    warns the rule "is applied if most parts in two subscriptions are
    equal, otherwise more false positives will be introduced"; callers
    additionally gate on the imperfection degree.
    """
    if s1.rooted != s2.rooted:
        return None
    steps1, steps2 = s1.steps, s2.steps
    if steps1 == steps2:
        return None
    prefix = 0
    limit = min(len(steps1), len(steps2))
    while prefix < limit and steps1[prefix] == steps2[prefix]:
        prefix += 1
    suffix = 0
    while (
        suffix < limit - prefix
        and steps1[len(steps1) - 1 - suffix] == steps2[len(steps2) - 1 - suffix]
    ):
        suffix += 1
    if prefix == 0 or suffix == 0:
        return None
    # Both expressions must actually have a differing middle; when one
    # middle is empty the other expression inserts steps between prefix
    # and suffix, and // still covers the empty middle? No: // requires
    # the suffix strictly below the prefix, which an empty middle only
    # satisfies when the suffix directly follows — that is exactly a
    # child step, covered by //. Empty middles are therefore fine.
    merged_steps = list(steps1[:prefix])
    tail = list(steps1[len(steps1) - suffix:])
    tail[0] = Step(Axis.DESCENDANT, tail[0].test)
    merged_steps.extend(tail)
    return XPathExpr(steps=tuple(merged_steps), rooted=s1.rooted)


def merge_pair(s1: XPathExpr, s2: XPathExpr) -> Optional[XPathExpr]:
    """Try the rules in order of precision: 1, then 2, then 3."""
    merger = merge_one_difference([s1, s2])
    if merger is not None:
        return merger
    merger = merge_two_differences(s1, s2)
    if merger is not None:
        return merger
    return merge_general(s1, s2)
