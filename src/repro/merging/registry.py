"""Constituent bookkeeping for merged subscriptions.

Merging rewrites a broker's routing table in place: the constituents'
nodes disappear and the merger inherits their last-hop keys.  That is
exactly the information an UNSUBSCRIBE for a constituent later needs —
without it the unsubscription hits the "unknown expression" no-op path
and the merger (plus its upstream forwarding) leaks forever.

:class:`MergerRegistry` keeps, per live merger, which (constituent
expression, hop) pairs it absorbed and which hops subscribed the merger
expression itself ("direct" interest).  The broker maintains the
invariant that a merger node's key set equals its direct hops unioned
with all constituent hops; a key is retired exactly when the last
reason for it disappears.

Chained merges flatten: when a sweep replaces an expression that is
itself a registered merger, its constituent entries move under the new
merger (and its direct hops become a constituent entry of their own),
so lookups never have to walk merge chains.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.merging.engine import MergeEvent
from repro.xpath.ast import XPathExpr


class MergerRegistry:
    """Tracks why each merger key exists (constituents and direct subs)."""

    def __init__(self):
        #: merger -> constituent expression -> hops contributing via it
        self.constituents: Dict[XPathExpr, Dict[XPathExpr, Set[object]]] = {}
        #: merger -> hops that subscribed the merger expression itself
        self.direct: Dict[XPathExpr, Set[object]] = {}

    def __len__(self):
        return len(self.constituents)

    def is_merger(self, expr: XPathExpr) -> bool:
        return expr in self.constituents

    def mergers(self) -> Iterable[XPathExpr]:
        return list(self.constituents)

    def record(self, event: MergeEvent):
        """Fold one applied :class:`MergeEvent` into the registry."""
        merger = event.merger
        bucket = self.constituents.setdefault(merger, {})
        direct = self.direct.setdefault(merger, set())
        if event.merger_prior_keys and not bucket and not direct:
            # The merger expression pre-existed as a plain subscription:
            # its prior keys are direct interest in the merger itself.
            direct |= event.merger_prior_keys
        for expr, keys in zip(event.replaced, event.replaced_keys):
            if expr == merger:
                continue
            if expr in self.constituents:
                # Chained merge: flatten the absorbed merger's entries.
                for leaf, hops in self.constituents.pop(expr).items():
                    bucket.setdefault(leaf, set()).update(hops)
                absorbed_direct = self.direct.pop(expr, set())
                if absorbed_direct:
                    bucket.setdefault(expr, set()).update(absorbed_direct)
            else:
                bucket.setdefault(expr, set()).update(keys)

    # -- queries -------------------------------------------------------------

    def find_contribution(
        self, expr: XPathExpr, hop: object
    ) -> Optional[XPathExpr]:
        """The merger holding *hop*'s interest in constituent *expr*."""
        for merger, bucket in self.constituents.items():
            hops = bucket.get(expr)
            if hops and hop in hops:
                return merger
        return None

    def hop_needs(self, merger: XPathExpr, hop: object) -> bool:
        """Does *hop* still justify a key on *merger*?"""
        if hop in self.direct.get(merger, ()):
            return True
        return any(
            hop in hops
            for hops in self.constituents.get(merger, {}).values()
        )

    def contributed_hops(self, merger: XPathExpr) -> Set[object]:
        hops: Set[object] = set(self.direct.get(merger, ()))
        for constituent_hops in self.constituents.get(merger, {}).values():
            hops |= constituent_hops
        return hops

    def constituents_absorbed_from(self, hop: object) -> Set[XPathExpr]:
        """Constituent expressions some merger absorbed for *hop* (the
        downstream half of the forwarded-mark agreement invariant)."""
        absorbed: Set[XPathExpr] = set()
        for bucket in self.constituents.values():
            for expr, hops in bucket.items():
                if hop in hops:
                    absorbed.add(expr)
        return absorbed

    # -- mutation ------------------------------------------------------------

    def add_direct(self, merger: XPathExpr, hop: object):
        if merger in self.constituents:
            self.direct.setdefault(merger, set()).add(hop)

    def remove_direct(self, merger: XPathExpr, hop: object):
        self.direct.get(merger, set()).discard(hop)

    def remove_contribution(
        self, merger: XPathExpr, expr: XPathExpr, hop: object
    ):
        bucket = self.constituents.get(merger)
        if bucket is None:
            return
        hops = bucket.get(expr)
        if hops is None:
            return
        hops.discard(hop)
        if not hops:
            del bucket[expr]

    def forget(self, merger: XPathExpr):
        """Drop all registry state for a fully retired merger."""
        self.constituents.pop(merger, None)
        self.direct.pop(merger, None)
