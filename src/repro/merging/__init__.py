"""XPE merging: rules, imperfection degrees, tree sweeps (paper §4.3)."""

from repro.merging.rules import (
    merge_general,
    merge_one_difference,
    merge_pair,
    merge_two_differences,
)
from repro.merging.engine import (
    MergeEvent,
    MergeReport,
    MergingEngine,
    PathUniverse,
)

__all__ = [
    "merge_general",
    "merge_one_difference",
    "merge_pair",
    "merge_two_differences",
    "MergeEvent",
    "MergeReport",
    "MergingEngine",
    "PathUniverse",
]
