"""A minimal discrete-event simulator.

Events are ``(time, sequence, callable)`` triples in a heap; the
sequence number breaks ties deterministically (FIFO for equal
timestamps), which makes every experiment reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro import obs


class Simulator:
    """Single-threaded discrete-event loop with a virtual clock."""

    def __init__(self):
        self._queue = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    def schedule(self, delay: float, action: Callable[[], None]):
        """Run *action* at ``now + delay`` (delay must not be negative)."""
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        heapq.heappush(
            self._queue, (self._now + delay, next(self._counter), action)
        )

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None):
        """Drain the event queue.

        Args:
            until: stop once the clock would pass this time.
            max_events: safety valve against runaway feedback loops.

        Returns the number of events processed by this call.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            time, _seq, action = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self._now = time
            action()
            processed += 1
            self._processed += 1
        registry = obs.get_registry()
        if registry.enabled and processed:
            registry.counter("network.sim.events").inc(processed)
            registry.gauge("network.sim.pending").set(len(self._queue))
        return processed

    def pending(self) -> int:
        return len(self._queue)
