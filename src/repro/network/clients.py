"""Publisher and subscriber clients.

Clients see whole XML documents and plain XPath subscriptions; path
decomposition, advertisement generation and routing are the overlay's
business (paper §3.1: "This is transparent to publishers and
subscribers").
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Set, Tuple, Union

from repro import obs

from repro.adverts.generator import generate_advertisements
from repro.adverts.model import Advertisement
from repro.broker.messages import (
    AdvertiseMsg,
    PublishMsg,
    SubscribeMsg,
    UnadvertiseMsg,
    UnsubscribeMsg,
)
from repro.dtd.model import DTD
from repro.xmldoc.document import Publication, XMLDocument
from repro.xpath.ast import XPathExpr
from repro.xpath.parser import parse_xpath


def _as_expr(expr: Union[str, XPathExpr]) -> XPathExpr:
    if isinstance(expr, XPathExpr):
        return expr
    return parse_xpath(expr)


class SubscriberClient:
    """A data consumer: registers XPEs, receives documents."""

    def __init__(self, client_id: str, overlay, broker_id: str):
        self.client_id = client_id
        self._overlay = overlay
        self.broker_id = broker_id
        self.subscriptions: Set[XPathExpr] = set()
        self.received: List[PublishMsg] = []
        #: (doc_id, path_id) pairs already delivered — the explicit
        #: duplicate filter: a redelivered publication (retransmission,
        #: crash-recovery replay) is counted once and only once.
        self._seen_publications: Set[Tuple[str, int]] = set()
        #: Redeliveries suppressed so far (also mirrored into the
        #: ``network.clients.duplicates`` metric).
        self.duplicates = 0

    def subscribe(self, expr: Union[str, XPathExpr]):
        expr = _as_expr(expr)
        self.subscriptions.add(expr)
        self._overlay.submit(self.client_id, SubscribeMsg(expr=expr, subscriber_id=self.client_id))

    def unsubscribe(self, expr: Union[str, XPathExpr]):
        expr = _as_expr(expr)
        self.subscriptions.discard(expr)
        self._overlay.submit(
            self.client_id,
            UnsubscribeMsg(expr=expr, subscriber_id=self.client_id),
        )

    def receive(self, msg: PublishMsg, hops: int) -> bool:
        """Called by the overlay when the edge broker delivers a path.

        Returns True for a first delivery; a redelivered publication
        (same doc id and path id) is suppressed and returns False.
        """
        key = (msg.publication.doc_id, msg.publication.path_id)
        if key in self._seen_publications:
            self.duplicates += 1
            obs.inc("network.clients.duplicates")
            return False
        self._seen_publications.add(key)
        self.received.append(msg)
        return True

    def delivered_documents(self) -> Set[str]:
        """Distinct document ids seen so far."""
        return {msg.publication.doc_id for msg in self.received}

    def received_publications(self, doc_id: str) -> List[PublishMsg]:
        """Every matching path of one document, in arrival order — the
        per-document view a client library would reassemble from."""
        return [
            msg
            for msg in self.received
            if msg.publication.doc_id == doc_id
        ]

    def matched_paths(self, doc_id: str) -> List[tuple]:
        """Distinct matched paths of one document (arrival order)."""
        distinct: List[tuple] = []
        seen: Set[tuple] = set()
        for msg in self.received_publications(doc_id):
            path = msg.publication.path
            if path not in seen:
                seen.add(path)
                distinct.append(path)
        return distinct

    def __repr__(self):
        return "SubscriberClient(%r@%r, %d subs, %d received)" % (
            self.client_id,
            self.broker_id,
            len(self.subscriptions),
            len(self.received),
        )


class PublisherClient:
    """A data producer: advertises its DTD, publishes documents."""

    _adv_counter = itertools.count()

    def __init__(self, client_id: str, overlay, broker_id: str):
        self.client_id = client_id
        self._overlay = overlay
        self.broker_id = broker_id
        self.advertised: List[str] = []

    def advertise(self, advert: Advertisement, adv_id: Optional[str] = None) -> str:
        if adv_id is None:
            adv_id = "%s/adv%d" % (self.client_id, next(self._adv_counter))
        self.advertised.append(adv_id)
        self._overlay.submit(
            self.client_id,
            AdvertiseMsg(adv_id=adv_id, advert=advert, publisher_id=self.client_id),
        )
        return adv_id

    def advertise_dtd(self, dtd: DTD) -> List[str]:
        """Derive and flood the advertisement set of *dtd* (paper §3.1)."""
        return [
            self.advertise(advert)
            for advert in generate_advertisements(dtd)
        ]

    def unadvertise(self, adv_id: str):
        self.advertised.remove(adv_id)
        self._overlay.submit(self.client_id, UnadvertiseMsg(adv_id=adv_id))

    def publish_document(
        self, document: XMLDocument, batch: Optional[bool] = None
    ):
        """Decompose *document* into publications and submit them.

        ``batch`` controls whether the paths travel as one batch (the
        broker then matches identical paths once — see
        ``Overlay.submit_batch``) or as one event each; ``None`` defers
        to the overlay's ``batching`` flag.
        """
        size = document.size_bytes()
        now = self._overlay.now
        messages = [
            PublishMsg(
                publication=publication,
                publisher_id=self.client_id,
                doc_size_bytes=size,
                issued_at=now,
            )
            for publication in document.publications()
        ]
        self._submit_publications(messages, batch)

    def publish_paths(
        self,
        paths: Sequence[Sequence[str]],
        doc_id: str,
        size_bytes: int = 0,
        batch: Optional[bool] = None,
    ):
        """Publish pre-decomposed paths (workload-driver convenience)."""
        now = self._overlay.now
        messages = [
            PublishMsg(
                publication=Publication(
                    doc_id=doc_id, path_id=i, path=tuple(path)
                ),
                publisher_id=self.client_id,
                doc_size_bytes=size_bytes,
                issued_at=now,
            )
            for i, path in enumerate(paths)
        ]
        self._submit_publications(messages, batch)

    def _submit_publications(
        self, messages: List[PublishMsg], batch: Optional[bool]
    ):
        if batch is None:
            batch = getattr(self._overlay, "batching", False)
        if batch and len(messages) > 1:
            self._overlay.submit_batch(self.client_id, messages)
        else:
            for message in messages:
                self._overlay.submit(self.client_id, message)

    def __repr__(self):
        return "PublisherClient(%r@%r, %d adverts)" % (
            self.client_id,
            self.broker_id,
            len(self.advertised),
        )
