"""Message tracing for the overlay.

Attach a :class:`Tracer` to an :class:`~repro.network.overlay.Overlay`
to record every message hop with its virtual timestamp — the tool for
debugging routing decisions, asserting fine-grained behaviour in tests,
and producing the per-message hop logs a real deployment would emit.

Filters keep traces small: by message kind, by broker, or by a
predicate on the traced record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence


@dataclass(frozen=True)
class TraceRecord:
    """One observed hop of one message."""

    time: float
    broker_id: str
    kind: str
    from_hop: str
    detail: str

    def __str__(self):
        return "%10.6f  %-8s %-14s from=%-8s %s" % (
            self.time,
            self.broker_id,
            self.kind,
            self.from_hop,
            self.detail,
        )


class Tracer:
    """Collects :class:`TraceRecord` objects from an overlay.

    Args:
        kinds: restrict to these message kinds (None = all).
        brokers: restrict to these broker ids (None = all).
        predicate: arbitrary final filter on the record.
        limit: stop recording beyond this many records (0 = unlimited).
    """

    def __init__(
        self,
        kinds: Optional[Sequence[str]] = None,
        brokers: Optional[Sequence[str]] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
        limit: int = 0,
        registry=None,
    ):
        self._kinds = frozenset(kinds) if kinds is not None else None
        self._brokers = frozenset(brokers) if brokers is not None else None
        self._predicate = predicate
        self._limit = limit
        self.records: List[TraceRecord] = []
        self.dropped = 0
        #: Optional :class:`~repro.obs.MetricsRegistry`; the overlay's
        #: ``attach_tracer`` fills this in so kept/dropped trace volume
        #: shows up in the unified snapshot (``network.trace.*``).
        self.registry = registry

    def record(self, time, broker_id, message, from_hop):
        kind = type(message).__name__
        if self._kinds is not None and kind not in self._kinds:
            return
        if self._brokers is not None and broker_id not in self._brokers:
            return
        record = TraceRecord(
            time=time,
            broker_id=broker_id,
            kind=kind,
            from_hop=str(from_hop),
            detail=_describe(message),
        )
        if self._predicate is not None and not self._predicate(record):
            return
        # Limit semantics: every filter (kind, broker, predicate) has
        # already run above, so only records that *would* have been kept
        # count as drops — records the filters reject never reach here.
        registry = self.registry
        if self._limit and len(self.records) >= self._limit:
            self.dropped += 1
            if registry is not None and registry.enabled:
                registry.counter("network.trace.dropped").inc()
            return
        self.records.append(record)
        if registry is not None and registry.enabled:
            registry.counter("network.trace.records").inc()

    def clear(self):
        """Drop the collected records (and the drop count) so a long
        simulation can reuse one tracer without unbounded growth; the
        configured filters and limit stay in place."""
        self.records = []
        self.dropped = 0

    # -- analysis ---------------------------------------------------------

    def by_broker(self) -> Dict[str, List[TraceRecord]]:
        grouped: Dict[str, List[TraceRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.broker_id, []).append(record)
        return grouped

    def kinds_seen(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def format(self, last: int = 0) -> str:
        records = self.records[-last:] if last else self.records
        lines = [str(record) for record in records]
        if self.dropped:
            lines.append("... %d records dropped (limit)" % self.dropped)
        return "\n".join(lines)

    def __len__(self):
        return len(self.records)


def describe_message(message) -> str:
    """A stable, non-empty one-line description of any wire-level
    object: the five protocol messages, data/ack/raw frames, and (as a
    last resort) anything with a ``kind``.  The wire tests round-trip
    these descriptions through encode/decode."""
    frame_kind = getattr(message, "kind", None)
    if frame_kind == "ack" and getattr(message, "message", "x") is None:
        trace_id = getattr(message, "trace_id", None)
        base = "ACK seq=%d" % message.seq
        return base + (" trace=%s" % trace_id if trace_id else "")
    if frame_kind == "data" and getattr(message, "seq", None) is not None:
        return "DATA seq=%d %s" % (
            message.seq, describe_message(message.message)
        )
    if frame_kind == "raw" and getattr(message, "message", None) is not None:
        return "RAW %s" % describe_message(message.message)
    expr = getattr(message, "expr", None)
    if expr is not None:
        verb = "UNSUB" if frame_kind == "UnsubscribeMsg" else "SUB"
        return "%s %s" % (verb, expr)
    advert = getattr(message, "advert", None)
    if advert is not None:
        return "ADV %s %s" % (getattr(message, "adv_id", ""), advert)
    publication = getattr(message, "publication", None)
    if publication is not None:
        return "PUB %s" % (publication,)
    adv_id = getattr(message, "adv_id", None)
    if adv_id is not None:
        return "UNADV %s" % adv_id
    return str(frame_kind) if frame_kind else type(message).__name__


#: Backwards-compatible alias (the old private helper returned ``""``
#: for frames and unknown kinds; ``describe_message`` never does).
_describe = describe_message
