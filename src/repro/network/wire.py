"""Wire format: JSON encoding of every protocol message.

The simulator passes message objects by reference; a real deployment
(see :mod:`repro.network.sockets`) needs a byte encoding.  Messages are
encoded as one JSON object per line (newline-delimited JSON — easy to
frame over TCP and to inspect on the wire):

* XPEs serialise to their string form (the parser is the decoder),
* advertisements serialise to a small AST (``lit``/``rep`` nodes) so
  recursive patterns round-trip exactly,
* publications carry doc id, path id and the element path.

``encode``/``decode`` are total inverses for every message kind; the
property-based tests round-trip randomly generated messages.

Reliable framing: the TCP deployment wraps messages in sequence-
numbered **data frames** acknowledged by **ack frames** so lost or
duplicated transmissions are retransmitted and suppressed (the byte-
level twin of :mod:`repro.network.reliable`)::

    {"kind":"data","seq":7,"msg":{"kind":"subscribe",...}}
    {"kind":"ack","seq":7}

``decode_frame`` also accepts a bare message object (a ``raw`` frame)
so pre-framing peers and hand-written test fixtures keep working.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Union

from repro.adverts.model import Advertisement, AdvNode, Lit, Rep
from repro.broker.messages import (
    AdvertiseMsg,
    Message,
    PublishMsg,
    SubscribeMsg,
    UnadvertiseMsg,
    UnsubscribeMsg,
)
from repro.errors import ReproError
from repro.obs.tracing import TraceContext, stamp
from repro.xmldoc.document import Publication
from repro.xpath.parser import parse_xpath


class WireError(ReproError):
    """Raised for malformed wire data."""


def _advert_node_to_obj(node: AdvNode):
    if isinstance(node, Lit):
        return {"lit": list(node.tests)}
    return {"rep": [_advert_node_to_obj(child) for child in node.body]}


def _advert_node_from_obj(obj) -> AdvNode:
    if not isinstance(obj, dict) or len(obj) != 1:
        raise WireError("malformed advertisement node %r" % (obj,))
    if "lit" in obj:
        tests = obj["lit"]
        if not isinstance(tests, list) or not all(
            isinstance(t, str) for t in tests
        ):
            raise WireError("malformed literal tests %r" % (tests,))
        return Lit(tuple(tests))
    if "rep" in obj:
        return Rep(tuple(_advert_node_from_obj(c) for c in obj["rep"]))
    raise WireError("unknown advertisement node key in %r" % (obj,))


def advert_to_obj(advert: Advertisement):
    return [_advert_node_to_obj(node) for node in advert.nodes]


def advert_from_obj(obj) -> Advertisement:
    if not isinstance(obj, list) or not obj:
        raise WireError("malformed advertisement %r" % (obj,))
    return Advertisement(tuple(_advert_node_from_obj(node) for node in obj))


def message_to_obj(message: Message) -> dict:
    """The JSON-ready object form of one protocol message."""
    if isinstance(message, AdvertiseMsg):
        obj = {
            "kind": "advertise",
            "adv_id": message.adv_id,
            "advert": advert_to_obj(message.advert),
            "publisher_id": message.publisher_id,
        }
    elif isinstance(message, UnadvertiseMsg):
        obj = {"kind": "unadvertise", "adv_id": message.adv_id}
    elif isinstance(message, SubscribeMsg):
        obj = {
            "kind": "subscribe",
            "expr": str(message.expr),
            "subscriber_id": message.subscriber_id,
        }
    elif isinstance(message, UnsubscribeMsg):
        obj = {
            "kind": "unsubscribe",
            "expr": str(message.expr),
            "subscriber_id": message.subscriber_id,
        }
    elif isinstance(message, PublishMsg):
        obj = {
            "kind": "publish",
            "doc_id": message.publication.doc_id,
            "path_id": message.publication.path_id,
            "path": list(message.publication.path),
            "publisher_id": message.publisher_id,
            "doc_size_bytes": message.doc_size_bytes,
            "issued_at": message.issued_at,
        }
        if message.publication.attributes is not None:
            obj["attributes"] = [
                [[name, value] for name, value in pairs]
                for pairs in message.publication.attributes
            ]
    else:
        raise WireError("cannot encode message kind %r" % type(message).__name__)
    trace = getattr(message, "trace", None)
    if trace is not None:
        obj["trace"] = {"id": trace.trace_id, "span": trace.span_id}
    return obj


def encode(message: Message) -> bytes:
    """Encode one message as a JSON line (with trailing newline)."""
    return _as_line(message_to_obj(message))


def _as_line(obj: dict) -> bytes:
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def _load_obj(line: Union[bytes, str]) -> dict:
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise WireError("invalid JSON on the wire: %s" % exc)
    if not isinstance(obj, dict):
        raise WireError("wire object must be a JSON object")
    return obj


def decode(line: Union[bytes, str]) -> Message:
    """Decode one JSON line back into a message object."""
    return message_from_obj(_load_obj(line))


def message_from_obj(obj: dict) -> Message:
    """Rebuild a protocol message from its object form (the trace
    context, when present, is re-stamped so retransmissions and
    redeliveries stay in their original trace)."""
    return _apply_trace(obj, _decode_message(obj))


def _apply_trace(obj: dict, message: Message) -> Message:
    trace = obj.get("trace")
    if trace is None:
        return message
    if (
        not isinstance(trace, dict)
        or not isinstance(trace.get("id"), str)
        or not isinstance(trace.get("span"), str)
    ):
        raise WireError("malformed trace context %r" % (trace,))
    return stamp(message, TraceContext(trace["id"], trace["span"]))


def _decode_message(obj: dict) -> Message:
    kind = obj.get("kind")
    try:
        if kind == "advertise":
            return AdvertiseMsg(
                adv_id=obj["adv_id"],
                advert=advert_from_obj(obj["advert"]),
                publisher_id=obj.get("publisher_id", ""),
            )
        if kind == "unadvertise":
            return UnadvertiseMsg(adv_id=obj["adv_id"])
        if kind == "subscribe":
            return SubscribeMsg(
                expr=parse_xpath(obj["expr"]),
                subscriber_id=obj.get("subscriber_id", ""),
            )
        if kind == "unsubscribe":
            return UnsubscribeMsg(
                expr=parse_xpath(obj["expr"]),
                subscriber_id=obj.get("subscriber_id", ""),
            )
        if kind == "publish":
            attributes = None
            if "attributes" in obj:
                attributes = tuple(
                    tuple((str(n), str(v)) for n, v in pairs)
                    for pairs in obj["attributes"]
                )
            return PublishMsg(
                publication=Publication(
                    doc_id=obj["doc_id"],
                    path_id=int(obj["path_id"]),
                    path=tuple(obj["path"]),
                    attributes=attributes,
                ),
                publisher_id=obj.get("publisher_id", ""),
                doc_size_bytes=int(obj.get("doc_size_bytes", 0)),
                issued_at=float(obj.get("issued_at", 0.0)),
            )
    except KeyError as exc:
        raise WireError("missing wire field %s" % exc)
    raise WireError("unknown wire message kind %r" % (kind,))


# -- reliable framing ------------------------------------------------------

@dataclass(frozen=True)
class Frame:
    """One decoded wire frame.

    ``kind`` is ``"data"`` (sequence-numbered message), ``"ack"``
    (cumulative acknowledgement, ``message`` is None) or ``"raw"``
    (an unframed legacy message, ``seq`` is None).  ``trace_id`` is the
    causal trace the frame belongs to: for data/raw frames it is the
    carried message's trace, for ack frames the trace of the data frame
    being acknowledged (when the peer supplied one).
    """

    kind: str
    seq: Optional[int]
    message: Optional[Message]
    trace_id: Optional[str] = None


def encode_data_frame(seq: int, message: Message) -> bytes:
    """A sequence-numbered data frame carrying one message."""
    if seq < 0:
        raise WireError("frame sequence numbers are non-negative")
    return _as_line({"kind": "data", "seq": seq, "msg": message_to_obj(message)})


def encode_ack_frame(seq: int, trace_id: Optional[str] = None) -> bytes:
    """An acknowledgement for the data frame numbered *seq* (the
    simulator transport acknowledges cumulatively, the TCP deployment
    per frame; the wire form is the same).  *trace_id* echoes the data
    frame's trace so acks join the same causal trace on the wire."""
    obj = {"kind": "ack", "seq": seq}
    if trace_id is not None:
        obj["trace"] = trace_id
    return _as_line(obj)


def decode_frame(line: Union[bytes, str]) -> Frame:
    """Decode a frame line; bare messages come back as ``raw`` frames."""
    obj = _load_obj(line)
    kind = obj.get("kind")
    if kind in ("data", "ack"):
        seq = obj.get("seq")
        if not isinstance(seq, int) or seq < 0:
            raise WireError("frame %r carries no valid seq" % (kind,))
        if kind == "ack":
            trace_id = obj.get("trace")
            if trace_id is not None and not isinstance(trace_id, str):
                raise WireError("malformed ack trace %r" % (trace_id,))
            return Frame(kind="ack", seq=seq, message=None, trace_id=trace_id)
        payload = obj.get("msg")
        if not isinstance(payload, dict):
            raise WireError("data frame %d carries no message" % seq)
        message = message_from_obj(payload)
        return Frame(
            kind="data", seq=seq, message=message,
            trace_id=_trace_id_of(message),
        )
    message = message_from_obj(obj)
    return Frame(
        kind="raw", seq=None, message=message, trace_id=_trace_id_of(message)
    )


def _trace_id_of(message: Message) -> Optional[str]:
    trace = getattr(message, "trace", None)
    return trace.trace_id if trace is not None else None
