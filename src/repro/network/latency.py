"""Link latency models.

The paper evaluates on two substrates: a 20-node cluster (sub-millisecond
LAN latencies) and PlanetLab (wide-area links with tens-of-milliseconds
latencies and heavy variance — the authors report up to 15% per-point
variation).  :class:`ClusterLatency` and :class:`PlanetLabLatency` model
the two; both charge a per-byte transmission cost so larger XML
documents take proportionally longer per hop (Figures 10–11).
"""

from __future__ import annotations

import random
from typing import Dict, Tuple


class LatencyModel:
    """Interface: seconds of link delay for one message."""

    def latency(self, src: object, dst: object, size_bytes: int) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Fixed delay per hop — useful in unit tests."""

    def __init__(self, seconds: float = 0.0):
        self._seconds = seconds

    def latency(self, src, dst, size_bytes):
        return self._seconds


class ClusterLatency(LatencyModel):
    """A LAN: ~0.1 ms propagation + gigabit-class transmission."""

    def __init__(
        self,
        base_seconds: float = 0.0001,
        bandwidth_bytes_per_s: float = 125_000_000.0,  # 1 Gb/s
        jitter_fraction: float = 0.05,
        seed: int = 0,
    ):
        self._base = base_seconds
        self._bandwidth = bandwidth_bytes_per_s
        self._jitter = jitter_fraction
        self._rng = random.Random(seed)

    def latency(self, src, dst, size_bytes):
        transmission = size_bytes / self._bandwidth
        jitter = 1.0 + self._rng.uniform(-self._jitter, self._jitter)
        return (self._base + transmission) * jitter


class PlanetLabLatency(LatencyModel):
    """Wide-area links: a stable per-link base delay drawn once from a
    configured range, plus per-message jitter and a slower pipe.

    Per-link bases are cached so the same pair always sees the same
    characteristic latency, as on the real testbed.
    """

    def __init__(
        self,
        min_base_seconds: float = 0.010,
        max_base_seconds: float = 0.080,
        bandwidth_bytes_per_s: float = 1_250_000.0,  # 10 Mb/s
        jitter_fraction: float = 0.15,
        seed: int = 0,
    ):
        if min_base_seconds > max_base_seconds:
            raise ValueError("min_base_seconds must not exceed max")
        self._min = min_base_seconds
        self._max = max_base_seconds
        self._bandwidth = bandwidth_bytes_per_s
        self._jitter = jitter_fraction
        self._rng = random.Random(seed)
        self._bases: Dict[Tuple[object, object], float] = {}

    def link_base(self, src, dst) -> float:
        """The stable base latency of a (directed) link."""
        key = (src, dst)
        base = self._bases.get(key)
        if base is None:
            # Symmetric links: draw once per unordered pair.
            reverse = self._bases.get((dst, src))
            base = (
                reverse
                if reverse is not None
                else self._rng.uniform(self._min, self._max)
            )
            self._bases[key] = base
        return base

    def latency(self, src, dst, size_bytes):
        base = self.link_base(src, dst)
        transmission = size_bytes / self._bandwidth
        jitter = 1.0 + self._rng.uniform(-self._jitter, self._jitter)
        return (base + transmission) * jitter
