"""Deterministic fault injection for the broker overlay.

The paper's evaluation (§5) runs on a cluster and on PlanetLab, where
links delay, drop, duplicate and reorder messages and broker processes
die mid-run.  A :class:`FaultPlan` describes such degraded conditions
declaratively — per-link drop/duplicate/reorder/delay probabilities,
timed link partitions and scheduled broker crash/restart events — and
plugs into :class:`~repro.network.overlay.Overlay` via
``overlay.install_faults(plan)``, which routes every broker-to-broker
hop through the reliable transport of :mod:`repro.network.reliable`.

Determinism: a plan owns no mutable state and no shared RNG stream.
Every per-transmission decision is a pure function of ``(seed, src,
dst, index)`` — the index being the per-directed-link transmission
counter maintained by the transport — so the same seed always yields
the identical drop/duplicate/delay schedule regardless of call order,
and two overlays can share one plan instance.

Spec strings (the CLI ``--faults`` flag) are comma-separated::

    drop=0.2,dup=0.1,reorder=0.3,delay=0.005,seed=7
    drop=0.1,partition=b1-b2@2.0:5.0,crash=b4@1.0:3.0

* ``drop`` / ``dup`` / ``reorder`` — per-transmission probabilities;
* ``delay`` — fixed extra seconds per hop; ``reorder_window`` — the
  uniform extra-delay range a reordered message draws from;
* ``partition=<a>-<b>@<start>:<end>`` — the link drops everything
  inside ``[start, end)`` (repeatable);
* ``crash=<broker>@<at>:<restart>`` — the broker dies at ``at`` and
  recovers at ``restart`` (repeatable; append ``:nostate`` to restart
  without replaying persisted routing state);
* ``seed`` — the determinism seed; ``rto`` — initial retransmission
  timeout of the reliability layer.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError


class FaultSpecError(ReproError):
    """Raised for malformed ``--faults`` specifications."""


@dataclass(frozen=True)
class LinkFaults:
    """Per-link fault probabilities and delays.

    Attributes:
        drop: probability a transmission is lost.
        duplicate: probability a transmission arrives twice.
        reorder: probability a transmission is held back long enough to
            be overtaken (it draws an extra delay from
            ``[0, reorder_window)``).
        delay: fixed extra seconds added to every transmission.
        reorder_window: upper bound of the reorder hold-back, seconds.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    reorder_window: float = 0.05

    def __post_init__(self):
        for name in ("drop", "duplicate", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultSpecError(
                    "%s probability must be in [0, 1], got %r" % (name, value)
                )
        if self.delay < 0 or self.reorder_window < 0:
            raise FaultSpecError("delays must be non-negative")


@dataclass(frozen=True)
class Partition:
    """Link ``a``–``b`` is severed (both directions) in [start, end)."""

    a: str
    b: str
    start: float
    end: float

    def __post_init__(self):
        if self.end <= self.start:
            raise FaultSpecError(
                "partition of %s-%s must end after it starts" % (self.a, self.b)
            )

    def covers(self, src: object, dst: object, now: float) -> bool:
        if not (self.start <= now < self.end):
            return False
        return {self.a, self.b} == {src, dst}


@dataclass(frozen=True)
class CrashEvent:
    """Broker ``broker_id`` dies at ``at`` and restarts at ``restart_at``.

    With ``with_state`` (the default) recovery replays the persisted
    routing state (see :mod:`repro.broker.persistence`) and re-announces
    stored advertisements to the neighbours; without it the broker
    returns empty — the degraded behaviour persistence exists to avoid.
    """

    broker_id: str
    at: float
    restart_at: float
    with_state: bool = True

    def __post_init__(self):
        if self.restart_at <= self.at:
            raise FaultSpecError(
                "broker %s must restart after it crashes" % self.broker_id
            )


@dataclass(frozen=True)
class FaultDecision:
    """The fate of one physical transmission attempt.

    ``copies`` is 0 when dropped (or partitioned), 1 normally, 2 when
    duplicated; ``extra_delay`` is added on top of the link latency and
    ``reordered`` marks decisions whose delay came from the reorder
    hold-back.
    """

    copies: int
    extra_delay: float = 0.0
    dropped: bool = False
    partitioned: bool = False
    reordered: bool = False


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seedable schedule of link and broker faults.

    Attributes:
        seed: determinism seed for every probabilistic decision.
        default: fault levels applied to links without an override.
        links: per-link overrides keyed by ``(a, b)`` (order-insensitive).
        partitions: timed link outages.
        crashes: scheduled broker crash/restart events.
        rto: initial retransmission timeout of the reliability layer;
            retransmissions back off exponentially from here.
    """

    seed: int = 0
    default: LinkFaults = field(default_factory=LinkFaults)
    links: Dict[Tuple[str, str], LinkFaults] = field(default_factory=dict)
    partitions: Tuple[Partition, ...] = ()
    crashes: Tuple[CrashEvent, ...] = ()
    rto: float = 0.05

    def __post_init__(self):
        if self.rto <= 0:
            raise FaultSpecError("rto must be positive")
        seen = set()
        for event in self.crashes:
            key = (event.broker_id, event.at)
            if key in seen:
                raise FaultSpecError(
                    "duplicate crash of %s at %s" % (event.broker_id, event.at)
                )
            seen.add(key)

    # -- link resolution ---------------------------------------------------

    def link_faults(self, src: object, dst: object) -> LinkFaults:
        """The fault levels of the ``src``–``dst`` link."""
        for key in ((src, dst), (dst, src)):
            faults = self.links.get(key)
            if faults is not None:
                return faults
        return self.default

    def is_partitioned(self, src: object, dst: object, now: float) -> bool:
        return any(p.covers(src, dst, now) for p in self.partitions)

    # -- per-transmission decisions ---------------------------------------

    def _uniforms(self, src: object, dst: object, index: int):
        """Four U(0,1) draws, a pure function of (seed, src, dst, index)."""
        key = repr((self.seed, str(src), str(dst), index)).encode("utf-8")
        digest = hashlib.blake2b(key, digest_size=8).digest()
        rng = random.Random(int.from_bytes(digest, "big"))
        return rng.random(), rng.random(), rng.random(), rng.random()

    def decide(
        self, src: object, dst: object, index: int, now: float = 0.0
    ) -> FaultDecision:
        """The fate of transmission number *index* on link src→dst.

        Deterministic: identical arguments (and plan seed) always return
        the identical decision.
        """
        if self.is_partitioned(src, dst, now):
            return FaultDecision(copies=0, dropped=True, partitioned=True)
        faults = self.link_faults(src, dst)
        u_drop, u_dup, u_reorder, u_window = self._uniforms(src, dst, index)
        if u_drop < faults.drop:
            return FaultDecision(copies=0, dropped=True)
        copies = 2 if u_dup < faults.duplicate else 1
        extra = faults.delay
        reordered = u_reorder < faults.reorder
        if reordered:
            extra += u_window * faults.reorder_window
        return FaultDecision(copies=copies, extra_delay=extra, reordered=reordered)

    # -- construction helpers ----------------------------------------------

    def with_link(self, a: str, b: str, faults: LinkFaults) -> "FaultPlan":
        links = dict(self.links)
        links[(a, b)] = faults
        return replace(self, links=links)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a ``--faults`` specification string (see module docs)."""
        fields: Dict[str, float] = {}
        seed = 0
        rto = 0.05
        partitions: List[Partition] = []
        crashes: List[CrashEvent] = []
        for raw in spec.split(","):
            token = raw.strip()
            if not token:
                continue
            if "=" not in token:
                raise FaultSpecError(
                    "fault spec token %r is not key=value" % token
                )
            key, _, value = token.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "seed":
                    seed = int(value)
                elif key == "rto":
                    rto = float(value)
                elif key in ("drop", "dup", "duplicate", "reorder",
                             "delay", "reorder_window"):
                    name = "duplicate" if key == "dup" else key
                    fields[name] = float(value)
                elif key == "partition":
                    partitions.append(_parse_partition(value))
                elif key == "crash":
                    crashes.append(_parse_crash(value))
                else:
                    raise FaultSpecError("unknown fault spec key %r" % key)
            except ValueError:
                raise FaultSpecError(
                    "invalid value %r for fault spec key %r" % (value, key)
                )
        return cls(
            seed=seed,
            default=LinkFaults(**fields),
            partitions=tuple(partitions),
            crashes=tuple(crashes),
            rto=rto,
        )

    def describe(self) -> Dict[str, object]:
        """Human-oriented summary (CLI / logs)."""
        return {
            "seed": self.seed,
            "default": {
                "drop": self.default.drop,
                "duplicate": self.default.duplicate,
                "reorder": self.default.reorder,
                "delay": self.default.delay,
            },
            "link_overrides": len(self.links),
            "partitions": [
                "%s-%s@%g:%g" % (p.a, p.b, p.start, p.end)
                for p in self.partitions
            ],
            "crashes": [
                "%s@%g:%g%s" % (
                    c.broker_id, c.at, c.restart_at,
                    "" if c.with_state else ":nostate",
                )
                for c in self.crashes
            ],
            "rto": self.rto,
        }


def _parse_partition(value: str) -> Partition:
    """``b1-b2@2.0:5.0`` -> Partition."""
    link, sep, window = value.partition("@")
    if not sep or "-" not in link or ":" not in window:
        raise FaultSpecError(
            "partition must look like a-b@start:end, got %r" % value
        )
    a, _, b = link.partition("-")
    start, _, end = window.partition(":")
    if not a or not b:
        raise FaultSpecError("partition link in %r names an empty broker" % value)
    return Partition(a=a, b=b, start=float(start), end=float(end))


def _parse_crash(value: str) -> CrashEvent:
    """``b4@1.0:3.0`` or ``b4@1.0:3.0:nostate`` -> CrashEvent."""
    broker, sep, window = value.partition("@")
    if not sep or ":" not in window:
        raise FaultSpecError(
            "crash must look like broker@at:restart, got %r" % value
        )
    parts = window.split(":")
    with_state = True
    if len(parts) == 3 and parts[2] == "nostate":
        with_state = False
        parts = parts[:2]
    if len(parts) != 2 or not broker:
        raise FaultSpecError("malformed crash spec %r" % value)
    return CrashEvent(
        broker_id=broker,
        at=float(parts[0]),
        restart_at=float(parts[1]),
        with_state=with_state,
    )
