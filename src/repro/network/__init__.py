"""The discrete-event overlay network simulator."""

from repro.network.clients import PublisherClient, SubscriberClient
from repro.network.faults import (
    CrashEvent,
    FaultDecision,
    FaultPlan,
    FaultSpecError,
    LinkFaults,
    Partition,
)
from repro.network.latency import (
    ClusterLatency,
    ConstantLatency,
    LatencyModel,
    PlanetLabLatency,
)
from repro.network.overlay import Overlay
from repro.network.reliable import Channel, ReliableTransport
from repro.network.simulator import Simulator
from repro.network.stats import DeliveryRecord, NetworkStats
from repro.network.trace import TraceRecord, Tracer
from repro.network.wire import decode, encode

__all__ = [
    "PublisherClient",
    "SubscriberClient",
    "Channel",
    "CrashEvent",
    "FaultDecision",
    "FaultPlan",
    "FaultSpecError",
    "LinkFaults",
    "Partition",
    "ReliableTransport",
    "ClusterLatency",
    "ConstantLatency",
    "LatencyModel",
    "PlanetLabLatency",
    "Overlay",
    "Simulator",
    "DeliveryRecord",
    "NetworkStats",
    "TraceRecord",
    "Tracer",
    "decode",
    "encode",
]
