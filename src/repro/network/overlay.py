"""The overlay network: brokers, links, clients, and the event loop.

An :class:`Overlay` owns a :class:`~repro.network.simulator.Simulator`,
a :class:`~repro.network.stats.NetworkStats`, a latency model and a set
of brokers.  Messages submitted by clients propagate hop by hop; each
broker hop charges the link latency plus (optionally) the *measured*
processing time of the broker's handler, so notification delays combine
modelled wide-area latency with the real cost of routing-table matching
— the same two components the paper's PlanetLab numbers contain.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.broker.broker import Broker
from repro.broker.messages import AdvertiseMsg, Message, PublishMsg
from repro.broker.strategies import RoutingConfig
from repro.errors import RoutingError, TopologyError
from repro.merging.engine import PathUniverse
from repro.network.clients import PublisherClient, SubscriberClient
from repro.network.faults import FaultPlan
from repro.network.latency import ClusterLatency, LatencyModel
from repro.network.simulator import Simulator
from repro.network.stats import DeliveryRecord, NetworkStats
from repro.obs import MetricsRegistry


class Overlay:
    """A network of content-based XML routers.

    Args:
        config: routing strategy applied to every broker.
        latency_model: link delay model (default: cluster LAN).
        universe: publication universe handed to brokers for merging.
        processing_scale: multiplier on measured handler wall time added
            to the virtual clock (0 disables processing cost; 1 charges
            the real Python matching cost).
        queueing: serialise each broker's processing (arrivals wait for
            the broker to become idle) instead of overlapping it.
        batching: publisher clients submit each document's publications
            as one batch (see :meth:`submit_batch`) instead of one
            event per path — the broker matches identical paths once
            and batches propagate hop by hop.  Delivery sets are
            identical either way; only event granularity and hence
            modelled timing differ.
        metrics: the :class:`~repro.obs.MetricsRegistry` this overlay
            reports into; defaults to the process-global registry the
            hot-path instrumentation already uses, so
            ``overlay.metrics.snapshot()`` unifies traffic, delay and
            timing (see :meth:`metrics_snapshot`).
        faults: install a :class:`~repro.network.faults.FaultPlan` up
            front (equivalent to calling :meth:`install_faults`).
            Without one, messages are scheduled directly — the
            fault-free, zero-overhead path.
    """

    def __init__(
        self,
        config: Optional[RoutingConfig] = None,
        latency_model: Optional[LatencyModel] = None,
        universe: Optional[PathUniverse] = None,
        processing_scale: float = 1.0,
        queueing: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultPlan] = None,
        batching: bool = False,
    ):
        self.config = config if config is not None else RoutingConfig.full()
        self.latency_model = (
            latency_model if latency_model is not None else ClusterLatency()
        )
        self.universe = universe
        self.processing_scale = processing_scale
        self.sim = Simulator()
        self.metrics = metrics if metrics is not None else obs.get_registry()
        self.stats = NetworkStats(registry=self.metrics)
        self.brokers: Dict[str, Broker] = {}
        self.links: Set[Tuple[str, str]] = set()
        self.subscribers: Dict[str, SubscriberClient] = {}
        self.publishers: Dict[str, PublisherClient] = {}
        self._client_home: Dict[str, str] = {}
        self._tracers = []
        self._auditors = []
        #: With queueing enabled a broker serialises its message
        #: processing: a message arriving while the broker is busy waits
        #: for the previous one to finish, so per-hop delays grow under
        #: load instead of overlapping for free.
        self.queueing = queueing
        self.batching = batching
        self._busy_until: Dict[str, float] = {}
        #: Reliable transport + fault schedule (see install_faults);
        #: None keeps the original direct-delivery fast path.
        self._transport = None
        self._down: Set[str] = set()
        self._crash_state: Dict[str, Optional[Dict]] = {}
        self._held_while_down: Dict[str, List[Tuple[Message, object, int]]] = {}
        if faults is not None:
            self.install_faults(faults)

    # -- fault injection ---------------------------------------------------

    @property
    def faults(self) -> Optional[FaultPlan]:
        return self._transport.plan if self._transport is not None else None

    @property
    def transport(self):
        """The installed :class:`~repro.network.reliable.ReliableTransport`
        (None while running fault-free)."""
        return self._transport

    def install_faults(self, plan: FaultPlan):
        """Route broker-to-broker traffic through the reliable transport,
        filtered by *plan*, and schedule its broker crash events.

        Returns the transport so callers can inspect its ``stats``.
        """
        from repro.network.reliable import ReliableTransport

        if self._transport is not None:
            raise TopologyError("a fault plan is already installed")
        self._transport = ReliableTransport(self, plan)
        for event in plan.crashes:
            if event.at < self.sim.now:
                raise TopologyError(
                    "crash of %r at %g lies in the past" % (event.broker_id, event.at)
                )
            self.sim.schedule(
                event.at - self.sim.now,
                lambda e=event: self.crash_broker(e.broker_id, e.with_state),
            )
            self.sim.schedule(
                event.restart_at - self.sim.now,
                lambda e=event: self.recover_broker(e.broker_id),
            )
        return self._transport

    def is_down(self, broker_id: object) -> bool:
        return broker_id in self._down

    def crash_broker(self, broker_id: str, with_state: bool = True):
        """Kill a broker mid-run (requires an installed fault plan).

        With ``with_state`` its routing state is snapshotted (the
        persisted image a real process would have on disk) for
        :meth:`recover_broker` to replay.
        """
        if self._transport is None:
            raise TopologyError(
                "crash_broker needs a fault plan installed (install_faults)"
            )
        if broker_id not in self.brokers:
            raise TopologyError("unknown broker %r" % broker_id)
        if broker_id in self._down:
            raise TopologyError("broker %r is already down" % broker_id)
        from repro.broker.persistence import snapshot

        self._down.add(broker_id)
        self._crash_state[broker_id] = (
            snapshot(self.brokers[broker_id]) if with_state else None
        )
        self._busy_until.pop(broker_id, None)
        self._transport._count("crashes", "broker.crashes")

    def recover_broker(self, broker_id: str):
        """Bring a crashed broker back: replay its persisted snapshot
        (when taken), reset the channel epochs of its links, resend
        what the reset surfaced, replay messages its local clients
        submitted while it was down, and re-announce its stored
        advertisements to the neighbours (idempotent at the receivers:
        duplicate advertisements terminate at the SRT)."""
        if broker_id not in self._down:
            raise TopologyError("broker %r is not down" % broker_id)
        from repro.broker.persistence import restore

        state = self._crash_state.pop(broker_id)
        with_state = state is not None
        old = self.brokers[broker_id]
        if with_state:
            replacement = restore(state, universe=self.universe)
        else:
            replacement = Broker(
                broker_id=broker_id, config=self.config, universe=self.universe
            )
            for neighbor in old.neighbors:
                replacement.connect(neighbor)
            for client in old.local_clients:
                replacement.attach_client(client)
        self.brokers[broker_id] = replacement
        self._down.discard(broker_id)
        self._transport.reset_links_of(broker_id, resend_outbox=with_state)
        for message, from_hop, hops in self._held_while_down.pop(broker_id, ()):
            self.sim.schedule(
                0.0,
                lambda m=message, f=from_hop, h=hops:
                    self._broker_receive(broker_id, m, f, h),
            )
        if with_state:
            for entry in replacement.srt.entries():
                announce = AdvertiseMsg(
                    adv_id=entry.adv_id,
                    advert=entry.advert,
                    publisher_id=entry.publisher_id,
                )
                for neighbor in sorted(replacement.neighbors, key=str):
                    if neighbor != entry.last_hop:
                        self._transport.send(broker_id, neighbor, announce, 1)
        self._transport._count("recoveries", "broker.recoveries")
        for auditor in self._auditors:
            auditor.observe_recovery(broker_id, with_state)
        return replacement

    # -- construction -----------------------------------------------------

    def add_broker(self, broker_id: str) -> Broker:
        if broker_id in self.brokers:
            raise TopologyError("duplicate broker id %r" % broker_id)
        broker = Broker(
            broker_id=broker_id, config=self.config, universe=self.universe
        )
        self.brokers[broker_id] = broker
        return broker

    def connect(self, a: str, b: str):
        """Create a bidirectional link between two brokers.

        The overlay must stay acyclic: the paper's dissemination
        protocol floods advertisements and reverse-path-routes
        subscriptions/publications over a spanning tree, and a cycle
        would duplicate (and for publications, loop) messages.
        """
        if a not in self.brokers or b not in self.brokers:
            raise TopologyError("cannot link unknown brokers %r-%r" % (a, b))
        if (a, b) in self.links or (b, a) in self.links:
            raise TopologyError("duplicate link %r-%r" % (a, b))
        if self._connected(a, b):
            raise TopologyError(
                "link %r-%r would close a cycle; the overlay must remain "
                "a tree" % (a, b)
            )
        self.links.add((a, b))
        self.brokers[a].connect(b)
        self.brokers[b].connect(a)

    def _connected(self, a: str, b: str) -> bool:
        """Is there already a path between brokers *a* and *b*?"""
        adjacency: Dict[str, list] = {}
        for left, right in self.links:
            adjacency.setdefault(left, []).append(right)
            adjacency.setdefault(right, []).append(left)
        seen = {a}
        stack = [a]
        while stack:
            current = stack.pop()
            if current == b:
                return True
            for neighbor in adjacency.get(current, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return False

    def attach_subscriber(self, client_id: str, broker_id: str) -> SubscriberClient:
        self._check_client(client_id, broker_id)
        client = SubscriberClient(client_id, self, broker_id)
        self.subscribers[client_id] = client
        self._client_home[client_id] = broker_id
        self.brokers[broker_id].attach_client(client_id)
        return client

    def attach_publisher(self, client_id: str, broker_id: str) -> PublisherClient:
        self._check_client(client_id, broker_id)
        client = PublisherClient(client_id, self, broker_id)
        self.publishers[client_id] = client
        self._client_home[client_id] = broker_id
        self.brokers[broker_id].attach_client(client_id)
        return client

    def _check_client(self, client_id: str, broker_id: str):
        if broker_id not in self.brokers:
            raise TopologyError("unknown broker %r" % broker_id)
        if client_id in self._client_home or client_id in self.brokers:
            raise TopologyError("duplicate client id %r" % client_id)

    @classmethod
    def binary_tree(
        cls,
        levels: int,
        config: Optional[RoutingConfig] = None,
        **kwargs,
    ) -> "Overlay":
        """A complete binary tree of brokers, as in the paper's traffic
        experiments: ``levels=3`` gives the 7-broker overlay, ``levels=7``
        the 127-broker one.  Brokers are named ``b1 .. bN`` with ``bi``
        linked to ``b(2i)`` and ``b(2i+1)``."""
        if levels < 1:
            raise TopologyError("a tree needs at least one level")
        overlay = cls(config=config, **kwargs)
        count = 2 ** levels - 1
        for i in range(1, count + 1):
            overlay.add_broker("b%d" % i)
        for i in range(1, count + 1):
            for child in (2 * i, 2 * i + 1):
                if child <= count:
                    overlay.connect("b%d" % i, "b%d" % child)
        return overlay

    def leaf_brokers(self):
        """Brokers with exactly one link (tree leaves)."""
        degree: Dict[str, int] = {b: 0 for b in self.brokers}
        for a, b in self.links:
            degree[a] += 1
            degree[b] += 1
        return sorted(b for b, d in degree.items() if d <= 1)

    # -- messaging ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def submit(self, client_id: str, message: Message):
        """A client hands a message to its edge broker (hop 0)."""
        broker_id = self._client_home.get(client_id)
        if broker_id is None:
            raise RoutingError("unknown client %r" % client_id)
        for auditor in self._auditors:
            auditor.observe_submit(client_id, message)
        latency = self.latency_model.latency(
            client_id, broker_id, _size_of(message)
        )
        self.sim.schedule(
            latency,
            lambda: self._broker_receive(broker_id, message, client_id, 1),
        )

    def submit_batch(self, client_id: str, messages: List[Message]):
        """A client hands a batch of publications to its edge broker as
        one event; the broker groups identical paths and matches each
        group once (:meth:`Broker.handle_publish_batch`).  The batch
        arrives when its largest frame would."""
        messages = list(messages)
        if not messages:
            return
        for message in messages:
            if not isinstance(message, PublishMsg):
                raise RoutingError(
                    "submit_batch carries publications only, got %r"
                    % (message.kind,)
                )
        broker_id = self._client_home.get(client_id)
        if broker_id is None:
            raise RoutingError("unknown client %r" % client_id)
        for auditor in self._auditors:
            for message in messages:
                auditor.observe_submit(client_id, message)
        latency = max(
            self.latency_model.latency(client_id, broker_id, _size_of(m))
            for m in messages
        )
        self.sim.schedule(
            latency,
            lambda: self._broker_receive_batch(
                broker_id, messages, client_id, 1
            ),
        )

    def attach_tracer(self, tracer):
        """Register a :class:`repro.network.trace.Tracer`; every broker
        message hop is offered to it."""
        self._tracers.append(tracer)
        if getattr(tracer, "registry", None) is None:
            tracer.registry = self.metrics
        return tracer

    def attach_auditor(self, auditor):
        """Register a :class:`repro.audit.AuditOracle`; it observes
        client submits, deliveries, and crash recoveries."""
        self._auditors.append(auditor)
        auditor.bind(self)
        return auditor

    def trigger_merge_sweep(self, broker_id: str):
        """Force an immediate merge sweep on one broker and forward the
        sweep's outbound control traffic (merger subscriptions plus
        constituent retractions) into the network."""
        if broker_id not in self.brokers:
            raise TopologyError("unknown broker %r" % broker_id)
        if broker_id in self._down:
            return []
        broker = self.brokers[broker_id]
        outbound = broker.run_merge_sweep()
        for destination, message in outbound:
            self._forward(broker_id, destination, message, 0.0, 1)
        return outbound

    def transport_deliver(
        self, broker_id: str, message: Message, from_hop: object, hops: int
    ):
        """In-order, deduplicated delivery from the reliable transport."""
        self._broker_receive(broker_id, message, from_hop, hops)

    def link_latency(
        self, src: object, dst: object, message: Optional[Message]
    ) -> float:
        """Link delay for one frame (None models a small control frame)."""
        size = 64 if message is None else _size_of(message)
        return self.latency_model.latency(src, dst, size)

    def _broker_receive(
        self, broker_id: str, message: Message, from_hop: str, hops: int
    ):
        if self._down and broker_id in self._down:
            # A directly-scheduled message (client edge) reached a dead
            # broker: hold it and replay on recovery, as a reconnecting
            # client library would.
            self._held_while_down.setdefault(broker_id, []).append(
                (message, from_hop, hops)
            )
            self._transport._count("held_while_down", "network.faults.held")
            return
        self.stats.record_broker_message(broker_id, message.kind)
        for tracer in self._tracers:
            tracer.record(self.sim.now, broker_id, message, from_hop)
        broker = self.brokers[broker_id]
        started = time.perf_counter()
        outbound = broker.handle(message, from_hop)
        elapsed = time.perf_counter() - started
        metrics = self.metrics
        if metrics.enabled:
            metrics.histogram("network.dispatch").record(elapsed)
            metrics.counter("network.dispatch.outbound").inc(len(outbound))
        processing = self._charge_processing(broker_id, elapsed)
        for destination, out_msg in outbound:
            self._forward(broker_id, destination, out_msg, processing, hops)

    def _broker_receive_batch(
        self, broker_id: str, messages: List[Message], from_hop: str, hops: int
    ):
        """Batch counterpart of :meth:`_broker_receive` (publications
        only).  Outbound messages are regrouped per destination:
        broker-bound groups travel onward as one batch (when no
        reliable transport is interposed — the transport's
        per-message ordering/dedup would otherwise be bypassed), while
        client deliveries and transport sends degrade to per-message
        forwarding."""
        if self._down and broker_id in self._down:
            held = self._held_while_down.setdefault(broker_id, [])
            for message in messages:
                held.append((message, from_hop, hops))
                self._transport._count("held_while_down", "network.faults.held")
            return
        for message in messages:
            self.stats.record_broker_message(broker_id, message.kind)
            for tracer in self._tracers:
                tracer.record(self.sim.now, broker_id, message, from_hop)
        broker = self.brokers[broker_id]
        started = time.perf_counter()
        outbound = broker.handle_publish_batch(messages, from_hop)
        elapsed = time.perf_counter() - started
        metrics = self.metrics
        if metrics.enabled:
            metrics.histogram("network.dispatch").record(elapsed)
            metrics.counter("network.dispatch.outbound").inc(len(outbound))
        processing = self._charge_processing(broker_id, elapsed)
        grouped: Dict[object, List[Message]] = {}
        for destination, out_msg in outbound:
            grouped.setdefault(destination, []).append(out_msg)
        for destination, dest_messages in grouped.items():
            if (
                destination in self.brokers
                and self._transport is None
                and len(dest_messages) > 1
            ):
                latency = processing + max(
                    self.latency_model.latency(
                        broker_id, destination, _size_of(m)
                    )
                    for m in dest_messages
                )
                self.sim.schedule(
                    latency,
                    lambda d=destination, ms=dest_messages:
                        self._broker_receive_batch(d, ms, broker_id, hops + 1),
                )
            else:
                for out_msg in dest_messages:
                    self._forward(
                        broker_id, destination, out_msg, processing, hops
                    )

    def _charge_processing(self, broker_id: str, elapsed: float) -> float:
        """Turn measured handler wall time into the virtual-clock delay
        charged to this broker's outbound messages (queueing makes the
        charge include time spent waiting for the broker to go idle)."""
        processing = elapsed * self.processing_scale
        if self.queueing:
            queued_from = max(
                self.sim.now, self._busy_until.get(broker_id, 0.0)
            )
            finish = queued_from + processing
            self._busy_until[broker_id] = finish
            processing = finish - self.sim.now
            if self.metrics.enabled:
                self.metrics.histogram("network.queue_wait").record(
                    queued_from - self.sim.now
                )
        return processing

    def _forward(
        self,
        src_broker: str,
        destination: str,
        message: Message,
        processing: float,
        hops: int,
    ):
        if destination in self.brokers:
            if self._transport is not None:
                self._transport.send(
                    src_broker, destination, message, hops + 1,
                    first_delay=processing,
                )
                return
            latency = processing + self.latency_model.latency(
                src_broker, destination, _size_of(message)
            )
            self.sim.schedule(
                latency,
                lambda: self._broker_receive(
                    destination, message, src_broker, hops + 1
                ),
            )
            return
        latency = processing + self.latency_model.latency(
            src_broker, destination, _size_of(message)
        )
        if destination in self.subscribers:
            self.sim.schedule(
                latency,
                lambda: self._client_receive(destination, message, hops),
            )
        else:
            raise RoutingError(
                "broker %r emitted message to unknown destination %r"
                % (src_broker, destination)
            )

    def _client_receive(self, client_id: str, message: Message, hops: int):
        self.stats.record_client_message()
        client = self.subscribers[client_id]
        fresh = client.receive(message, hops)
        if fresh and isinstance(message, PublishMsg):
            for auditor in self._auditors:
                auditor.observe_delivery(client_id, message)
            # duplicates (client.receive returned False) never reach the
            # delivery statistics: redelivered publications count once.
            self.stats.record_delivery(
                DeliveryRecord(
                    subscriber_id=client_id,
                    doc_id=message.publication.doc_id,
                    path_id=message.publication.path_id,
                    issued_at=message.issued_at,
                    delivered_at=self.sim.now,
                    hops=hops,
                )
            )

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain all pending traffic; returns processed event count."""
        return self.sim.run(max_events=max_events)

    # -- reporting ----------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, object]:
        """One document with traffic, delay and hot-path timing.

        ``self.metrics.snapshot()`` already carries everything recorded
        while the registry was enabled; this helper additionally folds
        in the :class:`NetworkStats` summary (always collected, even
        with metrics off) and per-broker routing-table gauges.
        """
        for broker_id, broker in self.brokers.items():
            self.metrics.gauge("broker.%s.routing_table" % broker_id).set(
                broker.routing_table_size()
            )
        # hits/misses/stale are hot-path counters (Broker records them
        # per publication); size and evictions are only knowable from
        # the cache objects, so they are folded in here as gauges.
        self.metrics.gauge("broker.match_cache.size").set(
            sum(len(b.match_cache) for b in self.brokers.values())
        )
        self.metrics.gauge("broker.match_cache.evictions").set(
            sum(b.match_cache.evictions for b in self.brokers.values())
        )
        # The matcher-level keys memos publish themselves: they join the
        # covering.tree.keys_cache / matching.linear.keys_cache groups
        # (repro.cache), which a snapshot-time collector sums.
        document = self.metrics.snapshot()
        document["network"] = self.stats.summary()
        if self._transport is not None:
            document["transport"] = dict(self._transport.stats)
            document["faults"] = self._transport.plan.describe()
        return document

    def routing_table_sizes(self) -> Dict[str, int]:
        return {
            broker_id: broker.routing_table_size()
            for broker_id, broker in self.brokers.items()
        }

    def restart_broker(self, broker_id: str, with_state: bool = True):
        """Replace a broker in place, as after a process restart.

        With ``with_state`` the new instance is rebuilt from a snapshot
        (see :mod:`repro.broker.persistence`) and routing continues
        unaffected; without it the broker comes back empty — the
        degraded behaviour the persistence layer exists to avoid.
        """
        from repro.broker.persistence import restore, snapshot

        old = self.brokers.get(broker_id)
        if old is None:
            raise TopologyError("unknown broker %r" % broker_id)
        if with_state:
            replacement = restore(snapshot(old), universe=self.universe)
        else:
            replacement = Broker(
                broker_id=broker_id,
                config=self.config,
                universe=self.universe,
            )
            for neighbor in old.neighbors:
                replacement.connect(neighbor)
            for client in old.local_clients:
                replacement.attach_client(client)
        self.brokers[broker_id] = replacement
        return replacement

    def describe(self) -> Dict[str, object]:
        """Topology plus per-broker summaries (CLI / debugging)."""
        return {
            "strategy": self.config.name,
            "brokers": len(self.brokers),
            "links": sorted("%s-%s" % link for link in self.links),
            "subscribers": sorted(self.subscribers),
            "publishers": sorted(self.publishers),
            "stats": self.stats.summary(),
            "per_broker": {
                broker_id: broker.describe()
                for broker_id, broker in sorted(self.brokers.items())
            },
        }

    def delivered_map(self) -> Dict[str, Set[str]]:
        """subscriber id -> set of delivered document ids (the delivery
        -equivalence invariant compares these across strategies)."""
        return {
            client_id: client.delivered_documents()
            for client_id, client in self.subscribers.items()
        }


def _size_of(message: Message) -> int:
    if isinstance(message, PublishMsg):
        return max(message.doc_size_bytes, 64)
    return 64  # control messages are small and size-invariant
