"""The overlay network: brokers, links, clients, and the event loop.

An :class:`Overlay` owns a :class:`~repro.network.simulator.Simulator`,
a :class:`~repro.network.stats.NetworkStats`, a latency model and a set
of brokers.  Messages submitted by clients propagate hop by hop; each
broker hop charges the link latency plus (optionally) the *measured*
processing time of the broker's handler, so notification delays combine
modelled wide-area latency with the real cost of routing-table matching
— the same two components the paper's PlanetLab numbers contain.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.broker.broker import Broker
from repro.broker.core import (
    MERGE_SWEEP_TIMER,
    TELEMETRY_TIMER,
    BrokerCore,
    Deliver,
    Replay,
    Send,
    Telemetry,
    TimerRequest,
    ViewServe,
)
from repro.broker.messages import AdvertiseMsg, Message, PublishMsg
from repro.broker.strategies import RoutingConfig
from repro.errors import RoutingError, TopologyError
from repro.merging.engine import PathUniverse
from repro.network.clients import PublisherClient, SubscriberClient
from repro.network.faults import FaultPlan
from repro.network.latency import ClusterLatency, LatencyModel
from repro.network.simulator import Simulator
from repro.network.stats import DeliveryRecord, NetworkStats
from repro.obs import MetricsRegistry
from repro.obs.telemetry import TelemetryPlane, broker_gauges
from repro.obs.tracing import Span, TraceContext, TraceRecorder, stamp, trace_of


class Overlay:
    """A network of content-based XML routers.

    Args:
        config: routing strategy applied to every broker.
        latency_model: link delay model (default: cluster LAN).
        universe: publication universe handed to brokers for merging.
        processing_scale: multiplier on measured handler wall time added
            to the virtual clock (0 disables processing cost; 1 charges
            the real Python matching cost).
        queueing: serialise each broker's processing (arrivals wait for
            the broker to become idle) instead of overlapping it.
        batching: publisher clients submit each document's publications
            as one batch (see :meth:`submit_batch`) instead of one
            event per path — the broker matches identical paths once
            and batches propagate hop by hop.  Delivery sets are
            identical either way; only event granularity and hence
            modelled timing differ.
        metrics: the :class:`~repro.obs.MetricsRegistry` this overlay
            reports into; defaults to the process-global registry the
            hot-path instrumentation already uses, so
            ``overlay.metrics.snapshot()`` unifies traffic, delay and
            timing (see :meth:`metrics_snapshot`).
        faults: install a :class:`~repro.network.faults.FaultPlan` up
            front (equivalent to calling :meth:`install_faults`).
            Without one, messages are scheduled directly — the
            fault-free, zero-overhead path.
    """

    def __init__(
        self,
        config: Optional[RoutingConfig] = None,
        latency_model: Optional[LatencyModel] = None,
        universe: Optional[PathUniverse] = None,
        processing_scale: float = 1.0,
        queueing: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultPlan] = None,
        batching: bool = False,
    ):
        self.config = config if config is not None else RoutingConfig.full()
        self.latency_model = (
            latency_model if latency_model is not None else ClusterLatency()
        )
        self.universe = universe
        self.processing_scale = processing_scale
        self.sim = Simulator()
        self.metrics = metrics if metrics is not None else obs.get_registry()
        self.stats = NetworkStats(registry=self.metrics)
        #: The runtime-agnostic cores this host drives.  ``brokers``
        #: keeps exposing the wrapped :class:`Broker` objects — the
        #: audit oracle and the test suites inspect their tables, and
        #: that interface is identical on every backend.
        self.cores: Dict[str, BrokerCore] = {}
        self.brokers: Dict[str, Broker] = {}
        self.links: Set[Tuple[str, str]] = set()
        self.subscribers: Dict[str, SubscriberClient] = {}
        self.publishers: Dict[str, PublisherClient] = {}
        self._client_home: Dict[str, str] = {}
        self._tracers = []
        self._auditors = []
        #: Causal tracing (see :meth:`enable_tracing`); None keeps every
        #: hot path on the original zero-overhead branch.
        self.tracing: Optional[TraceRecorder] = None
        #: With queueing enabled a broker serialises its message
        #: processing: a message arriving while the broker is busy waits
        #: for the previous one to finish, so per-hop delays grow under
        #: load instead of overlapping for free.
        self.queueing = queueing
        self.batching = batching
        self._busy_until: Dict[str, float] = {}
        #: Reliable transport + fault schedule (see install_faults);
        #: None keeps the original direct-delivery fast path.
        self._transport = None
        #: ``(client_id, msg_id)`` → "serve"/"replay" for deliveries in
        #: flight that a materialized view produced (popped by
        #: :meth:`_client_receive`, which labels the span and the audit
        #: observation with it).
        self._view_kinds: Dict[Tuple[object, int], str] = {}
        self._down: Set[str] = set()
        self._crash_state: Dict[str, Optional[Dict]] = {}
        self._held_while_down: Dict[
            str, List[Tuple[Message, object, int, Optional[Span]]]
        ] = {}
        #: Live telemetry plane (see :meth:`enable_telemetry`); None
        #: keeps the original zero-overhead paths.
        self.telemetry = None
        #: Telemetry timer events currently in the simulator heap; the
        #: sampler parks itself when they are the only pending work so
        #: ``sim.run()`` still quiesces.
        self._telemetry_scheduled = 0
        self._telemetry_parked: Set[str] = set()
        #: In-progress message count per broker while queueing —
        #: the ``queue_depth`` gauge the sampler reads.
        self._queue_len: Dict[str, int] = {}
        #: Deterministic per-broker overload knob: extra processing
        #: seconds charged per message on top of ``processing_scale``.
        self.processing_delay: Dict[str, float] = {}
        if faults is not None:
            self.install_faults(faults)

    # -- fault injection ---------------------------------------------------

    @property
    def faults(self) -> Optional[FaultPlan]:
        return self._transport.plan if self._transport is not None else None

    @property
    def transport(self):
        """The installed :class:`~repro.network.reliable.ReliableTransport`
        (None while running fault-free)."""
        return self._transport

    def install_faults(self, plan: FaultPlan):
        """Route broker-to-broker traffic through the reliable transport,
        filtered by *plan*, and schedule its broker crash events.

        Returns the transport so callers can inspect its ``stats``.
        """
        from repro.network.reliable import ReliableTransport

        if self._transport is not None:
            raise TopologyError("a fault plan is already installed")
        self._transport = ReliableTransport(self, plan)
        for part in plan.partitions:
            if part.end >= self.sim.now and part.end != float("inf"):
                # Flight-recorder trigger: dump both endpoints' rings the
                # moment a partition heals (a no-op while tracing is off,
                # checked at fire time so enable order does not matter).
                self.sim.schedule(
                    part.end - self.sim.now,
                    lambda p=part: self._on_partition_heal(p),
                )
        for event in plan.crashes:
            if event.at < self.sim.now:
                raise TopologyError(
                    "crash of %r at %g lies in the past" % (event.broker_id, event.at)
                )
            self.sim.schedule(
                event.at - self.sim.now,
                lambda e=event: self.crash_broker(e.broker_id, e.with_state),
            )
            self.sim.schedule(
                event.restart_at - self.sim.now,
                lambda e=event: self.recover_broker(e.broker_id),
            )
        return self._transport

    def is_down(self, broker_id: object) -> bool:
        return broker_id in self._down

    def _on_partition_heal(self, partition):
        if self.tracing is not None:
            self.tracing.flight.dump(
                "partition-heal-%s-%s" % (partition.a, partition.b),
                brokers=[partition.a, partition.b],
                time=self.sim.now,
            )

    def crash_broker(self, broker_id: str, with_state: bool = True):
        """Kill a broker mid-run (requires an installed fault plan).

        With ``with_state`` its routing state is snapshotted (the
        persisted image a real process would have on disk) for
        :meth:`recover_broker` to replay.
        """
        if self._transport is None:
            raise TopologyError(
                "crash_broker needs a fault plan installed (install_faults)"
            )
        if broker_id not in self.brokers:
            raise TopologyError("unknown broker %r" % broker_id)
        if broker_id in self._down:
            raise TopologyError("broker %r is already down" % broker_id)
        from repro.broker.persistence import snapshot

        self._down.add(broker_id)
        self._crash_state[broker_id] = (
            snapshot(self.brokers[broker_id]) if with_state else None
        )
        self._busy_until.pop(broker_id, None)
        self._transport._count("crashes", "broker.crashes")
        if self.tracing is not None:
            # The black box: everything the overlay was doing in the
            # moments before the crash, with the victim's ring intact.
            self.tracing.flight.dump(
                "crash-%s" % broker_id, time=self.sim.now
            )

    def recover_broker(self, broker_id: str):
        """Bring a crashed broker back: replay its persisted snapshot
        (when taken), reset the channel epochs of its links, resend
        what the reset surfaced, replay messages its local clients
        submitted while it was down, and re-announce its stored
        advertisements to the neighbours (idempotent at the receivers:
        duplicate advertisements terminate at the SRT)."""
        if broker_id not in self._down:
            raise TopologyError("broker %r is not down" % broker_id)
        from repro.broker.persistence import restore

        state = self._crash_state.pop(broker_id)
        with_state = state is not None
        old = self.brokers[broker_id]
        if with_state:
            replacement = restore(state, universe=self.universe)
        else:
            replacement = Broker(
                broker_id=broker_id, config=self.config, universe=self.universe
            )
            for neighbor in old.neighbors:
                replacement.connect(neighbor)
            for client in old.local_clients:
                replacement.attach_client(client)
        self._rebind_broker(broker_id, replacement)
        self._down.discard(broker_id)
        self._transport.reset_links_of(broker_id, resend_outbox=with_state)
        for message, from_hop, hops, parent in self._held_while_down.pop(
            broker_id, ()
        ):
            self.sim.schedule(
                0.0,
                lambda m=message, f=from_hop, h=hops, p=parent:
                    self._broker_receive(broker_id, m, f, h, p),
            )
        if with_state:
            for entry in replacement.srt.entries():
                announce = AdvertiseMsg(
                    adv_id=entry.adv_id,
                    advert=entry.advert,
                    publisher_id=entry.publisher_id,
                )
                for neighbor in sorted(replacement.neighbors, key=str):
                    if neighbor != entry.last_hop:
                        self._transport.send(broker_id, neighbor, announce, 1)
        self._transport._count("recoveries", "broker.recoveries")
        for auditor in self._auditors:
            auditor.observe_recovery(broker_id, with_state)
        return replacement

    # -- construction -----------------------------------------------------

    def add_broker(self, broker_id: str) -> Broker:
        if broker_id in self.brokers:
            raise TopologyError("duplicate broker id %r" % broker_id)
        core = BrokerCore(
            broker_id=broker_id, config=self.config, universe=self.universe
        )
        self.cores[broker_id] = core
        self.brokers[broker_id] = core.broker
        if self.telemetry is not None:
            self._effect_pairs(
                broker_id, [core.enable_telemetry(self.telemetry.interval)]
            )
        return core.broker

    def connect(self, a: str, b: str):
        """Create a bidirectional link between two brokers.

        The overlay must stay acyclic: the paper's dissemination
        protocol floods advertisements and reverse-path-routes
        subscriptions/publications over a spanning tree, and a cycle
        would duplicate (and for publications, loop) messages.
        """
        if a not in self.brokers or b not in self.brokers:
            raise TopologyError("cannot link unknown brokers %r-%r" % (a, b))
        if (a, b) in self.links or (b, a) in self.links:
            raise TopologyError("duplicate link %r-%r" % (a, b))
        if self._connected(a, b):
            raise TopologyError(
                "link %r-%r would close a cycle; the overlay must remain "
                "a tree" % (a, b)
            )
        self.links.add((a, b))
        self.brokers[a].connect(b)
        self.brokers[b].connect(a)

    def _connected(self, a: str, b: str) -> bool:
        """Is there already a path between brokers *a* and *b*?"""
        adjacency: Dict[str, list] = {}
        for left, right in self.links:
            adjacency.setdefault(left, []).append(right)
            adjacency.setdefault(right, []).append(left)
        seen = {a}
        stack = [a]
        while stack:
            current = stack.pop()
            if current == b:
                return True
            for neighbor in adjacency.get(current, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return False

    def attach_subscriber(self, client_id: str, broker_id: str) -> SubscriberClient:
        self._check_client(client_id, broker_id)
        client = SubscriberClient(client_id, self, broker_id)
        self.subscribers[client_id] = client
        self._client_home[client_id] = broker_id
        self.brokers[broker_id].attach_client(client_id)
        return client

    def attach_publisher(self, client_id: str, broker_id: str) -> PublisherClient:
        self._check_client(client_id, broker_id)
        client = PublisherClient(client_id, self, broker_id)
        self.publishers[client_id] = client
        self._client_home[client_id] = broker_id
        self.brokers[broker_id].attach_client(client_id)
        return client

    def _check_client(self, client_id: str, broker_id: str):
        if broker_id not in self.brokers:
            raise TopologyError("unknown broker %r" % broker_id)
        if client_id in self._client_home or client_id in self.brokers:
            raise TopologyError("duplicate client id %r" % client_id)

    @classmethod
    def binary_tree(
        cls,
        levels: int,
        config: Optional[RoutingConfig] = None,
        **kwargs,
    ) -> "Overlay":
        """A complete binary tree of brokers, as in the paper's traffic
        experiments: ``levels=3`` gives the 7-broker overlay, ``levels=7``
        the 127-broker one.  Brokers are named ``b1 .. bN`` with ``bi``
        linked to ``b(2i)`` and ``b(2i+1)``."""
        if levels < 1:
            raise TopologyError("a tree needs at least one level")
        overlay = cls(config=config, **kwargs)
        count = 2 ** levels - 1
        for i in range(1, count + 1):
            overlay.add_broker("b%d" % i)
        for i in range(1, count + 1):
            for child in (2 * i, 2 * i + 1):
                if child <= count:
                    overlay.connect("b%d" % i, "b%d" % child)
        return overlay

    def leaf_brokers(self):
        """Brokers with exactly one link (tree leaves)."""
        degree: Dict[str, int] = {b: 0 for b in self.brokers}
        for a, b in self.links:
            degree[a] += 1
            degree[b] += 1
        return sorted(b for b, d in degree.items() if d <= 1)

    # -- messaging ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def submit(self, client_id: str, message: Message):
        """A client hands a message to its edge broker (hop 0).

        With tracing enabled the message is stamped with a fresh
        :class:`~repro.obs.tracing.TraceContext` (unless one already
        rides on it — a resubmission stays in its original trace) and a
        ``submit`` root span covering the client-edge link is recorded.
        """
        broker_id = self._client_home.get(client_id)
        if broker_id is None:
            raise RoutingError("unknown client %r" % client_id)
        self._poke_telemetry()
        tracing = self.tracing
        root: Optional[Span] = None
        if tracing is not None and trace_of(message) is None:
            context = tracing.mint(message)
        else:
            context = None
        # the auditor observes *after* stamping so violation reports can
        # name the offending trace ids.
        for auditor in self._auditors:
            auditor.observe_submit(client_id, message)
        latency = self.latency_model.latency(
            client_id, broker_id, _size_of(message)
        )
        if context is not None:
            root = tracing.record_root(
                context, client_id, message, self.sim.now, latency
            )
        self.sim.schedule(
            latency,
            lambda: self._broker_receive(broker_id, message, client_id, 1, root),
        )

    def submit_batch(self, client_id: str, messages: List[Message]):
        """A client hands a batch of publications to its edge broker as
        one event; the broker groups identical paths and matches each
        group once (:meth:`Broker.handle_publish_batch`).  The batch
        arrives when its largest frame would."""
        messages = list(messages)
        if not messages:
            return
        for message in messages:
            if not isinstance(message, PublishMsg):
                raise RoutingError(
                    "submit_batch carries publications only, got %r"
                    % (message.kind,)
                )
        broker_id = self._client_home.get(client_id)
        if broker_id is None:
            raise RoutingError("unknown client %r" % client_id)
        self._poke_telemetry()
        tracing = self.tracing
        contexts = {}
        if tracing is not None:
            for message in messages:
                if trace_of(message) is None:
                    contexts[message.msg_id] = tracing.mint(message)
        for auditor in self._auditors:
            for message in messages:
                auditor.observe_submit(client_id, message)
        latency = max(
            self.latency_model.latency(client_id, broker_id, _size_of(m))
            for m in messages
        )
        parents: Optional[Dict[int, Span]] = None
        if contexts:
            # every root covers the whole batch window: the batch (and
            # with it each message) arrives when its largest frame would.
            parents = {}
            for message in messages:
                context = contexts.get(message.msg_id)
                if context is not None:
                    parents[message.msg_id] = tracing.record_root(
                        context, client_id, message, self.sim.now, latency
                    )
        self.sim.schedule(
            latency,
            lambda: self._broker_receive_batch(
                broker_id, messages, client_id, 1, parents
            ),
        )

    def attach_tracer(self, tracer):
        """Register a :class:`repro.network.trace.Tracer`; every broker
        message hop is offered to it."""
        self._tracers.append(tracer)
        if getattr(tracer, "registry", None) is None:
            tracer.registry = self.metrics
        return tracer

    def enable_tracing(
        self, recorder: Optional[TraceRecorder] = None, **kwargs
    ) -> TraceRecorder:
        """Turn on causal tracing: every subsequently submitted message
        is stamped with a trace context and every hop emits spans into
        *recorder* (a fresh :class:`~repro.obs.tracing.TraceRecorder`
        bound to this overlay's registry by default; extra keyword
        arguments — ``flight_dir``, ``flight_capacity``, ``max_spans`` —
        configure it).  Enable before submitting traffic or early
        deliveries will have no trace trees."""
        if recorder is None:
            recorder = TraceRecorder(registry=self.metrics, **kwargs)
        self.tracing = recorder
        return recorder

    def attach_auditor(self, auditor):
        """Register a :class:`repro.audit.AuditOracle`; it observes
        client submits, deliveries, and crash recoveries."""
        self._auditors.append(auditor)
        auditor.bind(self)
        return auditor

    def trigger_merge_sweep(self, broker_id: str):
        """Force an immediate merge sweep on one broker and forward the
        sweep's outbound control traffic (merger subscriptions plus
        constituent retractions) into the network."""
        if broker_id not in self.brokers:
            raise TopologyError("unknown broker %r" % broker_id)
        if broker_id in self._down:
            return []
        outbound = self._effect_pairs(
            broker_id, self.cores[broker_id].on_timer(MERGE_SWEEP_TIMER)
        )
        for destination, message in outbound:
            self._forward(broker_id, destination, message, 0.0, 1)
        return outbound

    def _effect_pairs(self, broker_id: str, effects) -> List[Tuple[object, Message]]:
        """Interpret a core's effects under the simulator's execution
        model: sends and deliveries become ``(destination, message)``
        pairs for :meth:`_forward` (which models the link), timer
        requests land on the virtual clock, telemetry lands on the
        metrics registry."""
        pairs: List[Tuple[object, Message]] = []
        for effect in effects:
            if isinstance(effect, Send):
                pairs.append((effect.destination, effect.message))
            elif isinstance(effect, Deliver):
                if isinstance(effect, ViewServe):
                    self._view_kinds[
                        (effect.client_id, effect.message.msg_id)
                    ] = "serve"
                pairs.append((effect.client_id, effect.message))
            elif isinstance(effect, Replay):
                # A view window replayed to a late subscriber: each
                # retained publication travels the broker→client link
                # like any delivery (client-side dedup makes the replay
                # exactly-once), labelled so spans and the audit oracle
                # can classify it.
                for message in effect.messages:
                    self._view_kinds[
                        (effect.client_id, message.msg_id)
                    ] = "replay"
                    pairs.append((effect.client_id, message))
            elif isinstance(effect, TimerRequest):
                if effect.name == TELEMETRY_TIMER:
                    self._telemetry_scheduled += 1
                self.sim.schedule(
                    effect.delay,
                    lambda e=effect: self._on_broker_timer(broker_id, e.name),
                )
            elif isinstance(effect, Telemetry):
                if self.metrics.enabled:
                    self.metrics.counter(effect.name).inc(effect.value)
        return pairs

    def _on_broker_timer(self, broker_id: str, name: str):
        if name == TELEMETRY_TIMER:
            self._on_telemetry_timer(broker_id)
            return
        if broker_id in self._down:
            return
        for destination, message in self._effect_pairs(
            broker_id, self.cores[broker_id].on_timer(name)
        ):
            self._forward(broker_id, destination, message, 0.0, 1)

    def _on_telemetry_timer(self, broker_id: str):
        """One sampling tick.  The sampler re-arms itself only while
        other (non-telemetry) events are pending — otherwise it parks
        and :meth:`submit`/:meth:`submit_batch` wake it — so
        ``sim.run()`` still quiesces with telemetry enabled."""
        self._telemetry_scheduled -= 1
        plane = self.telemetry
        if plane is None:
            return
        if broker_id in self._down:
            # Dead brokers don't sample; park the timer so recovery's
            # next submission restarts it.
            self._telemetry_parked.add(broker_id)
            return
        core = self.cores[broker_id]
        if core.telemetry_interval is None:
            # The core was rebuilt on recovery; re-arm it in place.
            core.telemetry_interval = plane.interval
        effects = core.on_timer(TELEMETRY_TIMER)
        self._sample_broker(broker_id)
        if self.sim.pending() > self._telemetry_scheduled:
            self._effect_pairs(broker_id, effects)
        else:
            # Only telemetry timers remain: drop the re-arm request.
            self._effect_pairs(
                broker_id,
                [e for e in effects if not isinstance(e, TimerRequest)],
            )
            self._telemetry_parked.add(broker_id)

    def _sample_broker(self, broker_id: str):
        plane = self.telemetry
        now = self.sim.now
        plane.maybe_record_cluster(now)
        gauges = {
            "queue_depth": float(self._queue_len.get(broker_id, 0)),
            "queue_lag": max(
                0.0, self._busy_until.get(broker_id, 0.0) - now
            ),
            "audit_degraded": 1.0
            if any(
                getattr(a, "stateless_recoveries", None)
                for a in self._auditors
            )
            else 0.0,
        }
        gauges.update(broker_gauges(self.brokers[broker_id]))
        counters = {
            "handled": float(sum(self.brokers[broker_id].stats.values())),
        }
        plane.record(broker_id, now, gauges=gauges, counters=counters)

    def enable_telemetry(self, plane=None, interval: float = 0.05, **kwargs):
        """Turn on the live telemetry plane: every broker core arms a
        ``telemetry-sample`` timer on the virtual clock and each tick
        records queue depth/lag, matcher and view gauges, and handled
        deltas into *plane* (a fresh
        :class:`~repro.obs.telemetry.TelemetryPlane` bound to this
        overlay's registry by default; extra keyword arguments —
        ``rules``, ``ring_capacity``, ``clear_after`` — configure it).
        Health transitions dump the flight recorder when tracing is
        also enabled."""
        if self.telemetry is not None:
            return self.telemetry
        if plane is None:
            plane = TelemetryPlane(
                registry=self.metrics, interval=interval, **kwargs
            )
        self.telemetry = plane
        plane.add_transition_hook(self._on_health_transition)
        for broker_id in sorted(self.cores):
            self._effect_pairs(
                broker_id,
                [self.cores[broker_id].enable_telemetry(plane.interval)],
            )
        return plane

    def _on_health_transition(self, broker_id, previous, state, rule, sample):
        if self.tracing is not None:
            self.tracing.flight.dump(
                "health-%s-%s" % (broker_id, state), time=self.sim.now
            )

    def _poke_telemetry(self):
        """Re-arm parked telemetry timers — new work just arrived."""
        if self.telemetry is None or not self._telemetry_parked:
            return
        parked, self._telemetry_parked = self._telemetry_parked, set()
        for broker_id in sorted(parked):
            if broker_id in self._down:
                self._telemetry_parked.add(broker_id)
                continue
            self._effect_pairs(
                broker_id,
                [TimerRequest(TELEMETRY_TIMER, self.telemetry.interval)],
            )

    def transport_deliver(
        self, broker_id: str, message: Message, from_hop: object, hops: int,
        parent_span: Optional[Span] = None,
    ):
        """In-order, deduplicated delivery from the reliable transport."""
        self._broker_receive(broker_id, message, from_hop, hops, parent_span)

    def link_latency(
        self, src: object, dst: object, message: Optional[Message]
    ) -> float:
        """Link delay for one frame (None models a small control frame)."""
        size = 64 if message is None else _size_of(message)
        return self.latency_model.latency(src, dst, size)

    def _broker_receive(
        self, broker_id: str, message: Message, from_hop: str, hops: int,
        parent_span: Optional[Span] = None,
    ):
        if self._down and broker_id in self._down:
            # A directly-scheduled message (client edge) reached a dead
            # broker: hold it and replay on recovery, as a reconnecting
            # client library would.
            self._held_while_down.setdefault(broker_id, []).append(
                (message, from_hop, hops, parent_span)
            )
            self._transport._count("held_while_down", "network.faults.held")
            return
        self.stats.record_broker_message(broker_id, message.kind)
        for tracer in self._tracers:
            tracer.record(self.sim.now, broker_id, message, from_hop)
        tracing = self.tracing
        context = trace_of(message) if tracing is not None else None
        hop_span: Optional[Span] = None
        scope = None
        now = self.sim.now
        if context is not None:
            hop_span = tracing.span(
                context.trace_id,
                _parent_id(parent_span, context),
                "hop", broker_id, now, now,
                kind=message.kind, from_hop=str(from_hop),
            )
            scope = tracing.push_hop(hop_span, self.processing_scale)
        started = time.perf_counter()
        try:
            outbound = self._effect_pairs(
                broker_id, self.cores[broker_id].on_message(message, from_hop)
            )
        finally:
            if scope is not None:
                tracing.pop_hop(scope)
        elapsed = time.perf_counter() - started
        metrics = self.metrics
        if metrics.enabled:
            metrics.histogram("network.dispatch").record(elapsed)
            metrics.counter("network.dispatch.outbound").inc(len(outbound))
        processing, waited = self._charge_processing(broker_id, elapsed)
        if hop_span is not None:
            hop_span.end = now + processing
            hop_span.attrs["fanout"] = len(outbound)
            if waited > 0.0:
                tracing.span(
                    context.trace_id, hop_span.span_id, "queue.wait",
                    broker_id, now, now + waited,
                )
            # Broker-originated control traffic (merger subscriptions,
            # covering retractions, replays) joins the trace that caused
            # it; messages already carrying a context keep theirs.
            for _destination, out_msg in outbound:
                if trace_of(out_msg) is None:
                    stamp(
                        out_msg,
                        TraceContext(context.trace_id, hop_span.span_id),
                    )
        for destination, out_msg in outbound:
            self._forward(
                broker_id, destination, out_msg, processing, hops, hop_span
            )

    def _broker_receive_batch(
        self, broker_id: str, messages: List[Message], from_hop: str, hops: int,
        parents: Optional[Dict[int, Span]] = None,
    ):
        """Batch counterpart of :meth:`_broker_receive` (publications
        only).  Outbound messages are regrouped per destination:
        broker-bound groups travel onward as one batch (when no
        reliable transport is interposed — the transport's
        per-message ordering/dedup would otherwise be bypassed), while
        client deliveries and transport sends degrade to per-message
        forwarding.

        ``parents`` maps inbound ``msg_id`` to the span that caused the
        message.  Per-message hop spans cover the whole batch window
        (the batch is matched as one unit); no hop scope is pushed —
        broker sub-spans cannot be attributed to one message of a batch.
        """
        if self._down and broker_id in self._down:
            held = self._held_while_down.setdefault(broker_id, [])
            for message in messages:
                held.append((
                    message, from_hop, hops,
                    parents.get(message.msg_id) if parents else None,
                ))
                self._transport._count("held_while_down", "network.faults.held")
            return
        for message in messages:
            self.stats.record_broker_message(broker_id, message.kind)
            for tracer in self._tracers:
                tracer.record(self.sim.now, broker_id, message, from_hop)
        tracing = self.tracing
        now = self.sim.now
        started = time.perf_counter()
        outbound = self._effect_pairs(
            broker_id,
            self.cores[broker_id].on_publish_batch(messages, from_hop),
        )
        elapsed = time.perf_counter() - started
        metrics = self.metrics
        if metrics.enabled:
            metrics.histogram("network.dispatch").record(elapsed)
            metrics.counter("network.dispatch.outbound").inc(len(outbound))
        processing, _waited = self._charge_processing(broker_id, elapsed)
        hop_spans: Dict[int, Span] = {}
        if tracing is not None:
            for message in messages:
                context = trace_of(message)
                if context is None:
                    continue
                parent = parents.get(message.msg_id) if parents else None
                hop_spans[message.msg_id] = tracing.span(
                    context.trace_id, _parent_id(parent, context),
                    "hop", broker_id, now, now + processing,
                    kind=message.kind, from_hop=str(from_hop), batched=True,
                )
        grouped: Dict[object, List[Message]] = {}
        for destination, out_msg in outbound:
            grouped.setdefault(destination, []).append(out_msg)
        for destination, dest_messages in grouped.items():
            if (
                destination in self.brokers
                and self._transport is None
                and len(dest_messages) > 1
            ):
                latency = processing + max(
                    self.latency_model.latency(
                        broker_id, destination, _size_of(m)
                    )
                    for m in dest_messages
                )
                next_parents: Optional[Dict[int, Span]] = None
                if tracing is not None:
                    next_parents = {}
                    for out_msg in dest_messages:
                        context = trace_of(out_msg)
                        if context is None:
                            continue
                        hop = hop_spans.get(out_msg.msg_id)
                        next_parents[out_msg.msg_id] = tracing.span(
                            context.trace_id, _parent_id(hop, context),
                            "forward", broker_id,
                            now + processing, now + latency,
                            to=str(destination), kind=out_msg.kind,
                            batched=True,
                        )
                self.sim.schedule(
                    latency,
                    lambda d=destination, ms=dest_messages, ps=next_parents:
                        self._broker_receive_batch(
                            d, ms, broker_id, hops + 1, ps
                        ),
                )
            else:
                for out_msg in dest_messages:
                    self._forward(
                        broker_id, destination, out_msg, processing, hops,
                        hop_spans.get(out_msg.msg_id),
                    )

    def _charge_processing(
        self, broker_id: str, elapsed: float
    ) -> Tuple[float, float]:
        """Turn measured handler wall time into the virtual-clock delay
        charged to this broker's outbound messages (queueing makes the
        charge include time spent waiting for the broker to go idle).

        Returns ``(processing, waited)`` — the total charge and the
        queue-wait portion of it (0 without queueing), so tracing can
        emit ``queue.wait`` spans.
        """
        processing = elapsed * self.processing_scale
        if self.processing_delay:
            processing += self.processing_delay.get(broker_id, 0.0)
        waited = 0.0
        if self.queueing:
            queued_from = max(
                self.sim.now, self._busy_until.get(broker_id, 0.0)
            )
            finish = queued_from + processing
            self._busy_until[broker_id] = finish
            processing = finish - self.sim.now
            waited = queued_from - self.sim.now
            if self.metrics.enabled:
                self.metrics.histogram("network.queue_wait").record(waited)
            if self.telemetry is not None:
                # Track the instantaneous backlog for the sampler: one
                # message in progress from now until its finish time.
                self._queue_len[broker_id] = (
                    self._queue_len.get(broker_id, 0) + 1
                )
                self.sim.schedule(
                    processing,
                    lambda b=broker_id: self._queue_len.__setitem__(
                        b, self._queue_len[b] - 1
                    ),
                )
        return processing, waited

    def _forward(
        self,
        src_broker: str,
        destination: str,
        message: Message,
        processing: float,
        hops: int,
        parent_span: Optional[Span] = None,
    ):
        tracing = self.tracing
        context = trace_of(message) if tracing is not None else None
        now = self.sim.now
        if destination in self.brokers:
            if self._transport is not None:
                fwd = None
                if context is not None:
                    # Point span: the link time (and any retransmission
                    # backoff) belongs to the transport, whose delays
                    # appear as gaps — never overlaps — in the chain.
                    fwd = tracing.span(
                        context.trace_id, _parent_id(parent_span, context),
                        "forward", src_broker,
                        now + processing, now + processing,
                        to=str(destination), kind=message.kind,
                        transport=True,
                    )
                self._transport.send(
                    src_broker, destination, message, hops + 1,
                    first_delay=processing, parent_span=fwd,
                )
                return
            latency = self.latency_model.latency(
                src_broker, destination, _size_of(message)
            )
            fwd = None
            if context is not None:
                fwd = tracing.span(
                    context.trace_id, _parent_id(parent_span, context),
                    "forward", src_broker,
                    now + processing, now + processing + latency,
                    to=str(destination), kind=message.kind,
                )
            self.sim.schedule(
                processing + latency,
                lambda: self._broker_receive(
                    destination, message, src_broker, hops + 1, fwd
                ),
            )
            return
        latency = self.latency_model.latency(
            src_broker, destination, _size_of(message)
        )
        if destination in self.subscribers:
            fwd = None
            if context is not None:
                fwd = tracing.span(
                    context.trace_id, _parent_id(parent_span, context),
                    "forward", src_broker,
                    now + processing, now + processing + latency,
                    to=str(destination), kind=message.kind,
                )
            self.sim.schedule(
                processing + latency,
                lambda: self._client_receive(destination, message, hops, fwd),
            )
        else:
            raise RoutingError(
                "broker %r emitted message to unknown destination %r"
                % (src_broker, destination)
            )

    def _client_receive(
        self, client_id: str, message: Message, hops: int,
        parent_span: Optional[Span] = None,
    ):
        self.stats.record_client_message()
        view = self._view_kinds.pop((client_id, message.msg_id), None)
        client = self.subscribers[client_id]
        fresh = client.receive(message, hops)
        tracing = self.tracing
        if tracing is not None:
            context = trace_of(message)
            if context is not None:
                attrs = {
                    "subscriber": client_id,
                    "fresh": fresh,
                    "hops": hops,
                }
                if view is not None:
                    attrs["view"] = view
                publication = getattr(message, "publication", None)
                if publication is not None:
                    attrs["doc"] = publication.doc_id
                    attrs["path_id"] = publication.path_id
                tracing.span(
                    context.trace_id, _parent_id(parent_span, context),
                    "deliver" if fresh else "dropped.duplicate",
                    client_id, self.sim.now, self.sim.now, **attrs,
                )
        if fresh and isinstance(message, PublishMsg):
            for auditor in self._auditors:
                if view is not None:
                    auditor.observe_delivery(client_id, message, view=view)
                else:
                    auditor.observe_delivery(client_id, message)
            # duplicates (client.receive returned False) never reach the
            # delivery statistics: redelivered publications count once.
            self.stats.record_delivery(
                DeliveryRecord(
                    subscriber_id=client_id,
                    doc_id=message.publication.doc_id,
                    path_id=message.publication.path_id,
                    issued_at=message.issued_at,
                    delivered_at=self.sim.now,
                    hops=hops,
                )
            )
            if self.telemetry is not None:
                self.telemetry.note_delivery(
                    self._client_home.get(client_id),
                    self.sim.now - message.issued_at,
                )

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain all pending traffic; returns processed event count."""
        return self.sim.run(max_events=max_events)

    # -- reporting ----------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, object]:
        """One document with traffic, delay and hot-path timing.

        ``self.metrics.snapshot()`` already carries everything recorded
        while the registry was enabled; this helper additionally folds
        in the :class:`NetworkStats` summary (always collected, even
        with metrics off) and per-broker routing-table gauges.
        """
        for broker_id, broker in self.brokers.items():
            self.metrics.gauge("broker.%s.routing_table" % broker_id).set(
                broker.routing_table_size()
            )
        # hits/misses/stale are hot-path counters (Broker records them
        # per publication); size and evictions are only knowable from
        # the cache objects, so they are folded in here as gauges.
        self.metrics.gauge("broker.match_cache.size").set(
            sum(len(b.match_cache) for b in self.brokers.values())
        )
        self.metrics.gauge("broker.match_cache.evictions").set(
            sum(b.match_cache.evictions for b in self.brokers.values())
        )
        # The matcher-level keys memos publish themselves: they join the
        # covering.tree.keys_cache / matching.linear.keys_cache groups
        # (repro.cache), which a snapshot-time collector sums.
        serves = misses = live = retained = 0
        views_on = False
        for broker in self.brokers.values():
            manager = broker.views
            if manager is None:
                continue
            views_on = True
            serves += manager.serves
            misses += manager.misses
            live += len(manager.views)
            retained += sum(len(v.window) for v in manager.views.values())
        if views_on:
            total = serves + misses
            self.metrics.gauge("views.hit_ratio").set(
                (serves / total) if total else 0.0
            )
            self.metrics.gauge("views.live").set(live)
            self.metrics.gauge("views.retained").set(retained)
        document = self.metrics.snapshot()
        document["network"] = self.stats.summary()
        if self._transport is not None:
            document["transport"] = dict(self._transport.stats)
            document["faults"] = self._transport.plan.describe()
        return document

    def routing_table_sizes(self) -> Dict[str, int]:
        return {
            broker_id: broker.routing_table_size()
            for broker_id, broker in self.brokers.items()
        }

    def restart_broker(self, broker_id: str, with_state: bool = True):
        """Replace a broker in place, as after a process restart.

        With ``with_state`` the new instance is rebuilt from a snapshot
        (see :mod:`repro.broker.persistence`) and routing continues
        unaffected; without it the broker comes back empty — the
        degraded behaviour the persistence layer exists to avoid.
        """
        from repro.broker.persistence import restore, snapshot

        old = self.brokers.get(broker_id)
        if old is None:
            raise TopologyError("unknown broker %r" % broker_id)
        if with_state:
            replacement = restore(snapshot(old), universe=self.universe)
        else:
            replacement = Broker(
                broker_id=broker_id,
                config=self.config,
                universe=self.universe,
            )
            for neighbor in old.neighbors:
                replacement.connect(neighbor)
            for client in old.local_clients:
                replacement.attach_client(client)
        self._rebind_broker(broker_id, replacement)
        return replacement

    def _rebind_broker(self, broker_id: str, replacement: Broker):
        """Swap in a restored/replacement broker, re-wrapping its core."""
        self.cores[broker_id] = BrokerCore(broker=replacement)
        self.brokers[broker_id] = replacement

    def describe(self) -> Dict[str, object]:
        """Topology plus per-broker summaries (CLI / debugging)."""
        return {
            "strategy": self.config.name,
            "brokers": len(self.brokers),
            "links": sorted("%s-%s" % link for link in self.links),
            "subscribers": sorted(self.subscribers),
            "publishers": sorted(self.publishers),
            "stats": self.stats.summary(),
            "per_broker": {
                broker_id: broker.describe()
                for broker_id, broker in sorted(self.brokers.items())
            },
        }

    def delivered_map(self) -> Dict[str, Set[str]]:
        """subscriber id -> set of delivered document ids (the delivery
        -equivalence invariant compares these across strategies)."""
        return {
            client_id: client.delivered_documents()
            for client_id, client in self.subscribers.items()
        }


def _parent_id(parent: Optional[Span], context: TraceContext) -> str:
    """The parent span id for a new span of *context*'s trace: the
    causing span when it belongs to the same trace, else the trace's
    own root (e.g. a stored subscription re-emitted while handling an
    advertisement parents back to its original submit, not into the
    advertisement's trace)."""
    if parent is not None and parent.trace_id == context.trace_id:
        return parent.span_id
    return context.span_id


def _size_of(message: Message) -> int:
    if isinstance(message, PublishMsg):
        return max(message.doc_size_bytes, 64)
    return 64  # control messages are small and size-invariant
