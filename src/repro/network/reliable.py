"""Reliable delivery over faulty links (simulator transport).

With a :class:`~repro.network.faults.FaultPlan` installed, every
broker-to-broker hop of an :class:`~repro.network.overlay.Overlay`
travels through this transport instead of being scheduled directly:

* each directed link is a **channel** carrying sequence-numbered data
  frames and cumulative acknowledgements;
* unacknowledged frames are **retransmitted** after a timeout that
  backs off exponentially (capped), so drops, partitions and crashed
  receivers are survived;
* the receiver **suppresses duplicates** and delivers strictly
  **in order** (out-of-order frames are buffered until the gap fills),
  so reordered and duplicated transmissions never reach a broker
  twice or early;
* acknowledgements are cumulative over *delivered* frames only, so a
  crash cannot lose frames that were buffered but never handed to the
  broker — the peer still holds them unacknowledged and resends them
  on the post-recovery channel epoch.

Together with idempotent broker handlers and crash recovery from
persisted snapshots this gives at-least-once transmission with
effectively exactly-once routing-state updates.

Frames are plain Python here (the simulator passes objects by
reference); the byte-level twin of this protocol lives in
:mod:`repro.network.wire` / :mod:`repro.network.sockets`.

Traffic accounting note: :class:`~repro.network.stats.NetworkStats`
keeps counting *application* messages received by brokers (the paper's
Tables 2–3 metric), which the transport deduplicates.  Physical frame
counts, retransmissions and fault events are reported separately under
``network.transport.*`` / ``network.faults.*`` / ``broker.*`` metrics
and in :attr:`ReliableTransport.stats`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.broker.messages import Message
from repro.network.faults import FaultPlan
from repro.obs.tracing import Span, trace_of


class Channel:
    """One directed link's reliability state.

    Sender-side fields live at ``src`` (sequence allocation, unacked
    frames, per-frame timeout), receiver-side fields at ``dst``
    (next expected sequence, out-of-order buffer); co-locating them in
    one object is a simulator convenience.  ``epoch`` guards against
    frames and acknowledgements from before a channel reset (broker
    restart): stale deliveries are discarded.
    """

    __slots__ = (
        "src", "dst", "epoch", "next_seq", "unacked", "rto_of",
        "attempts", "tx_index", "expected", "buffer",
    )

    def __init__(self, src: object, dst: object):
        self.src = src
        self.dst = dst
        self.epoch = 0
        self.next_seq = 0
        #: seq -> (message, hops, parent span) awaiting cumulative
        #: acknowledgement; the parent span keeps retransmissions (and
        #: post-crash resends) in the message's original trace.
        self.unacked: Dict[int, Tuple[Message, int, Optional[Span]]] = {}
        self.rto_of: Dict[int, float] = {}
        self.attempts: Dict[int, int] = {}
        #: physical transmission counter — the index fed to
        #: :meth:`FaultPlan.decide`, shared by data and ack frames so
        #: the fault schedule of a link direction is one stream.
        self.tx_index = 0
        self.expected = 0
        self.buffer: Dict[int, Tuple[Message, int, Optional[Span]]] = {}

    def reset(self) -> List[Tuple[Message, int, Optional[Span]]]:
        """Start a new epoch, returning the unacked frames in sequence
        order (the caller decides whether to resend them)."""
        pending = [self.unacked[seq] for seq in sorted(self.unacked)]
        self.epoch += 1
        self.next_seq = 0
        self.unacked = {}
        self.rto_of = {}
        self.attempts = {}
        self.expected = 0
        self.buffer = {}
        return pending


class ReliableTransport:
    """Sequence/ack/retransmit machinery for one overlay.

    Args:
        overlay: the owning :class:`~repro.network.overlay.Overlay`.
        plan: the fault schedule every transmission is filtered through.
        max_attempts: per-frame transmission cap; a frame still unacked
            after this many sends is abandoned (counted, never silently)
            so a permanently dead peer cannot spin the simulator
            forever.
    """

    #: retransmission timeouts back off exponentially up to this
    #: multiple of the plan's initial rto.
    RTO_CAP_FACTOR = 64.0

    def __init__(self, overlay, plan: FaultPlan, max_attempts: int = 50):
        self.overlay = overlay
        self.plan = plan
        self.max_attempts = max_attempts
        self.channels: Dict[Tuple[object, object], Channel] = {}
        self.stats: Dict[str, int] = defaultdict(int)

    # -- bookkeeping -------------------------------------------------------

    def channel(self, src: object, dst: object) -> Channel:
        channel = self.channels.get((src, dst))
        if channel is None:
            channel = self.channels[(src, dst)] = Channel(src, dst)
        return channel

    def _count(self, stat: str, metric: str, amount: int = 1):
        self.stats[stat] += amount
        metrics = self.overlay.metrics
        if metrics.enabled:
            metrics.counter(metric).inc(amount)

    # -- sending -----------------------------------------------------------

    def send(
        self, src: object, dst: object, message: Message, hops: int,
        first_delay: float = 0.0, parent_span: Optional[Span] = None,
    ):
        """Reliably deliver *message* over the src→dst link.

        ``hops`` is the hop count the receiver should observe;
        ``first_delay`` models sender-side processing before the first
        transmission (retransmissions skip it).  ``parent_span`` is the
        causing span (the overlay's ``forward``) — every transmission
        of the frame, retransmissions included, stays under it.
        """
        channel = self.channel(src, dst)
        seq = channel.next_seq
        channel.next_seq += 1
        channel.unacked[seq] = (message, hops, parent_span)
        channel.rto_of[seq] = self.plan.rto
        channel.attempts[seq] = 0
        self._count("sent", "network.transport.sent")
        self._transmit(
            channel, seq, message, hops, extra=first_delay,
            parent_span=parent_span,
        )
        self._schedule_retransmit(
            channel, seq, channel.epoch, first_delay + self.plan.rto
        )

    def _transmit(
        self, channel: Channel, seq: int, message: Message, hops: int,
        extra: float = 0.0, parent_span: Optional[Span] = None,
    ):
        channel.attempts[seq] = channel.attempts.get(seq, 0) + 1
        decision = self.plan.decide(
            channel.src, channel.dst, channel.tx_index, self.overlay.sim.now
        )
        channel.tx_index += 1
        self._count("frames", "network.transport.frames")
        if decision.partitioned:
            self._count("partitioned", "network.faults.partitioned")
            return
        if decision.dropped:
            self._count("dropped", "network.faults.dropped")
            return
        if decision.copies > 1:
            self._count("duplicated", "network.faults.duplicated")
        if decision.reordered:
            self._count("reordered", "network.faults.reordered")
        latency = self.overlay.link_latency(channel.src, channel.dst, message)
        epoch = channel.epoch
        for copy in range(decision.copies):
            # the duplicate trails the original by a hair so "arrives
            # twice" and "arrives out of order" stay distinct faults.
            delay = extra + latency + decision.extra_delay + copy * 1e-9
            self.overlay.sim.schedule(
                delay,
                lambda c=channel, e=epoch, s=seq, m=message, h=hops,
                       p=parent_span:
                    self._deliver_data(c, e, s, m, h, p),
            )

    def _schedule_retransmit(
        self, channel: Channel, seq: int, epoch: int, delay: float
    ):
        self.overlay.sim.schedule(
            delay,
            lambda c=channel, e=epoch, s=seq: self._retransmit_check(c, e, s),
        )

    def _retransmit_check(self, channel: Channel, epoch: int, seq: int):
        if epoch != channel.epoch or seq not in channel.unacked:
            return  # acknowledged, or superseded by a channel reset
        if self.overlay.is_down(channel.src):
            return  # sender died; recovery resends its outbox
        if channel.attempts.get(seq, 0) >= self.max_attempts:
            self._count("abandoned", "network.transport.abandoned")
            channel.unacked.pop(seq, None)
            channel.rto_of.pop(seq, None)
            return
        rto = min(
            channel.rto_of[seq] * 2.0, self.plan.rto * self.RTO_CAP_FACTOR
        )
        channel.rto_of[seq] = rto
        self._count("retransmits", "broker.retransmits")
        message, hops, parent_span = channel.unacked[seq]
        tracing = self.overlay.tracing
        if tracing is not None:
            context = trace_of(message)
            if context is not None:
                parent_id = (
                    parent_span.span_id
                    if parent_span is not None
                    and parent_span.trace_id == context.trace_id
                    else context.span_id
                )
                tracing.span(
                    context.trace_id, parent_id, "retransmit", channel.src,
                    self.overlay.sim.now, self.overlay.sim.now,
                    to=str(channel.dst), seq=seq,
                    attempt=channel.attempts.get(seq, 0),
                )
        self._transmit(channel, seq, message, hops, parent_span=parent_span)
        self._schedule_retransmit(channel, seq, channel.epoch, rto)

    # -- receiving ---------------------------------------------------------

    def _deliver_data(
        self, channel: Channel, epoch: int, seq: int, message: Message,
        hops: int, parent_span: Optional[Span] = None,
    ):
        if epoch != channel.epoch:
            self._count("stale", "network.transport.stale")
            return
        if self.overlay.is_down(channel.dst):
            self._count("crash_dropped", "network.faults.crash_dropped")
            return
        if seq < channel.expected or seq in channel.buffer:
            self._count("dup_suppressed", "broker.dup_suppressed")
            tracing = self.overlay.tracing
            if tracing is not None:
                context = trace_of(message)
                if context is not None:
                    # The duplicate joins the original trace — it must
                    # never look like a fresh operation.
                    parent_id = (
                        parent_span.span_id
                        if parent_span is not None
                        and parent_span.trace_id == context.trace_id
                        else context.span_id
                    )
                    tracing.span(
                        context.trace_id, parent_id, "dropped.duplicate",
                        channel.dst, self.overlay.sim.now,
                        self.overlay.sim.now,
                        seq=seq, src=str(channel.src),
                    )
            self._send_ack(channel)
            return
        channel.buffer[seq] = (message, hops, parent_span)
        while channel.expected in channel.buffer:
            ready, ready_hops, ready_parent = channel.buffer.pop(
                channel.expected
            )
            channel.expected += 1
            self.overlay.transport_deliver(
                channel.dst, ready, channel.src, ready_hops, ready_parent
            )
        self._send_ack(channel)

    def _send_ack(self, channel: Channel):
        """Cumulative ack of everything delivered in order so far.

        Acks physically ride the reverse link direction, so they draw
        fault decisions from the reverse channel's transmission stream
        (and can be dropped, delayed or duplicated like any frame —
        a lost ack just means one more retransmission).
        """
        reverse = self.channel(channel.dst, channel.src)
        decision = self.plan.decide(
            reverse.src, reverse.dst, reverse.tx_index, self.overlay.sim.now
        )
        reverse.tx_index += 1
        self._count("acks", "network.transport.acks")
        if decision.partitioned:
            self._count("partitioned", "network.faults.partitioned")
            return
        if decision.dropped:
            self._count("dropped", "network.faults.dropped")
            return
        ack = channel.expected - 1
        epoch = channel.epoch
        latency = self.overlay.link_latency(channel.dst, channel.src, None)
        for copy in range(decision.copies):
            self.overlay.sim.schedule(
                latency + decision.extra_delay + copy * 1e-9,
                lambda c=channel, e=epoch, a=ack: self._deliver_ack(c, e, a),
            )

    def _deliver_ack(self, channel: Channel, epoch: int, ack: int):
        if epoch != channel.epoch or self.overlay.is_down(channel.src):
            return
        for seq in [s for s in channel.unacked if s <= ack]:
            del channel.unacked[seq]
            channel.rto_of.pop(seq, None)
            channel.attempts.pop(seq, None)

    # -- crash recovery ----------------------------------------------------

    def reset_links_of(self, broker_id: object, resend_outbox: bool):
        """Start fresh channel epochs on every link touching *broker_id*
        (both directions) and resend what the reset surfaced.

        The surviving neighbour always resends its unacknowledged
        frames; the restarted broker's own outbox is resent only when
        its state was recovered (``resend_outbox``) — a stateless
        restart forgets in-flight output exactly like a real process.
        """
        for (src, dst), channel in sorted(
            self.channels.items(), key=lambda item: (str(item[0][0]), str(item[0][1]))
        ):
            if broker_id not in (src, dst):
                continue
            pending = channel.reset()
            if src == broker_id and not resend_outbox:
                self._count(
                    "forgotten_outbox", "network.transport.forgotten",
                    len(pending),
                )
                continue
            for message, hops, parent_span in pending:
                # Post-recovery redelivery keeps the original causal
                # context: the message's trace stamp and parent span
                # both survive the channel epoch reset.
                self.send(src, dst, message, hops, parent_span=parent_span)

    def in_flight(self) -> int:
        """Unacknowledged frames across all channels (debug/tests)."""
        return sum(len(c.unacked) for c in self.channels.values())
