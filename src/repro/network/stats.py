"""Traffic and delay accounting for overlay experiments.

The paper's Tables 2–3 report *network traffic* — the total number of
messages (advertisements, subscriptions and publications) received by
all brokers — and *notification delay*, the time between a publication
being issued and a subscriber receiving the (first matching path of
the) document.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import MetricsRegistry


@dataclass(frozen=True)
class DeliveryRecord:
    """One document delivery at one subscriber."""

    subscriber_id: str
    doc_id: str
    path_id: int
    issued_at: float
    delivered_at: float
    hops: int

    @property
    def delay(self) -> float:
        return self.delivered_at - self.issued_at


@dataclass
class NetworkStats:
    """Counters shared by every broker and client of one overlay.

    When a :class:`~repro.obs.MetricsRegistry` is attached (the overlay
    attaches its own), every recorded event is mirrored into it —
    ``network.messages`` / ``network.messages.<kind>`` counters, the
    ``network.client_messages`` counter and the ``network.delivery_delay``
    histogram — so one registry snapshot carries traffic, delay and
    hot-path timing together.
    """

    broker_messages: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    messages_by_kind: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    client_messages: int = 0
    deliveries: List[DeliveryRecord] = field(default_factory=list)
    registry: Optional[MetricsRegistry] = None

    # -- recording -------------------------------------------------------

    def record_broker_message(self, broker_id: str, kind: str):
        self.broker_messages[broker_id] += 1
        self.messages_by_kind[kind] += 1
        registry = self.registry
        if registry is not None and registry.enabled:
            registry.counter("network.messages").inc()
            registry.counter("network.messages." + kind).inc()

    def record_client_message(self):
        self.client_messages += 1
        registry = self.registry
        if registry is not None and registry.enabled:
            registry.counter("network.client_messages").inc()

    def record_delivery(self, record: DeliveryRecord):
        self.deliveries.append(record)
        registry = self.registry
        if registry is not None and registry.enabled:
            registry.histogram("network.delivery_delay").record(record.delay)
            registry.histogram("network.delivery_hops").record(record.hops)

    # -- report ------------------------------------------------------------

    @property
    def network_traffic(self) -> int:
        """Total messages received by brokers (Tables 2–3 metric)."""
        return sum(self.broker_messages.values())

    def traffic_of_kind(self, kind: str) -> int:
        return self.messages_by_kind.get(kind, 0)

    def delivered_documents(self) -> Dict[Tuple[str, str], DeliveryRecord]:
        """First delivery per (subscriber, document)."""
        firsts: Dict[Tuple[str, str], DeliveryRecord] = {}
        for record in self.deliveries:
            key = (record.subscriber_id, record.doc_id)
            current = firsts.get(key)
            if current is None or record.delivered_at < current.delivered_at:
                firsts[key] = record
        return firsts

    def mean_notification_delay(self) -> Optional[float]:
        """Mean first-delivery delay in seconds, or None without
        deliveries."""
        firsts = self.delivered_documents()
        if not firsts:
            return None
        return sum(r.delay for r in firsts.values()) / len(firsts)

    def delay_percentile(self, fraction: float) -> Optional[float]:
        """First-delivery delay percentile (0 < fraction <= 1), e.g.
        ``delay_percentile(0.95)`` for p95; None without deliveries."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        delays = sorted(
            record.delay for record in self.delivered_documents().values()
        )
        if not delays:
            return None
        index = max(0, int(round(fraction * len(delays))) - 1)
        return delays[index]

    def delays_by_hops(self) -> Dict[int, List[float]]:
        """First-delivery delays grouped by broker hop count (the x-axis
        of Figures 10–11)."""
        grouped: Dict[int, List[float]] = defaultdict(list)
        for record in self.delivered_documents().values():
            grouped[record.hops].append(record.delay)
        return dict(grouped)

    def summary(self) -> Dict[str, object]:
        mean_delay = self.mean_notification_delay()
        p95 = self.delay_percentile(0.95)
        return {
            "network_traffic": self.network_traffic,
            "by_kind": dict(self.messages_by_kind),
            "deliveries": len(self.deliveries),
            "documents_delivered": len(self.delivered_documents()),
            "mean_delay_ms": None if mean_delay is None else mean_delay * 1e3,
            "p95_delay_ms": None if p95 is None else p95 * 1e3,
        }
