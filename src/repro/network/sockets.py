"""A real TCP deployment of the broker.

The paper deploys its routers on a 20-node cluster and on PlanetLab.
This module provides the equivalent runnable artifact: each
:class:`SocketBrokerNode` hosts one :class:`~repro.broker.broker.Broker`
behind a TCP listener, speaking the newline-delimited JSON protocol of
:mod:`repro.network.wire`.  Neighbour brokers and clients connect over
sockets; everything the simulator exercises in-process runs unchanged
over real connections.

A deployment is driven programmatically::

    deployment = LocalDeployment(config=RoutingConfig.full())
    deployment.add_broker("b1")
    deployment.add_broker("b2")
    deployment.link("b1", "b2")
    deployment.start()
    publisher = deployment.publisher("pub", "b1")
    subscriber = deployment.subscriber("sub", "b2")
    ...
    deployment.stop()

Threading model: one acceptor plus one reader thread per connection,
feeding a per-node inbox queue drained by a single dispatcher thread
(brokers are single-threaded state machines, exactly as in the
simulator).  Reader threads only ack and enqueue, so a slow broker's
backlog is *visible*: the inbox depth is the queue-saturation gauge
the telemetry plane samples, and ``service_delay`` turns one node into
a deterministic bottleneck for overload scenarios.  The implementation
favours clarity over raw throughput — it exists to show the routing
layer is transport-independent and to back the integration tests in
tests/test_sockets.py.

Reliability: every message travels as a sequence-numbered data frame
(:func:`repro.network.wire.encode_data_frame`) acknowledged per frame;
a retransmission thread resends unacknowledged frames with exponential
backoff and the receiver suppresses duplicate sequence numbers, so the
deployment survives lossy transports.  TCP itself never loses bytes —
the loss the layer heals is injected via ``loss_rate`` (dropping
physical sends before the socket), which is how the integration tests
exercise retransmission without leaving localhost.
"""

from __future__ import annotations

import queue
import random
import socket
import threading
import time
import traceback
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.broker.broker import Broker
from repro.broker.messages import Message, PublishMsg
from repro.broker.strategies import RoutingConfig
from repro.errors import RoutingError
from repro.network.wire import (
    decode_frame,
    encode_ack_frame,
    encode_data_frame,
)
from repro.obs.tracing import Span, mint_context, next_span_id, stamp, trace_of
from repro.runtime.base import scaled


def stamp_view(message: Message, kind: str):
    """Attach the view-delivery class ("serve"/"replay") to a message
    object, the same out-of-band way trace contexts travel (works on
    frozen dataclasses; local deliveries only — never wire-encoded by
    the transport, only folded into drained delivery objects)."""
    object.__setattr__(message, "view", kind)


def view_of(message: Message) -> Optional[str]:
    return getattr(message, "view", None)


class _Connection:
    """One reliable framed peer connection with a reader thread.

    Args:
        sock: the connected socket.
        peer_name: broker/client id of the far end.
        on_message: ``callback(peer_name, message)`` for each
            application message (duplicates are suppressed before it).
        drop_send: optional fault hook ``f(payload_bytes) -> bool``;
            returning True discards that physical transmission (the
            retransmission loop recovers it).
        rto: initial retransmission timeout, seconds.
        max_attempts: per-frame transmission cap before giving up.
    """

    #: retransmission backoff doubles up to this multiple of the
    #: initial rto — uncapped, a lossy streak can push the next retry
    #: out tens of seconds and stall an otherwise-healthy link.
    RTO_CAP_FACTOR = 8.0

    def __init__(
        self,
        sock: socket.socket,
        peer_name: str,
        on_message,
        drop_send: Optional[Callable[[bytes], bool]] = None,
        rto: float = 0.05,
        max_attempts: int = 30,
    ):
        self.sock = sock
        self.peer_name = peer_name
        self._on_message = on_message
        self._drop_send = drop_send
        self._rto = rto
        self._max_attempts = max_attempts
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._next_seq = 0
        #: seq -> [payload, attempts, resend-deadline (monotonic)]
        self._unacked: Dict[int, list] = {}
        self._delivered_seqs: Set[int] = set()
        #: Data frames acked but whose dispatch has not returned yet.
        #: The ack races ahead of the routing work it acknowledges, so a
        #: quiescence probe that only watches unacked counts can declare
        #: the network idle while a handler is still running — this
        #: counter closes that window (incremented before the ack is
        #: transmitted, decremented when the handler returns).
        self._inflight_rx = 0
        self.stats: Dict[str, int] = {
            "sent": 0, "retransmits": 0, "dup_suppressed": 0,
            "acks": 0, "abandoned": 0, "injected_drops": 0,
        }
        self._thread = threading.Thread(target=self._read_loop, daemon=True)
        self._retransmitter = threading.Thread(
            target=self._retransmit_loop, daemon=True
        )
        self._closed = threading.Event()

    def start(self):
        self._thread.start()
        self._retransmitter.start()

    def send(self, message: Message):
        with self._state_lock:
            seq = self._next_seq
            self._next_seq += 1
            payload = encode_data_frame(seq, message)
            self._unacked[seq] = [
                payload, 1, time.monotonic() + self._rto
            ]
            self.stats["sent"] += 1
        self._transmit(payload)

    def _transmit(self, payload: bytes):
        if self._drop_send is not None and self._drop_send(payload):
            self.stats["injected_drops"] += 1
            return
        with self._send_lock:
            try:
                self.sock.sendall(payload)
            except OSError:
                self._closed.set()

    def _retransmit_loop(self):
        tick = max(self._rto / 4.0, 0.005)
        while not self._closed.is_set():
            time.sleep(tick)
            now = time.monotonic()
            due = []
            with self._state_lock:
                for seq, record in list(self._unacked.items()):
                    payload, attempts, deadline = record
                    if now < deadline:
                        continue
                    if attempts >= self._max_attempts:
                        del self._unacked[seq]
                        self.stats["abandoned"] += 1
                        continue
                    record[1] = attempts + 1
                    record[2] = now + min(
                        self._rto * (2 ** attempts),
                        self._rto * self.RTO_CAP_FACTOR,
                    )
                    due.append(payload)
                    self.stats["retransmits"] += 1
            for payload in due:
                obs.inc("broker.retransmits")
                self._transmit(payload)

    def unacked_count(self) -> int:
        with self._state_lock:
            return len(self._unacked)

    def pending_count(self) -> int:
        """Frames whose reliable exchange is incomplete from this
        connection's point of view: sent-but-unacked plus
        received-and-acked-but-not-yet-dispatched."""
        with self._state_lock:
            return len(self._unacked) + self._inflight_rx

    def close(self):
        self._closed.set()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()

    def _read_loop(self):
        buffer = b""
        while not self._closed.is_set():
            try:
                chunk = self.sock.recv(65536)
            except OSError:
                break
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line.strip():
                    self._handle_line(line)
        self._closed.set()

    def _handle_line(self, line: bytes):
        frame = decode_frame(line)
        if frame.kind == "ack":
            with self._state_lock:
                self._unacked.pop(frame.seq, None)
            return
        if frame.kind == "data":
            # Ack first (even duplicates: their first ack may be the
            # one that got lost), deliver once.  The ack echoes the data
            # frame's trace id so both directions of a reliable exchange
            # are attributable to the same causal trace.  The inflight
            # counter goes up before the ack leaves: by the time the
            # sender sees its unacked count drop, this side already
            # advertises the pending dispatch, so a cross-node
            # quiescence probe can never observe "all idle" with the
            # handler still to run.
            self.stats["acks"] += 1
            with self._state_lock:
                self._inflight_rx += 1
            self._transmit(encode_ack_frame(frame.seq, trace_id=frame.trace_id))
            try:
                with self._state_lock:
                    if frame.seq in self._delivered_seqs:
                        self.stats["dup_suppressed"] += 1
                        obs.inc("broker.dup_suppressed")
                        return
                    self._delivered_seqs.add(frame.seq)
                self._on_message(self.peer_name, frame.message)
            finally:
                with self._state_lock:
                    self._inflight_rx -= 1
            return
        # raw legacy frame: deliver as-is (no reliability contract)
        self._on_message(self.peer_name, frame.message)


class SocketBrokerNode:
    """One broker process-equivalent: a TCP listener plus the broker.

    ``loss_rate`` injects sender-side transmission loss (each physical
    frame send, data or ack, is discarded with that probability) so the
    reliability layer's retransmission/dedup paths can be exercised
    over loopback; ``loss_seed`` makes the injection reproducible and
    ``rto`` tunes the retransmission timeout.
    """

    def __init__(
        self,
        broker_id: str,
        config: Optional[RoutingConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        universe=None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
        rto: float = 0.05,
        service_delay: float = 0.0,
    ):
        self.broker = Broker(broker_id, config=config, universe=universe)
        self.broker_id = broker_id
        self.loss_rate = loss_rate
        self.rto = rto
        #: Extra seconds the dispatcher sleeps before each message — a
        #: deterministic bottleneck knob for overload scenarios.
        self.service_delay = service_delay
        #: Optional :class:`~repro.obs.flight.FlightRecorderSet`; when
        #: set, every handled message records a "hop" span into the
        #: ring so a crash (or health transition) dump carries the
        #: node's recent history.
        self.flight = None
        self._loss_rng = random.Random((loss_seed, broker_id).__repr__())
        self._loss_lock = threading.Lock()
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()
        self._connections: Dict[str, _Connection] = {}
        self._lock = threading.RLock()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True
        )
        self._stopping = threading.Event()
        #: Inbound messages awaiting the dispatcher thread.
        self._inbox: "queue.Queue[Tuple[str, Message]]" = queue.Queue()
        #: Enqueued-or-dispatching count (the queue-depth gauge).
        self._dispatch_pending = 0
        self._pending_lock = threading.Lock()
        self._dispatch_thread = threading.Thread(
            target=self._dispatch_loop, daemon=True
        )
        #: Tracebacks from handler failures (the dispatcher must not
        #: die silently; tests and the worker loop surface these).
        self.errors: List[str] = []
        self.delivered: List[Tuple[str, Message]] = []
        #: With ``record_hops`` every handled message appends
        #: ``(trace_id, kind, from_hop, detail)`` — the per-process
        #: evidence the multiprocess deployment assembles into causal-
        #: completeness checks (a parent cannot see a child process's
        #: TraceRecorder).  *detail* is the XPE or advertisement id, so
        #: a divergence between deployments can be replayed exactly.
        self.record_hops = False
        self.hop_log: List[Tuple[Optional[str], str, str, Optional[str]]] = []

    def _drop_send(self, _payload: bytes) -> bool:
        if self.loss_rate <= 0.0:
            return False
        with self._loss_lock:
            return self._loss_rng.random() < self.loss_rate

    def _make_connection(self, sock: socket.socket, peer: str) -> _Connection:
        return _Connection(
            sock,
            peer,
            self._on_message,
            drop_send=self._drop_send if self.loss_rate > 0.0 else None,
            rto=self.rto,
        )

    def transport_stats(self) -> Dict[str, int]:
        """Aggregated reliability counters across this node's links."""
        totals: Dict[str, int] = {}
        with self._lock:
            connections = list(self._connections.values())
        for connection in connections:
            for key, value in connection.stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def pending_count(self) -> int:
        """Incomplete work from this node's point of view: unfinished
        reliable exchanges across its links plus inbox messages not yet
        dispatched — zero on every node is quiescence."""
        with self._lock:
            connections = list(self._connections.values())
        with self._pending_lock:
            inbox = self._dispatch_pending
        return (
            sum(connection.pending_count() for connection in connections)
            + inbox
        )

    def inbox_depth(self) -> int:
        """Messages enqueued or being dispatched right now — the
        queue-saturation gauge the telemetry sampler reads."""
        with self._pending_lock:
            return self._dispatch_pending

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        self._accept_thread.start()
        self._dispatch_thread.start()

    def stop(self):
        self._stopping.set()
        self._listener.close()
        with self._lock:
            connections = list(self._connections.values())
        for connection in connections:
            connection.close()

    # -- wiring --------------------------------------------------------------

    def connect_to(self, peer: "SocketBrokerNode"):
        """Dial a neighbouring in-process node (the passive side learns
        our name via the handshake line)."""
        self.dial(peer.broker_id, peer.host, peer.port)

    def dial(self, peer_id: str, host: str, port: int):
        """Dial a neighbouring broker by address — the form the
        multiprocess deployment uses, where the peer node object lives
        in another OS process and only its listen address is known."""
        sock = socket.create_connection((host, port))
        sock.sendall(("HELLO %s\n" % self.broker_id).encode("ascii"))
        connection = self._make_connection(sock, peer_id)
        with self._lock:
            self._connections[peer_id] = connection
            self.broker.connect(peer_id)
        connection.start()

    def attach_local_client(self, client_id: str, deliver):
        """Register an in-process client; *deliver* is called with each
        message routed to it (publishers never receive anything)."""
        with self._lock:
            self.broker.attach_client(client_id)
            self._client_sinks = getattr(self, "_client_sinks", {})
            self._client_sinks[client_id] = deliver

    def _accept_loop(self):
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                break
            threading.Thread(
                target=self._handshake, args=(sock,), daemon=True
            ).start()

    def _handshake(self, sock: socket.socket):
        buffer = b""
        while b"\n" not in buffer:
            chunk = sock.recv(4096)
            if not chunk:
                sock.close()
                return
            buffer += chunk
        line, rest = buffer.split(b"\n", 1)
        words = line.decode("ascii", "replace").split()
        if len(words) != 2 or words[0] != "HELLO":
            sock.close()
            return
        peer_name = words[1]
        connection = self._make_connection(sock, peer_name)
        with self._lock:
            self._connections[peer_name] = connection
            if peer_name not in self.broker.neighbors:
                self.broker.connect(peer_name)
        connection.start()
        if rest.strip():
            for extra in rest.split(b"\n"):
                if extra.strip():
                    connection._handle_line(extra)

    # -- message plumbing ------------------------------------------------------

    def submit_local(self, client_id: str, message: Message):
        """A locally attached client hands in a message."""
        self._on_message(client_id, message)

    def _on_message(self, from_hop: str, message: Message):
        """Enqueue one inbound message for the dispatcher thread.

        Called from reader threads and local clients; the pending count
        goes up before the enqueue so a quiescence probe can never see
        "all idle" with a message between queue and handler."""
        with self._pending_lock:
            self._dispatch_pending += 1
        self._inbox.put((from_hop, message))

    def _dispatch_loop(self):
        while True:
            try:
                from_hop, message = self._inbox.get(timeout=0.05)
            except queue.Empty:
                if self._stopping.is_set():
                    return
                continue
            try:
                if self.service_delay > 0.0:
                    time.sleep(self.service_delay)
                self._dispatch(from_hop, message)
            except Exception:
                self.errors.append(traceback.format_exc())
            finally:
                with self._pending_lock:
                    self._dispatch_pending -= 1

    def _dispatch(self, from_hop: str, message: Message):
        started = time.monotonic()
        self._handle(from_hop, message)
        if self.flight is not None:
            context = trace_of(message)
            self.flight.record(Span(
                context.trace_id if context is not None else "-",
                next_span_id(), None, "hop", self.broker_id,
                started, time.monotonic(),
                attrs={"kind": message.kind, "from": str(from_hop)},
            ))

    def _handle(self, from_hop: str, message: Message):
        with self._lock:
            if self.record_hops:
                context = trace_of(message)
                detail = getattr(message, "expr", None)
                if detail is None:
                    detail = getattr(message, "adv_id", None)
                self.hop_log.append((
                    context.trace_id if context is not None else None,
                    message.kind, str(from_hop),
                    str(detail) if detail is not None else None,
                ))
            outbound = self.broker.handle(message, from_hop)
            # This node drives the raw broker, not a BrokerCore, so the
            # view marks/replays the core would classify into effects
            # are drained here (see repro.broker.core and docs/views.md).
            served = self.broker._take_view_served()
            replays = self.broker._take_pending_replays()
            sinks = getattr(self, "_client_sinks", {})
            for destination, out_msg in outbound:
                if destination in sinks:
                    if served and (destination, out_msg.msg_id) in served:
                        # Rides the message object like the trace stamp;
                        # the multiprocess worker folds it into the wire
                        # object so the parent-side auditor can classify
                        # the delivery.
                        stamp_view(out_msg, "serve")
                    self.delivered.append((destination, out_msg))
                    sinks[destination](out_msg)
                else:
                    connection = self._connections.get(destination)
                    if connection is None:
                        raise RoutingError(
                            "broker %r has no connection to %r"
                            % (self.broker_id, destination)
                        )
                    connection.send(out_msg)
            for client_id, messages, _group in replays:
                sink = sinks.get(client_id)
                if sink is None:
                    continue
                for out_msg in messages:
                    stamp_view(out_msg, "replay")
                    self.delivered.append((client_id, out_msg))
                    sink(out_msg)


class LocalDeployment:
    """A multi-broker TCP deployment on localhost.

    ``loss_rate``/``loss_seed``/``rto`` propagate to every node's
    connections (see :class:`SocketBrokerNode`) so a whole deployment
    can run over injected-lossy links.
    """

    def __init__(
        self,
        config: Optional[RoutingConfig] = None,
        universe=None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
        rto: float = 0.05,
    ):
        self.config = config
        self.universe = universe
        self.loss_rate = loss_rate
        self.loss_seed = loss_seed
        self.rto = rto
        self.nodes: Dict[str, SocketBrokerNode] = {}
        self._links: Set[Tuple[str, str]] = set()
        self._clients: Dict[str, "DeployedClient"] = {}

    def add_broker(self, broker_id: str) -> SocketBrokerNode:
        node = SocketBrokerNode(
            broker_id,
            config=self.config,
            universe=self.universe,
            loss_rate=self.loss_rate,
            loss_seed=self.loss_seed,
            rto=self.rto,
        )
        self.nodes[broker_id] = node
        return node

    def transport_stats(self) -> Dict[str, int]:
        """Reliability counters aggregated across the deployment."""
        totals: Dict[str, int] = {}
        for node in self.nodes.values():
            for key, value in node.transport_stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def link(self, a: str, b: str):
        self._links.add((a, b))

    def start(self, handshake_timeout: float = 5.0):
        handshake_timeout = scaled(handshake_timeout)
        for node in self.nodes.values():
            node.start()
        for a, b in sorted(self._links):
            self.nodes[a].connect_to(self.nodes[b])
        # connect_to wires the dialing side synchronously, but the
        # passive side registers the connection (and the broker
        # neighbour) in its handshake thread.  A client attached right
        # after start() could otherwise submit to a broker that does not
        # know its neighbours yet, and the message would never flood.
        deadline = time.time() + handshake_timeout
        while time.time() < deadline:
            if all(
                a in self.nodes[b]._connections
                and a in self.nodes[b].broker.neighbors
                for a, b in self._links
            ):
                return
            time.sleep(0.005)
        raise RoutingError(
            "deployment links did not finish handshaking within %.1fs"
            % handshake_timeout
        )

    def stop(self):
        for node in self.nodes.values():
            node.stop()

    def publisher(self, client_id: str, broker_id: str) -> "DeployedClient":
        return self._attach(client_id, broker_id)

    def subscriber(self, client_id: str, broker_id: str) -> "DeployedClient":
        return self._attach(client_id, broker_id)

    def _attach(self, client_id: str, broker_id: str) -> "DeployedClient":
        client = DeployedClient(client_id, self.nodes[broker_id])
        self.nodes[broker_id].attach_local_client(client_id, client._deliver)
        self._clients[client_id] = client
        return client

    def settle(self, timeout: float = 1.0):
        """Crude quiescence wait for tests: sleep-poll until no node has
        handled a new message — and no frame is awaiting an ack — for a
        short grace period.  *timeout* is in unscaled seconds —
        ``REPRO_TEST_TIMEOUT_SCALE`` multiplies every deadline here."""
        timeout = scaled(timeout)

        def totals():
            handled = tuple(
                sum(node.broker.stats.values()) for node in self.nodes.values()
            )
            pending = sum(node.pending_count() for node in self.nodes.values())
            return handled, pending

        deadline = time.time() + timeout
        last = totals()
        stable_since = time.time()
        while time.time() < deadline:
            time.sleep(0.02)
            current = totals()
            if current != last:
                last = current
                stable_since = time.time()
            elif current[1] == 0 and time.time() - stable_since > scaled(0.1):
                return True
        return False


class DeployedClient:
    """A client attached to a deployed broker over the local API."""

    def __init__(self, client_id: str, node: SocketBrokerNode):
        self.client_id = client_id
        self._node = node
        self.received: List[Message] = []
        self._lock = threading.Lock()

    def _deliver(self, message: Message):
        with self._lock:
            self.received.append(message)

    def submit(self, message: Message):
        # Client-originated operations mint their causal trace context
        # here; it rides every data frame the message travels on
        # (retransmits included — they resend the original payload).
        if trace_of(message) is None:
            stamp(message, mint_context())
        self._node.submit_local(self.client_id, message)

    def delivered_documents(self) -> Set[str]:
        with self._lock:
            return {
                msg.publication.doc_id
                for msg in self.received
                if isinstance(msg, PublishMsg)
            }
