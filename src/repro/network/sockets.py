"""A real TCP deployment of the broker.

The paper deploys its routers on a 20-node cluster and on PlanetLab.
This module provides the equivalent runnable artifact: each
:class:`SocketBrokerNode` hosts one :class:`~repro.broker.broker.Broker`
behind a TCP listener, speaking the newline-delimited JSON protocol of
:mod:`repro.network.wire`.  Neighbour brokers and clients connect over
sockets; everything the simulator exercises in-process runs unchanged
over real connections.

A deployment is driven programmatically::

    deployment = LocalDeployment(config=RoutingConfig.full())
    deployment.add_broker("b1")
    deployment.add_broker("b2")
    deployment.link("b1", "b2")
    deployment.start()
    publisher = deployment.publisher("pub", "b1")
    subscriber = deployment.subscriber("sub", "b2")
    ...
    deployment.stop()

Threading model: one acceptor plus one reader thread per connection;
each broker serialises its message handling with a lock (brokers are
single-threaded state machines, exactly as in the simulator).  The
implementation favours clarity over raw throughput — it exists to show
the routing layer is transport-independent and to back the integration
tests in tests/test_sockets.py.
"""

from __future__ import annotations

import socket
import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.broker.broker import Broker
from repro.broker.messages import Message, PublishMsg
from repro.broker.strategies import RoutingConfig
from repro.errors import RoutingError
from repro.network.wire import decode, encode


class _Connection:
    """One framed peer connection with a reader thread."""

    def __init__(self, sock: socket.socket, peer_name: str, on_message):
        self.sock = sock
        self.peer_name = peer_name
        self._on_message = on_message
        self._send_lock = threading.Lock()
        self._thread = threading.Thread(target=self._read_loop, daemon=True)
        self._closed = threading.Event()

    def start(self):
        self._thread.start()

    def send(self, message: Message):
        payload = encode(message)
        with self._send_lock:
            try:
                self.sock.sendall(payload)
            except OSError:
                self._closed.set()

    def close(self):
        self._closed.set()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()

    def _read_loop(self):
        buffer = b""
        while not self._closed.is_set():
            try:
                chunk = self.sock.recv(65536)
            except OSError:
                break
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line.strip():
                    self._on_message(self.peer_name, decode(line))
        self._closed.set()


class SocketBrokerNode:
    """One broker process-equivalent: a TCP listener plus the broker."""

    def __init__(
        self,
        broker_id: str,
        config: Optional[RoutingConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        universe=None,
    ):
        self.broker = Broker(broker_id, config=config, universe=universe)
        self.broker_id = broker_id
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()
        self._connections: Dict[str, _Connection] = {}
        self._lock = threading.RLock()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True
        )
        self._stopping = threading.Event()
        self.delivered: List[Tuple[str, Message]] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        self._accept_thread.start()

    def stop(self):
        self._stopping.set()
        self._listener.close()
        with self._lock:
            connections = list(self._connections.values())
        for connection in connections:
            connection.close()

    # -- wiring --------------------------------------------------------------

    def connect_to(self, peer: "SocketBrokerNode"):
        """Dial a neighbouring broker (the passive side learns our name
        via the handshake line)."""
        sock = socket.create_connection((peer.host, peer.port))
        sock.sendall(("HELLO %s\n" % self.broker_id).encode("ascii"))
        connection = _Connection(sock, peer.broker_id, self._on_message)
        with self._lock:
            self._connections[peer.broker_id] = connection
            self.broker.connect(peer.broker_id)
        connection.start()

    def attach_local_client(self, client_id: str, deliver):
        """Register an in-process client; *deliver* is called with each
        message routed to it (publishers never receive anything)."""
        with self._lock:
            self.broker.attach_client(client_id)
            self._client_sinks = getattr(self, "_client_sinks", {})
            self._client_sinks[client_id] = deliver

    def _accept_loop(self):
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                break
            threading.Thread(
                target=self._handshake, args=(sock,), daemon=True
            ).start()

    def _handshake(self, sock: socket.socket):
        buffer = b""
        while b"\n" not in buffer:
            chunk = sock.recv(4096)
            if not chunk:
                sock.close()
                return
            buffer += chunk
        line, rest = buffer.split(b"\n", 1)
        words = line.decode("ascii", "replace").split()
        if len(words) != 2 or words[0] != "HELLO":
            sock.close()
            return
        peer_name = words[1]
        connection = _Connection(sock, peer_name, self._on_message)
        with self._lock:
            self._connections[peer_name] = connection
            if peer_name not in self.broker.neighbors:
                self.broker.connect(peer_name)
        connection.start()
        if rest.strip():
            for extra in rest.split(b"\n"):
                if extra.strip():
                    self._on_message(peer_name, decode(extra))

    # -- message plumbing ------------------------------------------------------

    def submit_local(self, client_id: str, message: Message):
        """A locally attached client hands in a message."""
        self._on_message(client_id, message)

    def _on_message(self, from_hop: str, message: Message):
        with self._lock:
            outbound = self.broker.handle(message, from_hop)
            sinks = getattr(self, "_client_sinks", {})
            for destination, out_msg in outbound:
                if destination in sinks:
                    self.delivered.append((destination, out_msg))
                    sinks[destination](out_msg)
                else:
                    connection = self._connections.get(destination)
                    if connection is None:
                        raise RoutingError(
                            "broker %r has no connection to %r"
                            % (self.broker_id, destination)
                        )
                    connection.send(out_msg)


class LocalDeployment:
    """A multi-broker TCP deployment on localhost."""

    def __init__(self, config: Optional[RoutingConfig] = None, universe=None):
        self.config = config
        self.universe = universe
        self.nodes: Dict[str, SocketBrokerNode] = {}
        self._links: Set[Tuple[str, str]] = set()
        self._clients: Dict[str, "DeployedClient"] = {}

    def add_broker(self, broker_id: str) -> SocketBrokerNode:
        node = SocketBrokerNode(
            broker_id, config=self.config, universe=self.universe
        )
        self.nodes[broker_id] = node
        return node

    def link(self, a: str, b: str):
        self._links.add((a, b))

    def start(self):
        for node in self.nodes.values():
            node.start()
        for a, b in sorted(self._links):
            self.nodes[a].connect_to(self.nodes[b])

    def stop(self):
        for node in self.nodes.values():
            node.stop()

    def publisher(self, client_id: str, broker_id: str) -> "DeployedClient":
        return self._attach(client_id, broker_id)

    def subscriber(self, client_id: str, broker_id: str) -> "DeployedClient":
        return self._attach(client_id, broker_id)

    def _attach(self, client_id: str, broker_id: str) -> "DeployedClient":
        client = DeployedClient(client_id, self.nodes[broker_id])
        self.nodes[broker_id].attach_local_client(client_id, client._deliver)
        self._clients[client_id] = client
        return client

    def settle(self, timeout: float = 1.0):
        """Crude quiescence wait for tests: sleep-poll until no node has
        handled a new message for a short grace period."""
        import time

        def totals():
            return tuple(
                sum(node.broker.stats.values()) for node in self.nodes.values()
            )

        deadline = time.time() + timeout
        last = totals()
        stable_since = time.time()
        while time.time() < deadline:
            time.sleep(0.02)
            current = totals()
            if current != last:
                last = current
                stable_since = time.time()
            elif time.time() - stable_since > 0.1:
                return True
        return False


class DeployedClient:
    """A client attached to a deployed broker over the local API."""

    def __init__(self, client_id: str, node: SocketBrokerNode):
        self.client_id = client_id
        self._node = node
        self.received: List[Message] = []
        self._lock = threading.Lock()

    def _deliver(self, message: Message):
        with self._lock:
            self.received.append(message)

    def submit(self, message: Message):
        self._node.submit_local(self.client_id, message)

    def delivered_documents(self) -> Set[str]:
        with self._lock:
            return {
                msg.publication.doc_id
                for msg in self.received
                if isinstance(msg, PublishMsg)
            }
