"""A small LRU cache for routing hot paths.

Used for the :func:`repro.covering.algorithms.covers` memo, the
matcher-level keys memos and each broker's publication-match cache.
Deliberately minimal: hashable keys, ``get``/``put``/``clear``, bounded
size with least-recently-used eviction.  Hit/miss/eviction counts are
plain integer attributes — the hot path never touches the metrics
registry; counters surface at snapshot time instead.

Pass ``metric_prefix`` to join a named **cache group**: a single
registered collector sums every live member's counters into
``<prefix>.hits`` / ``.misses`` / ``.evictions`` / ``.size`` gauges
whenever any registry snapshot or export runs (groups hold weak
references, so short-lived caches — e.g. those of restarted brokers —
drop out rather than leak).
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Dict

from repro import obs

#: metric prefix -> weak set of live caches publishing under it.
_GROUPS: Dict[str, "weakref.WeakSet"] = {}


@obs.register_collector
def _collect_cache_groups(registry):
    for prefix, group in _GROUPS.items():
        hits = misses = evictions = size = 0
        for cache in group:
            hits += cache.hits
            misses += cache.misses
            evictions += cache.evictions
            size += len(cache)
        registry.gauge(prefix + ".hits").set(hits)
        registry.gauge(prefix + ".misses").set(misses)
        registry.gauge(prefix + ".evictions").set(evictions)
        registry.gauge(prefix + ".size").set(size)


class LRUCache:
    """Bounded mapping with least-recently-used eviction."""

    __slots__ = (
        "maxsize",
        "hits",
        "misses",
        "evictions",
        "_data",
        "__weakref__",
    )

    def __init__(self, maxsize: int, metric_prefix: str = None):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()
        if metric_prefix is not None:
            _GROUPS.setdefault(metric_prefix, weakref.WeakSet()).add(self)

    def get(self, key, default=None):
        """The cached value (refreshing its recency), or *default*."""
        data = self._data
        try:
            value = data[key]
        except KeyError:
            self.misses += 1
            return default
        data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value):
        """Insert/replace *key*, evicting the oldest entry when full."""
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1

    def clear(self):
        """Drop every entry (lifetime counters are kept)."""
        self._data.clear()

    def __len__(self):
        return len(self._data)

    def __contains__(self, key):
        return key in self._data

    def stats(self) -> Dict[str, int]:
        """Lifetime counters plus current size (for describe()/tests)."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self):
        return "LRUCache(%d/%d, hits=%d, misses=%d)" % (
            len(self._data),
            self.maxsize,
            self.hits,
            self.misses,
        )
