"""Metric primitives and the registry (see docs/observability.md).

Three instrument types, all dependency-free and cheap enough for the
router's hot paths:

* :class:`Counter` — a monotonically increasing integer (messages
  handled, covering checks performed, subtrees pruned).
* :class:`Gauge` — a last-value-wins number (routing-table size,
  simulator queue depth).
* :class:`Histogram` — a streaming log-bucketed distribution with
  p50/p95/p99 quantiles; timers record wall seconds into one.

The bucket layout is geometric: bucket ``i`` spans
``[MIN_VALUE * GROWTH**i, MIN_VALUE * GROWTH**(i+1))`` with
``GROWTH = 2 ** 0.125`` (~9% per bucket), so a quantile read off a
bucket's geometric midpoint carries a bounded ~4.5% relative error.
Results are additionally clamped to the observed ``[min, max]``, which
makes degenerate inputs (all-equal values, extreme quantiles) exact.
Values beyond the last bucket land in a single overflow bucket and
report as the observed maximum.

A disabled :class:`MetricsRegistry` costs one attribute check per
instrumentation site: ``timer()`` returns a shared no-op context
manager (no allocation, no clock read) and ``inc``/``observe`` return
immediately.

Instruments are safe under concurrent access: the asyncio backend's
shard-probe executor threads record into the same registry the event
loop reads, and the telemetry sampler takes snapshots/deltas while
recording continues.  Counters and histograms serialise mutation and
snapshotting behind a per-instrument lock (gauge writes are a single
atomic assignment and stay lock-free); the registry serialises
instrument creation so two threads asking for the same name get the
same object.
"""

from __future__ import annotations

import json
import math
import threading
from time import perf_counter
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: Lower edge of bucket 0: 1 nanosecond (timers record seconds).
MIN_VALUE = 1e-9
#: Geometric bucket growth factor; 8 buckets per power of two.
GROWTH = 2.0 ** 0.125
_LOG_GROWTH = math.log(GROWTH)
#: Buckets 0..MAX_BUCKETS-1 are regular; MAX_BUCKETS is the overflow
#: bucket (reached around 2**56 seconds — values that large are bugs,
#: but they must not crash the instrumented code).
MAX_BUCKETS = 520


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1):
        with self._lock:
            self.value += amount

    def snapshot(self) -> int:
        return self.value

    def __repr__(self):
        return "Counter(%d)" % self.value


class Gauge:
    """A last-value-wins measurement.

    ``set`` is a single attribute assignment — already atomic — so the
    gauge carries no lock."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float):
        self.value = value

    def snapshot(self) -> float:
        return self.value

    def __repr__(self):
        return "Gauge(%r)" % self.value


def bucket_index(value: float) -> int:
    """Log bucket for *value*; sub-minimum values collapse into bucket
    0, oversized ones into the overflow bucket."""
    if value < MIN_VALUE:
        return 0
    index = int(math.log(value / MIN_VALUE) / _LOG_GROWTH)
    return index if index < MAX_BUCKETS else MAX_BUCKETS


def bucket_bounds(index: int) -> Tuple[float, float]:
    """``[lower, upper)`` edges of a regular bucket."""
    return (MIN_VALUE * GROWTH ** index, MIN_VALUE * GROWTH ** (index + 1))


class Histogram:
    """Streaming log-bucketed value distribution."""

    __slots__ = ("_buckets", "count", "total", "min", "max", "_lock")

    def __init__(self):
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        # Reentrant: snapshot() reads quantiles while holding the lock.
        self._lock = threading.RLock()

    def record(self, value: float):
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            index = bucket_index(value)
            self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def overflow_count(self) -> int:
        """Observations beyond the last regular bucket."""
        return self._buckets.get(MAX_BUCKETS, 0)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, fraction: float) -> Optional[float]:
        """The value at *fraction* (0 < fraction <= 1), e.g. 0.95 for
        p95; None while empty.  Bucket resolution bounds the relative
        error at ~GROWTH/2; the result is clamped to [min, max]."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        with self._lock:
            if not self.count:
                return None
            rank = max(1, math.ceil(fraction * self.count))
            if rank >= self.count:
                return self.max
            cumulative = 0
            first = True
            for index in sorted(self._buckets):
                cumulative += self._buckets[index]
                if cumulative >= rank:
                    if first:
                        # Every value below this rank shares the lowest
                        # occupied bucket; the observed minimum is the
                        # most faithful representative (and makes
                        # single-bucket and extreme-skew inputs exact).
                        return self.min
                    if index >= MAX_BUCKETS:
                        return self.max
                    lower, upper = bucket_bounds(index)
                    midpoint = math.sqrt(lower * upper)
                    return min(max(midpoint, self.min), self.max)
                first = False
            return self.max  # unreachable: cumulative == count >= rank

    def bucket_counts(self) -> List[Tuple[int, int]]:
        """Sorted ``(bucket_index, count)`` pairs — a consistent copy
        exporters can iterate without racing recorders."""
        with self._lock:
            return sorted(self._buckets.items())

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other* into this histogram (bucket-wise addition)."""
        with other._lock:
            other_buckets = dict(other._buckets)
            other_count = other.count
            other_total = other.total
            other_min = other.min
            other_max = other.max
        with self._lock:
            for index, count in other_buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + count
            self.count += other_count
            self.total += other_total
            if other_min is not None and (self.min is None or other_min < self.min):
                self.min = other_min
            if other_max is not None and (self.max is None or other_max > self.max):
                self.max = other_max
        return self

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "mean": self.mean,
                "min": self.min,
                "max": self.max,
                "p50": self.quantile(0.50),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
                "overflow": self.overflow_count,
            }

    def __repr__(self):
        return "Histogram(count=%d, mean=%r)" % (self.count, self.mean)


class _NoopTimer:
    """Shared do-nothing context manager for disabled registries."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NOOP_TIMER = _NoopTimer()


#: Snapshot-time collectors.  Hot-path caches keep plain integer
#: counters (no per-operation registry traffic at all) and register a
#: collector here that publishes them as gauges whenever *any* registry
#: is snapshot — so ``repro stats`` and the benchmark artifacts see
#: lifetime cache figures without the caches ever importing obs state
#: into their fast paths.
_COLLECTORS: List[Callable[["MetricsRegistry"], None]] = []


def register_collector(
    fn: Callable[["MetricsRegistry"], None],
) -> Callable[["MetricsRegistry"], None]:
    """Register *fn* to run at every registry snapshot (idempotent);
    usable as a decorator."""
    if fn not in _COLLECTORS:
        _COLLECTORS.append(fn)
    return fn


class _Timer:
    """Context manager recording elapsed wall seconds into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram

    def __enter__(self):
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._histogram.record(perf_counter() - self._start)
        return False


class MetricsRegistry:
    """Named counters, gauges and histograms behind one snapshot.

    ``enabled`` is a plain attribute so instrumentation sites can
    branch on it without a method call; use :meth:`enable` /
    :meth:`disable` rather than writing it directly.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- lifecycle --------------------------------------------------------

    def enable(self):
        self.enabled = True
        return self

    def disable(self):
        self.enabled = False
        return self

    def reset(self):
        """Drop every recorded value (instrument objects are recreated
        on next use, so cached references go stale deliberately)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        return self

    # -- instruments ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.get(name)
                if counter is None:
                    counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.get(name)
                if gauge is None:
                    gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram()
        return histogram

    # -- recording shortcuts ----------------------------------------------

    def inc(self, name: str, amount: int = 1):
        """Increment a counter; no-op while disabled."""
        if self.enabled:
            self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float):
        if self.enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, value: float):
        """Record one histogram observation; no-op while disabled."""
        if self.enabled:
            self.histogram(name).record(value)

    def timer(self, name: str):
        """Context manager timing a block into histogram *name*.

        Disabled registries hand back a shared no-op object: no
        allocation, no clock read.
        """
        if not self.enabled:
            return NOOP_TIMER
        return _Timer(self.histogram(name))

    # -- export -----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """One JSON-serialisable document with every metric.

        Registered collectors run first, publishing cache counters (and
        similar lazily-exported state) into this registry as gauges."""
        for collect in _COLLECTORS:
            collect(self)
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": {name: c.snapshot() for name, c in counters},
            "gauges": {name: g.snapshot() for name, g in gauges},
            "histograms": {name: h.snapshot() for name, h in histograms},
        }

    def counter_values(
        self, prefixes: Optional[Tuple[str, ...]] = None
    ) -> Dict[str, int]:
        """Current cumulative counter values, optionally filtered by
        name prefix — the input the telemetry plane differentiates into
        per-interval deltas."""
        with self._lock:
            items = list(self._counters.items())
        if prefixes is None:
            return {name: c.value for name, c in items}
        return {
            name: c.value
            for name, c in items
            if name.startswith(prefixes)
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def iter_metrics(self) -> Iterator[Tuple[str, str, object]]:
        """Yield ``(kind, name, instrument)`` triples (collectors run
        first, as in :meth:`snapshot`)."""
        for collect in _COLLECTORS:
            collect(self)
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        for name, counter in counters:
            yield "counter", name, counter
        for name, gauge in gauges:
            yield "gauge", name, gauge
        for name, histogram in histograms:
            yield "histogram", name, histogram

    def metric_names(self) -> List[str]:
        with self._lock:
            return sorted(
                list(self._counters)
                + list(self._gauges)
                + list(self._histograms)
            )

    def __repr__(self):
        return "MetricsRegistry(enabled=%r, metrics=%d)" % (
            self.enabled,
            len(self.metric_names()),
        )
