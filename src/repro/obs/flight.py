"""Per-broker flight recorder: bounded span rings with JSON dumps.

A :class:`FlightRecorder` keeps the last *N* spans a broker emitted —
the black box a crashed process would leave behind.  The overlay feeds
every span into its broker's ring via :class:`FlightRecorderSet`, and
the set is dumped to JSON automatically when

* a broker crashes (:meth:`Overlay.crash_broker`),
* the audit oracle reports a violation (:meth:`AuditOracle.check`),
* a timed fault partition heals, or
* on demand (``repro trace --flight-dump DIR``).

Dumps are plain JSON documents; with an ``out_dir`` configured each
dump is also written to ``flight-<seq>-<reason>.json`` there, which is
what the CI ``tracing`` job uploads as an artifact on failure.
"""

from __future__ import annotations

import json
import os
import re
from collections import deque
from typing import Dict, List, Optional


class FlightRecorder:
    """The last ``capacity`` spans of one broker (or client node)."""

    def __init__(self, broker_id: object, capacity: int = 256):
        self.broker_id = broker_id
        self.capacity = capacity
        self._ring = deque(maxlen=capacity)

    def record(self, span):
        self._ring.append(span)

    def spans(self) -> List[object]:
        """Ring contents, oldest first."""
        return list(self._ring)

    def __len__(self):
        return len(self._ring)

    def __repr__(self):
        return "FlightRecorder(%r, %d/%d)" % (
            self.broker_id, len(self._ring), self.capacity
        )


class FlightRecorderSet:
    """One ring per node, plus the dump machinery.

    Args:
        capacity: ring size per node.
        out_dir: when set, every dump is also written there as
            ``flight-<seq>-<reason>.json`` (the directory is created on
            first use).
    """

    #: in-memory dumps kept for inspection; later dumps are still
    #: written to ``out_dir`` but not retained in memory.
    MAX_DUMPS = 32

    def __init__(self, capacity: int = 256, out_dir: Optional[str] = None):
        self.capacity = capacity
        self.out_dir = out_dir
        self.recorders: Dict[object, FlightRecorder] = {}
        self.dumps: List[dict] = []
        self._dump_seq = 0

    def recorder(self, broker_id: object) -> FlightRecorder:
        recorder = self.recorders.get(broker_id)
        if recorder is None:
            recorder = self.recorders[broker_id] = FlightRecorder(
                broker_id, self.capacity
            )
        return recorder

    def record(self, span):
        if span.broker_id is not None:
            self.recorder(span.broker_id).record(span)

    def dump(
        self,
        reason: str,
        brokers=None,
        time: Optional[float] = None,
        out_dir: Optional[str] = None,
    ) -> dict:
        """Snapshot the rings (all of them, or just *brokers*) into one
        JSON-ready document; returns it with its ``path`` key set when
        it was also written to disk."""
        ids = sorted(self.recorders, key=str) if brokers is None else list(brokers)
        document = {
            "reason": reason,
            "time": time,
            "sequence": self._dump_seq,
            "brokers": {
                str(broker_id): [
                    span.to_dict()
                    for span in (
                        self.recorders[broker_id].spans()
                        if broker_id in self.recorders
                        else ()
                    )
                ]
                for broker_id in ids
            },
        }
        self._dump_seq += 1
        directory = out_dir if out_dir is not None else self.out_dir
        if directory:
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(
                directory,
                "flight-%03d-%s.json" % (document["sequence"], _slug(reason)),
            )
            with open(path, "w") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
            document["path"] = path
        if len(self.dumps) < self.MAX_DUMPS:
            self.dumps.append(document)
        return document


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-") or "dump"
