"""Live telemetry plane: periodic per-broker sampling, SLO health
monitoring and the operational views built on top (see
docs/telemetry.md).

The observability stack before this module was post-mortem: one
aggregate :class:`~repro.obs.registry.MetricsRegistry` snapshot at
quiescence, a flight dump only on crash.  The paper's evaluation (§4)
reasons about broker load, routing-table size and notification delay
over *time*, so the backends now drive a shared sampling pipeline:

* the simulator arms a ``telemetry-sample`` :class:`TimerRequest` on
  every broker core and samples on virtual time,
* :class:`~repro.runtime.asyncio_backend.AsyncioRuntime` runs a
  wall-clock sampler task alongside the actors,
* :class:`~repro.runtime.multiprocess.MultiprocessDeployment`
  piggybacks sampling frames on the control channel it already polls.

All three feed a :class:`TelemetryPlane`: per-broker bounded
time-series rings (progressive downsampling on overflow — the ring
always spans the whole run at degrading resolution), counter *deltas*
per interval (the plane differentiates the cumulative registry
counters), and a :class:`HealthMonitor` that evaluates declarative
:class:`SLORule` thresholds into a per-broker health state machine::

    healthy -> degraded -> overloaded

States advance at most one level per sample (so an overload always
passes through ``degraded``) and recover one level after
``clear_after`` consecutive healthy samples.  Every breach increments
a ``telemetry.alert.<rule>`` counter; every transition is recorded and
published to hooks — the backends dump the flight recorder there.

The plane is exposed three ways: ``repro top`` (live table),
:class:`PrometheusEndpoint` (opt-in HTTP or textfile exposition using
:func:`repro.obs.export.to_prometheus`), and a
``telemetry-timeline.json`` artifact consumed by ``repro timeline``.
"""

from __future__ import annotations

import json
import math
import os
import threading
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.obs.export import to_prometheus
from repro.obs.registry import MetricsRegistry

#: Default sampling interval (virtual seconds in the simulator, wall
#: seconds on the long-running backends).
DEFAULT_INTERVAL = 0.05

#: Ring identifier for cluster-wide registry-counter deltas.
CLUSTER = "_cluster"

HEALTHY = "healthy"
DEGRADED = "degraded"
OVERLOADED = "overloaded"

#: Severity order of the health states.
LEVELS: Dict[str, int] = {HEALTHY: 0, DEGRADED: 1, OVERLOADED: 2}
_BY_LEVEL = {level: state for state, level in LEVELS.items()}

#: Registry-counter prefixes the plane differentiates into the cluster
#: ring by default — the hot families, not the whole namespace.
DEFAULT_COUNTER_PREFIXES: Tuple[str, ...] = (
    "broker.",
    "network.",
    "runtime.",
    "matching.",
    "views.",
    "telemetry.",
)


class TelemetrySample:
    """One timestamped bundle of metric values for one broker."""

    __slots__ = ("time", "values")

    def __init__(self, time: float, values: Dict[str, float]):
        self.time = time
        self.values = values

    def to_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {"time": self.time}
        document.update(self.values)
        return document

    def __repr__(self):
        return "TelemetrySample(t=%.3f, %d values)" % (
            self.time,
            len(self.values),
        )


class TelemetryRing:
    """Fixed-capacity time series with progressive downsampling.

    When the ring fills, every other retained sample is dropped and the
    acceptance stride doubles: a run of any length fits in ``capacity``
    samples whose spacing degrades geometrically but whose span always
    covers the whole run.  ``dropped`` counts stride-skipped arrivals.
    """

    __slots__ = ("capacity", "samples", "stride", "dropped", "_arrivals")

    def __init__(self, capacity: int = 256):
        self.capacity = max(4, int(capacity))
        self.samples: List[TelemetrySample] = []
        self.stride = 1
        self.dropped = 0
        self._arrivals = 0

    def append(self, sample: TelemetrySample) -> bool:
        """Offer *sample*; returns True if retained."""
        arrival = self._arrivals
        self._arrivals += 1
        if arrival % self.stride:
            self.dropped += 1
            return False
        if len(self.samples) >= self.capacity:
            # Keep every other sample; arrivals already kept are the
            # multiples of the old stride, so samples[::2] is exactly
            # the multiples of the doubled stride — past and future
            # acceptance stay aligned.
            self.samples = self.samples[::2]
            self.stride *= 2
            if arrival % self.stride:
                self.dropped += 1
                return False
        self.samples.append(sample)
        return True

    def last(self) -> Optional[TelemetrySample]:
        return self.samples[-1] if self.samples else None

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[TelemetrySample]:
        return iter(self.samples)

    def to_dict(self) -> Dict[str, object]:
        return {
            "stride": self.stride,
            "dropped": self.dropped,
            "samples": [sample.to_dict() for sample in self.samples],
        }


@dataclass(frozen=True)
class SLORule:
    """One declarative service-level objective.

    ``metric`` is looked up in each sample's values; absent metrics are
    skipped (a broker without views never breaches the view-hit-ratio
    floor).  ``op`` is ``">"`` for ceilings and ``"<"`` for floors.
    Crossing ``degraded`` marks the sample degraded; crossing
    ``overloaded`` (when set) marks it overloaded.
    """

    name: str
    metric: str
    op: str = ">"
    degraded: float = 0.0
    overloaded: Optional[float] = None

    def _breaches(self, value: float, threshold: float) -> bool:
        if self.op == ">":
            return value > threshold
        if self.op == "<":
            return value < threshold
        raise ValueError("SLORule op must be '>' or '<', got %r" % self.op)

    def evaluate(self, values: Dict[str, float]) -> Optional[str]:
        """The state this sample supports, or None if the metric is
        absent."""
        value = values.get(self.metric)
        if value is None:
            return None
        if self.overloaded is not None and self._breaches(
            value, self.overloaded
        ):
            return OVERLOADED
        if self._breaches(value, self.degraded):
            return DEGRADED
        return HEALTHY


def default_slo_rules(
    queue_depth: Tuple[float, float] = (64.0, 256.0),
    retransmit_rate: Tuple[float, float] = (20.0, 100.0),
    shard_skew: Tuple[float, float] = (4.0, 8.0),
    view_hit_ratio: float = 0.05,
    delivery_p99: Tuple[float, float] = (0.5, 2.0),
) -> List[SLORule]:
    """The stock rule set (see docs/telemetry.md for the rationale
    behind each threshold)."""
    return [
        SLORule("queue-depth", "queue_depth", ">", *queue_depth),
        SLORule("retransmit-rate", "retransmits", ">", *retransmit_rate),
        SLORule("shard-skew", "shard_skew", ">", *shard_skew),
        SLORule("view-hit-ratio", "view_hit_ratio", "<", view_hit_ratio),
        SLORule("delivery-p99", "delivery_p99", ">", *delivery_p99),
        # The audit oracle's stateless-recovery fallback means delivered
        # sets are no longer being checked exactly; surface that as a
        # degraded broker so alerts stay consistent with audit mode.
        SLORule("audit-degraded", "audit_degraded", ">", 0.5),
    ]


class HealthTransition:
    """One recorded state change."""

    __slots__ = ("broker_id", "time", "previous", "state", "rule")

    def __init__(self, broker_id, time, previous, state, rule):
        self.broker_id = broker_id
        self.time = time
        self.previous = previous
        self.state = state
        self.rule = rule

    def to_dict(self) -> Dict[str, object]:
        return {
            "broker": self.broker_id,
            "time": self.time,
            "from": self.previous,
            "to": self.state,
            "rule": self.rule,
        }

    def __repr__(self):
        return "HealthTransition(%s %s->%s at %.3f via %s)" % (
            self.broker_id,
            self.previous,
            self.state,
            self.time,
            self.rule,
        )


class HealthMonitor:
    """Per-broker health state machine over :class:`SLORule` verdicts.

    Escalation moves one level per sample toward the worst breached
    rule; recovery requires ``clear_after`` consecutive fully-healthy
    samples and also steps one level at a time.  Breaches increment
    ``telemetry.alert.<rule>`` counters in the registry; transitions
    are kept and fanned out to ``on_transition`` callbacks.
    """

    def __init__(
        self,
        rules: Optional[Iterable[SLORule]] = None,
        registry: Optional[MetricsRegistry] = None,
        clear_after: int = 3,
        on_transition: Optional[Callable] = None,
    ):
        self.rules = (
            list(rules) if rules is not None else default_slo_rules()
        )
        self.registry = registry
        self.clear_after = max(1, int(clear_after))
        self.states: Dict[object, str] = {}
        self.transitions: List[HealthTransition] = []
        self.alerts: Dict[str, int] = {}
        self._healthy_streak: Dict[object, int] = {}
        self._hooks: List[Callable] = []
        if on_transition is not None:
            self._hooks.append(on_transition)

    def add_hook(self, hook: Callable):
        """Register ``hook(broker_id, previous, state, rule, sample)``
        to run on every transition."""
        self._hooks.append(hook)

    def state(self, broker_id) -> str:
        return self.states.get(broker_id, HEALTHY)

    def observe(self, broker_id, sample: TelemetrySample) -> str:
        """Fold one sample into *broker_id*'s state; returns the new
        state."""
        worst = HEALTHY
        worst_rule: Optional[str] = None
        for rule in self.rules:
            verdict = rule.evaluate(sample.values)
            if verdict is None or verdict == HEALTHY:
                continue
            self.alerts[rule.name] = self.alerts.get(rule.name, 0) + 1
            if self.registry is not None:
                self.registry.inc("telemetry.alert." + rule.name)
            if LEVELS[verdict] > LEVELS[worst]:
                worst = verdict
                worst_rule = rule.name
        current = self.state(broker_id)
        target = current
        if LEVELS[worst] > LEVELS[current]:
            # Escalate one level at a time so every overload narrates
            # the full healthy -> degraded -> overloaded sequence.
            target = _BY_LEVEL[LEVELS[current] + 1]
            self._healthy_streak[broker_id] = 0
        elif worst == HEALTHY and current != HEALTHY:
            streak = self._healthy_streak.get(broker_id, 0) + 1
            self._healthy_streak[broker_id] = streak
            if streak >= self.clear_after:
                target = _BY_LEVEL[LEVELS[current] - 1]
                self._healthy_streak[broker_id] = 0
        else:
            self._healthy_streak[broker_id] = 0
        if target != current:
            self.states[broker_id] = target
            transition = HealthTransition(
                broker_id, sample.time, current, target, worst_rule
            )
            self.transitions.append(transition)
            if self.registry is not None:
                self.registry.inc("telemetry.transitions")
            for hook in list(self._hooks):
                hook(broker_id, current, target, worst_rule, sample)
        else:
            self.states.setdefault(broker_id, current)
        return self.state(broker_id)

    def to_dict(self) -> Dict[str, object]:
        return {
            "states": {
                str(broker): state
                for broker, state in sorted(
                    self.states.items(), key=lambda kv: str(kv[0])
                )
            },
            "transitions": [t.to_dict() for t in self.transitions],
            "alerts": dict(sorted(self.alerts.items())),
        }


def _p99(values: Iterable[float]) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(0, math.ceil(0.99 * len(ordered)) - 1)
    return ordered[rank]


class TelemetryPlane:
    """The shared sampling pipeline all three backends feed.

    ``record(broker_id, now, gauges=..., counters=...)`` stores one
    sample: gauges verbatim, counters as deltas against the previous
    cumulative value for that broker (the plane remembers the last
    reading, so backends hand over raw monotonic totals).  Delivery
    latencies noted via :meth:`note_delivery` surface as a rolling
    ``delivery_p99`` gauge.  Each sample immediately runs through the
    :class:`HealthMonitor`.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        interval: float = DEFAULT_INTERVAL,
        ring_capacity: int = 256,
        rules: Optional[Iterable[SLORule]] = None,
        clear_after: int = 3,
        counter_prefixes: Tuple[str, ...] = DEFAULT_COUNTER_PREFIXES,
        delay_window: int = 256,
    ):
        self.registry = registry
        self.interval = float(interval)
        self.ring_capacity = int(ring_capacity)
        self.counter_prefixes = tuple(counter_prefixes)
        self.monitor = HealthMonitor(
            rules=rules, registry=registry, clear_after=clear_after
        )
        self.rings: Dict[object, TelemetryRing] = {}
        self.samples_taken = 0
        self.delay_window = int(delay_window)
        self._last_counters: Dict[object, Dict[str, float]] = {}
        self._last_registry: Dict[str, int] = {}
        self._last_cluster_time: Optional[float] = None
        self._delays: Dict[object, Deque[float]] = {}
        self._lock = threading.Lock()

    # -- wiring ------------------------------------------------------------

    def add_transition_hook(self, hook: Callable):
        """``hook(broker_id, previous, state, rule, sample)`` fires on
        every health transition (backends dump the flight recorder
        here)."""
        self.monitor.add_hook(hook)

    def ring(self, broker_id) -> TelemetryRing:
        ring = self.rings.get(broker_id)
        if ring is None:
            ring = self.rings[broker_id] = TelemetryRing(self.ring_capacity)
        return ring

    # -- recording ---------------------------------------------------------

    def note_delivery(self, broker_id, delay: float):
        """Feed one end-to-end notification delay observed at
        *broker_id* (its rolling p99 becomes the ``delivery_p99``
        gauge)."""
        if broker_id is None:
            return
        with self._lock:
            window = self._delays.get(broker_id)
            if window is None:
                window = self._delays[broker_id] = deque(
                    maxlen=self.delay_window
                )
            window.append(delay)

    def record(
        self,
        broker_id,
        now: float,
        gauges: Optional[Dict[str, float]] = None,
        counters: Optional[Dict[str, float]] = None,
    ) -> str:
        """Store one sample for *broker_id* at time *now*; returns the
        broker's (possibly updated) health state."""
        with self._lock:
            values: Dict[str, float] = dict(gauges or {})
            if counters:
                last = self._last_counters.setdefault(broker_id, {})
                for name, raw in counters.items():
                    values[name] = max(0.0, raw - last.get(name, 0.0))
                    last[name] = raw
            window = self._delays.get(broker_id)
            if window:
                values.setdefault("delivery_p99", _p99(window))
            sample = TelemetrySample(now, values)
            self.ring(broker_id).append(sample)
            self.samples_taken += 1
            if self.registry is not None:
                self.registry.inc("telemetry.samples")
        return self.monitor.observe(broker_id, sample)

    def record_cluster(self, now: float):
        """Differentiate the registry's counters (filtered by
        ``counter_prefixes``) into the cluster-wide ring."""
        if self.registry is None:
            return
        current = self.registry.counter_values(self.counter_prefixes)
        with self._lock:
            values = {
                name: raw - self._last_registry.get(name, 0)
                for name, raw in current.items()
            }
            self._last_registry = current
            self._last_cluster_time = now
            self.ring(CLUSTER).append(TelemetrySample(now, values))

    def maybe_record_cluster(self, now: float):
        """Rate-limited :meth:`record_cluster` — backends call this
        once per broker sweep and the plane keeps one cluster sample
        per interval."""
        last = self._last_cluster_time
        if last is None or now - last >= self.interval * 0.99:
            self.record_cluster(now)

    # -- reading -----------------------------------------------------------

    def health(self) -> Dict[object, str]:
        """Current state of every broker that has ever been sampled."""
        return {
            broker: self.monitor.state(broker)
            for broker in self.rings
            if broker != CLUSTER
        }

    def broker_ids(self) -> List[object]:
        return sorted(
            (broker for broker in self.rings if broker != CLUSTER),
            key=str,
        )

    def publish_health_gauges(
        self, registry: Optional[MetricsRegistry] = None
    ):
        """Set ``telemetry.health.<broker>`` gauges (0 healthy,
        1 degraded, 2 overloaded) so the Prometheus endpoint exposes
        live states."""
        target = registry or self.registry
        if target is None:
            return
        for broker, state in self.health().items():
            target.set_gauge("telemetry.health.%s" % broker, LEVELS[state])

    def timeline_document(
        self, meta: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        """The ``telemetry-timeline.json`` artifact."""
        document: Dict[str, object] = {
            "version": 1,
            "interval": self.interval,
            "samples_taken": self.samples_taken,
        }
        if meta:
            document["meta"] = dict(meta)
        document["brokers"] = {
            str(broker): self.rings[broker].to_dict()
            for broker in sorted(self.rings, key=str)
        }
        document["health"] = self.monitor.to_dict()
        return document

    def write_timeline(
        self, path: str, meta: Optional[Dict[str, object]] = None
    ) -> str:
        with open(path, "w") as handle:
            json.dump(
                self.timeline_document(meta=meta),
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        return path


# -- per-broker gauge extraction -------------------------------------------

def broker_gauges(broker, min_view_probes: int = 8) -> Dict[str, float]:
    """Duck-typed gauge bundle from a :class:`~repro.broker.Broker`.

    Works on any backend's broker object: routing-table size, match
    cache hit ratio, shard skew and rebalance count (sharded engine),
    DFA size (shared engines) and view hit ratio / retention (when
    views are enabled).  The view hit ratio is withheld until
    ``min_view_probes`` lookups so cold caches don't trip the floor
    rule."""
    gauges: Dict[str, float] = {}
    size = getattr(broker, "routing_table_size", None)
    if callable(size):
        gauges["routing_table"] = float(size())
    engine = getattr(broker, "shared", None)
    stats = engine.stats() if engine is not None else {}
    if "max_shard_exprs" in stats:
        shard_count = max(1, stats.get("shard_count", 1))
        sharded_exprs = max(
            0, stats.get("exprs", 0) - stats.get("floating_exprs", 0)
        )
        mean = sharded_exprs / shard_count
        if mean > 0:
            gauges["shard_skew"] = stats["max_shard_exprs"] / mean
        gauges["shard_rebalances"] = float(stats.get("rebalances", 0))
        hits = stale = misses = 0
        dfa_states = 0
        for shard in stats.get("shards", ()):
            hits += shard.get("cache_hits", 0)
            stale += shard.get("cache_stale", 0)
            misses += shard.get("cache_misses", 0)
            dfa_states += shard.get("dfa_states", 0)
        probes = hits + stale + misses
        if probes:
            gauges["match_cache_hit_ratio"] = hits / probes
        gauges["dfa_states"] = float(dfa_states)
    elif "dfa_states" in stats:
        gauges["dfa_states"] = float(stats["dfa_states"])
    views = getattr(broker, "views", None)
    if views is not None:
        serves = getattr(views, "serves", 0)
        misses = getattr(views, "misses", 0)
        probes = serves + misses
        if probes >= min_view_probes:
            gauges["view_hit_ratio"] = serves / probes
        live = getattr(views, "views", None)
        if live is not None:
            gauges["views_live"] = float(len(live))
    return gauges


# -- timeline artifact consumers -------------------------------------------

def load_timeline(path: str) -> Dict[str, object]:
    with open(path) as handle:
        document = json.load(handle)
    if document.get("version") != 1:
        raise ValueError(
            "unsupported telemetry timeline version %r in %s"
            % (document.get("version"), path)
        )
    return document


_SPARK = " .:-=+*#%@"


def _sparkline(values: List[float], width: int) -> str:
    if not values:
        return ""
    if len(values) > width:
        # Downsample by max within equal slices (peaks matter).
        step = len(values) / width
        values = [
            max(values[int(i * step):max(int(i * step) + 1, int((i + 1) * step))])
            for i in range(width)
        ]
    top = max(values)
    if top <= 0:
        return "." * len(values)
    scale = len(_SPARK) - 1
    return "".join(
        _SPARK[min(scale, int(round(value / top * scale)))]
        for value in values
    )


def render_timeline(
    document: Dict[str, object],
    metric: Optional[str] = None,
    broker: Optional[str] = None,
    width: int = 60,
) -> str:
    """An ASCII table+sparkline view of a timeline document (the
    ``repro timeline`` output)."""
    brokers = document.get("brokers", {})
    selected = {
        name: data
        for name, data in sorted(brokers.items())
        if (broker is None or name == broker) and name != CLUSTER
    }
    if metric is None:
        candidates: List[str] = []
        for data in selected.values():
            for sample in data.get("samples", ()):
                candidates.extend(k for k in sample if k != "time")
        for preferred in ("queue_depth", "handled", "routing_table"):
            if preferred in candidates:
                metric = preferred
                break
        else:
            metric = candidates[0] if candidates else "queue_depth"
    health = document.get("health", {})
    states = health.get("states", {})
    lines = [
        "telemetry timeline — metric %r, interval %ss, %d sample(s)"
        % (metric, document.get("interval"), document.get("samples_taken", 0)),
        "",
        "%-12s %-10s %8s %8s  %s" % ("broker", "health", "last", "peak", "trend"),
    ]
    for name, data in selected.items():
        series = [
            float(sample.get(metric, 0.0) or 0.0)
            for sample in data.get("samples", ())
        ]
        last = series[-1] if series else 0.0
        peak = max(series) if series else 0.0
        lines.append(
            "%-12s %-10s %8.6g %8.6g  %s"
            % (
                name,
                states.get(name, HEALTHY),
                last,
                peak,
                _sparkline(series, width),
            )
        )
    transitions = health.get("transitions", ())
    if transitions:
        lines.append("")
        lines.append("health transitions:")
        for entry in transitions:
            lines.append(
                "  t=%-10.4g %-12s %s -> %s (%s)"
                % (
                    entry.get("time", 0.0),
                    entry.get("broker"),
                    entry.get("from"),
                    entry.get("to"),
                    entry.get("rule"),
                )
            )
    alerts = health.get("alerts", {})
    if alerts:
        lines.append("")
        lines.append(
            "alerts: "
            + ", ".join(
                "%s=%d" % (rule, count)
                for rule, count in sorted(alerts.items())
            )
        )
    return "\n".join(lines)


def render_top(plane: TelemetryPlane, now: Optional[float] = None) -> str:
    """One refresh frame of the ``repro top`` table."""
    lines = [
        "%-12s %-10s %10s %10s %10s %10s"
        % ("broker", "health", "queue", "handled/s", "retrans", "p99 ms"),
    ]
    for broker in plane.broker_ids():
        ring = plane.rings[broker]
        sample = ring.last()
        values = sample.values if sample else {}
        interval = plane.interval or 1.0
        rate = values.get("handled", 0.0) / interval
        p99 = values.get("delivery_p99")
        lines.append(
            "%-12s %-10s %10.6g %10.6g %10.6g %10s"
            % (
                broker,
                plane.monitor.state(broker),
                values.get("queue_depth", 0.0),
                rate,
                values.get("retransmits", 0.0),
                "-" if p99 is None else "%.2f" % (p99 * 1e3),
            )
        )
    transitions = plane.monitor.transitions
    if transitions:
        latest = transitions[-1]
        lines.append(
            "last transition: %s %s -> %s (%s)"
            % (latest.broker_id, latest.previous, latest.state, latest.rule)
        )
    if now is not None:
        lines.append("t=%.3f  samples=%d" % (now, plane.samples_taken))
    return "\n".join(lines)


# -- Prometheus endpoint ---------------------------------------------------

class PrometheusEndpoint:
    """Opt-in exposition of a registry (+ health gauges) for the
    long-running backends.

    Two modes, combinable: :meth:`start` serves ``GET /metrics`` from a
    daemon-threaded stdlib HTTP server on ``127.0.0.1`` (``port=0``
    picks an ephemeral port, then ``.port``/``.url`` report it), and
    ``textfile=...`` makes :meth:`write` atomically rewrite a
    node-exporter-style textfile on demand."""

    def __init__(
        self,
        registry: MetricsRegistry,
        plane: Optional[TelemetryPlane] = None,
        port: int = 0,
        textfile: Optional[str] = None,
    ):
        self.registry = registry
        self.plane = plane
        self.port = port
        self.textfile = textfile
        self._server = None
        self._thread = None

    def render(self) -> str:
        if self.plane is not None:
            self.plane.publish_health_gauges(self.registry)
        return to_prometheus(self.registry)

    def write(self) -> Optional[str]:
        """Atomic textfile rewrite (write-then-rename)."""
        if not self.textfile:
            return None
        tmp = self.textfile + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(self.render())
        os.replace(tmp, self.textfile)
        return self.textfile

    def start(self) -> "PrometheusEndpoint":
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        endpoint = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404)
                    return
                body = endpoint.render().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence request logging
                pass

        self._server = ThreadingHTTPServer(("127.0.0.1", self.port), _Handler)
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="prometheus-endpoint",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        return "http://127.0.0.1:%d/metrics" % self.port

    def close(self):
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
