"""Snapshot serialisation: JSON documents, line protocol, trace exports.

The JSON form is what ``repro stats``, ``--metrics-out`` and the
benchmark suite's ``BENCH_obs.json`` artifact emit; the line protocol
(one ``name,type=<kind> field=value ...`` record per metric, in the
spirit of InfluxDB's wire format) suits log scraping and ad-hoc
``grep``-based dashboards.

Two further exporters serve the tracing layer (``repro trace
--export``): :func:`to_chrome_trace` renders spans as Chrome
trace-event JSON loadable in Perfetto / ``chrome://tracing``, and
:func:`to_prometheus` renders a registry in the Prometheus text
exposition format — counters with the conventional ``_total`` suffix,
gauges verbatim, and histograms as true Prometheus histograms with
cumulative ``_bucket{le="..."}`` series, ``_sum`` and ``_count``.
The telemetry plane's opt-in HTTP/textfile endpoint (see
``docs/telemetry.md``) serves this rendering.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional

from repro.obs.registry import MAX_BUCKETS, MetricsRegistry, bucket_bounds


def snapshot_document(
    registry: MetricsRegistry, meta: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """The registry snapshot wrapped with optional metadata."""
    document: Dict[str, object] = {}
    if meta:
        document["meta"] = dict(meta)
    document.update(registry.snapshot())
    return document


def write_json(
    registry: MetricsRegistry,
    path: str,
    meta: Optional[Dict[str, object]] = None,
):
    """Write the snapshot document to *path* as indented JSON."""
    with open(path, "w") as handle:
        json.dump(
            snapshot_document(registry, meta=meta),
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")


def to_line_protocol(registry: MetricsRegistry) -> str:
    """Render every metric as one line: counters and gauges carry a
    single ``value`` field, histograms their summary statistics."""
    lines: List[str] = []
    for kind, name, instrument in registry.iter_metrics():
        if kind == "histogram":
            stats = instrument.snapshot()
            fields = ",".join(
                "%s=%s" % (key, _fmt(stats[key]))
                for key in ("count", "sum", "mean", "min", "max", "p50", "p95", "p99")
                if stats[key] is not None
            )
            if not fields:
                fields = "count=0"
        else:
            fields = "value=%s" % _fmt(instrument.snapshot())
        lines.append("%s,type=%s %s" % (name, kind, fields))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return "%di" % value
    return repr(float(value))


# -- trace exports ---------------------------------------------------------

def to_chrome_trace(spans) -> Dict[str, object]:
    """Chrome trace-event JSON for a span collection.

    Each trace becomes a process (pid), each (trace, node) pair a thread
    (tid), and each span a complete ("X") event; virtual seconds map to
    event microseconds, so one simulated second reads as one second in
    the Perfetto timeline.  Load the JSON at https://ui.perfetto.dev or
    ``chrome://tracing``.
    """
    events: List[Dict[str, object]] = []
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    for span in spans:
        pid = pids.get(span.trace_id)
        if pid is None:
            pid = pids[span.trace_id] = len(pids) + 1
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": "trace %s" % span.trace_id},
            })
        thread_key = (span.trace_id, str(span.broker_id))
        tid = tids.get(thread_key)
        if tid is None:
            tid = tids[thread_key] = (
                sum(1 for key in tids if key[0] == span.trace_id) + 1
            )
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": str(span.broker_id)},
            })
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": "repro",
            "pid": pid,
            "tid": tid,
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_prometheus(registry: MetricsRegistry) -> str:
    """The Prometheus text exposition format for a registry snapshot.

    Every family carries ``# HELP`` and ``# TYPE`` lines.  Counters
    export as ``counter`` with the conventional ``_total`` suffix,
    gauges as ``gauge``, and histograms as real Prometheus histograms:
    one cumulative ``_bucket{le="<upper>"}`` series per occupied log
    bucket (the overflow bucket folds into the mandatory
    ``le="+Inf"`` series), plus ``_sum`` and ``_count``.  ``_count``
    and ``+Inf`` are derived from the same bucket copy, so the family
    is internally consistent even if recorders race the exporter.
    """
    lines: List[str] = []
    for kind, name, instrument in registry.iter_metrics():
        metric = _prom_name(name)
        if kind == "counter":
            family = metric + "_total"
            lines.append(
                "# HELP %s Cumulative count of %s." % (family, _prom_help(name))
            )
            lines.append("# TYPE %s counter" % family)
            lines.append(
                "%s %s" % (family, _prom_value(instrument.snapshot()))
            )
        elif kind == "gauge":
            lines.append(
                "# HELP %s Last observed value of %s." % (metric, _prom_help(name))
            )
            lines.append("# TYPE %s gauge" % metric)
            lines.append(
                "%s %s" % (metric, _prom_value(instrument.snapshot()))
            )
        else:
            lines.append(
                "# HELP %s Distribution of %s (log-bucketed)."
                % (metric, _prom_help(name))
            )
            lines.append("# TYPE %s histogram" % metric)
            cumulative = 0
            for index, count in instrument.bucket_counts():
                if index >= MAX_BUCKETS:
                    # Overflow observations only appear in +Inf.
                    cumulative += count
                    continue
                cumulative += count
                upper = bucket_bounds(index)[1]
                lines.append(
                    '%s_bucket{le="%s"} %d'
                    % (metric, _prom_le(upper), cumulative)
                )
            lines.append('%s_bucket{le="+Inf"} %d' % (metric, cumulative))
            lines.append("%s_sum %s" % (metric, _prom_value(instrument.total)))
            lines.append("%s_count %d" % (metric, cumulative))
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_:]", "_", "repro_" + name)


def _prom_help(name: str) -> str:
    # HELP text must escape backslashes and newlines; metric names here
    # are dotted identifiers, so quoting the raw name is enough.
    return "'%s'" % name.replace("\\", "\\\\").replace("\n", " ")


def _prom_le(upper: float) -> str:
    return "%.6g" % upper


def _prom_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))
