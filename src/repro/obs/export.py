"""Snapshot serialisation: JSON documents and a line protocol.

The JSON form is what ``repro stats``, ``--metrics-out`` and the
benchmark suite's ``BENCH_obs.json`` artifact emit; the line protocol
(one ``name,type=<kind> field=value ...`` record per metric, in the
spirit of InfluxDB's wire format) suits log scraping and ad-hoc
``grep``-based dashboards.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.registry import MetricsRegistry


def snapshot_document(
    registry: MetricsRegistry, meta: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """The registry snapshot wrapped with optional metadata."""
    document: Dict[str, object] = {}
    if meta:
        document["meta"] = dict(meta)
    document.update(registry.snapshot())
    return document


def write_json(
    registry: MetricsRegistry,
    path: str,
    meta: Optional[Dict[str, object]] = None,
):
    """Write the snapshot document to *path* as indented JSON."""
    with open(path, "w") as handle:
        json.dump(
            snapshot_document(registry, meta=meta),
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")


def to_line_protocol(registry: MetricsRegistry) -> str:
    """Render every metric as one line: counters and gauges carry a
    single ``value`` field, histograms their summary statistics."""
    lines: List[str] = []
    for kind, name, instrument in registry.iter_metrics():
        if kind == "histogram":
            stats = instrument.snapshot()
            fields = ",".join(
                "%s=%s" % (key, _fmt(stats[key]))
                for key in ("count", "sum", "mean", "min", "max", "p50", "p95", "p99")
                if stats[key] is not None
            )
            if not fields:
                fields = "count=0"
        else:
            fields = "value=%s" % _fmt(instrument.snapshot())
        lines.append("%s,type=%s %s" % (name, kind, fields))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return "%di" % value
    return repr(float(value))
