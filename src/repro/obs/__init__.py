"""Observability: metric registry, hot-path timers, exporters.

The library instruments its hot paths against a process-global
:class:`MetricsRegistry` that is **disabled by default** — routing code
pays one attribute check per site until something (the ``repro stats``
CLI, ``--metrics-out``, the benchmark suite, a test) turns it on:

    from repro import obs

    obs.enable_metrics(reset=True)
    ...  # run a workload
    print(obs.get_registry().to_json())

Instrumented call sites follow one of two idioms::

    reg = obs.get_registry()
    if reg.enabled:                      # hottest paths: branch once,
        with reg.timer("tree.insert"):   # pay nothing when disabled
            ...
    else:
        ...

    @obs.timed("adverts.intersect")      # everywhere else
    def expr_and_advertisement(...):
        ...

Metric naming scheme (see docs/observability.md):
``<subsystem>.<component>.<event>``, timers record wall seconds.
"""

from __future__ import annotations

import functools
from time import perf_counter

from repro.obs.export import (
    snapshot_document,
    to_chrome_trace,
    to_line_protocol,
    to_prometheus,
    write_json,
)
from repro.obs.flight import FlightRecorder, FlightRecorderSet
from repro.obs.registry import (
    NOOP_TIMER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    register_collector,
)
from repro.obs.telemetry import (
    DEGRADED,
    HEALTHY,
    OVERLOADED,
    HealthMonitor,
    PrometheusEndpoint,
    SLORule,
    TelemetryPlane,
    TelemetryRing,
    broker_gauges,
    default_slo_rules,
    load_timeline,
    render_timeline,
    render_top,
)
from repro.obs.tracing import (
    Span,
    TraceContext,
    TraceRecorder,
    TraceTree,
    assemble_traces,
    current_scope,
    mint_context,
    stamp,
    trace_of,
    verify_traces,
)

__all__ = [
    "Counter",
    "DEGRADED",
    "FlightRecorder",
    "FlightRecorderSet",
    "Gauge",
    "HEALTHY",
    "HealthMonitor",
    "Histogram",
    "MetricsRegistry",
    "NOOP_TIMER",
    "OVERLOADED",
    "PrometheusEndpoint",
    "SLORule",
    "Span",
    "TelemetryPlane",
    "TelemetryRing",
    "TraceContext",
    "TraceRecorder",
    "TraceTree",
    "assemble_traces",
    "broker_gauges",
    "current_scope",
    "default_slo_rules",
    "disable_metrics",
    "enable_metrics",
    "get_registry",
    "inc",
    "load_timeline",
    "mint_context",
    "observe",
    "register_collector",
    "render_timeline",
    "render_top",
    "set_registry",
    "snapshot_document",
    "stamp",
    "timed",
    "timer",
    "to_chrome_trace",
    "to_line_protocol",
    "to_prometheus",
    "trace_of",
    "verify_traces",
    "write_json",
]

_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-global registry every instrumented module records
    into (and the default for :class:`repro.network.overlay.Overlay`)."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (tests, embedding applications)."""
    global _registry
    _registry = registry
    return registry


def enable_metrics(reset: bool = False) -> MetricsRegistry:
    """Turn global metric collection on; ``reset=True`` also drops any
    previously recorded values."""
    if reset:
        _registry.reset()
    return _registry.enable()


def disable_metrics() -> MetricsRegistry:
    return _registry.disable()


def timer(name: str):
    """``with obs.timer("x"): ...`` against the global registry."""
    return _registry.timer(name)


def inc(name: str, amount: int = 1):
    _registry.inc(name, amount)


def observe(name: str, value: float):
    _registry.observe(name, value)


def timed(name: str):
    """Decorator timing every call into global histogram *name*.

    While the registry is disabled the wrapper reduces to one attribute
    check before delegating — no clock read, no allocation.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            registry = _registry
            if not registry.enabled:
                return fn(*args, **kwargs)
            start = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                registry.histogram(name).record(perf_counter() - start)

        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
