"""Causal distributed tracing: contexts, spans, and the assembler.

Every client-originated operation (SUB/UNSUB/ADV/UNADV/PUB) mints a
:class:`TraceContext` — a trace id plus the root span id — that rides
on the message object through the simulator, is serialised by
:mod:`repro.network.wire` for the socket deployment, and survives
reliable-transport retransmission and broker crash/restart redelivery.
Each hop then emits :class:`Span` records into a :class:`TraceRecorder`:

====================  =====================================================
span name             meaning
====================  =====================================================
``submit``            the root: client → edge-broker link time
``hop``               one broker processing the message (arrival →
                      arrival + charged processing, queue wait included)
``queue.wait``        child of ``hop``: time spent waiting for the broker
                      to go idle (queueing mode only)
``match``             child of ``hop``: publication matching, with the
                      engine used and the match-cache outcome
``covering.check``    child of ``hop``: covering analysis of a SUB
``merge.absorb``      child of ``hop``: a merge sweep absorbing XPEs
``forward``           per-destination fan-out (sender → link; a point
                      event when the reliable transport owns the link)
``retransmit``        the transport resent an unacked frame (point)
``dropped.duplicate`` a duplicate was suppressed — by the transport's
                      dedup or by the subscriber client (point)
``deliver``           the leaf: a fresh delivery at a subscriber (point)
====================  =====================================================

Timestamps are **virtual** simulator seconds, so span trees line up
with the modelled end-to-end latency of
:class:`~repro.network.stats.DeliveryRecord`; broker sub-spans map
measured wall time onto the virtual clock through the overlay's
``processing_scale`` (their real durations ride in ``attrs["wall"]``).

:func:`assemble_traces` reconstructs per-trace delivery trees;
:func:`verify_traces` checks every recorded delivery against its tree —
causal completeness (one root, every parent resolves) and the
per-stage span sum staying within the recorded end-to-end latency.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional

from repro.obs.flight import FlightRecorderSet

_trace_counter = itertools.count(1)
_span_counter = itertools.count(1)


@dataclass(frozen=True)
class TraceContext:
    """What rides on a message: the trace it belongs to and the span
    that caused it (the root span at mint time)."""

    trace_id: str
    span_id: str


def mint_context() -> TraceContext:
    """A fresh trace id with its root span id (process-unique)."""
    return TraceContext(
        "t%d" % next(_trace_counter), "s%d" % next(_span_counter)
    )


def next_span_id() -> str:
    return "s%d" % next(_span_counter)


def stamp(message, context: TraceContext):
    """Attach *context* to a message object (the ``trace`` attribute;
    works on frozen dataclasses).  Stamping happens exactly once, at
    mint time or on wire decode — per-hop causality travels out of
    band, because one message object may be in flight to several
    destinations at once."""
    object.__setattr__(message, "trace", context)
    return message


def trace_of(message) -> Optional[TraceContext]:
    return getattr(message, "trace", None)


class Span:
    """One timed stage of one trace.  ``start``/``end`` are virtual
    seconds; zero-duration spans are point events."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "broker_id",
        "start", "end", "attrs",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        broker_id: object,
        start: float,
        end: float,
        attrs: Optional[dict] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.broker_id = broker_id
        self.start = start
        self.end = end
        self.attrs = attrs if attrs is not None else {}

    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0)

    def to_dict(self) -> dict:
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "broker": str(self.broker_id),
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    def __repr__(self):
        return "Span(%s %s %s@%s [%g,%g])" % (
            self.trace_id, self.span_id, self.name, self.broker_id,
            self.start, self.end,
        )


class HopScope:
    """Thread-local context for one broker hop, letting broker-internal
    code (matching, covering, merging) emit sub-spans without knowing
    about the overlay.  Wall-clock offsets measured inside the handler
    are mapped onto the virtual clock via ``processing_scale``."""

    __slots__ = ("recorder", "span", "scale", "wall_anchor", "prev")

    def __init__(self, recorder: "TraceRecorder", span: Span, scale: float):
        self.recorder = recorder
        self.span = span
        self.scale = scale
        self.wall_anchor = perf_counter()
        self.prev = None

    def sub_span(self, name: str, wall_start: float, wall_end: float, **attrs):
        base = self.span.start
        attrs["wall"] = wall_end - wall_start
        return self.recorder.span(
            self.span.trace_id,
            self.span.span_id,
            name,
            self.span.broker_id,
            base + (wall_start - self.wall_anchor) * self.scale,
            base + (wall_end - self.wall_anchor) * self.scale,
            **attrs,
        )


_tls = threading.local()


def current_scope() -> Optional[HopScope]:
    """The hop scope of the broker handler running on this thread (None
    when tracing is off — the broker hot paths branch on this)."""
    return _tls.__dict__.get("scope")


class TraceRecorder:
    """Collects spans, feeds the flight rings, assembles trees.

    Args:
        registry: optional :class:`~repro.obs.MetricsRegistry` mirror —
            span/drop counts while enabled, plus the ``trace.stage.*``
            histograms via :meth:`publish_stage_metrics`.
        max_spans: global span cap; beyond it spans still reach the
            bounded flight rings but are dropped from the main list
            (counted in :attr:`dropped`).
        flight_capacity / flight_dir: ring size per broker and the
            directory automatic dumps are written to (see
            :mod:`repro.obs.flight`).
    """

    def __init__(
        self,
        registry=None,
        max_spans: int = 500_000,
        flight_capacity: int = 256,
        flight_dir: Optional[str] = None,
    ):
        self.registry = registry
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.traces: Dict[str, List[Span]] = {}
        self.dropped = 0
        self.flight = FlightRecorderSet(
            capacity=flight_capacity, out_dir=flight_dir
        )

    # -- recording ---------------------------------------------------------

    def mint(self, message=None) -> TraceContext:
        """A fresh context, stamped onto *message* when given."""
        context = mint_context()
        if message is not None:
            stamp(message, context)
        return context

    def span(
        self,
        trace_id: str,
        parent_id: Optional[str],
        name: str,
        broker_id: object,
        start: float,
        end: float,
        **attrs,
    ) -> Span:
        return self.record(
            Span(trace_id, next_span_id(), parent_id, name, broker_id,
                 start, end, attrs)
        )

    def record(self, span: Span) -> Span:
        self.flight.record(span)
        if self.max_spans and len(self.spans) >= self.max_spans:
            self.dropped += 1
            return span
        self.spans.append(span)
        self.traces.setdefault(span.trace_id, []).append(span)
        registry = self.registry
        if registry is not None and registry.enabled:
            registry.counter("trace.spans").inc()
        return span

    def record_root(
        self, context: TraceContext, client_id, message, now: float,
        latency: float,
    ) -> Span:
        """The ``submit`` span: client → edge-broker link time."""
        attrs = {
            "kind": getattr(message, "kind", type(message).__name__),
            "client": str(client_id),
        }
        publication = getattr(message, "publication", None)
        if publication is not None:
            attrs["doc"] = publication.doc_id
            attrs["path_id"] = publication.path_id
        return self.record(
            Span(context.trace_id, context.span_id, None, "submit",
                 client_id, now, now + latency, attrs)
        )

    def push_hop(self, span: Span, scale: float) -> HopScope:
        """Enter a hop scope (restored with :meth:`pop_hop`)."""
        scope = HopScope(self, span, scale)
        scope.prev = _tls.__dict__.get("scope")
        _tls.scope = scope
        return scope

    def pop_hop(self, scope: HopScope):
        _tls.scope = scope.prev

    def clear(self):
        self.spans = []
        self.traces = {}
        self.dropped = 0

    def __len__(self):
        return len(self.spans)

    # -- analysis ----------------------------------------------------------

    def assemble(self) -> Dict[str, "TraceTree"]:
        """One :class:`TraceTree` per recorded trace id."""
        return {
            trace_id: TraceTree(trace_id, spans)
            for trace_id, spans in self.traces.items()
        }

    def trees_for_doc(self, doc_id: str) -> List["TraceTree"]:
        """Delivery trees of every trace that touched document *doc_id*
        (the ``repro trace --follow`` query)."""
        return [
            tree
            for tree in self.assemble().values()
            if any(s.attrs.get("doc") == doc_id for s in tree.spans)
        ]

    def publish_stage_metrics(self, registry=None):
        """Record every span's duration into ``trace.stage.<name>``
        histograms (p50/p95/p99 come with the registry snapshot)."""
        registry = registry if registry is not None else self.registry
        if registry is None:
            return None
        for span in self.spans:
            registry.histogram("trace.stage.%s" % span.name).record(
                span.duration
            )
        return registry


class TraceTree:
    """The assembled causal tree of one trace."""

    def __init__(self, trace_id: str, spans: List[Span]):
        self.trace_id = trace_id
        self.spans = sorted(spans, key=lambda s: (s.start, s.span_id))
        self.by_id = {span.span_id: span for span in self.spans}
        self.children: Dict[str, List[Span]] = {}
        self.roots: List[Span] = []
        for span in self.spans:
            if span.parent_id is not None and span.parent_id in self.by_id:
                self.children.setdefault(span.parent_id, []).append(span)
            else:
                self.roots.append(span)

    @property
    def complete(self) -> bool:
        """Exactly one root, which is a true root (no dangling parent)."""
        return len(self.roots) == 1 and self.roots[0].parent_id is None

    def end_to_end(self) -> float:
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    def stage_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def chain(self, span: Span) -> List[Span]:
        """Root-to-*span* causal chain (follows parent ids)."""
        chain = [span]
        seen = {span.span_id}
        while chain[-1].parent_id is not None:
            parent = self.by_id.get(chain[-1].parent_id)
            if parent is None or parent.span_id in seen:
                break
            seen.add(parent.span_id)
            chain.append(parent)
        chain.reverse()
        return chain

    def path_sum(self, span: Span) -> float:
        """Sum of stage durations along the causal chain to *span*."""
        return sum(s.duration for s in self.chain(span))

    def delivery_spans(self) -> List[Span]:
        return [
            span
            for span in self.spans
            if span.name == "deliver" and span.attrs.get("fresh")
        ]

    def render(self) -> str:
        """ASCII rendering of the causal tree."""
        lines = ["trace %s  e2e=%.6fs" % (self.trace_id, self.end_to_end())]

        def walk(span, depth):
            attrs = " ".join(
                "%s=%s" % (key, value)
                for key, value in sorted(span.attrs.items())
                if key != "wall"
            )
            lines.append(
                "%s%-18s %-8s [%0.6f, %0.6f]%s"
                % (
                    "  " * depth,
                    span.name,
                    str(span.broker_id),
                    span.start,
                    span.end,
                    " " + attrs if attrs else "",
                )
            )
            for child in self.children.get(span.span_id, ()):
                walk(child, depth + 1)

        for root in self.roots:
            walk(root, 1)
        return "\n".join(lines)


def verify_traces(overlay, tolerance: float = 1e-9) -> List[str]:
    """Check causal completeness of every trace against the overlay's
    recorded deliveries; returns human-readable problems (empty = OK).

    For every fresh :class:`~repro.network.stats.DeliveryRecord` there
    must be a ``deliver`` span whose causal chain starts at the
    publication's submit time, ends at the delivery time, and whose
    per-stage durations sum to **at most** the recorded end-to-end
    latency (transport retries and queueing legitimately leave gaps;
    overlaps would mean the decomposition double-counts).

    The overlay must have had tracing enabled before any traffic was
    submitted, or early deliveries will have no spans to match.
    """
    recorder = overlay.tracing
    problems: List[str] = []
    if recorder is None:
        return ["tracing is not enabled on this overlay"]
    if recorder.dropped:
        problems.append(
            "%d spans dropped (max_spans=%d); trees are incomplete"
            % (recorder.dropped, recorder.max_spans)
        )
    trees = recorder.assemble()
    for trace_id in sorted(trees, key=str):
        tree = trees[trace_id]
        if not tree.complete:
            problems.append(
                "trace %s is not causally complete: %d roots (%s)"
                % (
                    trace_id,
                    len(tree.roots),
                    ", ".join(
                        "%s parent=%s" % (s.name, s.parent_id)
                        for s in tree.roots[:4]
                    ),
                )
            )
    deliver_index = {}
    for tree in trees.values():
        for span in tree.delivery_spans():
            key = (
                span.attrs.get("subscriber"),
                span.attrs.get("doc"),
                span.attrs.get("path_id"),
            )
            deliver_index[key] = (tree, span)
    for record in overlay.stats.deliveries:
        key = (record.subscriber_id, record.doc_id, record.path_id)
        entry = deliver_index.get(key)
        if entry is None:
            problems.append(
                "delivery %s/%s#%d has no deliver span"
                % (record.subscriber_id, record.doc_id, record.path_id)
            )
            continue
        tree, span = entry
        chain = tree.chain(span)
        if chain[0].name != "submit":
            problems.append(
                "delivery %s/%s#%d: chain starts at %r, not the submit root"
                % (record.subscriber_id, record.doc_id, record.path_id,
                   chain[0].name)
            )
            continue
        if abs(chain[0].start - record.issued_at) > tolerance:
            problems.append(
                "delivery %s/%s#%d: root starts at %g, publication issued "
                "at %g" % (record.subscriber_id, record.doc_id,
                           record.path_id, chain[0].start, record.issued_at)
            )
        if abs(span.end - record.delivered_at) > tolerance:
            problems.append(
                "delivery %s/%s#%d: deliver span at %g, recorded delivery "
                "at %g" % (record.subscriber_id, record.doc_id,
                           record.path_id, span.end, record.delivered_at)
            )
        total = tree.path_sum(span)
        if total > record.delay + tolerance:
            problems.append(
                "delivery %s/%s#%d: stage sum %.9f exceeds end-to-end "
                "latency %.9f" % (record.subscriber_id, record.doc_id,
                                  record.path_id, total, record.delay)
            )
    return problems


def assemble_traces(spans: List[Span]) -> Dict[str, TraceTree]:
    """Group loose spans (e.g. parsed from a flight dump) into trees."""
    grouped: Dict[str, List[Span]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    return {
        trace_id: TraceTree(trace_id, trace_spans)
        for trace_id, trace_spans in grouped.items()
    }
