"""Subscription/advertisement intersection for non-recursive
advertisements (paper §3.2).

An advertisement ``a`` matches a subscription ``s`` when their
publication sets overlap: ``P(a) ∩ P(s) ≠ ∅``.  Publications in ``P(a)``
are paths of exactly the advertisement's length whose elements pairwise
overlap with the advertisement's tests; a subscription matches a
publication when it selects a node on the path (a prefix for absolute
XPEs, an infix for relative ones, ordered infix segments when ``//``
operators are present).

Three algorithms, named as in the paper:

* :func:`abs_expr_and_adv`  — absolute simple XPEs,
* :func:`rel_expr_and_adv`  — relative simple XPEs (KMP-optimised when
  both sides are wildcard-free),
* :func:`des_expr_and_adv`  — XPEs with descendant operators.

:func:`expr_and_adv` dispatches on the XPE's shape.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro import obs
from repro.xpath.ast import WILDCARD, XPathExpr


def node_tests_overlap(advert_test: str, sub_test: str) -> bool:
    """The overlap rules of Figure 2(b): wildcards overlap everything;
    two element names overlap only when equal."""
    return (
        advert_test == WILDCARD
        or sub_test == WILDCARD
        or advert_test == sub_test
    )


def abs_expr_and_adv(advert_tests: Sequence[str], sub: XPathExpr) -> bool:
    """``AbsExprAndAdv``: absolute simple XPE vs. advertisement tests.

    Publications of ``P(a)`` have exactly ``len(advert_tests)`` elements,
    so an XPE longer than the advertisement cannot match (paper §3.2).
    Otherwise every (advert, sub) test pair up to the XPE length must
    overlap.
    """
    sub_tests = sub.tests
    if len(sub_tests) > len(advert_tests):
        return False
    return all(
        node_tests_overlap(advert_tests[i], sub_tests[i])
        for i in range(len(sub_tests))
    )


def _prefix_overlaps(advert_tests, sub_tests, offset) -> bool:
    """Pairwise overlap of *sub_tests* against *advert_tests* at *offset*."""
    return all(
        node_tests_overlap(advert_tests[offset + i], sub_tests[i])
        for i in range(len(sub_tests))
    )


def rel_expr_and_adv_naive(
    advert_tests: Sequence[str], sub: XPathExpr
) -> bool:
    """The naive O(n·k) algorithm for relative simple XPEs: try every
    start offset in the advertisement."""
    sub_tests = sub.tests
    k, n = len(sub_tests), len(advert_tests)
    if k > n:
        return False
    return any(
        _prefix_overlaps(advert_tests, sub_tests, offset)
        for offset in range(n - k + 1)
    )


def _kmp_failure(pattern: Sequence[str]) -> Tuple[int, ...]:
    """Classic KMP failure function for a wildcard-free pattern."""
    failure = [0] * len(pattern)
    k = 0
    for i in range(1, len(pattern)):
        while k > 0 and pattern[i] != pattern[k]:
            k = failure[k - 1]
        if pattern[i] == pattern[k]:
            k += 1
        failure[i] = k
    return tuple(failure)


def _kmp_search(text: Sequence[str], pattern: Sequence[str]) -> bool:
    """KMP substring search over element-name sequences (no wildcards)."""
    failure = _kmp_failure(pattern)
    k = 0
    for symbol in text:
        while k > 0 and symbol != pattern[k]:
            k = failure[k - 1]
        if symbol == pattern[k]:
            k += 1
        if k == len(pattern):
            return True
    return False


def rel_expr_and_adv(advert_tests: Sequence[str], sub: XPathExpr) -> bool:
    """``RelExprAndAdv``: relative simple XPE vs. advertisement tests.

    The paper notes this is a string-matching problem and applies KMP
    (§3.2).  A wildcard on either side breaks the transitivity the KMP
    failure function relies on, so KMP runs only in the wildcard-free
    case; otherwise the naive scan is used.  A property-based test
    checks both paths agree.
    """
    sub_tests = sub.tests
    if len(sub_tests) > len(advert_tests):
        return False
    if WILDCARD in sub_tests or WILDCARD in advert_tests:
        return rel_expr_and_adv_naive(advert_tests, sub)
    return _kmp_search(advert_tests, sub_tests)


def des_expr_and_adv(advert_tests: Sequence[str], sub: XPathExpr) -> bool:
    """``DesExprAndAdv``: XPEs containing ``//`` vs. advertisement tests.

    The XPE is split at ``//`` operators into maximal simple segments;
    the segments must overlap disjoint regions of the advertisement in
    order.  The first segment is anchored at position 0 when the XPE is
    absolute.  The greedy earliest-placement strategy is optimal here:
    placing a segment at its earliest feasible position maximises the
    room left for the remaining segments.
    """
    segments = sub.segments
    total = sum(len(segment) for segment in segments)
    if total > len(advert_tests):
        return False

    position = 0
    for index, segment in enumerate(segments):
        if index == 0 and sub.anchored:
            if not _prefix_overlaps(advert_tests, segment, 0):
                return False
            position = len(segment)
            continue
        placed = False
        last_start = len(advert_tests) - len(segment)
        for offset in range(position, last_start + 1):
            if _prefix_overlaps(advert_tests, segment, offset):
                position = offset + len(segment)
                placed = True
                break
        if not placed:
            return False
    return True


@obs.timed("adverts.expr_and_adv")
def expr_and_adv(advert_tests: Sequence[str], sub: XPathExpr) -> bool:
    """Dispatch to the right matching algorithm for *sub*'s shape."""
    if sub.is_simple:
        if sub.is_absolute:
            return abs_expr_and_adv(advert_tests, sub)
        return rel_expr_and_adv(advert_tests, sub)
    return des_expr_and_adv(advert_tests, sub)
