"""Covering between advertisements (paper §2.2).

"Since advertisements have the same format as subscriptions, the
covering relations among advertisements can be defined in the same
manner": ``a1`` covers ``a2`` iff ``P(a1) ⊇ P(a2)``.  A broker that has
already flooded a covering advertisement may suppress flooding of the
covered one without changing where subscriptions can travel — the SRT
entries of the coverer attract every subscription the covered one
would.

* Non-recursive advertisements behave exactly like absolute simple
  subscriptions (the paper's observation): positional test covering
  with equal lengths — **equal** lengths, not ≤, because ``P(a)`` holds
  paths of exactly the advertisement's length, so a shorter
  advertisement never covers a longer one (unlike subscriptions, where
  a prefix matches deeper paths).
* For recursive advertisements the language-containment question is
  decided with a product construction over the two NFAs: ``a1`` covers
  ``a2`` iff no word of ``a2`` escapes ``a1``.  Because advertisement
  alphabets are finite (DTD element names plus ``*``), the simulation
  subset-construction on ``a1``'s side stays small in practice.

Wildcard caveat: a wildcard in the *covered* advertisement stands for
"any element", so a concrete test in the coverer cannot cover it; a
wildcard in the coverer covers everything.  This matches the
subscription covering rules.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.adverts.model import Advertisement
from repro.adverts.nfa import AdvertNFA
from repro.covering.rules import covers_test
from repro.xpath.ast import WILDCARD


def advert_covers(a1: Advertisement, a2: Advertisement) -> bool:
    """True when ``P(a1) ⊇ P(a2)``."""
    if a1 == a2:
        return True
    if not a1.is_recursive and not a2.is_recursive:
        t1, t2 = a1.tests, a2.tests
        if len(t1) != len(t2):
            return False
        return all(covers_test(x, y) for x, y in zip(t1, t2))
    return _language_contains(a1, a2)


def _language_contains(a1: Advertisement, a2: Advertisement) -> bool:
    """``L(a2) ⊆ L(a1)`` by simultaneous simulation.

    Walk ``a2``'s NFA nondeterministically (state by state); alongside
    each ``a2`` state set, track the set of ``a1`` states reachable on
    *some* covering of the symbols consumed so far.  If an accepting
    ``a2`` configuration is reached while no ``a1`` configuration
    accepts, a counterexample word exists.

    Symbol semantics during simulation: a concrete ``a2`` symbol is
    covered by an equal ``a1`` symbol or an ``a1`` wildcard; an ``a2``
    wildcard (standing for *any* element) is only covered by an ``a1``
    wildcard — a fresh element name witnesses the difference otherwise.
    """
    nfa1 = AdvertNFA.compile(a1)
    nfa2 = AdvertNFA.compile(a2)

    start = (nfa2.start, frozenset({nfa1.start}))
    seen: Set[Tuple[int, FrozenSet[int]]] = {start}
    frontier: List[Tuple[int, FrozenSet[int]]] = [start]
    while frontier:
        state2, states1 = frontier.pop()
        if state2 in nfa2.accepting and not (states1 & nfa1.accepting):
            return False
        for symbol, target2 in nfa2.transitions.get(state2, ()):
            targets1 = frozenset(
                target1
                for s1 in states1
                for sym1, target1 in nfa1.transitions.get(s1, ())
                if _covers_symbol(sym1, symbol)
            )
            configuration = (target2, targets1)
            if configuration not in seen:
                seen.add(configuration)
                frontier.append(configuration)
    return True


def _covers_symbol(sym1: str, sym2: str) -> bool:
    if sym1 == WILDCARD:
        return True
    if sym2 == WILDCARD:
        return False  # some element always escapes a concrete test
    return sym1 == sym2


class AdvertCoverSet:
    """Maintains advertisements with *per-direction* covering
    suppression.

    A broker may skip flooding an advertisement only when a covering
    advertisement **with the same last hop** was already flooded:
    subscriptions then still travel down the shared link and meet this
    broker's SRT, which knows the covered advertisement's true origin.
    Suppressing across different last hops would steer subscriptions
    toward the coverer's publisher only, starving the covered one.

    ``add`` reports whether the advertisement is maximal within its
    direction — a broker floods only those.  Covered ones are retained
    for SRT bookkeeping.
    """

    def __init__(self):
        self._adverts: Dict[str, Tuple[Advertisement, object]] = {}
        self._covered_by: Dict[str, str] = {}

    def add(self, adv_id: str, advert: Advertisement, last_hop: object) -> bool:
        """Store; returns False when an existing same-direction
        advertisement covers this one (flooding may be suppressed)."""
        for other_id, (other, other_hop) in self._adverts.items():
            if other_hop == last_hop and advert_covers(other, advert):
                self._adverts[adv_id] = (advert, last_hop)
                self._covered_by[adv_id] = other_id
                return False
        self._adverts[adv_id] = (advert, last_hop)
        return True

    def remove(self, adv_id: str) -> List[str]:
        """Remove; returns the ids of advertisements that were covered
        by it and are now maximal (must be re-flooded)."""
        entry = self._adverts.pop(adv_id, None)
        if entry is None:
            return []
        self._covered_by.pop(adv_id, None)
        promoted = []
        for covered_id, coverer_id in list(self._covered_by.items()):
            if coverer_id != adv_id:
                continue
            del self._covered_by[covered_id]
            candidate, candidate_hop = self._adverts[covered_id]
            for other_id, (other, other_hop) in self._adverts.items():
                if (
                    other_id != covered_id
                    and other_hop == candidate_hop
                    and advert_covers(other, candidate)
                ):
                    self._covered_by[covered_id] = other_id
                    break
            else:
                promoted.append(covered_id)
        return promoted

    def is_covered(self, adv_id: str) -> bool:
        return adv_id in self._covered_by

    def maximal_count(self) -> int:
        return len(self._adverts) - len(self._covered_by)

    def __len__(self):
        return len(self._adverts)

    def __contains__(self, adv_id):
        return adv_id in self._adverts
