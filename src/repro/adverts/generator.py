"""Advertisement generation from DTDs (paper §3.1).

For a non-recursive DTD, the generator emits one non-recursive
advertisement per root-to-leaf element path — the DTD "allows deriving
all possible paths from the root to the leaves".

For a recursive DTD, a depth-first walk detects back-edges: when the
walk is about to revisit an element already on the current path, the
span between the two occurrences is a repetition unit and is recorded as
a ``(...)+`` region.  Each element is expanded at most twice along one
path (the second visit closes the cycle; a third is pruned), which
yields exactly the paper's three recursive shapes — a single region
(*simple-recursive*), several disjoint regions (*series-recursive*) and
nested regions (*embedded-recursive*).  Partially overlapping regions
are merged into one; the merge widens ``P(a)``, which is safe for
advertisements (over-advertising can only cause extra forwarding, never
message loss).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.adverts.model import Advertisement, AdvNode, Lit, Rep
from repro.dtd.model import DTD


def generate_advertisements(
    dtd: DTD, max_path_length: int = 16
) -> List[Advertisement]:
    """All advertisements for a publisher described by *dtd*.

    Args:
        dtd: the publisher's DTD.
        max_path_length: safety bound on the walk depth (the number of
            distinct positions on one path, counting the single cycle
            unrollings).  The paper likewise bounds nesting depth "from
            a practical point of view" (§3.3).

    Returns:
        Deterministically ordered, duplicate-free advertisements.
    """
    graph = dtd.child_map()
    seen: Set[str] = set()
    results: List[Advertisement] = []

    def emit(path: Sequence[str], regions: Sequence[Tuple[int, int]]):
        advert = _build_advertisement(path, regions)
        key = str(advert)
        if key not in seen:
            seen.add(key)
            results.append(advert)

    def visit(
        name: str,
        path: List[str],
        counts: Dict[str, int],
        regions: List[Tuple[int, int]],
    ):
        previous_index = None
        if counts.get(name, 0) == 1:
            # Back-edge: the span since the previous occurrence of this
            # element is a repetition unit.
            previous_index = _last_index(path, name)
            regions = regions + [(previous_index, len(path))]
        path.append(name)
        counts[name] = counts.get(name, 0) + 1

        decl = dtd.elements[name]
        children = graph.get(name, ())
        if decl.can_be_leaf() or not children:
            emit(path, regions)
        if len(path) < max_path_length:
            for child in children:
                if counts.get(child, 0) >= 2:
                    continue
                visit(child, path, counts, regions)

        path.pop()
        counts[name] -= 1

    visit(dtd.root, [], {}, [])
    return results


def _last_index(path: Sequence[str], name: str) -> int:
    for index in range(len(path) - 1, -1, -1):
        if path[index] == name:
            return index
    raise ValueError("%r not on path" % name)


def _build_advertisement(
    path: Sequence[str], regions: Sequence[Tuple[int, int]]
) -> Advertisement:
    """Turn a walked path plus its repetition regions into an
    :class:`Advertisement`.

    Regions are first normalised into a laminar family (partial overlaps
    merged), then converted recursively: disjoint regions become
    sibling ``Rep`` groups, nested regions become embedded groups.
    """
    laminar = _merge_overlaps(regions)
    nodes = _build_nodes(path, 0, len(path), laminar)
    return Advertisement(tuple(nodes))


def _merge_overlaps(
    regions: Sequence[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Merge partially overlapping intervals until the family is laminar
    (any two intervals are nested or disjoint)."""
    merged = [tuple(region) for region in regions]
    changed = True
    while changed:
        changed = False
        for i in range(len(merged)):
            for j in range(i + 1, len(merged)):
                a, b = merged[i], merged[j]
                if _partially_overlap(a, b):
                    union = (min(a[0], b[0]), max(a[1], b[1]))
                    merged = [
                        r for k, r in enumerate(merged) if k not in (i, j)
                    ]
                    merged.append(union)
                    changed = True
                    break
            if changed:
                break
    # Drop exact duplicates.
    return sorted(set(merged))


def _partially_overlap(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    """True when the intervals overlap but neither contains the other."""
    lo, hi = (a, b) if a <= b else (b, a)
    if lo[1] <= hi[0]:
        return False  # disjoint
    nested = (lo[0] <= hi[0] and hi[1] <= lo[1]) or (
        hi[0] <= lo[0] and lo[1] <= hi[1]
    )
    return not nested


def _build_nodes(
    path: Sequence[str],
    lo: int,
    hi: int,
    regions: Sequence[Tuple[int, int]],
) -> List[AdvNode]:
    """Recursive laminar-interval-to-node conversion over path[lo:hi)."""
    maximal = [
        region
        for region in regions
        if lo <= region[0] and region[1] <= hi
        and not any(
            other != region
            and other[0] <= region[0]
            and region[1] <= other[1]
            and lo <= other[0]
            and other[1] <= hi
            for other in regions
        )
    ]
    maximal.sort()
    nodes: List[AdvNode] = []
    position = lo
    for start, end in maximal:
        if start > position:
            nodes.append(Lit(tuple(path[position:start])))
        inner = [
            region
            for region in regions
            if start <= region[0] and region[1] <= end
            and region != (start, end)
        ]
        nodes.append(Rep(tuple(_build_nodes(path, start, end, inner))))
        position = end
    if position < hi:
        nodes.append(Lit(tuple(path[position:hi])))
    return nodes
