"""Advertisement model (paper §3.1).

An advertisement is an absolute XPath-like expression without ``//``,
written ``a = /t1/t2/.../tn`` where every ``ti`` is an element name or a
wildcard.  Advertisements derived from *recursive* DTDs additionally use
the (system-internal) ``(...)+`` operator: ``a = a1(a2)+a3`` means the
group ``a2`` occurs one or more times.  The paper distinguishes
*simple-recursive* (one group), *series-recursive* (groups in sequence)
and *embedded-recursive* (groups inside groups) advertisements.

Here an advertisement is a sequence of nodes; a node is either a
:class:`Lit` (a run of node tests) or a :class:`Rep` (a ``(...)+`` group
whose body is again a sequence of nodes).  ``P(a)`` — the set of
publication paths an advertisement stands for — is the language obtained
by expanding every group one-or-more times; :meth:`Advertisement.prefixes`
and :meth:`Advertisement.words_up_to` enumerate bounded fragments of that
language for the matching algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Tuple, Union

from repro.xpath.ast import WILDCARD, XPathExpr


@dataclass(frozen=True)
class Lit:
    """A literal run of node tests (names or wildcards)."""

    tests: Tuple[str, ...]

    def __post_init__(self):
        if not self.tests:
            raise ValueError("a literal advertisement segment cannot be empty")

    def __str__(self):
        return "".join("/%s" % t for t in self.tests)


@dataclass(frozen=True)
class Rep:
    """A ``(...)+`` group: the body repeats one or more times."""

    body: Tuple["AdvNode", ...]

    def __post_init__(self):
        if not self.body:
            raise ValueError("a recursion group cannot be empty")

    def __str__(self):
        return "(%s)+" % "".join(str(node) for node in self.body)


AdvNode = Union[Lit, Rep]


class AdvertisementKind:
    """Classification labels from paper §3.1."""

    NON_RECURSIVE = "non-recursive"
    SIMPLE_RECURSIVE = "simple-recursive"
    SERIES_RECURSIVE = "series-recursive"
    EMBEDDED_RECURSIVE = "embedded-recursive"


@dataclass(frozen=True)
class Advertisement:
    """An advertisement: a sequence of literal runs and recursion groups."""

    nodes: Tuple[AdvNode, ...]

    def __post_init__(self):
        if not self.nodes:
            raise ValueError("an advertisement cannot be empty")

    # -- construction ----------------------------------------------------

    @classmethod
    def from_tests(cls, tests: Sequence[str]):
        """A non-recursive advertisement from plain node tests."""
        return cls(nodes=(Lit(tuple(tests)),))

    @classmethod
    def from_xpath(cls, expr: XPathExpr):
        """Build from an absolute, ``//``-free :class:`XPathExpr`."""
        if not expr.is_absolute or not expr.is_simple:
            raise ValueError(
                "advertisements are absolute //-free expressions, got %s"
                % expr
            )
        return cls.from_tests(expr.tests)

    # -- classification ---------------------------------------------------

    @property
    def is_recursive(self):
        try:
            return self._recursive_cache
        except AttributeError:
            value = any(
                isinstance(node, Rep) for node in _all_nodes(self.nodes)
            )
            object.__setattr__(self, "_recursive_cache", value)
            return value

    @property
    def kind(self):
        """The paper's classification of this advertisement."""
        reps = [node for node in self.nodes if isinstance(node, Rep)]
        if not reps:
            return AdvertisementKind.NON_RECURSIVE
        nested = any(
            isinstance(inner, Rep)
            for rep in reps
            for inner in _all_nodes(rep.body)
        )
        if nested:
            return AdvertisementKind.EMBEDDED_RECURSIVE
        if len(reps) == 1:
            return AdvertisementKind.SIMPLE_RECURSIVE
        return AdvertisementKind.SERIES_RECURSIVE

    # -- language views ----------------------------------------------------

    @property
    def tests(self):
        """The node tests of a non-recursive advertisement.

        Raises ValueError for recursive advertisements, whose length is
        unbounded.
        """
        if self.is_recursive:
            raise ValueError("recursive advertisements have no fixed tests")
        try:
            return self._tests_cache
        except AttributeError:
            value = tuple(test for node in self.nodes for test in node.tests)
            object.__setattr__(self, "_tests_cache", value)
            return value

    def min_length(self):
        """Length of the shortest word of ``P(a)`` (each group once)."""
        return _min_length(self.nodes)

    def symbols(self) -> FrozenSet[str]:
        """Every node test appearing anywhere in the advertisement
        (memoised).  Used for fast subscription rejection: a wildcard-
        free advertisement cannot overlap a subscription that names an
        element outside this set."""
        try:
            return self._symbols_cache
        except AttributeError:
            value = frozenset(
                test
                for node in _all_nodes(self.nodes)
                if isinstance(node, Lit)
                for test in node.tests
            )
            object.__setattr__(self, "_symbols_cache", value)
            return value

    @property
    def has_wildcard(self):
        from repro.xpath.ast import WILDCARD as _W

        return _W in self.symbols()

    def prefixes(self, length: int) -> FrozenSet[Tuple[str, ...]]:
        """All length-*length* prefixes of words of ``P(a)``.

        A word shorter than *length* contributes nothing — an absolute
        XPE of *length* steps cannot match a shorter publication.  The
        result is exact: every returned prefix extends to at least one
        full word, and every word of length >= *length* is represented.
        """
        if length <= 0:
            raise ValueError("prefix length must be positive")
        cache = self._expansion_cache
        cached = cache.get(("prefix", length))
        if cached is not None:
            return cached
        results = set()

        def walk(nodes, prefix):
            if len(prefix) >= length:
                results.add(tuple(prefix[:length]))
                return
            if not nodes:
                return
            head, rest = nodes[0], nodes[1:]
            if isinstance(head, Lit):
                walk(rest, prefix + list(head.tests))
            else:
                # Unroll the group once, then either leave it or repeat.
                walk((*head.body, head) + rest, prefix)
                walk((*head.body,) + rest, prefix)

        walk(self.nodes, [])
        value = frozenset(results)
        cache[("prefix", length)] = value
        return value

    @property
    def _expansion_cache(self):
        try:
            return self._expansions
        except AttributeError:
            cache = {}
            object.__setattr__(self, "_expansions", cache)
            return cache

    def words_up_to(self, max_length: int) -> FrozenSet[Tuple[str, ...]]:
        """All complete words of ``P(a)`` of length at most *max_length*
        (memoised per bound — advertisements are matched against many
        subscriptions)."""
        cache = self._expansion_cache
        cached = cache.get(("words", max_length))
        if cached is not None:
            return cached
        results = set()

        def walk(nodes, prefix):
            if len(prefix) > max_length:
                return
            if not nodes:
                results.add(tuple(prefix))
                return
            head, rest = nodes[0], nodes[1:]
            if isinstance(head, Lit):
                walk(rest, prefix + list(head.tests))
            else:
                walk((*head.body, head) + rest, prefix)
                walk((*head.body,) + rest, prefix)

        walk(self.nodes, [])
        value = frozenset(results)
        cache[("words", max_length)] = value
        return value

    def expansion_bound(self, xpe_length: int) -> int:
        """A word-length bound sufficient for matching an XPE of
        *xpe_length* steps against this advertisement.

        Any infix or prefix match of an XPE with ``k`` steps touches at
        most ``k`` consecutive path positions; pumping each ``(...)+``
        group beyond ``k + 1`` repetitions cannot create new matches, so
        words of length ``min_length + groups * (k + 1) * max_unit`` are
        enough to witness every possible match.
        """
        groups = sum(1 for _ in _all_reps(self.nodes))
        if groups == 0:
            return self.min_length()
        max_unit = max(_min_length(rep.body) for rep in _all_reps(self.nodes))
        return self.min_length() + groups * (xpe_length + 1) * max_unit

    # -- rendering ---------------------------------------------------------

    def __str__(self):
        return "".join(str(node) for node in self.nodes)

    def __repr__(self):
        return "Advertisement(%r)" % str(self)


def _all_nodes(nodes: Iterable[AdvNode]):
    """Every node in the forest, depth first."""
    for node in nodes:
        yield node
        if isinstance(node, Rep):
            yield from _all_nodes(node.body)


def _all_reps(nodes: Iterable[AdvNode]):
    for node in _all_nodes(nodes):
        if isinstance(node, Rep):
            yield node


def _min_length(nodes: Sequence[AdvNode]) -> int:
    total = 0
    for node in nodes:
        if isinstance(node, Lit):
            total += len(node.tests)
        else:
            total += _min_length(node.body)
    return total


def simple_recursive(a1, a2, a3) -> Advertisement:
    """Convenience constructor for ``a = a1(a2)+a3`` (paper §3.3).

    ``a1`` and ``a3`` may be empty sequences; ``a2`` must not be.
    """
    nodes: List[AdvNode] = []
    if a1:
        nodes.append(Lit(tuple(a1)))
    nodes.append(Rep((Lit(tuple(a2)),)))
    if a3:
        nodes.append(Lit(tuple(a3)))
    return Advertisement(tuple(nodes))
