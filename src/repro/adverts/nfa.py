"""NFA-based matching of XPEs against recursive advertisements.

A recursive advertisement denotes a regular language of publication
paths, so intersection with an XPE is decidable by a product
construction instead of enumerating expansions:

* the advertisement compiles to a small NFA (one state per node test,
  back edges realising the one-or-more groups),
* the XPE compiles to a "consumed tests" counter with skip positions —
  an absolute XPE must start consuming at the word start, a relative
  one may skip a prefix, and every ``//`` boundary may skip arbitrarily
  many symbols,
* a BFS over (NFA state, consumed count) pairs decides whether *some*
  word of the advertisement language carries a match.

An XPE accepts as soon as all its tests are consumed: any reachable NFA
state can reach acceptance (the construction introduces no dead
states), so the partial word always completes to a full publication
path.  The result is exact for the *unbounded* language — unlike the
bounded-expansion reference matcher it replaces on the hot path, which
the property-based test suite keeps around as an oracle.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.adverts.matching import node_tests_overlap
from repro.adverts.model import Advertisement, Lit, Rep
from repro.xpath.ast import XPathExpr


class AdvertNFA:
    """The compiled automaton of one advertisement.

    ``transitions[state]`` is a list of ``(symbol, next_state)`` edges;
    ``start`` is the single initial state; ``accepting`` are the states
    reached after a complete word.
    """

    __slots__ = ("transitions", "start", "accepting")

    def __init__(self, transitions, start, accepting):
        self.transitions = transitions
        self.start = start
        self.accepting = accepting

    @classmethod
    def compile(cls, advert: Advertisement) -> "AdvertNFA":
        """Compile (memoised on the advertisement instance)."""
        cached = getattr(advert, "_nfa_cache", None)
        if cached is not None:
            return cached
        builder = _Builder()
        exits = builder.compile_sequence(advert.nodes, {builder.start})
        nfa = cls(
            transitions=dict(builder.transitions),
            start=builder.start,
            accepting=frozenset(exits),
        )
        object.__setattr__(advert, "_nfa_cache", nfa)
        return nfa

    def state_count(self) -> int:
        states = {self.start} | set(self.accepting)
        for source, edges in self.transitions.items():
            states.add(source)
            states.update(target for _sym, target in edges)
        return len(states)


class _Builder:
    """Glushkov-style construction: one state per node test, group
    repetition as back edges from group exits to the group's first
    symbols."""

    def __init__(self):
        self._next_state = 1
        self.start = 0
        self.transitions: Dict[int, List[Tuple[str, int]]] = {}

    def _new_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        return state

    def _edge(self, source: int, symbol: str, target: int):
        self.transitions.setdefault(source, []).append((symbol, target))

    def compile_sequence(self, nodes, entries: Set[int]) -> Set[int]:
        """Wire *nodes* one after another, starting from every state in
        *entries*; returns the exit state set."""
        current = set(entries)
        for node in nodes:
            current = self._compile_node(node, current)
        return current

    def _compile_node(self, node, entries: Set[int]) -> Set[int]:
        if isinstance(node, Lit):
            current = set(entries)
            for test in node.tests:
                state = self._new_state()
                for source in current:
                    self._edge(source, test, state)
                current = {state}
            return current
        if isinstance(node, Rep):
            # First pass through the body...
            first_edges_mark = {
                source: len(self.transitions.get(source, ()))
                for source in entries
            }
            exits = self.compile_sequence(node.body, entries)
            # ...then copy the body's first-symbol edges onto every exit
            # so the group can repeat.
            for source, mark in first_edges_mark.items():
                for symbol, target in self.transitions.get(source, [])[mark:]:
                    for exit_state in exits:
                        if (symbol, target) not in self.transitions.get(
                            exit_state, ()
                        ):
                            self._edge(exit_state, symbol, target)
            return exits
        raise TypeError("unknown advertisement node %r" % (node,))


def _flatten(sub: XPathExpr):
    """Flatten the XPE into (tests, skip_positions, anchored).

    ``skip_positions`` are consumed-counts at which arbitrarily many
    word symbols may be skipped: position 0 for relative XPEs and every
    ``//`` segment boundary.
    """
    segments = sub.segments
    tests: List[str] = []
    skips: Set[int] = set()
    if not sub.anchored:
        skips.add(0)
    for index, segment in enumerate(segments):
        if index > 0:
            skips.add(len(tests))
        tests.extend(segment)
    return tuple(tests), frozenset(skips)


def expr_and_advert_nfa(advert: Advertisement, sub: XPathExpr) -> bool:
    """Exact ``P(a) ∩ P(s) ≠ ∅`` via the product BFS."""
    nfa = AdvertNFA.compile(advert)
    tests, skips = _flatten(sub)
    total = len(tests)

    start = (nfa.start, 0)
    seen = {start}
    frontier = [start]
    while frontier:
        state, consumed = frontier.pop()
        if consumed == total:
            return True
        may_skip = consumed in skips
        for symbol, target in nfa.transitions.get(state, ()):
            if node_tests_overlap(symbol, tests[consumed]):
                advanced = (target, consumed + 1)
                if advanced not in seen:
                    seen.add(advanced)
                    frontier.append(advanced)
            if may_skip:
                skipped = (target, consumed)
                if skipped not in seen:
                    seen.add(skipped)
                    frontier.append(skipped)
    return False
