"""Advertisements: generation from DTDs and XPE intersection tests."""

from repro.adverts.model import (
    Advertisement,
    AdvertisementKind,
    Lit,
    Rep,
    simple_recursive,
)
from repro.adverts.generator import generate_advertisements
from repro.adverts.matching import (
    abs_expr_and_adv,
    des_expr_and_adv,
    expr_and_adv,
    rel_expr_and_adv,
    rel_expr_and_adv_naive,
    node_tests_overlap,
)
from repro.adverts.recursive import (
    abs_expr_and_emb_rec_adv,
    abs_expr_and_ser_rec_adv,
    abs_expr_and_sim_rec_adv,
    expr_and_advertisement,
    expr_and_rec_adv,
    expr_and_rec_adv_expansion,
)
from repro.adverts.covering import AdvertCoverSet, advert_covers
from repro.adverts.nfa import AdvertNFA, expr_and_advert_nfa

__all__ = [
    "Advertisement",
    "AdvertisementKind",
    "Lit",
    "Rep",
    "simple_recursive",
    "generate_advertisements",
    "abs_expr_and_adv",
    "des_expr_and_adv",
    "expr_and_adv",
    "rel_expr_and_adv",
    "rel_expr_and_adv_naive",
    "node_tests_overlap",
    "abs_expr_and_emb_rec_adv",
    "abs_expr_and_ser_rec_adv",
    "abs_expr_and_sim_rec_adv",
    "expr_and_advertisement",
    "expr_and_rec_adv",
    "expr_and_rec_adv_expansion",
    "AdvertCoverSet",
    "advert_covers",
    "AdvertNFA",
    "expr_and_advert_nfa",
]
