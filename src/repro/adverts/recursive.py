"""Matching against recursive advertisements (paper §3.3).

Two implementations are provided and cross-checked by the test suite:

* :func:`abs_expr_and_sim_rec_adv` — the paper's Figure 3 algorithm for
  an absolute simple XPE against ``a = a1(a2)+a3``, with two errata
  fixed (documented on the function).
* :func:`expr_and_rec_adv` — a general matcher for *any* supported XPE
  shape against *any* recursive advertisement (simple, series or
  embedded).  It enumerates bounded fragments of the advertisement's
  path language: length-``|s|`` prefixes for absolute simple XPEs, and
  complete words up to a pumping bound for relative XPEs and XPEs with
  descendant operators.  The bounds are exact for the decision problem
  (see :meth:`Advertisement.expansion_bound`).
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.adverts.matching import (
    abs_expr_and_adv,
    des_expr_and_adv,
    node_tests_overlap,
    rel_expr_and_adv,
)
from repro.adverts.model import Advertisement
from repro.xpath.ast import XPathExpr


def _block_overlaps(block: Sequence[str], sub_tests: Sequence[str]) -> bool:
    """Pairwise overlap of a test block against a same-or-shorter slice."""
    if len(sub_tests) > len(block):
        return False
    return all(
        node_tests_overlap(block[i], sub_tests[i]) for i in range(len(sub_tests))
    )


def abs_expr_and_sim_rec_adv(a1, a2, a3, sub: XPathExpr) -> bool:
    """``AbsExprAndSimRecAdv`` (paper Figure 3): absolute simple XPE vs.
    ``a = a1(a2)+a3``.

    ``a1``/``a2``/``a3`` are test sequences; ``a1`` and ``a3`` may be
    empty, ``a2`` must not be.

    Two errata relative to the printed pseudo-code are fixed (the test
    suite cross-checks against the expansion-based reference matcher):

    * Line 5's ``q = Int((|s|-|a1a2a3|)/|a2|) + 1`` overshoots by one
      when the difference divides evenly (the intended value is a
      ceiling), and the loop starting at ``c = q`` leaves the repetition
      blocks before ``q`` unverified.  Here every block is verified,
      and the ``a3``-fit test simply skips counts where the remainder
      of ``s`` is still longer than ``a3``.
    * When all trailing blocks of ``s`` overlap repetitions of ``a2``
      (including a final partial block), a sufficiently deep expansion
      matches ``s`` as a path prefix regardless of ``a3``, so the
      algorithm must answer 1 — including when ``a3`` is empty, a case
      the printed loop can skip entirely.
    """
    if not a2:
        raise ValueError("the recursive pattern a2 cannot be empty")
    s = sub.tests
    a2 = tuple(a2)
    a3 = tuple(a3)
    head = tuple(a1) + a2
    if len(s) <= len(head):
        return _block_overlaps(head, s)
    if not _block_overlaps(head, s[: len(head)]):
        return False

    tail_len = len(s) - len(head)  # steps of s beyond a1 a2
    # p: the number of complete extra a2-repetitions that fit in the tail.
    p = tail_len // len(a2)
    for c in range(p + 1):
        rest = s[len(head) + c * len(a2):]
        # Try to finish the match in a3 after c extra repetitions; the
        # length check inside _block_overlaps subsumes the paper's q.
        if len(rest) <= len(a3) and _block_overlaps(a3, rest):
            return True
        if c == p:
            # The final (possibly partial, possibly empty) block: if it
            # overlaps a prefix of a2, a deeper expansion matches s.
            return _block_overlaps(a2, rest)
        block = s[len(head) + c * len(a2): len(head) + (c + 1) * len(a2)]
        if not _block_overlaps(a2, block):
            return False
    raise AssertionError("unreachable: the c == p branch always returns")


def expr_and_rec_adv(advert: Advertisement, sub: XPathExpr) -> bool:
    """General XPE vs. recursive-advertisement intersection.

    Delegates to the exact NFA product construction
    (:mod:`repro.adverts.nfa`) — the advertisement language is regular,
    so no expansion bound is needed.
    """
    from repro.adverts.nfa import expr_and_advert_nfa

    return expr_and_advert_nfa(advert, sub)


def expr_and_rec_adv_expansion(advert: Advertisement, sub: XPathExpr) -> bool:
    """Bounded-expansion reference matcher (test oracle).

    Enumerates the finitely many relevant expansions of the
    advertisement:

    * absolute simple XPE — the advertisement's length-``|s|`` word
      prefixes (a shorter word cannot match an absolute XPE; a longer
      word matches iff its prefix overlaps the XPE),
    * relative / descendant XPE — every complete word up to the pumping
      bound of :meth:`Advertisement.expansion_bound`.

    Exponential in the worst case; kept as the independent oracle the
    property-based tests compare the NFA matcher against.
    """
    if sub.is_simple and sub.is_absolute:
        candidates = advert.prefixes(len(sub))
        return any(
            _block_overlaps(prefix, sub.tests) for prefix in candidates
        )

    bound = advert.expansion_bound(len(sub))
    words = advert.words_up_to(bound)
    if sub.is_simple:
        return any(rel_expr_and_adv(word, sub) for word in words)
    return any(des_expr_and_adv(word, sub) for word in words)


def expr_and_advertisement(advert: Advertisement, sub: XPathExpr) -> bool:
    """Top-level intersection test used by brokers: any supported XPE
    shape against any advertisement (recursive or not).

    A symbol-set prescreen rejects most non-matches cheaply: with no
    wildcards on the advertisement side, every concrete subscription
    test must pair with an equal advertisement symbol, so a
    subscription naming a foreign element can never overlap.
    """
    registry = obs.get_registry()
    if not registry.enabled:
        return _expr_and_advertisement(advert, sub)
    with registry.timer("adverts.intersect"):
        result = _expr_and_advertisement(advert, sub)
    registry.counter(
        "adverts.intersect.hit" if result else "adverts.intersect.miss"
    ).inc()
    return result


def _expr_and_advertisement(advert: Advertisement, sub: XPathExpr) -> bool:
    if not advert.has_wildcard:
        symbols = advert.symbols()
        for test in sub.tests:
            if test != "*" and test not in symbols:
                return False
    if not advert.is_recursive:
        tests = advert.tests
        if sub.is_simple and sub.is_absolute:
            return abs_expr_and_adv(tests, sub)
        if sub.is_simple:
            return rel_expr_and_adv(tests, sub)
        return des_expr_and_adv(tests, sub)
    if (
        advert.kind == "simple-recursive"
        and sub.is_simple
        and sub.is_absolute
    ):
        a1, a2, a3 = _decompose_simple(advert)
        return abs_expr_and_sim_rec_adv(a1, a2, a3, sub)
    return expr_and_rec_adv(advert, sub)


def _decompose_simple(advert: Advertisement):
    """Split a simple-recursive advertisement into ``(a1, a2, a3)``."""
    from repro.adverts.model import Lit, Rep

    a1, a2, a3 = (), (), ()
    seen_rep = False
    for node in advert.nodes:
        if isinstance(node, Rep):
            if seen_rep or not all(
                isinstance(inner, Lit) for inner in node.body
            ):
                raise ValueError("not a simple-recursive advertisement")
            for inner in node.body:
                a2 = a2 + inner.tests
            seen_rep = True
        elif not seen_rep:
            a1 = a1 + node.tests
        else:
            a3 = a3 + node.tests
    return a1, a2, a3


def _flatten_literals(nodes) -> tuple:
    """Concatenate the tests of an all-:class:`Lit` node sequence."""
    from repro.adverts.model import Lit

    tests = ()
    for node in nodes:
        if not isinstance(node, Lit):
            raise ValueError("sequence still contains recursion groups")
        tests = tests + node.tests
    return tests


def _min_nodes_length(nodes) -> int:
    from repro.adverts.model import _min_length

    return _min_length(tuple(nodes))


def _unroll_match(nodes, sub: XPathExpr) -> bool:
    """Paper §3.3 strategy: repeatedly expand the first recursion group
    ("try all possible advertisement formats") until the structure is
    simple enough for the earlier algorithms.

    * no groups left — ``AbsExprAndAdv``;
    * exactly one trailing group with a literal body — Figure 3;
    * otherwise unroll the first group ``1..c_max`` times and recurse,
      where ``c_max`` stops once the repeated region has pushed every
      later symbol beyond the subscription's length (an absolute XPE
      constrains only its first ``|s|`` positions).
    """
    from repro.adverts.model import Advertisement, Lit, Rep

    rep_positions = [
        index for index, node in enumerate(nodes) if isinstance(node, Rep)
    ]
    if not rep_positions:
        return abs_expr_and_adv(_flatten_literals(nodes), sub)
    if len(rep_positions) == 1:
        node = nodes[rep_positions[0]]
        if all(isinstance(inner, Lit) for inner in node.body):
            advert = Advertisement(tuple(nodes))
            a1, a2, a3 = _decompose_simple(advert)
            return abs_expr_and_sim_rec_adv(a1, a2, a3, sub)

    first = rep_positions[0]
    prefix_tests = _flatten_literals(nodes[:first])
    if len(prefix_tests) >= len(sub):
        # The literal prefix alone already constrains every position of
        # the (absolute) XPE; deeper structure cannot change the first
        # |s| symbols.
        return abs_expr_and_adv(prefix_tests, sub)
    body = nodes[first].body
    unit_min = _min_nodes_length(body)
    count = 1
    while len(prefix_tests) + (count - 1) * unit_min <= len(sub):
        candidate = (
            tuple(nodes[:first]) + body * count + tuple(nodes[first + 1:])
        )
        if _unroll_match(candidate, sub):
            return True
        count += 1
    return False


def abs_expr_and_ser_rec_adv(advert: Advertisement, sub: XPathExpr) -> bool:
    """``AbsExprAndSerRecAdv`` (paper §3.3): absolute simple XPE vs. a
    series-recursive advertisement ``a = a1(a2)+a3(a4)+a5``, by
    repeatedly unrolling the first group and calling Figure 3 on the
    remainder — the strategy the paper describes in prose."""
    if not (sub.is_simple and sub.is_absolute):
        raise ValueError("the paper's algorithm expects an absolute simple XPE")
    return _unroll_match(tuple(advert.nodes), sub)


def abs_expr_and_emb_rec_adv(advert: Advertisement, sub: XPathExpr) -> bool:
    """``AbsExprAndEmbRecAdv`` (paper §3.3): absolute simple XPE vs. an
    embedded-recursive advertisement — determine how many times the
    outer group repeats and recurse into the (then series-shaped)
    unrollings."""
    if not (sub.is_simple and sub.is_absolute):
        raise ValueError("the paper's algorithm expects an absolute simple XPE")
    return _unroll_match(tuple(advert.nodes), sub)
