"""Shared plumbing for the runtime backends.

Three things live here because every backend (and the test battery)
needs them:

* :func:`routing_fingerprint` — a stable digest of one broker's routing
  tables, independent of message arrival order, used to compare the
  same overlay across the simulator, asyncio and multiprocess backends;
* :func:`timeout_scale` / :func:`scaled` — the single
  ``REPRO_TEST_TIMEOUT_SCALE`` knob every wall-clock deadline in the
  socket/runtime tests derives from (loaded CI runners export e.g.
  ``REPRO_TEST_TIMEOUT_SCALE=3``);
* :func:`binary_tree_topology` — the paper's ``b1..bN`` complete binary
  tree as plain data, so non-simulator backends build the exact
  topology :meth:`repro.network.overlay.Overlay.binary_tree` builds.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import List, Tuple

from repro.broker.persistence import snapshot
from repro.errors import TopologyError

#: Environment knob scaling every runtime/socket test deadline.
TIMEOUT_SCALE_ENV = "REPRO_TEST_TIMEOUT_SCALE"


def timeout_scale() -> float:
    """The multiplier from ``REPRO_TEST_TIMEOUT_SCALE`` (default 1.0).

    Unparseable or non-positive values fall back to 1.0 rather than
    erroring — a broken env var should never turn into a zero timeout.
    """
    raw = os.environ.get(TIMEOUT_SCALE_ENV, "")
    try:
        value = float(raw)
    except ValueError:
        return 1.0
    return value if value > 0.0 else 1.0


def scaled(seconds: float) -> float:
    """*seconds* scaled by :func:`timeout_scale`."""
    return seconds * timeout_scale()


def routing_fingerprint(broker) -> str:
    """Stable digest of *broker*'s routing tables.

    Two brokers that routed the same workload — no matter in which
    arrival order, on which backend — fingerprint identically: the
    digest covers the SRT, the PRT (expression → sorted last-hop keys),
    the per-neighbour forwarded marks and the local client registry,
    each canonically sorted.  Volatile state (stats counters, match
    caches, the merge log) is deliberately excluded.

    Note: imperfect merging is arrival-order-dependent by design (the
    merger greedily groups whatever it has seen when the sweep fires),
    so cross-backend fingerprint comparisons are only meaningful for
    non-merging configurations — which is what the equivalence battery
    runs.
    """
    state = snapshot(broker)
    canonical = {
        "broker_id": state["broker_id"],
        "config": state["config"],
        "neighbors": state["neighbors"],
        "local_clients": state["local_clients"],
        "srt": sorted(
            state["srt"], key=lambda entry: (entry["adv_id"], entry["last_hop"])
        ),
        "subscriptions": sorted(
            state["subscriptions"], key=lambda entry: entry["expr"]
        ),
        "forwarded": sorted(
            state["forwarded"], key=lambda entry: entry["expr"]
        ),
        "client_subs": state["client_subs"],
    }
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def binary_tree_topology(levels: int) -> Tuple[List[str], List[Tuple[str, str]]]:
    """The paper's complete binary tree as ``(broker_ids, links)``.

    Naming matches :meth:`Overlay.binary_tree`: brokers ``b1 .. bN``
    with ``bi`` linked to ``b(2i)`` and ``b(2i+1)``; ``levels=3`` is
    the 7-broker overlay, ``levels=7`` the 127-broker Table 3 one.
    """
    if levels < 1:
        raise TopologyError("a tree needs at least one level")
    count = 2 ** levels - 1
    broker_ids = ["b%d" % i for i in range(1, count + 1)]
    links = []
    for i in range(1, count + 1):
        for child in (2 * i, 2 * i + 1):
            if child <= count:
                links.append(("b%d" % i, "b%d" % child))
    return broker_ids, links


def tree_leaves(levels: int) -> List[str]:
    """Leaf broker ids of :func:`binary_tree_topology`."""
    count = 2 ** levels - 1
    first_leaf = 2 ** (levels - 1)
    return ["b%d" % i for i in range(first_leaf, count + 1)]
