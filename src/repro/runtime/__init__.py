"""Real execution backends for the runtime-agnostic broker core.

The discrete-event simulator (:mod:`repro.network.overlay`) is one host
of :class:`repro.broker.core.BrokerCore`; this package adds two more:

* :mod:`repro.runtime.asyncio_backend` — every broker is an asyncio
  actor with bounded per-link send queues (real backpressure, graceful
  drain/shutdown) inside one process,
* :mod:`repro.runtime.multiprocess` — one OS process per broker,
  speaking :mod:`repro.network.wire` frames over real TCP sockets via
  :mod:`repro.network.sockets`; this is the deployment that runs the
  paper's 127-broker Table 3 overlay on one machine (``repro deploy``).

:mod:`repro.runtime.workload` drives the same seeded workload through
any backend, which is how tests/test_runtime_equivalence.py proves the
three executions are observationally identical.
"""

from repro.runtime.base import (
    binary_tree_topology,
    routing_fingerprint,
    scaled,
    timeout_scale,
)

__all__ = [
    "binary_tree_topology",
    "routing_fingerprint",
    "scaled",
    "timeout_scale",
]
