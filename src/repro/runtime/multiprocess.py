"""One OS process per broker: the real-deployment backend.

Each broker runs a :class:`~repro.network.sockets.SocketBrokerNode` in
its own ``multiprocessing`` child, listening on a real TCP port and
speaking :mod:`repro.network.wire` frames (sequence numbers, acks,
retransmission — the full reliable transport) to its neighbours.  The
parent keeps one control pipe per child and drives it with a tiny
command protocol: connect-to-peer, attach-client, submit, probe for
quiescence, drain buffered deliveries, snapshot / fingerprint the
routing tables, report hop logs and transport stats, stop.

This is the backend that runs the paper's Table 3 overlay — 127 broker
processes in a complete binary tree — on one machine (``repro
deploy``).  Everything observable crosses a process boundary, so:

* delivered documents come back as wire objects and are deduplicated
  parent-side exactly like a subscriber client would;
* the audit oracle runs against brokers *restored from persistence
  snapshots* shipped over the pipes (:meth:`MultiprocessDeployment.
  audit_view`);
* causal tracing cannot share a recorder across processes, so each
  child keeps a hop log of ``(trace_id, kind, from_hop)`` and
  :meth:`MultiprocessDeployment.verify_hop_traces` checks that every
  delivered publication's trace is visible at every broker on its
  routing path — the cross-process causal-completeness statement.

Every deadline is scaled by ``REPRO_TEST_TIMEOUT_SCALE`` (see
:mod:`repro.runtime.base`).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.broker.messages import Message, PublishMsg
from repro.broker.strategies import RoutingConfig
from repro.errors import RoutingError, TopologyError
from repro.network.wire import message_from_obj, message_to_obj
from repro.obs.tracing import mint_context, stamp, trace_of
from repro.runtime.base import routing_fingerprint, scaled


def _broker_worker(
    conn,
    broker_id: str,
    config,
    record_hops: bool,
    rto: float,
    flight_dir: Optional[str] = None,
    flight_capacity: int = 256,
    service_delay: float = 0.0,
):
    """Child-process main: host one socket broker, obey the pipe."""
    # Imported here as well so a ``spawn`` child resolves everything in
    # its own interpreter (under ``fork`` these are already loaded).
    from repro.broker.persistence import snapshot
    from repro.network.sockets import SocketBrokerNode

    node = SocketBrokerNode(
        broker_id, config=config, port=0, rto=rto,
        service_delay=service_delay,
    )
    node.record_hops = record_hops
    if flight_dir is not None:
        # Per-child flight ring: every handled message records a hop
        # span, so a crash or health dump carries this process's
        # recent history (dump reasons always carry the broker id —
        # the children share one output directory).
        from repro.obs.flight import FlightRecorderSet

        node.flight = FlightRecorderSet(
            capacity=flight_capacity, out_dir=flight_dir
        )
    node.start()
    matching_pool = None
    if config is not None and config.matching_engine == "sharded":
        # Per-process shard-probe pool: with one pool per broker
        # process, shard matching runs on real separate cores across
        # the deployment, not one shared GIL.
        from concurrent.futures import ThreadPoolExecutor

        matching_pool = ThreadPoolExecutor(
            max_workers=min(8, config.shard_count + 1),
            thread_name_prefix="repro-shard-match",
        )
        node.broker.matching_executor = matching_pool
    delivered: List[Tuple[str, dict]] = []
    conn.send(("ready", node.host, node.port))
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        command, args = request[0], request[1:]
        try:
            if command == "connect":
                peer_id, host, port = args
                node.dial(peer_id, host, port)
                reply = None
            elif command == "neighbors":
                reply = sorted(map(str, node.broker.neighbors))
            elif command == "attach":
                (client_id,) = args

                def sink(message, client_id=client_id):
                    obj = message_to_obj(message)
                    view = getattr(message, "view", None)
                    if view is not None:
                        # Local-delivery classification from the socket
                        # node (view-served / replayed); folded into the
                        # drained object for the parent-side auditor.
                        obj["view"] = view
                    delivered.append((client_id, obj))

                node.attach_local_client(client_id, sink)
                reply = None
            elif command == "submit":
                client_id, obj = args
                node.submit_local(client_id, message_from_obj(obj))
                reply = None
            elif command == "probe":
                handled = sum(node.broker.stats.values())
                reply = (handled, node.pending_count(), len(delivered))
            elif command == "drain_deliveries":
                reply, delivered = delivered, []
            elif command == "fingerprint":
                reply = routing_fingerprint(node.broker)
            elif command == "snapshot":
                reply = snapshot(node.broker)
            elif command == "hops":
                reply = list(node.hop_log)
            elif command == "transport_stats":
                reply = node.transport_stats()
            elif command == "telemetry":
                from repro.obs.telemetry import broker_gauges

                gauges = {
                    "queue_depth": float(node.inbox_depth()),
                    "pending": float(node.pending_count()),
                }
                gauges.update(broker_gauges(node.broker))
                stats = node.transport_stats()
                counters = {
                    "handled": float(sum(node.broker.stats.values())),
                    "retransmits": float(stats.get("retransmits", 0)),
                    "sent": float(stats.get("sent", 0)),
                }
                reply = (gauges, counters)
            elif command == "flight_dump":
                (reason,) = args
                reply = None
                if node.flight is not None:
                    document = node.flight.dump(
                        reason, time=time.monotonic()
                    )
                    reply = document.get("path")
            elif command == "errors":
                reply = list(node.errors)
            elif command == "crash":
                # Supervised abort: dump the flight ring the way a
                # fatal-signal handler would, ack so the parent knows
                # the dump landed, then die without cleanup.
                if node.flight is not None:
                    node.flight.dump(
                        "crash-%s" % broker_id, time=time.monotonic()
                    )
                conn.send(("ok", None))
                import os

                os._exit(1)
            elif command == "stop":
                node.stop()
                if matching_pool is not None:
                    node.broker.matching_executor = None
                    matching_pool.shutdown(wait=True)
                conn.send(("ok", None))
                break
            else:
                raise RoutingError("unknown deployment command %r" % command)
            conn.send(("ok", reply))
        except Exception:
            conn.send(("err", traceback.format_exc()))
    conn.close()


class _MpClient:
    """Parent-side record of one attached client."""

    def __init__(self, client_id: str, broker_id: str):
        self.client_id = client_id
        self.broker_id = broker_id
        self.received: List[Message] = []
        self._seen: Set[Tuple[str, int]] = set()
        self.duplicates = 0

    def accept(self, message: Message) -> bool:
        """Parent-side duplicate filter, mirroring
        :meth:`SubscriberClient.receive`."""
        if isinstance(message, PublishMsg):
            key = (message.publication.doc_id, message.publication.path_id)
            if key in self._seen:
                self.duplicates += 1
                return False
            self._seen.add(key)
        self.received.append(message)
        return True

    def delivered_documents(self) -> Set[str]:
        return {
            msg.publication.doc_id
            for msg in self.received
            if isinstance(msg, PublishMsg)
        }


class _StoppedClock:
    now = 0.0


class _AuditView:
    """The overlay facade the audit oracle binds to.

    ``brokers`` holds parent-side replicas restored from each child's
    persistence snapshot; :meth:`run` (the oracle's drain hook) settles
    the deployment, folds buffered deliveries into the oracle, and
    refreshes the replicas so the check always sees quiescent state.
    """

    def __init__(self, deployment: "MultiprocessDeployment"):
        self._deployment = deployment
        self.config = deployment.config
        self.universe = deployment.universe
        self.links = deployment.links
        self.metrics = deployment.metrics
        self.publishers = deployment.publishers
        self._client_home = deployment._client_home
        self.brokers = {}
        self.sim = _StoppedClock()
        self.tracing = None

    def run(self):
        self._deployment.settle()
        self._deployment.drain_deliveries()
        self.brokers = self._deployment.restore_brokers()

    def is_down(self, _broker_id) -> bool:
        return False


class MultiprocessDeployment:
    """A real multi-process broker overlay on localhost.

    Drive it like the other backends: ``add_broker`` / ``link`` /
    ``start`` / ``attach_*`` / ``submit`` / ``settle`` — then read
    ``subscribers[..].received``, :meth:`fingerprints` and
    :meth:`audit_view`.  Always :meth:`stop` (or use ``with``).
    """

    def __init__(
        self,
        config: Optional[RoutingConfig] = None,
        universe=None,
        record_hops: bool = False,
        rto: float = 0.05,
        start_method: Optional[str] = None,
        flight_dir: Optional[str] = None,
        flight_capacity: int = 256,
        service_delay: Optional[Dict[str, float]] = None,
    ):
        self.config = config if config is not None else RoutingConfig.full()
        self.universe = universe
        self.record_hops = record_hops
        self.rto = rto
        #: Directory the children dump flight rings into (crashes and
        #: health transitions); None disables per-child flight rings.
        self.flight_dir = flight_dir
        self.flight_capacity = flight_capacity
        #: Per-broker dispatcher slowdown, seconds per message — the
        #: deterministic overload knob for telemetry scenarios.
        self.service_delay = dict(service_delay or {})
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.broker_ids: List[str] = []
        self.links: Set[Tuple[str, str]] = set()
        self.metrics = obs.get_registry()
        self.publishers: Dict[str, _MpClient] = {}
        self.subscribers: Dict[str, _MpClient] = {}
        self._client_home: Dict[str, str] = {}
        self._auditors = []
        self._procs: Dict[str, multiprocessing.Process] = {}
        self._pipes: Dict[str, object] = {}
        self._addresses: Dict[str, Tuple[str, int]] = {}
        #: (subscriber, doc_id, path_id) -> trace id, from drained
        #: deliveries (used by :meth:`verify_hop_traces`).
        self._delivery_traces: Dict[Tuple[str, str, int], Optional[str]] = {}
        self._started = False
        #: Live telemetry plane (see :meth:`enable_telemetry`).
        self.telemetry = None
        self._t0: Optional[float] = None
        self._last_sample: Optional[float] = None

    # -- topology ---------------------------------------------------------

    def add_broker(self, broker_id: str):
        if self._started:
            raise TopologyError("add brokers before start()")
        if broker_id in self.broker_ids:
            raise TopologyError("duplicate broker id %r" % broker_id)
        self.broker_ids.append(broker_id)

    def link(self, a: str, b: str):
        for broker_id in (a, b):
            if broker_id not in self.broker_ids:
                raise TopologyError("unknown broker %r" % broker_id)
        self.links.add((a, b))

    def start(self, timeout: float = 30.0):
        """Spawn every broker process, wire every link, and wait for
        all handshakes to finish."""
        self._started = True
        self._t0 = time.monotonic()
        deadline = time.time() + scaled(timeout)
        for broker_id in self.broker_ids:
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_broker_worker,
                args=(
                    child_conn, broker_id, self.config,
                    self.record_hops, self.rto,
                    self.flight_dir, self.flight_capacity,
                    self.service_delay.get(broker_id, 0.0),
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._procs[broker_id] = process
            self._pipes[broker_id] = parent_conn
        for broker_id in self.broker_ids:
            pipe = self._pipes[broker_id]
            if not pipe.poll(max(deadline - time.time(), 0.01)):
                raise RoutingError(
                    "broker process %r did not come up" % broker_id
                )
            tag, host, port = pipe.recv()
            if tag != "ready":
                raise RoutingError(
                    "broker process %r failed to start: %r" % (broker_id, host)
                )
            self._addresses[broker_id] = (host, port)
        for a, b in sorted(self.links):
            host, port = self._addresses[b]
            self._rpc(a, "connect", b, host, port)
        # The dialing side is wired synchronously; the passive side
        # registers the neighbour in its handshake thread — poll until
        # every broker knows every neighbour the topology gives it.
        expected: Dict[str, Set[str]] = {b: set() for b in self.broker_ids}
        for a, b in self.links:
            expected[a].add(b)
            expected[b].add(a)
        for broker_id in self.broker_ids:
            while True:
                known = set(self._rpc(broker_id, "neighbors"))
                if expected[broker_id] <= known:
                    break
                if time.time() > deadline:
                    raise RoutingError(
                        "broker %r finished handshakes with %r, expected %r"
                        % (broker_id, sorted(known),
                           sorted(expected[broker_id]))
                    )
                time.sleep(0.005)

    def stop(self):
        """Graceful shutdown: ask every child to stop, then reap."""
        for broker_id, pipe in self._pipes.items():
            try:
                pipe.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for broker_id, process in self._procs.items():
            process.join(timeout=scaled(5.0))
            if process.is_alive():
                process.terminate()
                process.join(timeout=scaled(5.0))
        for pipe in self._pipes.values():
            try:
                pipe.close()
            except OSError:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.stop()

    # -- control-pipe RPC --------------------------------------------------

    def _rpc(self, broker_id: str, command: str, *args, timeout: float = 30.0):
        pipe = self._pipes[broker_id]
        pipe.send((command,) + args)
        if not pipe.poll(scaled(timeout)):
            raise RoutingError(
                "broker process %r did not answer %r within %.1fs"
                % (broker_id, command, scaled(timeout))
            )
        status, payload = pipe.recv()
        if status != "ok":
            raise RoutingError(
                "broker process %r failed %r:\n%s"
                % (broker_id, command, payload)
            )
        return payload

    # -- clients ----------------------------------------------------------

    def attach_publisher(self, client_id: str, broker_id: str) -> _MpClient:
        client = self._attach(client_id, broker_id)
        self.publishers[client_id] = client
        return client

    def attach_subscriber(self, client_id: str, broker_id: str) -> _MpClient:
        client = self._attach(client_id, broker_id)
        self.subscribers[client_id] = client
        return client

    def _attach(self, client_id: str, broker_id: str) -> _MpClient:
        if client_id in self._client_home:
            raise TopologyError("duplicate client id %r" % client_id)
        self._rpc(broker_id, "attach", client_id)
        self._client_home[client_id] = broker_id
        return _MpClient(client_id, broker_id)

    def submit(self, client_id: str, message: Message):
        """Ship one client message to its edge broker's process.

        A fresh trace context is minted parent-side (unless the message
        already carries one) and rides the wire object, so the hop logs
        of every process the message crosses name the same trace.
        """
        broker_id = self._client_home.get(client_id)
        if broker_id is None:
            raise RoutingError("unknown client %r" % client_id)
        if trace_of(message) is None:
            stamp(message, mint_context())
        for auditor in self._auditors:
            auditor.observe_submit(client_id, message)
        self._rpc(broker_id, "submit", client_id, message_to_obj(message))

    # -- quiescence and observation ---------------------------------------

    @property
    def now(self) -> float:
        """Wall seconds since :meth:`start` (the telemetry clock)."""
        if self._t0 is None:
            return 0.0
        return time.monotonic() - self._t0

    def _live_ids(self) -> List[str]:
        return [
            broker_id
            for broker_id in self.broker_ids
            if self._procs.get(broker_id) is not None
            and self._procs[broker_id].is_alive()
        ]

    def settle(self, timeout: float = 30.0) -> bool:
        """Poll every live process until no broker handles a new
        message — and no frame awaits an ack — for a short grace
        period.  With telemetry enabled the poll loop doubles as the
        sampler: one sampling sweep piggybacks on the control channel
        every plane interval."""

        def totals():
            handled, pending = [], 0
            for broker_id in self._live_ids():
                h, p, d = self._rpc(broker_id, "probe")
                handled.append((h, d))
                pending += p
            return tuple(handled), pending

        deadline = time.time() + scaled(timeout)
        # The probe's pending count covers both halves of a reliable
        # exchange (sent-but-unacked and acked-but-not-dispatched, see
        # _Connection) plus the inbox backlog, so a frame can never
        # hide between an ack and its dispatch; the grace only has to
        # outlast the probe's own cross-process snapshot skew.
        grace = scaled(0.05)
        self._maybe_sample()
        last, pending = totals()
        stable_since = time.time()
        while time.time() < deadline:
            time.sleep(0.02)
            self._maybe_sample()
            current, pending = totals()
            if current != last:
                last = current
                stable_since = time.time()
            elif pending == 0 and time.time() - stable_since > grace:
                self._maybe_sample()
                return True
        return False

    # -- telemetry ---------------------------------------------------------

    def enable_telemetry(self, plane=None, interval: float = 0.25, **kwargs):
        """Turn on the live telemetry plane.  Sampling frames piggyback
        on the control pipes: every :meth:`settle` poll (or an explicit
        :meth:`sample_telemetry`) sweeps the children at most once per
        plane interval.  Health transitions ask the affected child to
        dump its flight ring (when ``flight_dir`` is configured)."""
        from repro.obs.telemetry import TelemetryPlane

        if self.telemetry is not None:
            return self.telemetry
        if plane is None:
            plane = TelemetryPlane(
                registry=self.metrics, interval=interval, **kwargs
            )
        self.telemetry = plane
        plane.add_transition_hook(self._on_health_transition)
        return plane

    def _on_health_transition(self, broker_id, previous, state, rule, sample):
        if self.flight_dir is None:
            return
        try:
            self._rpc(
                broker_id, "flight_dump",
                "health-%s-%s" % (broker_id, state), timeout=10.0,
            )
        except (RoutingError, OSError, BrokenPipeError):
            pass

    def _maybe_sample(self):
        if self.telemetry is None:
            return
        now = self.now
        if (
            self._last_sample is not None
            and now - self._last_sample < self.telemetry.interval
        ):
            return
        self.sample_telemetry()

    def sample_telemetry(self):
        """One sampling sweep: ask every live child for its gauge and
        counter frame over the control pipe and feed the plane."""
        plane = self.telemetry
        if plane is None:
            return
        now = self.now
        self._last_sample = now
        plane.maybe_record_cluster(now)
        degraded = 1.0 if any(
            getattr(a, "stateless_recoveries", None)
            for a in self._auditors
        ) else 0.0
        for broker_id in self._live_ids():
            try:
                gauges, counters = self._rpc(
                    broker_id, "telemetry", timeout=10.0
                )
            except (RoutingError, OSError, BrokenPipeError):
                continue
            gauges["audit_degraded"] = degraded
            plane.record(broker_id, now, gauges=gauges, counters=counters)

    def broker_errors(self) -> Dict[str, List[str]]:
        """Handler tracebacks collected by each live child's
        dispatcher."""
        return {
            broker_id: self._rpc(broker_id, "errors")
            for broker_id in self._live_ids()
        }

    def crash_broker(self, broker_id: str, timeout: float = 10.0):
        """Hard-kill one child the supervised-abort way: it dumps its
        flight ring (when ``flight_dir`` is configured) and exits
        without cleanup — peers see a dead listener, exactly like a
        real node failure.  Returns when the process is gone."""
        pipe = self._pipes[broker_id]
        try:
            pipe.send(("crash",))
            if pipe.poll(scaled(timeout)):
                pipe.recv()
        except (OSError, BrokenPipeError, EOFError):
            pass
        process = self._procs[broker_id]
        process.join(timeout=scaled(timeout))
        if process.is_alive():
            process.terminate()
            process.join(timeout=scaled(timeout))

    def drain_deliveries(self) -> int:
        """Pull buffered deliveries out of every child, deduplicate
        them per subscriber, and feed fresh ones to the auditors.
        Returns the number of fresh deliveries folded in."""
        fresh = 0
        for broker_id in self._live_ids():
            for client_id, obj in self._rpc(broker_id, "drain_deliveries"):
                view = obj.pop("view", None) if isinstance(obj, dict) else None
                message = message_from_obj(obj)
                client = self.subscribers.get(client_id)
                if client is None or not client.accept(message):
                    continue
                fresh += 1
                if isinstance(message, PublishMsg):
                    context = trace_of(message)
                    self._delivery_traces[(
                        client_id,
                        message.publication.doc_id,
                        message.publication.path_id,
                    )] = context.trace_id if context is not None else None
                    for auditor in self._auditors:
                        if view is not None:
                            auditor.observe_delivery(
                                client_id, message, view=view
                            )
                        else:
                            auditor.observe_delivery(client_id, message)
        return fresh

    def fingerprints(self) -> Dict[str, str]:
        return {
            broker_id: self._rpc(broker_id, "fingerprint")
            for broker_id in self.broker_ids
        }

    def restore_brokers(self) -> Dict[str, object]:
        """Parent-side broker replicas from the children's persistence
        snapshots (what the audit oracle inspects)."""
        from repro.broker.persistence import restore

        return {
            broker_id: restore(
                self._rpc(broker_id, "snapshot"), universe=self.universe
            )
            for broker_id in self.broker_ids
        }

    def transport_stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for broker_id in self._live_ids():
            for key, value in self._rpc(broker_id, "transport_stats").items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def delivered_map(self) -> Dict[str, Set[str]]:
        return {
            client_id: client.delivered_documents()
            for client_id, client in self.subscribers.items()
        }

    # -- audit and tracing -------------------------------------------------

    def attach_auditor(self, auditor) -> "_AuditView":
        """Bind *auditor* to this deployment via an overlay facade; the
        oracle then observes submits/deliveries as usual and checks
        routing state restored from the children's snapshots."""
        view = _AuditView(self)
        self._auditors.append(auditor)
        auditor.bind(view)
        return view

    def verify_hop_traces(self) -> List[str]:
        """Cross-process causal completeness: every delivered
        publication's trace id must appear in the hop log of **every**
        broker on the unique tree path from the publisher's edge broker
        to the subscriber's.  Requires ``record_hops=True``; returns
        human-readable problems (empty = causally complete)."""
        if not self.record_hops:
            return ["hop recording is off (record_hops=False)"]
        hop_traces: Dict[str, Set[Optional[str]]] = {}
        for broker_id in self.broker_ids:
            hop_traces[broker_id] = {
                entry[0] for entry in self._rpc(broker_id, "hops")
            }
        adjacency: Dict[str, List[str]] = {b: [] for b in self.broker_ids}
        for a, b in self.links:
            adjacency[a].append(b)
            adjacency[b].append(a)
        problems: List[str] = []
        for (client_id, doc_id, path_id), trace_id in sorted(
            self._delivery_traces.items(), key=str
        ):
            if trace_id is None:
                problems.append(
                    "delivery %s/%s#%d carried no trace context"
                    % (client_id, doc_id, path_id)
                )
                continue
            home = self._client_home[client_id]
            publisher_homes = {
                self._client_home[p] for p in self.publishers
            }
            path = self._tree_path(adjacency, home, publisher_homes)
            for broker_id in path:
                if trace_id not in hop_traces[broker_id]:
                    problems.append(
                        "delivery %s/%s#%d: trace %s missing from hop log "
                        "of %s" % (client_id, doc_id, path_id, trace_id,
                                   broker_id)
                    )
        return problems

    @staticmethod
    def _tree_path(
        adjacency: Dict[str, List[str]], start: str, goals: Set[str]
    ) -> List[str]:
        """BFS path from *start* to the nearest goal broker (trees have
        exactly one simple path)."""
        parents: Dict[str, Optional[str]] = {start: None}
        frontier = [start]
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                if node in goals:
                    path = []
                    cursor: Optional[str] = node
                    while cursor is not None:
                        path.append(cursor)
                        cursor = parents[cursor]
                    return path
                for neighbor in adjacency[node]:
                    if neighbor not in parents:
                        parents[neighbor] = node
                        nxt.append(neighbor)
            frontier = nxt
        return [start]
