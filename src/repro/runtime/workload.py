"""One seeded workload, three execution backends.

The backend-equivalence battery (tests/test_runtime_equivalence.py and
``repro deploy --compare``) needs the *same* message stream pushed
through the discrete-event simulator, the asyncio runtime and the
multiprocess deployment, and the observations read back in the same
shape.  This module owns that: :func:`build_plan` derives a
deterministic workload from a seed (PSD advertisements, per-leaf Set A
query subsets, generated documents), and :func:`run_workload` drives it
through any backend adapter in three drained phases — advertise,
subscribe, publish — returning the delivered
``(client, doc_id, path)`` set and per-broker routing fingerprints at
quiescence.

The default strategy keeps **merging off**: imperfect merging is
arrival-order-dependent by design, so merged routing tables are not
comparable across execution models (see
:func:`repro.runtime.base.routing_fingerprint`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.adverts.generator import generate_advertisements
from repro.broker.messages import AdvertiseMsg, PublishMsg, SubscribeMsg
from repro.broker.strategies import RoutingConfig
from repro.runtime.base import binary_tree_topology, tree_leaves
from repro.workloads.datasets import psd_dtd, psd_queries
from repro.workloads.document_generator import generate_documents

#: Client id of the single publisher (attached at the tree root).
PUBLISHER = "pub"


@dataclass(frozen=True)
class WorkloadSpec:
    """A deterministic workload: same spec, same message stream."""

    levels: int = 3
    queries_per_leaf: int = 4
    documents: int = 4
    seed: int = 7
    strategy: str = "with-Adv-with-Cov"
    matching_engine: str = "auto"
    #: Root shards for ``matching_engine="sharded"``.
    shard_count: int = 4
    #: Edge materialized views (repro.views) on every broker.
    views: bool = False
    view_hot_threshold: int = 3
    target_bytes: int = 600
    #: Quiesce between per-leaf subscription batches.  Covering
    #: decisions depend on the order concurrent subscriptions from
    #: different leaves reach a shared ancestor — all resulting tables
    #: are correct and deliver identically, but only a serialized
    #: subscription phase makes the *fingerprints* backend-independent.
    serialize_subscriptions: bool = True

    def config(self) -> RoutingConfig:
        config = RoutingConfig.by_name(self.strategy)
        if self.matching_engine != config.matching_engine:
            config = dataclasses.replace(
                config, matching_engine=self.matching_engine
            )
        if self.shard_count != config.shard_count:
            config = dataclasses.replace(
                config, shard_count=self.shard_count
            )
        if (
            self.views != config.views
            or self.view_hot_threshold != config.view_hot_threshold
        ):
            config = dataclasses.replace(
                config,
                views=self.views,
                view_hot_threshold=self.view_hot_threshold,
            )
        return config


@dataclass
class WorkloadPlan:
    """The concrete message material derived from a spec."""

    spec: WorkloadSpec
    broker_ids: List[str]
    links: List[Tuple[str, str]]
    adverts: List[Tuple[str, object]]
    #: leaf broker id -> the XPEs its subscriber registers.
    subscriptions: Dict[str, List[object]]
    documents: List[object]

    @property
    def subscriber_ids(self) -> List[str]:
        return ["sub-%s" % leaf for leaf in sorted(self.subscriptions)]


@dataclass
class WorkloadResult:
    """Everything the equivalence battery compares."""

    backend: str
    delivered: Set[Tuple[str, str, Tuple[str, ...]]]
    fingerprints: Dict[str, str]
    audit_problems: List[str] = field(default_factory=list)
    trace_problems: List[str] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)


def build_plan(spec: WorkloadSpec) -> WorkloadPlan:
    """Derive the deterministic message material of *spec*."""
    dtd = psd_dtd()
    broker_ids, links = binary_tree_topology(spec.levels)
    adverts = [
        ("%s/adv%d" % (PUBLISHER, i), advert)
        for i, advert in enumerate(generate_advertisements(dtd))
    ]
    subscriptions: Dict[str, List[object]] = {}
    for index, leaf in enumerate(tree_leaves(spec.levels)):
        dataset = psd_queries(
            count=spec.queries_per_leaf, seed=spec.seed * 100 + index
        )
        subscriptions[leaf] = list(dataset.exprs)
    documents = generate_documents(
        dtd, spec.documents, seed=spec.seed, target_bytes=spec.target_bytes
    )
    return WorkloadPlan(
        spec=spec,
        broker_ids=broker_ids,
        links=links,
        adverts=adverts,
        subscriptions=subscriptions,
        documents=documents,
    )


def run_workload(
    adapter, spec: WorkloadSpec, plan: Optional[WorkloadPlan] = None,
    auditor=None,
) -> WorkloadResult:
    """Drive *spec* through *adapter* (a backend adapter below).

    Phases are drained individually — advertisements settle before any
    subscription is issued, subscriptions settle before any document is
    published — so the routing tables every backend converges to are
    phase-equivalent even though intra-phase arrival orders differ.
    """
    if plan is None:
        plan = build_plan(spec)
    adapter.setup(spec, plan)
    try:
        if auditor is not None:
            adapter.attach_auditor(auditor)
        for adv_id, advert in plan.adverts:
            adapter.submit(
                PUBLISHER,
                AdvertiseMsg(
                    adv_id=adv_id, advert=advert, publisher_id=PUBLISHER
                ),
            )
        adapter.quiesce()
        for leaf in sorted(plan.subscriptions):
            client_id = "sub-%s" % leaf
            for expr in plan.subscriptions[leaf]:
                adapter.submit(
                    client_id,
                    SubscribeMsg(expr=expr, subscriber_id=client_id),
                )
            if spec.serialize_subscriptions:
                adapter.quiesce()
        adapter.quiesce()
        for document in plan.documents:
            size = document.size_bytes()
            issued_at = adapter.now()
            for publication in document.publications():
                adapter.submit(
                    PUBLISHER,
                    PublishMsg(
                        publication=publication,
                        publisher_id=PUBLISHER,
                        doc_size_bytes=size,
                        issued_at=issued_at,
                    ),
                )
        adapter.quiesce()
        audit_problems: List[str] = []
        if auditor is not None:
            # drain=True routes through the backend's own quiescence
            # hook (the multiprocess facade refreshes its snapshot-
            # restored broker replicas there).
            report = auditor.check(drain=True)
            audit_problems = [
                str(v) for v in report.soundness + report.unexplained_fp
            ]
        return WorkloadResult(
            backend=adapter.name,
            delivered=adapter.delivered(),
            fingerprints=adapter.fingerprints(),
            audit_problems=audit_problems,
            trace_problems=adapter.trace_problems(),
            extras=adapter.extras(),
        )
    finally:
        adapter.close()


class _Adapter:
    """Interface every backend adapter fills in."""

    name = "?"

    def setup(self, spec: WorkloadSpec, plan: WorkloadPlan):
        raise NotImplementedError

    def submit(self, client_id: str, message):
        raise NotImplementedError

    def quiesce(self):
        raise NotImplementedError

    def now(self) -> float:
        return 0.0

    def delivered(self) -> Set[Tuple[str, str, Tuple[str, ...]]]:
        raise NotImplementedError

    def fingerprints(self) -> Dict[str, str]:
        raise NotImplementedError

    def attach_auditor(self, auditor):
        raise NotImplementedError

    def trace_problems(self) -> List[str]:
        return []

    def extras(self) -> Dict[str, object]:
        return {}

    def close(self):
        pass


class SimulatorAdapter(_Adapter):
    """The discrete-event simulator as the reference execution."""

    name = "simulator"

    def __init__(self, tracing: bool = False):
        self._tracing = tracing
        self.overlay = None

    def setup(self, spec: WorkloadSpec, plan: WorkloadPlan):
        from repro.network.latency import ConstantLatency
        from repro.network.overlay import Overlay

        # Constant latency keeps every simulated link FIFO, like the
        # TCP/queue links of the real backends.  ClusterLatency's jitter
        # can reorder a covering retraction ahead of the subscription it
        # retracts on the same link — a legal execution, but not one the
        # FIFO backends can produce, so tables would diverge.
        # processing_scale=0 matters for the same reason: by default the
        # overlay charges each handler's *measured wall time* into the
        # virtual clock, which perturbs equal-latency arrivals by
        # scheduler noise and lets an UNSUB overtake the SUB it retracts.
        self.overlay = Overlay.binary_tree(
            spec.levels,
            config=spec.config(),
            latency_model=ConstantLatency(0.001),
            processing_scale=0.0,
        )
        if self._tracing:
            self.overlay.enable_tracing()
        self.overlay.attach_publisher(PUBLISHER, plan.broker_ids[0])
        for leaf in sorted(plan.subscriptions):
            self.overlay.attach_subscriber("sub-%s" % leaf, leaf)

    def submit(self, client_id: str, message):
        self.overlay.submit(client_id, message)

    def quiesce(self):
        self.overlay.run()

    def now(self) -> float:
        return self.overlay.now

    def delivered(self):
        return _delivered_from_clients(self.overlay.subscribers)

    def fingerprints(self):
        return {
            broker_id: core.fingerprint()
            for broker_id, core in self.overlay.cores.items()
        }

    def attach_auditor(self, auditor):
        self.overlay.attach_auditor(auditor)

    def trace_problems(self):
        if not self._tracing:
            return []
        from repro.obs.tracing import verify_traces

        return verify_traces(self.overlay)

    def extras(self):
        return {"network_traffic": self.overlay.stats.network_traffic}


class AsyncioAdapter(_Adapter):
    """The in-process concurrent runtime."""

    name = "asyncio"

    def __init__(self, tracing: bool = False, link_capacity: int = 64):
        self._tracing = tracing
        self._link_capacity = link_capacity
        self.runtime = None

    def setup(self, spec: WorkloadSpec, plan: WorkloadPlan):
        from repro.runtime.asyncio_backend import AsyncioRuntime

        self.runtime = AsyncioRuntime(
            config=spec.config(), link_capacity=self._link_capacity
        )
        if self._tracing:
            self.runtime.enable_tracing()
        for broker_id in plan.broker_ids:
            self.runtime.add_broker(broker_id)
        for a, b in plan.links:
            self.runtime.connect(a, b)
        self.runtime.start()
        self.runtime.attach_publisher(PUBLISHER, plan.broker_ids[0])
        for leaf in sorted(plan.subscriptions):
            self.runtime.attach_subscriber("sub-%s" % leaf, leaf)

    def submit(self, client_id: str, message):
        self.runtime.submit(client_id, message)

    def quiesce(self):
        self.runtime.drain()

    def now(self) -> float:
        return self.runtime.now

    def delivered(self):
        return _delivered_from_clients(self.runtime.subscribers)

    def fingerprints(self):
        return self.runtime.routing_fingerprints()

    def attach_auditor(self, auditor):
        self.runtime.attach_auditor(auditor)

    def trace_problems(self):
        if not self._tracing:
            return []
        from repro.obs.tracing import verify_traces

        return verify_traces(self.runtime)

    def extras(self):
        return {
            "network_traffic": self.runtime.stats.network_traffic,
            "max_queue_depth": dict(self.runtime.max_queue_depth),
        }

    def close(self):
        if self.runtime is not None:
            self.runtime.close()


class MultiprocessAdapter(_Adapter):
    """One OS process per broker over real sockets."""

    name = "multiprocess"

    def __init__(self, record_hops: bool = True, rto: Optional[float] = None):
        self._record_hops = record_hops
        self._rto = rto
        self.deployment = None

    def setup(self, spec: WorkloadSpec, plan: WorkloadPlan):
        from repro.runtime.multiprocess import MultiprocessDeployment

        # Loopback never loses frames; the retransmission timeout only
        # matters when ack round-trips stretch under load.  A large
        # deployment needs a calmer timer or spurious retransmits of
        # slow-but-healthy frames snowball into a self-inflicted storm.
        rto = self._rto
        if rto is None:
            rto = 0.05 if len(plan.broker_ids) <= 31 else 0.5
        self.deployment = MultiprocessDeployment(
            config=spec.config(),
            record_hops=self._record_hops,
            rto=rto,
        )
        for broker_id in plan.broker_ids:
            self.deployment.add_broker(broker_id)
        for a, b in plan.links:
            self.deployment.link(a, b)
        self.deployment.start()
        self.deployment.attach_publisher(PUBLISHER, plan.broker_ids[0])
        for leaf in sorted(plan.subscriptions):
            self.deployment.attach_subscriber("sub-%s" % leaf, leaf)

    def submit(self, client_id: str, message):
        self.deployment.submit(client_id, message)

    def quiesce(self):
        if not self.deployment.settle():
            raise RuntimeError("multiprocess deployment failed to settle")
        self.deployment.drain_deliveries()

    def delivered(self):
        return _delivered_from_clients(self.deployment.subscribers)

    def fingerprints(self):
        return self.deployment.fingerprints()

    def attach_auditor(self, auditor):
        self.deployment.attach_auditor(auditor)

    def trace_problems(self):
        if not self._record_hops:
            return []
        return self.deployment.verify_hop_traces()

    def extras(self):
        return {"transport": self.deployment.transport_stats()}

    def close(self):
        if self.deployment is not None:
            self.deployment.stop()


def _delivered_from_clients(subscribers) -> Set[Tuple[str, str, Tuple[str, ...]]]:
    delivered: Set[Tuple[str, str, Tuple[str, ...]]] = set()
    for client_id, client in subscribers.items():
        for message in client.received:
            if isinstance(message, PublishMsg):
                delivered.add((
                    client_id,
                    message.publication.doc_id,
                    tuple(message.publication.path),
                ))
    return delivered


ADAPTERS = {
    "simulator": SimulatorAdapter,
    "asyncio": AsyncioAdapter,
    "multiprocess": MultiprocessAdapter,
}
