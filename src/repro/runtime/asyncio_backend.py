"""An asyncio event-loop execution of the broker core.

Every broker is an actor: an unbounded inbox drained by one task that
feeds each inbound message to its :class:`~repro.broker.core.BrokerCore`
and interprets the returned effects.  Every directed broker link has a
**bounded** send queue drained by a sender task, and every subscriber
has a bounded delivery queue drained by a consumer task — so a slow
link or a slow client exerts real backpressure: the upstream actor
blocks on the full queue (surfacing ``runtime.backpressure.*``
metrics) instead of buffering without limit.  Only send queues are
bounded; inboxes are not, which is what makes the topology
deadlock-free — a sender task can always hand its message to the next
inbox, so every bounded queue always drains.

Nothing is ever dropped unless the host installs a
:attr:`AsyncioRuntime.drop_filter` fault hook.

The class deliberately mirrors the :class:`~repro.network.overlay.
Overlay` surface (``submit``/``run``/``brokers``/``links``/``tracing``/
``attach_auditor`` …) so the publisher/subscriber clients, the audit
oracle and :func:`repro.obs.tracing.verify_traces` work on it
unchanged.  The loop is private and driven synchronously: callers stay
plain blocking code and the runtime only makes progress inside
:meth:`run` / :meth:`drain` / :meth:`close`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.broker.broker import Broker
from repro.broker.core import (
    BrokerCore,
    Deliver,
    Replay,
    Send,
    Telemetry,
    TimerRequest,
    ViewServe,
)
from repro.broker.messages import Message, PublishMsg
from repro.broker.strategies import RoutingConfig
from repro.errors import RoutingError, TopologyError
from repro.network.clients import PublisherClient, SubscriberClient
from repro.network.stats import DeliveryRecord, NetworkStats
from repro.obs.tracing import Span, TraceContext, TraceRecorder, stamp, trace_of
from repro.runtime.base import scaled


class _TimerFire:
    """Internal inbox item: a host timer fired for this broker."""

    __slots__ = ("name",)
    kind = "timer"

    def __init__(self, name: str):
        self.name = name


class _Clock:
    """Monotonic seconds since the runtime started (the ``sim.now``
    shim the oracle's failure reporting expects)."""

    def __init__(self):
        self._t0 = time.monotonic()

    @property
    def now(self) -> float:
        return time.monotonic() - self._t0


class AsyncioRuntime:
    """One-process concurrent backend: brokers as asyncio actors.

    Args:
        config: routing configuration shared by every broker.
        universe: optional :class:`~repro.xpath.universe.PathUniverse`.
        link_capacity: bound of every broker→broker send queue.
        client_capacity: bound of every subscriber delivery queue.
        metrics: metrics registry (defaults to the process registry).
        matching_workers: thread count of the shared matching pool used
            to fan a publication's shard probes out concurrently when
            ``config.matching_engine == "sharded"`` (default: one per
            shard plus the floating shard, capped at 8).  Ignored — no
            pool is created — for the other engines.  CPython caveat,
            stated plainly: shard probes are pure-Python DFA walks, so
            under the GIL the pool buys overlap, not core-parallelism;
            the cross-core win belongs to the multiprocess backend,
            and the sharded engine's single-thread win is cache
            locality (see docs/runtime.md).
    """

    #: Mirrors ``Overlay.batching`` for the publisher client; the
    #: asyncio backend always ships publications one message at a time.
    batching = False

    def __init__(
        self,
        config: Optional[RoutingConfig] = None,
        universe=None,
        link_capacity: int = 64,
        client_capacity: int = 16,
        metrics=None,
        matching_workers: Optional[int] = None,
    ):
        self.config = config if config is not None else RoutingConfig.full()
        self.universe = universe
        self.link_capacity = link_capacity
        self.client_capacity = client_capacity
        self.matching_workers = matching_workers
        #: The bounded shard-probe pool (``start()`` creates it for the
        #: sharded engine, ``close()`` shuts it down; None otherwise).
        self.matching_pool = None
        self.metrics = metrics if metrics is not None else obs.get_registry()
        self.stats = NetworkStats(registry=self.metrics)
        self.sim = _Clock()
        self.cores: Dict[str, BrokerCore] = {}
        self.brokers: Dict[str, Broker] = {}
        self.links: Set[Tuple[str, str]] = set()
        self.subscribers: Dict[str, SubscriberClient] = {}
        self.publishers: Dict[str, PublisherClient] = {}
        self._client_home: Dict[str, str] = {}
        self._auditors = []
        self.tracing: Optional[TraceRecorder] = None
        #: Fault hook: ``f(src, dst, message) -> True`` drops the frame
        #: on the src→dst link (counted as ``runtime.faults.dropped``).
        #: Without it the runtime never drops anything.
        self.drop_filter: Optional[Callable[[str, str, Message], bool]] = None
        #: Per-directed-link artificial service delay, seconds — the
        #: slow-consumer-link knob the backpressure tests turn.
        self.link_delay: Dict[Tuple[str, str], float] = {}
        #: Per-subscriber artificial consume delay, seconds.
        self.client_delay: Dict[str, float] = {}
        #: Observed high-water mark of every bounded queue.
        self.max_queue_depth: Dict[object, int] = {}

        self._loop = asyncio.new_event_loop()
        self._tasks: List[asyncio.Task] = []
        self._inboxes: Dict[str, asyncio.Queue] = {}
        self._link_queues: Dict[Tuple[str, str], asyncio.Queue] = {}
        self._client_queues: Dict[str, asyncio.Queue] = {}
        self._pending = 0
        self._idle: Optional[asyncio.Event] = None
        self._errors: List[BaseException] = []
        #: ``(client_id, msg_id)`` → "serve"/"replay" for deliveries a
        #: materialized view produced (popped by :meth:`_deliver`).
        self._view_kinds: Dict[Tuple[str, int], str] = {}
        self._issued: Dict[Tuple[str, int], float] = {}
        #: The live telemetry plane (:meth:`enable_telemetry`); sampled
        #: by a wall-clock task that is *outside* the pending-message
        #: accounting — it must never keep :meth:`drain` from settling.
        self.telemetry = None
        self._sampler_spawned = False
        self._started = False
        self._closed = False
        # asyncio primitives must be created while the owning loop is
        # current (pre-3.10 they bind get_event_loop() at construction).
        self._loop.run_until_complete(self._bootstrap())

    async def _bootstrap(self):
        self._idle = asyncio.Event()
        self._idle.set()

    # -- topology ---------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def add_broker(self, broker_id: str) -> Broker:
        if self._started:
            raise TopologyError("add brokers before start()")
        if broker_id in self.brokers:
            raise TopologyError("duplicate broker id %r" % broker_id)
        core = BrokerCore(
            broker_id=broker_id, config=self.config, universe=self.universe
        )
        self.cores[broker_id] = core
        self.brokers[broker_id] = core.broker
        return core.broker

    def connect(self, a: str, b: str):
        if self._started:
            raise TopologyError("connect brokers before start()")
        for broker_id in (a, b):
            if broker_id not in self.brokers:
                raise TopologyError("unknown broker %r" % broker_id)
        self.cores[a].connect(b)
        self.cores[b].connect(a)
        self.links.add((a, b))

    def start(self):
        """Spawn the actor, link-sender and client-consumer tasks (and,
        for the sharded matching engine, the bounded shard-probe pool
        shared by every broker on this loop)."""
        if self._started:
            return
        self._started = True
        if self.config.matching_engine == "sharded":
            from concurrent.futures import ThreadPoolExecutor

            workers = self.matching_workers
            if workers is None:
                workers = min(8, self.config.shard_count + 1)
            self.matching_pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="repro-shard-match",
            )
            for core in self.cores.values():
                core.set_matching_executor(self.matching_pool)
        self._loop.run_until_complete(self._spawn_topology())
        if self.telemetry is not None and not self._sampler_spawned:
            self._loop.run_until_complete(self._spawn_sampler())

    async def _spawn_topology(self):
        for broker_id in self.brokers:
            self._inboxes[broker_id] = asyncio.Queue()
            self._tasks.append(
                self._loop.create_task(self._actor(broker_id))
            )
        for a, b in sorted(self.links):
            for src, dst in ((a, b), (b, a)):
                queue = asyncio.Queue(maxsize=self.link_capacity)
                self._link_queues[(src, dst)] = queue
                self._tasks.append(
                    self._loop.create_task(self._link_sender(src, dst))
                )

    # -- clients ----------------------------------------------------------

    def attach_publisher(self, client_id: str, broker_id: str) -> PublisherClient:
        self._check_client(client_id, broker_id)
        client = PublisherClient(client_id, self, broker_id)
        self.publishers[client_id] = client
        self.cores[broker_id].attach_client(client_id)
        self._client_home[client_id] = broker_id
        return client

    def attach_subscriber(self, client_id: str, broker_id: str) -> SubscriberClient:
        self._check_client(client_id, broker_id)
        client = SubscriberClient(client_id, self, broker_id)
        self.subscribers[client_id] = client
        self.cores[broker_id].attach_client(client_id)
        self._client_home[client_id] = broker_id
        self._loop.run_until_complete(self._spawn_consumer(client_id))
        return client

    async def _spawn_consumer(self, client_id: str):
        self._client_queues[client_id] = asyncio.Queue(
            maxsize=self.client_capacity
        )
        self._tasks.append(
            self._loop.create_task(self._client_consumer(client_id))
        )

    def _check_client(self, client_id: str, broker_id: str):
        if not self._started:
            raise TopologyError("attach clients after start()")
        if broker_id not in self.brokers:
            raise TopologyError("unknown broker %r" % broker_id)
        if client_id in self._client_home or client_id in self.brokers:
            raise TopologyError("duplicate client id %r" % client_id)

    # -- overlay-compatible surface ---------------------------------------

    def is_down(self, broker_id: str) -> bool:
        return False

    def attach_auditor(self, auditor):
        self._auditors.append(auditor)
        auditor.bind(self)
        return auditor

    def enable_tracing(
        self, recorder: Optional[TraceRecorder] = None, **kwargs
    ) -> TraceRecorder:
        if recorder is None:
            recorder = TraceRecorder(registry=self.metrics, **kwargs)
        self.tracing = recorder
        return recorder

    def enable_telemetry(self, plane=None, interval: float = 0.05, **kwargs):
        """Turn on the live telemetry plane: a dedicated wall-clock
        sampler task wakes every *interval* seconds (while the loop is
        being driven by :meth:`run`/:meth:`drain`) and records each
        broker's queue depths, matcher/view gauges and handled deltas
        into *plane* (a fresh
        :class:`~repro.obs.telemetry.TelemetryPlane` bound to this
        runtime's registry by default; extra keyword arguments —
        ``rules``, ``ring_capacity``, ``clear_after`` — configure it).

        The sampler deliberately lives outside the pending-message
        accounting: re-arming core ``TimerRequest`` ticks through
        :meth:`_apply_effect` would hold ``_pending`` above zero forever
        and hang every drain.  Health transitions dump the flight
        recorder when tracing is also enabled."""
        if self.telemetry is not None:
            return self.telemetry
        if plane is None:
            from repro.obs.telemetry import TelemetryPlane

            plane = TelemetryPlane(
                registry=self.metrics, interval=interval, **kwargs
            )
        self.telemetry = plane
        plane.add_transition_hook(self._on_health_transition)
        if self._started and not self._sampler_spawned:
            self._loop.run_until_complete(self._spawn_sampler())
        return plane

    async def _spawn_sampler(self):
        self._sampler_spawned = True
        self._tasks.append(
            self._loop.create_task(self._telemetry_sampler())
        )

    async def _telemetry_sampler(self):
        plane = self.telemetry
        while True:
            await asyncio.sleep(plane.interval)
            try:
                self.sample_telemetry()
            except asyncio.CancelledError:  # pragma: no cover
                raise
            except BaseException as exc:
                # A telemetry bug must fail the next drain, not pass
                # silently (and not crash the loop mid-flight).
                self._errors.append(exc)
                self._idle.set()
                return

    def _on_health_transition(self, broker_id, previous, state, rule, sample):
        tracing = self.tracing
        if tracing is not None and getattr(tracing, "flight", None) is not None:
            tracing.flight.dump(
                "health-%s-%s" % (broker_id, state), time=self.now
            )

    def queue_depth(self, broker_id: str) -> int:
        """Instantaneous backlog attributable to *broker_id*: its inbox
        plus its outbound link queues plus the delivery queues of its
        locally attached subscribers."""
        depth = self._inboxes[broker_id].qsize()
        for (src, _dst), queue in self._link_queues.items():
            if src == broker_id:
                depth += queue.qsize()
        for client_id, queue in self._client_queues.items():
            if self._client_home.get(client_id) == broker_id:
                depth += queue.qsize()
        return depth

    def sample_telemetry(self):
        """Take one telemetry sample of every broker right now (the
        sampler task calls this on its cadence; tests may call it
        directly for a deterministic sample)."""
        plane = self.telemetry
        if plane is None:
            return
        from repro.obs.telemetry import broker_gauges

        now = self.now
        plane.maybe_record_cluster(now)
        degraded = any(
            getattr(auditor, "stateless_recoveries", None)
            for auditor in self._auditors
        )
        for broker_id in self.brokers:
            gauges = {
                "queue_depth": float(self.queue_depth(broker_id)),
                "audit_degraded": 1.0 if degraded else 0.0,
            }
            gauges.update(broker_gauges(self.brokers[broker_id]))
            counters = {
                "handled": float(sum(self.brokers[broker_id].stats.values()))
            }
            plane.record(broker_id, now, gauges=gauges, counters=counters)

    def submit(self, client_id: str, message: Message):
        """A client hands a message to its edge broker.

        Safe to call while the loop is parked: the message queues and
        travels on the next :meth:`run`/:meth:`drain`.
        """
        broker_id = self._client_home.get(client_id)
        if broker_id is None:
            raise RoutingError("unknown client %r" % client_id)
        tracing = self.tracing
        context = None
        if tracing is not None and trace_of(message) is None:
            context = tracing.mint(message)
        for auditor in self._auditors:
            auditor.observe_submit(client_id, message)
        now = self.now
        root: Optional[Span] = None
        if context is not None:
            root = tracing.record_root(context, client_id, message, now, 0.0)
        publication = getattr(message, "publication", None)
        if publication is not None:
            self._issued.setdefault(
                (publication.doc_id, publication.path_id), now
            )
        self._begin()
        self._inboxes[broker_id].put_nowait((message, client_id, 1, root))

    def submit_batch(self, client_id: str, messages: List[Message]):
        for message in messages:
            self.submit(client_id, message)

    def trigger_merge_sweep(self, broker_id: str):
        """Enqueue an immediate merge sweep on one broker (processed in
        arrival order with the rest of its inbox)."""
        if broker_id not in self.brokers:
            raise TopologyError("unknown broker %r" % broker_id)
        self._begin()
        self._inboxes[broker_id].put_nowait(
            (_TimerFire("merge-sweep"), None, 0, None)
        )

    # -- progress ---------------------------------------------------------

    def drain(self, timeout: float = 30.0) -> None:
        """Run the loop until no message is in flight anywhere.

        *timeout* is in unscaled seconds (``REPRO_TEST_TIMEOUT_SCALE``
        multiplies it); expiry raises — a drain that cannot finish
        means a lost message or a stuck task, never a legal state.
        """
        if self._closed:
            raise RoutingError("runtime is closed")
        try:
            self._loop.run_until_complete(
                asyncio.wait_for(self._drained(), scaled(timeout))
            )
        except asyncio.TimeoutError:
            raise RoutingError(
                "asyncio runtime failed to drain within %.1fs "
                "(%d messages still pending)" % (scaled(timeout), self._pending)
            )
        if self._errors:
            raise self._errors[0]

    def run(self, max_events=None) -> int:
        """Overlay-compatible alias for :meth:`drain`."""
        self.drain()
        return 0

    async def _drained(self):
        await self._idle.wait()

    def _begin(self):
        self._pending += 1
        self._idle.clear()

    def _finish(self):
        self._pending -= 1
        if self._pending == 0:
            self._idle.set()

    # -- graceful shutdown -------------------------------------------------

    def close(self, drain: bool = True):
        """Drain in-flight traffic (best effort), cancel every task and
        close the loop.  Idempotent."""
        if self._closed:
            return
        if drain and self._started and self._pending:
            try:
                self.drain()
            except Exception:
                pass
        self._closed = True
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            self._loop.run_until_complete(
                asyncio.gather(*self._tasks, return_exceptions=True)
            )
        self._loop.close()
        if self.matching_pool is not None:
            for core in self.cores.values():
                core.set_matching_executor(None)
            self.matching_pool.shutdown(wait=True)
            self.matching_pool = None

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()

    # -- the actors --------------------------------------------------------

    async def _actor(self, broker_id: str):
        inbox = self._inboxes[broker_id]
        core = self.cores[broker_id]
        while True:
            message, from_hop, hops, parent_span = await inbox.get()
            try:
                tracing = self.tracing
                context = None
                hop_span: Optional[Span] = None
                if isinstance(message, _TimerFire):
                    effects = core.on_timer(message.name)
                else:
                    self.stats.record_broker_message(broker_id, message.kind)
                    context = (
                        trace_of(message) if tracing is not None else None
                    )
                    if context is not None:
                        now = self.now
                        hop_span = tracing.span(
                            context.trace_id,
                            _parent_id(parent_span, context),
                            "hop", broker_id, now, now,
                            kind=message.kind, from_hop=str(from_hop),
                        )
                    effects = core.on_message(message, from_hop)
                    if hop_span is not None:
                        hop_span.end = self.now
                        hop_span.attrs["fanout"] = len(effects)
                for effect in effects:
                    await self._apply_effect(
                        broker_id, effect, hops, context, hop_span
                    )
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                # A broker bug must fail the drain, not hang it.
                self._errors.append(exc)
                self._idle.set()
                raise
            finally:
                self._finish()

    async def _apply_effect(
        self,
        broker_id: str,
        effect,
        hops: int,
        context: Optional[TraceContext],
        hop_span: Optional[Span],
    ):
        tracing = self.tracing
        if isinstance(effect, Replay):
            # A view window replayed to a late subscriber: each retained
            # publication rides the client's bounded delivery queue like
            # any delivery (backpressure included); client-side dedup
            # makes the replay exactly-once.
            for out_msg in effect.messages:
                self._view_kinds[
                    (effect.client_id, out_msg.msg_id)
                ] = "replay"
                fwd: Optional[Span] = None
                out_context = (
                    trace_of(out_msg) if tracing is not None else None
                )
                if out_context is not None:
                    now = self.now
                    fwd = tracing.span(
                        out_context.trace_id,
                        _parent_id(hop_span, out_context),
                        "forward", broker_id, now, now,
                        to=str(effect.client_id), kind=out_msg.kind,
                        view="replay",
                    )
                self._begin()
                await self._bounded_put(
                    self._client_queues[effect.client_id],
                    effect.client_id,
                    (out_msg, hops, fwd),
                )
            return
        if isinstance(effect, (Send, Deliver)):
            if isinstance(effect, ViewServe):
                self._view_kinds[
                    (effect.client_id, effect.message.msg_id)
                ] = "serve"
            out_msg = effect.message
            # Broker-originated control traffic joins the causal trace
            # of the message that produced it (same rule as the
            # simulator); messages with a context keep theirs.
            if context is not None and trace_of(out_msg) is None:
                stamp(
                    out_msg,
                    TraceContext(context.trace_id, hop_span.span_id),
                )
            fwd: Optional[Span] = None
            out_context = trace_of(out_msg) if tracing is not None else None
            if out_context is not None:
                now = self.now
                destination = (
                    effect.destination
                    if isinstance(effect, Send)
                    else effect.client_id
                )
                fwd = tracing.span(
                    out_context.trace_id,
                    _parent_id(hop_span, out_context),
                    "forward", broker_id, now, now,
                    to=str(destination), kind=out_msg.kind,
                )
            self._begin()
            if isinstance(effect, Send):
                await self._bounded_put(
                    self._link_queues[(broker_id, effect.destination)],
                    (broker_id, effect.destination),
                    (out_msg, hops, fwd),
                )
            else:
                await self._bounded_put(
                    self._client_queues[effect.client_id],
                    effect.client_id,
                    (out_msg, hops, fwd),
                )
        elif isinstance(effect, TimerRequest):
            self._begin()
            self._loop.call_later(
                effect.delay,
                lambda: self._inboxes[broker_id].put_nowait(
                    (_TimerFire(effect.name), None, 0, None)
                ),
            )
        elif isinstance(effect, Telemetry):
            if self.metrics.enabled:
                self.metrics.counter(effect.name).inc(effect.value)

    async def _bounded_put(self, queue: asyncio.Queue, key, item):
        """Put with backpressure accounting: a full queue blocks the
        producing actor and surfaces ``runtime.backpressure.*``."""
        if queue.full():
            metrics = self.metrics
            if metrics.enabled:
                metrics.counter("runtime.backpressure.waits").inc()
            started = time.monotonic()
            await queue.put(item)
            if metrics.enabled:
                metrics.histogram("runtime.backpressure.wait_seconds").record(
                    time.monotonic() - started
                )
        else:
            queue.put_nowait(item)
        depth = queue.qsize()
        if depth > self.max_queue_depth.get(key, 0):
            self.max_queue_depth[key] = depth

    async def _link_sender(self, src: str, dst: str):
        queue = self._link_queues[(src, dst)]
        while True:
            message, hops, span = await queue.get()
            delay = self.link_delay.get((src, dst), 0.0)
            if delay:
                await asyncio.sleep(delay)
            drop = self.drop_filter
            if drop is not None and drop(src, dst, message):
                if self.metrics.enabled:
                    self.metrics.counter("runtime.faults.dropped").inc()
                self._finish()
                continue
            # inboxes are unbounded: the sender never blocks, so every
            # bounded queue upstream is guaranteed to drain (no cycles).
            self._inboxes[dst].put_nowait((message, src, hops + 1, span))

    async def _client_consumer(self, client_id: str):
        queue = self._client_queues[client_id]
        while True:
            message, hops, span = await queue.get()
            try:
                delay = self.client_delay.get(client_id, 0.0)
                if delay:
                    await asyncio.sleep(delay)
                self._deliver(client_id, message, hops, span)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                self._errors.append(exc)
                self._idle.set()
                raise
            finally:
                self._finish()

    def _deliver(
        self, client_id: str, message: Message, hops: int,
        parent_span: Optional[Span],
    ):
        self.stats.record_client_message()
        view = self._view_kinds.pop((client_id, message.msg_id), None)
        client = self.subscribers[client_id]
        fresh = client.receive(message, hops)
        now = self.now
        tracing = self.tracing
        if tracing is not None:
            context = trace_of(message)
            if context is not None:
                attrs = {
                    "subscriber": client_id, "fresh": fresh, "hops": hops,
                }
                if view is not None:
                    attrs["view"] = view
                publication = getattr(message, "publication", None)
                if publication is not None:
                    attrs["doc"] = publication.doc_id
                    attrs["path_id"] = publication.path_id
                tracing.span(
                    context.trace_id, _parent_id(parent_span, context),
                    "deliver" if fresh else "dropped.duplicate",
                    client_id, now, now, **attrs,
                )
        if fresh and isinstance(message, PublishMsg):
            for auditor in self._auditors:
                if view is not None:
                    auditor.observe_delivery(client_id, message, view=view)
                else:
                    auditor.observe_delivery(client_id, message)
            key = (message.publication.doc_id, message.publication.path_id)
            issued_at = self._issued.get(key, message.issued_at)
            self.stats.record_delivery(
                DeliveryRecord(
                    subscriber_id=client_id,
                    doc_id=message.publication.doc_id,
                    path_id=message.publication.path_id,
                    issued_at=issued_at,
                    delivered_at=now,
                    hops=hops,
                )
            )
            if self.telemetry is not None:
                self.telemetry.note_delivery(
                    self._client_home.get(client_id), now - issued_at
                )

    # -- reporting ---------------------------------------------------------

    def routing_fingerprints(self) -> Dict[str, str]:
        return {
            broker_id: core.fingerprint()
            for broker_id, core in self.cores.items()
        }

    def delivered_map(self) -> Dict[str, Set[str]]:
        return {
            client_id: client.delivered_documents()
            for client_id, client in self.subscribers.items()
        }


def _parent_id(parent: Optional[Span], context: TraceContext) -> str:
    if parent is not None and parent.trace_id == context.trace_id:
        return parent.span_id
    return context.span_id
