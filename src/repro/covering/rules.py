"""The element-level covering rules (paper §4.2).

``Sub1`` containing test ``ti`` covers ``Sub2`` containing test ``mi`` at
the corresponding position when ``ti`` is a wildcard (no matter what
``mi`` is) or ``ti == mi`` with neither being a wildcard.  Note the
asymmetry versus the *overlap* rules used for advertisement matching:
``a`` overlaps ``*`` but does not cover it.
"""

from __future__ import annotations

from typing import Sequence

from repro.xpath.ast import WILDCARD


def covers_test(sup: str, sub: str) -> bool:
    """True when node test *sup* covers node test *sub*."""
    return sup == WILDCARD or (sub != WILDCARD and sup == sub)


def covers_block(sup: Sequence[str], sub: Sequence[str], offset: int = 0) -> bool:
    """True when every test of *sup* covers the test of *sub* at the same
    position, reading *sub* from *offset*.  Requires the slice to fit."""
    if offset + len(sup) > len(sub):
        return False
    return all(
        covers_test(sup[i], sub[offset + i]) for i in range(len(sup))
    )


def covers_step(sup, sub) -> bool:
    """Step-level covering, predicates included.

    The less constrained step covers: its node test must cover the
    other's, and each of its attribute predicates must be *implied by*
    the other step's predicates (a publication element satisfying the
    covered step then necessarily satisfies the coverer).
    """
    if not covers_test(sup.test, sub.test):
        return False
    return all(p.implied_by(sub.predicates) for p in sup.predicates)


def covers_step_block(sup_steps, sub_steps, offset: int = 0) -> bool:
    """Positional :func:`covers_step` over aligned step slices."""
    if offset + len(sup_steps) > len(sub_steps):
        return False
    return all(
        covers_step(sup_steps[i], sub_steps[offset + i])
        for i in range(len(sup_steps))
    )
