"""Covering (containment) detection between XPEs (paper §4.2).

``s1`` covers ``s2`` iff ``P(s1) ⊇ P(s2)`` — every publication path
matched by ``s2`` is also matched by ``s1``.  Covering-based routing
*requires soundness*: a wrong "covers" answer drops subscriptions and
loses messages, while a missed one merely costs routing-table size.  The
implementations below are sound; :func:`des_cov` is additionally
conservative in rare wildcard-crossing corner cases (documented inline)
and its soundness is model-checked against a brute-force oracle in the
test suite.

Algorithms, named as in the paper:

* :func:`abs_sim_cov` — two absolute simple XPEs,
* :func:`rel_sim_cov` — relative simple ``s1`` against simple ``s2``
  (the string-matching formulation, KMP-optimised when wildcard-free),
* :func:`des_cov`     — the general case with ``//`` operators.

:func:`covers` dispatches by shape.  Two accelerations sit in front of
the algorithms (both sound because they are exact reformulations, and
both bypassable with ``REPRO_COMPILED=0``):

* the **compiled fast path** — for simple shapes, covering is string
  matching, so it runs on the covered side's node-test string with the
  coverer's compiled regex (see
  :func:`repro.xpath.compiled.covers_simple`);
* an **LRU memo** over ``(s1, s2)`` pairs — subscription-tree descents,
  merge-candidate scans and forwarding decisions re-ask the same pairs
  constantly (expressions are immutable, so the answer never changes).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.cache import LRUCache
from repro.covering.rules import (
    covers_block,
    covers_step_block,
    covers_test,
)
from repro.xpath import compiled as _compiled
from repro.xpath.ast import WILDCARD, XPathExpr


def abs_sim_cov(s1: XPathExpr, s2: XPathExpr) -> bool:
    """``AbsSimCov``: absolute simple ``s1`` covers absolute simple ``s2``.

    ``s1`` must be no longer than ``s2`` (a shorter XPE constrains fewer
    positions, hence has the larger publication set) and each of its
    tests must cover the corresponding test of ``s2``.
    """
    t1, t2 = s1.tests, s2.tests
    if len(t1) > len(t2):
        return False
    if _compiled.ENABLED:
        verdict = _compiled.covers_simple(s1, t2)
        if verdict is not None:
            return verdict
    return covers_block(t1, t2)


def rel_sim_cov(s1: XPathExpr, s2: XPathExpr) -> bool:
    """``RelSimCov``: relative simple ``s1`` covers simple ``s2``
    (absolute or relative).

    ``s1`` covers ``s2`` iff ``s1``'s tests cover a contiguous slice of
    ``s2``'s tests: the adversarial publication instantiates every
    wildcard and every surrounding position of ``s2`` with fresh element
    names, so ``s1`` can only rely on positions constrained by ``s2``.
    The paper notes this is again a string-matching problem; the
    compiled regex of ``s1`` searches ``s2``'s test string directly,
    with KMP (both sides wildcard-free) and the naive O(k·n) scan as
    the interpreted fallbacks.
    """
    t1, t2 = s1.tests, s2.tests
    if len(t1) > len(t2):
        return False
    if _compiled.ENABLED and s1.is_relative:
        verdict = _compiled.covers_simple(s1, t2)
        if verdict is not None:
            return verdict
    if WILDCARD not in t1 and WILDCARD not in t2:
        return _kmp_contains(t2, t1)
    return any(
        covers_block(t1, t2, offset) for offset in range(len(t2) - len(t1) + 1)
    )


def _kmp_contains(text: Sequence[str], pattern: Sequence[str]) -> bool:
    """KMP substring search (exact symbols, no wildcards)."""
    failure = [0] * len(pattern)
    k = 0
    for i in range(1, len(pattern)):
        while k > 0 and pattern[i] != pattern[k]:
            k = failure[k - 1]
        if pattern[i] == pattern[k]:
            k += 1
        failure[i] = k
    k = 0
    for symbol in text:
        while k > 0 and symbol != pattern[k]:
            k = failure[k - 1]
        if symbol == pattern[k]:
            k += 1
        if k == len(pattern):
            return True
    return False


def des_cov(s1: XPathExpr, s2: XPathExpr) -> bool:
    """``DesCov``: the general covering test for XPEs with ``//``.

    ``s1``'s ``//``-free segments must embed, in order, into ``s2``'s
    segments.  A segment must normally fit inside a single ``s2``
    segment — an ``s1`` segment cannot straddle a ``//`` of ``s2``
    because the descendant gap may contain arbitrarily many arbitrary
    elements.  The one exception is the paper's special case: a *suffix
    of wildcards* may spill across the boundary, since a wildcard covers
    whatever the gap or the following segment holds.  After spilling
    ``k`` wildcards, the next segment's search resumes ``k`` positions
    into the following ``s2`` segment — the worst case of a zero-length
    gap — which keeps the answer sound for every gap length.

    Placements never extend past ``s2``'s final segment: a publication
    may end exactly where ``s2``'s match ends.
    """
    if s1.is_absolute and s2.is_relative:
        return False
    if len(s1) > len(s2):
        return False
    segments1 = s1.segments
    segments2 = s2.segments

    j, o = 0, 0
    for index, segment in enumerate(segments1):
        anchored = index == 0 and s1.anchored
        if anchored:
            placed = _place_segment(segment, segments2, 0, 0)
        else:
            placed = _search_segment(segment, segments2, j, o)
        if placed is None:
            return False
        j, o = placed
    return True


def _search_segment(
    segment: Sequence[str],
    segments2: Sequence[Sequence[str]],
    j: int,
    o: int,
) -> Optional[Tuple[int, int]]:
    """Earliest placement of *segment* at or after position ``(j, o)``.

    Earliest placement is optimal: it leaves maximal room for the
    remaining segments, and placements are monotone in the start
    position.
    """
    for jj in range(j, len(segments2)):
        start = o if jj == j else 0
        for oo in range(start, len(segments2[jj]) + 1):
            placed = _place_segment(segment, segments2, jj, oo)
            if placed is not None:
                return placed
    return None


def _place_segment(
    segment: Sequence[str],
    segments2: Sequence[Sequence[str]],
    jj: int,
    oo: int,
) -> Optional[Tuple[int, int]]:
    """Try to place *segment* starting exactly at ``(jj, oo)``.

    Returns the position just past the placement, or None.  Once the
    placement crosses a ``//`` boundary only wildcards are accepted
    (see :func:`des_cov`).
    """
    crossed = False
    for test in segment:
        if oo == len(segments2[jj]):
            jj += 1
            oo = 0
            crossed = True
            if jj == len(segments2):
                return None
        if crossed:
            if test != WILDCARD:
                return None
        elif not covers_test(test, segments2[jj][oo]):
            return None
        oo += 1
    return jj, oo


#: Memo for :func:`covers` verdicts.  Keys are ``(s1, s2)`` expression
#: pairs (value-based hash/eq, both memoised on the instances); safe to
#: cache unboundedly long because expressions are immutable and
#: ``covers`` is pure — the LRU bound only caps memory.
_COVERS_CACHE = LRUCache(maxsize=1 << 16, metric_prefix="covering.covers_cache")
_CACHE_MISS = object()


def covers_cache_stats():
    """Lifetime hit/miss/eviction counts of the covers memo."""
    return _COVERS_CACHE.stats()


def covers(s1: XPathExpr, s2: XPathExpr) -> bool:
    """``s1 ⊒ s2``: memoised dispatch to the shape-appropriate
    algorithm (:func:`covers_uncached`).

    Two O(1) prechecks run *before* the memo, so the overwhelmingly
    common cheap rejections (and self-comparisons) never pay cache
    traffic: identity/equality, and the universal length bound — a
    coverer is never longer than the covered expression, because the
    adversarial publication instantiates exactly ``len(s2)`` elements
    (predicates never change path length), leaving a longer ``s1``
    nothing to match.
    """
    if s1 is s2:
        return True
    if len(s1) > len(s2):
        return False
    if s1 == s2:
        return True
    key = (s1, s2)
    value = _COVERS_CACHE.get(key, _CACHE_MISS)
    if value is _CACHE_MISS:
        value = covers_uncached(s1, s2)
        _COVERS_CACHE.put(key, value)
    return value


def covers_uncached(s1: XPathExpr, s2: XPathExpr) -> bool:
    """``s1 ⊒ s2``: dispatch to the shape-appropriate algorithm.

    The two subscription-tree search properties of paper §4.1 (an
    absolute XPE is never covered by a longer one; a relative XPE is
    never covered by an absolute one) fall out of the length and
    anchoring prechecks here.
    """
    if s1 == s2:
        return True
    if s1.has_predicates:
        return _covers_with_predicates(s1, s2)
    # Predicates on s2 alone only shrink P(s2): the structural check on
    # node tests stays sound unchanged.
    if s1.is_simple and s1.is_absolute and s2.is_relative:
        # The paper's rule "an absolute XPE cannot cover a relative one"
        # has one exception: an all-wildcard absolute prefix /*/.../*
        # matches every path of sufficient length, hence covers any XPE
        # with at least as many steps.
        return len(s1) <= len(s2) and all(
            step.is_wildcard for step in s1.steps
        )
    if s1.is_simple and s2.is_simple:
        if s1.is_absolute:
            return abs_sim_cov(s1, s2)
        return rel_sim_cov(s1, s2)
    return des_cov(s1, s2)


def _covers_with_predicates(s1: XPathExpr, s2: XPathExpr) -> bool:
    """Covering when the coverer itself carries attribute predicates.

    Sound step-aligned checks are available for the simple shapes (the
    alignment of s1's steps to s2's steps is determined); for ``//``
    shapes no single alignment exists, so the answer is a conservative
    False — costing at most routing-table size, never correctness.
    """
    if not (s1.is_simple and s2.is_simple):
        return False
    if s1.is_absolute:
        if not s2.is_absolute:
            return False
        return covers_step_block(s1.steps, s2.steps)
    if len(s1) > len(s2):
        return False
    return any(
        covers_step_block(s1.steps, s2.steps, offset)
        for offset in range(len(s2) - len(s1) + 1)
    )


class SiblingCoverageProbe:
    """Batched covering over one sibling group (merge-sweep hot path).

    A pairwise merge sweep asks ``covers`` for O(k²) ordered pairs of
    the *same* k siblings; going through :func:`covers` pays the
    dispatch, the memo probe, and — on the compiled fast path — a fresh
    ``path_string`` render of the covered side *per pair*.  The probe
    hoists everything per-expression: each sibling's node-test string is
    rendered once and its compiled regex bound once, so a pair check on
    the fast path is a single regex call.  Pairs outside the compiled
    fast path's shape preconditions (predicated or ``//`` coverers,
    the absolute-covers-relative wildcard-prefix corner, separator
    collisions, ``REPRO_COMPILED=0``) fall back to :func:`covers`
    verbatim — the probe is an exact reformulation, pinned by a
    differential test against the per-pair result.
    """

    __slots__ = ("exprs", "_texts", "_regexes", "_fallback")

    def __init__(self, exprs: Sequence[XPathExpr]):
        self.exprs = list(exprs)
        texts = []
        regexes = []
        fallback = []
        enabled = _compiled.ENABLED
        for expr in self.exprs:
            text = _compiled.path_string(expr.tests) if enabled else None
            texts.append(text)
            regex = None
            if enabled and expr.is_simple and not expr.has_predicates:
                regex = _compiled.compile_xpe(expr).regex
            regexes.append(regex)
            # As coverer: shapes where the regex verdict IS covers().
            fallback.append(regex is None)
        self._texts = texts
        self._regexes = regexes
        self._fallback = fallback

    def covers(self, i: int, j: int) -> bool:
        """``exprs[i] ⊒ exprs[j]``, identical to ``covers(...)``."""
        s1 = self.exprs[i]
        s2 = self.exprs[j]
        if s1 is s2 or s1 == s2:
            return True
        if len(s1) > len(s2):
            return False
        text = self._texts[j]
        if (
            not self._fallback[i]
            and text is not None
            and s2.is_simple
            and not (s1.is_absolute and s2.is_relative)
        ):
            # abs_sim_cov / rel_sim_cov compiled branches, with the
            # covered side's string rendered once for the whole group.
            return self._regexes[i](text) is not None
        return covers(s1, s2)

    def either_covers(self, i: int, j: int) -> bool:
        """True when either sibling covers the other (the pairwise
        merge sweep's skip condition)."""
        return self.covers(i, j) or self.covers(j, i)
