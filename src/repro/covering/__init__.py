"""Covering detection and the subscription tree (paper §4.1–4.2)."""

from repro.covering.rules import covers_block, covers_test
from repro.covering.algorithms import abs_sim_cov, covers, des_cov, rel_sim_cov
from repro.covering.pathmatch import matches_document_paths, matches_path
from repro.covering.subscription_tree import (
    InsertOutcome,
    RemoveOutcome,
    SubNode,
    SubscriptionTree,
)

__all__ = [
    "covers_block",
    "covers_test",
    "abs_sim_cov",
    "covers",
    "des_cov",
    "rel_sim_cov",
    "matches_document_paths",
    "matches_path",
    "InsertOutcome",
    "RemoveOutcome",
    "SubNode",
    "SubscriptionTree",
]
